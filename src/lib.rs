//! Umbrella crate for the SMART reproduction workspace.
//!
//! Re-exports every subsystem crate so examples and integration tests can use
//! a single dependency. See the individual crates for details:
//!
//! * [`units`] — strongly-typed physical quantities and the workspace-wide
//!   [`SmartError`]
//! * [`sfq`] — SFQ device and interconnect models
//! * [`josim`] — transient circuit simulator (JoSIM substitute)
//! * [`cryomem`] — cryogenic CACTI-style memory array models
//! * [`systolic`] — SCALE-SIM-like systolic accelerator simulator
//! * [`spm`] — scratchpad memory architectures (SHIFT / RANDOM / SMART)
//! * [`ilp`] — 0/1 integer linear programming solver
//! * [`compiler`] — ILP-based SPM allocation and prefetching compiler
//! * [`core`] — end-to-end schemes and evaluation
//! * [`timing`] — cycle-level SPM/systolic replay simulator
//! * [`search`] — design-space search: geometry grids, Pareto pruning, and
//!   warm-started incremental evaluation
//! * [`serving`] — multi-tenant serving simulator: seeded request
//!   generators and a queueing/dispatch model over prepass replays
//! * [`trace`] — structured spans, the unified metrics registry, and
//!   deterministic Chrome-trace export

#![warn(missing_docs)]
#![warn(clippy::all)]

pub use smart_compiler as compiler;
pub use smart_core as core;
pub use smart_cryomem as cryomem;
pub use smart_ilp as ilp;
pub use smart_josim as josim;
pub use smart_search as search;
pub use smart_serving as serving;
pub use smart_sfq as sfq;
pub use smart_spm as spm;
pub use smart_systolic as systolic;
pub use smart_timing as timing;
pub use smart_trace as trace;
pub use smart_units as units;

pub use smart_units::{Result, SmartError};
