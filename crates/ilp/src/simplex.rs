//! LP relaxation API: result types and the solver entry points.
//!
//! The implementation behind [`solve_relaxation`] is the sparse revised
//! simplex in [`crate::revised`] (bounded variables, warm-startable bases);
//! the original dense tableau survives in [`crate::dense`] as the reference
//! oracle the property suite cross-checks against.

use crate::problem::Problem;
use crate::revised::{solve_with_pins, SolveTrace, StandardForm};
use smart_units::{Result, SmartError};

/// LP outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum LpResult {
    /// Optimal solution found.
    Optimal(LpSolution),
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded.
    Unbounded,
}

impl LpResult {
    /// Converts the outcome into the workspace-wide [`Result`], mapping
    /// [`LpResult::Infeasible`] and [`LpResult::Unbounded`] to their
    /// [`SmartError`] counterparts.
    ///
    /// # Errors
    ///
    /// [`SmartError::Infeasible`] or [`SmartError::Unbounded`],
    /// respectively.
    pub fn into_result(self) -> Result<LpSolution> {
        match self {
            Self::Optimal(s) => Ok(s),
            Self::Infeasible => Err(SmartError::infeasible("LP relaxation")),
            Self::Unbounded => Err(SmartError::unbounded("LP relaxation")),
        }
    }
}

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Objective value in the problem's original sense.
    pub objective: f64,
    /// Values of the structural variables, in declaration order.
    pub values: Vec<f64>,
}

/// Like [`solve_relaxation`], but returns the workspace-wide [`Result`]
/// instead of the three-way [`LpResult`]: use this at API boundaries where
/// an infeasible or unbounded relaxation is an error rather than a signal
/// to keep searching.
///
/// # Errors
///
/// [`SmartError::Infeasible`] when no feasible point exists and
/// [`SmartError::Unbounded`] when the objective is unbounded.
pub fn try_solve_relaxation(problem: &Problem, pins: &[Option<f64>]) -> Result<LpSolution> {
    solve_relaxation(problem, pins).into_result()
}

/// Solves the LP relaxation of `problem` (integrality dropped), with extra
/// pinned bounds `x[i] = v` from branch & bound (pass `None` for free).
///
/// One-shot: builds the sparse standard form, cold-solves, and discards the
/// basis. Callers that re-solve related LPs (branch & bound, sweeps) should
/// go through [`crate::solver::Solver`] with a
/// [`crate::context::SolverContext`] instead, which reuses bases between
/// solves.
///
/// # Panics
///
/// Panics if `pins` is non-empty and its length differs from the problem's
/// variable count.
#[must_use]
pub fn solve_relaxation(problem: &Problem, pins: &[Option<f64>]) -> LpResult {
    assert!(
        pins.len() == problem.num_vars() || pins.is_empty(),
        "pin vector length mismatch"
    );
    let form = StandardForm::build(problem);
    solve_with_pins(&form, problem, pins, None, &mut SolveTrace::default()).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Relation, Sense};

    // API-level behavior of the (revised) relaxation solver; the detailed
    // algorithmic tests live in `revised` and `dense`.

    #[test]
    fn textbook_maximization() {
        // max 5x + 4y s.t. 6x + 4y <= 24; x + 2y <= 6 => x=3, y=1.5, z=21.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.continuous("x", 0.0, f64::INFINITY);
        let y = p.continuous("y", 0.0, f64::INFINITY);
        p.set_objective(x, 5.0);
        p.set_objective(y, 4.0);
        p.add_constraint(&[(x, 6.0), (y, 4.0)], Relation::Le, 24.0);
        p.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Le, 6.0);
        let LpResult::Optimal(s) = solve_relaxation(&p, &[]) else {
            panic!("expected optimal")
        };
        assert!((s.objective - 21.0).abs() < 1e-6, "z = {}", s.objective);
        assert!((s.values[0] - 3.0).abs() < 1e-6);
        assert!((s.values[1] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn respects_bounds_without_explicit_rows() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.continuous("x", 0.0, 3.0);
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 100.0);
        let LpResult::Optimal(s) = solve_relaxation(&p, &[]) else {
            panic!("expected optimal")
        };
        assert!((s.objective - 3.0).abs() < 1e-6);

        let mut p = Problem::new(Sense::Minimize);
        let x = p.continuous("x", 2.0, 10.0);
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 10.0);
        let LpResult::Optimal(s) = solve_relaxation(&p, &[]) else {
            panic!("expected optimal")
        };
        assert!((s.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn fractional_relaxation_of_knapsack() {
        // max 10a + 6b s.t. 5a + 4b <= 7 (binaries): LP optimum a=1,
        // b=0.5 => 13.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let b = p.binary("b");
        p.set_objective(a, 10.0);
        p.set_objective(b, 6.0);
        p.add_constraint(&[(a, 5.0), (b, 4.0)], Relation::Le, 7.0);
        let LpResult::Optimal(s) = solve_relaxation(&p, &[]) else {
            panic!("expected optimal")
        };
        assert!((s.objective - 13.0).abs() < 1e-6, "z = {}", s.objective);
        assert!((s.values[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn try_solve_relaxation_reports_infeasible() {
        // x <= 1 but x >= 2: empty feasible region -> SmartError, no panic.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.continuous("x", 0.0, 1.0);
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        let err = try_solve_relaxation(&p, &[]).unwrap_err();
        assert!(matches!(err, SmartError::Infeasible { .. }), "{err}");
    }

    #[test]
    fn try_solve_relaxation_reports_unbounded() {
        // max x with x unbounded above: SmartError::Unbounded, no panic.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.continuous("x", 0.0, f64::INFINITY);
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 0.0);
        let err = try_solve_relaxation(&p, &[]).unwrap_err();
        assert!(matches!(err, SmartError::Unbounded { .. }), "{err}");
    }

    #[test]
    fn try_solve_relaxation_passes_through_optimum() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.continuous("x", 0.0, 3.0);
        p.set_objective(x, 2.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 100.0);
        let s = try_solve_relaxation(&p, &[]).expect("bounded and feasible");
        assert!((s.objective - 6.0).abs() < 1e-6);
    }

    #[test]
    fn agrees_with_dense_reference() {
        // One structured spot-check here; the property suite fuzzes this.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.continuous("x", 0.0, f64::INFINITY);
        let y = p.continuous("y", 0.0, f64::INFINITY);
        p.set_objective(x, 2.0);
        p.set_objective(y, 3.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 1.0);
        let LpResult::Optimal(sparse) = solve_relaxation(&p, &[]) else {
            panic!("sparse failed")
        };
        let LpResult::Optimal(dense) = crate::dense::solve_relaxation_dense(&p, &[]) else {
            panic!("dense failed")
        };
        assert!((sparse.objective - dense.objective).abs() < 1e-9);
    }
}
