//! Dense two-phase primal simplex — the *reference oracle*.
//!
//! This is the original dense-tableau implementation the revised simplex in
//! [`crate::revised`] replaced on the hot path. It stays in the crate (not
//! `cfg(test)`) because the workspace property suite cross-checks every
//! random LP against it: the sparse solver and this one must agree on
//! feasibility, boundedness, and (when optimal) objective value.
//!
//! Standard-form conversion: every variable gets an upper-bound row (when
//! finite), `Ge`/`Eq` rows get artificials, `Le` rows get slacks. Phase one
//! drives the artificials to zero; phase two optimizes the real objective.
//! Bland's rule is used once degeneracy is detected, guaranteeing
//! termination.

// lint:allow-file(index, dense simplex tableau kernel; row/column bounds are the tableau dimensions fixed at construction)

use crate::problem::{Problem, Relation, Sense};
use crate::simplex::{LpResult, LpSolution};

const EPS: f64 = 1e-9;
/// Iteration cap (anti-runaway; Bland's rule prevents cycling well before
/// this).
const MAX_ITERS: usize = 100_000;

struct Tableau {
    /// rows x cols coefficient matrix (col `cols-1` is the RHS).
    a: Vec<f64>,
    rows: usize,
    cols: usize,
    /// Basis: which column is basic in each row.
    basis: Vec<usize>,
    /// Objective row (phase-dependent), length `cols`.
    obj: Vec<f64>,
    /// Objective constant.
    obj_const: f64,
}

impl Tableau {
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.cols + c]
    }

    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.a[r * self.cols + c] = v;
    }

    fn pivot(&mut self, pr: usize, pc: usize) {
        let cols = self.cols;
        let pv = self.at(pr, pc);
        for c in 0..cols {
            self.a[pr * cols + c] /= pv;
        }
        for r in 0..self.rows {
            if r != pr {
                let f = self.at(r, pc);
                if f.abs() > EPS {
                    for c in 0..cols {
                        let v = self.at(pr, c);
                        self.a[r * cols + c] -= f * v;
                    }
                }
            }
        }
        let f = self.obj[pc];
        if f.abs() > EPS {
            for c in 0..cols {
                self.obj[c] -= f * self.at(pr, c);
            }
            self.obj_const -= f * self.at(pr, cols - 1);
        }
        self.basis[pr] = pc;
    }

    /// Runs simplex on the current objective row (maximization: pick the
    /// most negative reduced cost). Returns `false` if unbounded.
    fn optimize(&mut self) -> bool {
        let rhs_col = self.cols - 1;
        let mut bland = false;
        let mut last_obj = f64::NEG_INFINITY;
        let mut stall = 0usize;
        for _ in 0..MAX_ITERS {
            // Entering column.
            let mut pc = None;
            if bland {
                for c in 0..rhs_col {
                    if self.obj[c] < -EPS {
                        pc = Some(c);
                        break;
                    }
                }
            } else {
                let mut best = -EPS;
                for c in 0..rhs_col {
                    if self.obj[c] < best {
                        best = self.obj[c];
                        pc = Some(c);
                    }
                }
            }
            let Some(pc) = pc else { return true };

            // Ratio test.
            let mut pr = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.rows {
                let a = self.at(r, pc);
                if a > EPS {
                    let ratio = self.at(r, rhs_col) / a;
                    if ratio < best_ratio - EPS
                        || (bland
                            && (ratio - best_ratio).abs() <= EPS
                            && pr.is_some_and(|p: usize| self.basis[r] < self.basis[p]))
                    {
                        best_ratio = ratio;
                        pr = Some(r);
                    }
                }
            }
            let Some(pr) = pr else { return false };

            self.pivot(pr, pc);

            // Degeneracy detection: switch to Bland's rule if the objective
            // stalls.
            let cur = -self.obj_const;
            if (cur - last_obj).abs() < EPS {
                stall += 1;
                if stall > 20 {
                    bland = true;
                }
            } else {
                stall = 0;
            }
            last_obj = cur;
        }
        true // iteration cap: treat as converged to current point
    }
}

/// Solves the LP relaxation with the dense reference tableau (integrality
/// dropped), with extra pinned bounds `x[i] = v` from branch & bound (pass
/// `None` for free).
///
/// Lower bounds other than zero are handled by substitution; upper bounds by
/// explicit rows.
#[must_use]
pub fn solve_relaxation_dense(problem: &Problem, pins: &[Option<f64>]) -> LpResult {
    let n = problem.num_vars();
    assert!(
        pins.len() == n || pins.is_empty(),
        "pin vector length mismatch"
    );

    // Effective bounds.
    let mut lower = Vec::with_capacity(n);
    let mut upper = Vec::with_capacity(n);
    for (i, v) in problem.variables.iter().enumerate() {
        let pin = pins.get(i).copied().flatten();
        match pin {
            Some(p) => {
                lower.push(p);
                upper.push(p);
            }
            None => {
                lower.push(v.lower);
                upper.push(v.upper);
            }
        }
    }

    // Shift x = lower + y (y >= 0); constraints on y.
    // Count rows: constraints + finite upper bounds.
    let ub_rows: Vec<usize> = (0..n)
        .filter(|&i| upper[i].is_finite() && upper[i] - lower[i] > EPS)
        .collect();
    // Fixed variables (upper == lower) are constants.
    let is_fixed: Vec<bool> = (0..n).map(|i| upper[i] - lower[i] <= EPS).collect();

    let m = problem.num_constraints() + ub_rows.len();
    // Columns: structural n + slack/surplus (one per row) + artificials.
    // Allocate generously: artificials at most m.
    let struct_cols = n;
    let slack_cols = m;
    let total_cols = struct_cols + slack_cols + m + 1;
    let rhs_col = total_cols - 1;

    let mut t = Tableau {
        a: vec![0.0; m * total_cols],
        rows: m,
        cols: total_cols,
        basis: vec![usize::MAX; m],
        obj: vec![0.0; total_cols],
        obj_const: 0.0,
    };

    let mut next_art = struct_cols + slack_cols;
    let mut artificials = Vec::new();

    let mut row = 0usize;
    // Real constraints.
    for c in &problem.constraints {
        let mut rhs = c.rhs;
        for &(v, coef) in &c.terms {
            rhs -= coef * lower[v.0];
            if !is_fixed[v.0] {
                let cur = t.at(row, v.0);
                t.set(row, v.0, cur + coef);
            }
        }
        let mut relation = c.relation;
        if rhs < 0.0 {
            // Negate the row.
            for col in 0..struct_cols {
                let v = t.at(row, col);
                t.set(row, col, -v);
            }
            rhs = -rhs;
            relation = match relation {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
        t.set(row, rhs_col, rhs);
        let slack = struct_cols + row;
        match relation {
            Relation::Le => {
                t.set(row, slack, 1.0);
                t.basis[row] = slack;
            }
            Relation::Ge => {
                t.set(row, slack, -1.0);
                t.set(row, next_art, 1.0);
                t.basis[row] = next_art;
                artificials.push(next_art);
                next_art += 1;
            }
            Relation::Eq => {
                t.set(row, next_art, 1.0);
                t.basis[row] = next_art;
                artificials.push(next_art);
                next_art += 1;
            }
        }
        row += 1;
    }
    // Upper-bound rows: y_i <= upper - lower.
    for &i in &ub_rows {
        t.set(row, i, 1.0);
        t.set(row, rhs_col, upper[i] - lower[i]);
        let slack = struct_cols + row;
        t.set(row, slack, 1.0);
        t.basis[row] = slack;
        row += 1;
    }

    // Phase one: minimize sum of artificials == maximize -sum.
    if !artificials.is_empty() {
        t.obj = vec![0.0; total_cols];
        for &a in &artificials {
            t.obj[a] = 1.0; // maximize(-sum art) => reduced costs: obj row holds +1
        }
        // Make the objective row consistent with the basis (artificials are
        // basic): subtract their rows.
        t.obj_const = 0.0;
        for r in 0..t.rows {
            if artificials.contains(&t.basis[r]) {
                for c in 0..total_cols {
                    t.obj[c] -= t.at(r, c);
                }
                t.obj_const -= t.at(r, rhs_col);
            }
        }
        if !t.optimize() {
            return LpResult::Infeasible; // phase-1 unbounded cannot happen
        }
        let art_sum = -t.obj_const;
        if art_sum > 1e-6 {
            return LpResult::Infeasible;
        }
        // Pivot out any artificial still basic at zero.
        for r in 0..t.rows {
            if artificials.contains(&t.basis[r]) {
                if let Some(c) = (0..struct_cols + slack_cols).find(|&c| t.at(r, c).abs() > EPS) {
                    t.pivot(r, c);
                }
            }
        }
    }

    // Phase two: real objective (convert minimize to maximize).
    let sign = match problem.sense {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };
    t.obj = vec![0.0; total_cols];
    t.obj_const = 0.0;
    for (i, v) in problem.variables.iter().enumerate() {
        if !is_fixed[i] {
            t.obj[i] = -sign * v.objective;
        }
        t.obj_const -= sign * v.objective * lower[i];
    }
    // Block artificials from re-entering.
    for &a in &artificials {
        t.obj[a] = 1e18;
    }
    // Price out the basic columns.
    for r in 0..t.rows {
        let b = t.basis[r];
        let f = t.obj[b];
        if f.abs() > EPS {
            for c in 0..total_cols {
                let v = t.at(r, c);
                t.obj[c] -= f * v;
            }
            t.obj_const -= f * t.at(r, rhs_col);
        }
    }
    if !t.optimize() {
        return LpResult::Unbounded;
    }

    // Extract.
    let mut values = lower.clone();
    for r in 0..t.rows {
        let b = t.basis[r];
        if b < struct_cols {
            values[b] = lower[b] + t.at(r, rhs_col);
        }
    }
    let objective: f64 = problem
        .variables
        .iter()
        .enumerate()
        .map(|(i, v)| v.objective * values[i])
        .sum();
    LpResult::Optimal(LpSolution { objective, values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Relation, Sense};

    #[test]
    fn textbook_maximization() {
        // max 5x + 4y s.t. 6x + 4y <= 24; x + 2y <= 6 => x=3, y=1.5, z=21.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.continuous("x", 0.0, f64::INFINITY);
        let y = p.continuous("y", 0.0, f64::INFINITY);
        p.set_objective(x, 5.0);
        p.set_objective(y, 4.0);
        p.add_constraint(&[(x, 6.0), (y, 4.0)], Relation::Le, 24.0);
        p.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Le, 6.0);
        let LpResult::Optimal(s) = solve_relaxation_dense(&p, &[]) else {
            panic!("expected optimal")
        };
        assert!((s.objective - 21.0).abs() < 1e-6, "z = {}", s.objective);
        assert!((s.values[0] - 3.0).abs() < 1e-6);
        assert!((s.values[1] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x + 3y s.t. x + y >= 4; x >= 1 => x=4?? (y=0): z=8 vs x=1,y=3:
        // 2+9=11. Optimal x=4,y=0 => 8.
        let mut p = Problem::new(Sense::Minimize);
        let x = p.continuous("x", 0.0, f64::INFINITY);
        let y = p.continuous("y", 0.0, f64::INFINITY);
        p.set_objective(x, 2.0);
        p.set_objective(y, 3.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 1.0);
        let LpResult::Optimal(s) = solve_relaxation_dense(&p, &[]) else {
            panic!("expected optimal")
        };
        assert!((s.objective - 8.0).abs() < 1e-6, "z = {}", s.objective);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 5, x <= 2 => 5 with x=2, y=3.
        let mut p = Problem::new(Sense::Maximize);
        let x = p.continuous("x", 0.0, 2.0);
        let y = p.continuous("y", 0.0, f64::INFINITY);
        p.set_objective(x, 1.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 5.0);
        let LpResult::Optimal(s) = solve_relaxation_dense(&p, &[]) else {
            panic!("expected optimal")
        };
        assert!((s.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.continuous("x", 0.0, 1.0);
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(solve_relaxation_dense(&p, &[]), LpResult::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.continuous("x", 0.0, f64::INFINITY);
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 0.0);
        assert_eq!(solve_relaxation_dense(&p, &[]), LpResult::Unbounded);
    }

    #[test]
    fn respects_upper_bounds() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.continuous("x", 0.0, 3.0);
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 100.0);
        let LpResult::Optimal(s) = solve_relaxation_dense(&p, &[]) else {
            panic!("expected optimal")
        };
        assert!((s.objective - 3.0).abs() < 1e-6);
    }

    #[test]
    fn respects_lower_bounds() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.continuous("x", 2.0, 10.0);
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Le, 10.0);
        let LpResult::Optimal(s) = solve_relaxation_dense(&p, &[]) else {
            panic!("expected optimal")
        };
        assert!((s.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn pins_fix_variables() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.binary("x");
        let y = p.binary("y");
        p.set_objective(x, 3.0);
        p.set_objective(y, 2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
        // Pin x = 0: best is y = 1 with z = 2.
        let LpResult::Optimal(s) = solve_relaxation_dense(&p, &[Some(0.0), None]) else {
            panic!("expected optimal")
        };
        assert!((s.objective - 2.0).abs() < 1e-6);
        assert!(s.values[0].abs() < 1e-9);
    }

    #[test]
    fn fractional_relaxation_of_knapsack() {
        // max 10a + 6b s.t. 5a + 4b <= 7 (binaries): LP optimum a=1,
        // b=0.5 => 13.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let b = p.binary("b");
        p.set_objective(a, 10.0);
        p.set_objective(b, 6.0);
        p.add_constraint(&[(a, 5.0), (b, 4.0)], Relation::Le, 7.0);
        let LpResult::Optimal(s) = solve_relaxation_dense(&p, &[]) else {
            panic!("expected optimal")
        };
        assert!((s.objective - 13.0).abs() < 1e-6, "z = {}", s.objective);
        assert!((s.values[1] - 0.5).abs() < 1e-6);
    }
}
