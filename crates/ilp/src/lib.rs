//! A from-scratch 0/1 integer linear programming solver.
//!
//! The paper solves its SPM allocation/prefetch formulation with Gurobi;
//! this crate is the reproduction's substitute. The hot path is a *sparse
//! revised simplex* over a compressed-sparse-column standard form
//! ([`revised`]) — bounded variables handled implicitly (no upper-bound
//! rows), an `m x m` basis inverse instead of a full tableau, and
//! warm-startable bases — under best-first branch & bound ([`solver`]) that
//! reoptimizes every child node from its parent's basis with a few dual
//! simplex pivots, prunes against a caller-seeded incumbent, and falls back
//! to greedy rounding so compilation always terminates. A [`SolverContext`]
//! carries optimal bases *between* solves, so sweeps over capacities or
//! budgets (same constraint structure, different right-hand sides) become
//! cheap reoptimizations. The original dense tableau lives on in [`dense`]
//! as the property-test oracle.
//!
//! # Quick start
//!
//! ```
//! use smart_ilp::problem::{Problem, Relation, Sense};
//! use smart_ilp::solver::Solver;
//!
//! // Knapsack: max 10a + 6b + 4c  s.t.  5a + 4b + 3c <= 7.
//! let mut p = Problem::new(Sense::Maximize);
//! let a = p.binary("a");
//! let b = p.binary("b");
//! let c = p.binary("c");
//! p.set_objective(a, 10.0);
//! p.set_objective(b, 6.0);
//! p.set_objective(c, 4.0);
//! p.add_constraint(&[(a, 5.0), (b, 4.0), (c, 3.0)], Relation::Le, 7.0);
//!
//! let result = Solver::new().solve(&p);
//! assert!((result.solution().unwrap().objective - 10.0).abs() < 1e-6);
//! ```
//!
//! Sweep-style callers share a [`SolverContext`] so adjacent solves
//! warm-start from each other's bases:
//!
//! ```
//! use smart_ilp::{Problem, Relation, Sense, Solver, SolverContext};
//!
//! let ctx = SolverContext::new();
//! for capacity in [7.0, 6.0, 5.0] {
//!     let mut p = Problem::new(Sense::Maximize);
//!     let a = p.binary("a");
//!     let b = p.binary("b");
//!     p.set_objective(a, 10.0);
//!     p.set_objective(b, 6.0);
//!     p.add_constraint(&[(a, 5.0), (b, 4.0)], Relation::Le, capacity);
//!     let _ = Solver::new().solve_with(&p, &ctx);
//! }
//! assert!(ctx.stats().warm_attempts >= 2);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod context;
pub mod dense;
pub mod problem;
pub mod revised;
pub mod simplex;
pub mod solver;

pub use context::{SolverContext, SolverContextStats};
pub use problem::{Problem, Relation, Sense, VarId};
pub use revised::Basis;
pub use simplex::{solve_relaxation, try_solve_relaxation, LpResult, LpSolution};
pub use smart_units::{Result, SmartError};
pub use solver::{MipResult, MipSolution, Solver};
