//! A from-scratch 0/1 integer linear programming solver.
//!
//! The paper solves its SPM allocation/prefetch formulation with Gurobi;
//! this crate is the reproduction's substitute: a dense two-phase primal
//! simplex for LP relaxations ([`simplex`]) under best-first branch & bound
//! ([`solver`]), with a greedy rounding fallback so compilation always
//! terminates.
//!
//! # Quick start
//!
//! ```
//! use smart_ilp::problem::{Problem, Relation, Sense};
//! use smart_ilp::solver::Solver;
//!
//! // Knapsack: max 10a + 6b + 4c  s.t.  5a + 4b + 3c <= 7.
//! let mut p = Problem::new(Sense::Maximize);
//! let a = p.binary("a");
//! let b = p.binary("b");
//! let c = p.binary("c");
//! p.set_objective(a, 10.0);
//! p.set_objective(b, 6.0);
//! p.set_objective(c, 4.0);
//! p.add_constraint(&[(a, 5.0), (b, 4.0), (c, 3.0)], Relation::Le, 7.0);
//!
//! let result = Solver::new().solve(&p);
//! assert!((result.solution().unwrap().objective - 10.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod problem;
pub mod simplex;
pub mod solver;

pub use problem::{Problem, Relation, Sense, VarId};
pub use simplex::{solve_relaxation, try_solve_relaxation, LpResult, LpSolution};
pub use smart_units::{Result, SmartError};
pub use solver::{MipResult, MipSolution, Solver};
