//! Sparse revised simplex with bounded variables and warm starts — the
//! solver's hot path.
//!
//! The LP is held in standard form `A x + s = b` over a compressed sparse
//! column (`StandardForm`) matrix: one slack column per row (`Le` rows get
//! `s >= 0`, `Ge` rows `s <= 0`, `Eq` rows `s = 0`) and *no* explicit
//! upper-bound rows — variable bounds are handled implicitly by the
//! bounded-variable ratio test, which shrinks the basis from
//! `constraints + bounds` rows (the old dense tableau) to `constraints`
//! rows. Rows are scaled by their largest coefficient and the objective by
//! its largest coefficient, so absolute tolerances are meaningful even for
//! byte-sized formulation coefficients.
//!
//! Only an `m x m` basis inverse is maintained (product-form updates with
//! periodic refactorization); pricing walks the sparse columns. An `Lp`
//! workspace is long-lived — branch & bound keeps one per search — and a
//! solve can start three ways (`Warm`):
//!
//! * **`Live`**: the workspace still holds the optimal basis and inverse of
//!   the *previous* solve (the parent node, when the search dives into a
//!   child). Only the bounds change; a few *dual simplex* pivots restore
//!   primal feasibility with no refactorization at all.
//! * **`Basis`**: a stored [`Basis`] from an earlier solve (a sibling
//!   subtree popped off the best-first heap, or a
//!   [`crate::context::SolverContext`] hit from an adjacent sweep point).
//!   The inverse is rebuilt once, then dual (bound/rhs changes) or primal
//!   (objective changes) reoptimization proceeds as above.
//! * **`Cold`**: slack basis, artificial columns only on infeasible rows,
//!   then phase two.
//!
//! The dense tableau implementation survives in [`crate::dense`] as the
//! reference oracle for the property suite.

// lint:allow-file(index, revised simplex kernel; basis and factor indices are maintained invariants of the algorithm, exercised by the property tests)

use crate::problem::{Problem, Relation, Sense};
use crate::simplex::{LpResult, LpSolution};

/// Primal feasibility tolerance (on row-scaled values).
const FEAS_TOL: f64 = 1e-7;
/// Dual feasibility tolerance (on objective-scaled reduced costs).
const DUAL_TOL: f64 = 1e-7;
/// Smallest acceptable pivot magnitude.
const PIVOT_TOL: f64 = 1e-8;
/// Iteration cap per simplex phase (anti-runaway).
const MAX_ITERS: usize = 50_000;
/// Basis-inverse refactorization interval (bounds drift).
const REFACTOR_EVERY: usize = 64;
/// Degenerate steps tolerated before switching to Bland's rule.
const STALL_LIMIT: usize = 30;

/// Bound status of one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Status {
    /// In the basis.
    Basic,
    /// Nonbasic at its lower bound.
    Lower,
    /// Nonbasic at its upper bound.
    Upper,
}

/// A simplex basis: the basic column of every row plus each column's bound
/// status. It is small (O(rows + columns) integers), cheap to clone, and
/// the unit of warm-start reuse — between branch & bound nodes and, through
/// [`crate::context::SolverContext`], between whole solves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    pub(crate) basic: Vec<usize>,
    pub(crate) status: Vec<Status>,
}

/// Standard-form LP: CSC structural columns, implicit unit slack columns,
/// row/objective scaling, and default (node-independent) bounds.
#[derive(Debug, Clone)]
pub(crate) struct StandardForm {
    pub m: usize,
    pub n_struct: usize,
    /// Structural + slack columns.
    pub n_total: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    val: Vec<f64>,
    /// Row-scaled right-hand sides.
    pub rhs: Vec<f64>,
    /// Internal objective: max-sense, divided by the largest |coefficient|.
    pub obj: Vec<f64>,
    /// Default lower bounds, length `n_total`.
    pub lower: Vec<f64>,
    /// Default upper bounds, length `n_total`.
    pub upper: Vec<f64>,
    /// The factor the internal objective was divided by (for mapping
    /// reduced costs back to original units).
    pub obj_scale: f64,
}

impl StandardForm {
    /// Builds the scaled standard form of a [`Problem`].
    pub(crate) fn build(p: &Problem) -> Self {
        let n = p.variables.len();
        let m = p.constraints.len();
        let sign = match p.sense {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };

        // Row scales: largest |coefficient| per row.
        let row_scale: Vec<f64> = p
            .constraints
            .iter()
            .map(|c| {
                c.terms
                    .iter()
                    .map(|(_, k)| k.abs())
                    .fold(0.0f64, f64::max)
                    .max(1e-12)
            })
            .collect();

        // Gather per-column entries (accumulating duplicates).
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for (i, c) in p.constraints.iter().enumerate() {
            for &(v, k) in &c.terms {
                cols[v.index()].push((i, k / row_scale[i]));
            }
        }
        let mut col_ptr = Vec::with_capacity(n + 1);
        let mut row_idx = Vec::new();
        let mut val = Vec::new();
        col_ptr.push(0);
        for entries in &mut cols {
            entries.sort_unstable_by_key(|&(r, _)| r);
            let mut last_row = usize::MAX;
            for &(r, v) in entries.iter() {
                if r == last_row {
                    // lint:allow(panic_freedom, last_mut follows the push in this same loop iteration)
                    *val.last_mut().expect("entry just pushed") += v;
                } else {
                    row_idx.push(r);
                    val.push(v);
                    last_row = r;
                }
            }
            col_ptr.push(row_idx.len());
        }

        let obj_scale = p
            .variables
            .iter()
            .map(|v| v.objective.abs())
            .fold(0.0f64, f64::max)
            .max(1e-12);

        let mut lower = Vec::with_capacity(n + m);
        let mut upper = Vec::with_capacity(n + m);
        let mut obj = Vec::with_capacity(n + m);
        for v in &p.variables {
            lower.push(v.lower);
            upper.push(v.upper);
            obj.push(sign * v.objective / obj_scale);
        }
        let mut rhs = Vec::with_capacity(m);
        for (i, c) in p.constraints.iter().enumerate() {
            rhs.push(c.rhs / row_scale[i]);
            let (lo, up) = match c.relation {
                Relation::Le => (0.0, f64::INFINITY),
                Relation::Ge => (f64::NEG_INFINITY, 0.0),
                Relation::Eq => (0.0, 0.0),
            };
            lower.push(lo);
            upper.push(up);
            obj.push(0.0);
        }

        Self {
            m,
            n_struct: n,
            n_total: n + m,
            col_ptr,
            row_idx,
            val,
            rhs,
            obj,
            lower,
            upper,
            obj_scale,
        }
    }

    /// Effective bounds under branch & bound pins (`x[i] = v`).
    pub(crate) fn bounds_with_pins(&self, pins: &[Option<f64>]) -> (Vec<f64>, Vec<f64>) {
        let mut lo = self.lower.clone();
        let mut up = self.upper.clone();
        for (i, pin) in pins.iter().enumerate() {
            if let Some(v) = *pin {
                lo[i] = v;
                up[i] = v;
            }
        }
        (lo, up)
    }
}

/// How one LP solve ended.
#[derive(Debug)]
pub(crate) enum SolveOutcome {
    /// Optimal: structural values, true-objective value, and the final
    /// basis (absent when a redundant row kept an artificial basic).
    Optimal {
        values: Vec<f64>,
        objective: f64,
        basis: Option<Basis>,
    },
    Infeasible,
    Unbounded,
}

/// How to start a solve (see the module docs).
#[derive(Debug, Clone, Copy)]
pub(crate) enum Warm<'a> {
    /// Continue from the workspace's still-installed previous basis.
    Live,
    /// Rebuild the inverse from a stored basis, then reoptimize.
    Basis(&'a Basis),
    /// Slack basis + phase one.
    Cold,
}

/// Per-solve instrumentation (aggregated by the solver/context layers).
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SolveTrace {
    /// A warm start (live or stored basis) was actually used — no cold
    /// fallback.
    pub warm_used: bool,
    /// Simplex pivots this solve performed (both phases).
    pub pivots: u64,
    /// Basis-inverse refactorizations this solve performed.
    pub refactorizations: u64,
}

/// One-shot relaxation solve used by the public `solve_relaxation` API and
/// unit tests: fresh workspace, bounds from pins, mapped to [`LpResult`].
pub(crate) fn solve_with_pins(
    form: &StandardForm,
    p: &Problem,
    pins: &[Option<f64>],
    warm: Option<&Basis>,
    trace: &mut SolveTrace,
) -> (LpResult, Option<Basis>) {
    let (lo, up) = if pins.is_empty() {
        (form.lower.clone(), form.upper.clone())
    } else {
        form.bounds_with_pins(pins)
    };
    let mut lp = Lp::new(form);
    let warm = warm.map_or(Warm::Cold, Warm::Basis);
    match lp.solve(p, lo, up, warm, trace, true) {
        SolveOutcome::Optimal {
            values,
            objective,
            basis,
        } => (LpResult::Optimal(LpSolution { objective, values }), basis),
        SolveOutcome::Infeasible => (LpResult::Infeasible, None),
        SolveOutcome::Unbounded => (LpResult::Unbounded, None),
    }
}

enum PrimalEnd {
    Optimal,
    Unbounded,
    IterLimit,
}

enum DualEnd {
    PrimalFeasible,
    Infeasible,
    Stalled,
}

/// A reusable LP workspace: the standard form plus node bounds, artificial
/// columns, basis, dense basis inverse, and basic values. Branch & bound
/// keeps one alive for the whole search so a dive into a child node reuses
/// the just-computed factorization (`Warm::Live`).
pub(crate) struct Lp<'a> {
    form: &'a StandardForm,
    /// Bounds over structural + slack + artificial columns.
    lo: Vec<f64>,
    up: Vec<f64>,
    /// Artificial columns as `(row, sign)` unit vectors.
    art: Vec<(usize, f64)>,
    /// Current-phase objective (length of `lo`).
    obj: Vec<f64>,
    basic: Vec<usize>,
    status: Vec<Status>,
    /// Row-major m x m basis inverse.
    binv: Vec<f64>,
    /// Values of the basic variables, by row.
    xb: Vec<f64>,
    pivots: usize,
    /// Lifetime pivot / refactorization tallies (never reset; solve entry
    /// points report per-solve deltas through [`SolveTrace`]).
    total_pivots: u64,
    total_refactors: u64,
    /// The workspace holds a clean optimal basis (no artificials basic)
    /// from the previous solve, usable via [`Warm::Live`].
    live_ok: bool,
    /// Scratch buffers (avoid per-iteration allocation).
    scratch_y: Vec<f64>,
    scratch_w: Vec<f64>,
    scratch_d: Vec<f64>,
    scratch_a: Vec<f64>,
    /// Bounds of the previous solve (for incremental rebinds on dives).
    prev_lo: Vec<f64>,
    prev_up: Vec<f64>,
}

impl<'a> Lp<'a> {
    pub(crate) fn new(form: &'a StandardForm) -> Self {
        let m = form.m;
        Self {
            form,
            lo: form.lower.clone(),
            up: form.upper.clone(),
            art: Vec::new(),
            obj: form.obj.clone(),
            basic: (0..m).map(|i| form.n_struct + i).collect(),
            status: vec![Status::Lower; form.n_total],
            binv: vec![0.0; m * m],
            xb: vec![0.0; m],
            pivots: 0,
            total_pivots: 0,
            total_refactors: 0,
            live_ok: false,
            scratch_y: vec![0.0; m],
            scratch_w: vec![0.0; m],
            scratch_d: Vec::new(),
            scratch_a: Vec::new(),
            prev_lo: Vec::new(),
            prev_up: Vec::new(),
        }
    }

    /// Solves with compact pins `(variable, value)` applied over the
    /// form's default bounds — the branch & bound node path. `base` holds
    /// search-wide fixings (reduced-cost fixing), `pins` the node's
    /// branching decisions. Bound vectors are filled in place; nothing is
    /// allocated for the bounds.
    pub(crate) fn solve_pinned(
        &mut self,
        p: &Problem,
        base: &[(usize, f64)],
        pins: &[(usize, f64)],
        warm: Warm,
        trace: &mut SolveTrace,
        want_basis: bool,
    ) -> SolveOutcome {
        self.drop_artificials();
        std::mem::swap(&mut self.lo, &mut self.prev_lo);
        std::mem::swap(&mut self.up, &mut self.prev_up);
        self.lo.resize(self.form.n_total, 0.0);
        self.up.resize(self.form.n_total, 0.0);
        self.lo.copy_from_slice(&self.form.lower);
        self.up.copy_from_slice(&self.form.upper);
        for &(i, v) in base.iter().chain(pins) {
            self.lo[i] = v;
            self.up[i] = v;
        }
        self.solve_prepared(p, warm, trace, want_basis)
    }

    /// Whether [`Warm::Live`] is currently possible.
    pub(crate) fn live_available(&self) -> bool {
        self.live_ok
    }

    /// Solves under the given bounds. `Live`/`Basis` fall back to a cold
    /// start if the warm basis cannot be reused.
    pub(crate) fn solve(
        &mut self,
        p: &Problem,
        lo: Vec<f64>,
        up: Vec<f64>,
        warm: Warm,
        trace: &mut SolveTrace,
        want_basis: bool,
    ) -> SolveOutcome {
        self.drop_artificials();
        self.lo = lo;
        self.up = up;
        self.lo.truncate(self.form.n_total);
        self.up.truncate(self.form.n_total);
        // This entry point bypasses the previous-bounds bookkeeping of
        // `solve_pinned`; clear it so a later live rebind recomputes basic
        // values from scratch instead of from stale deltas.
        self.prev_lo.clear();
        self.prev_up.clear();
        self.solve_prepared(p, warm, trace, want_basis)
    }

    /// Shared solve body; assumes `self.lo`/`self.up` are set and no
    /// artificial columns remain. Reports this solve's pivot and
    /// refactorization work as deltas of the lifetime tallies.
    fn solve_prepared(
        &mut self,
        p: &Problem,
        warm: Warm,
        trace: &mut SolveTrace,
        want_basis: bool,
    ) -> SolveOutcome {
        let (pivots_before, refactors_before) = (self.total_pivots, self.total_refactors);
        let outcome = self.solve_prepared_inner(p, warm, trace, want_basis);
        trace.pivots = self.total_pivots - pivots_before;
        trace.refactorizations = self.total_refactors - refactors_before;
        outcome
    }

    fn solve_prepared_inner(
        &mut self,
        p: &Problem,
        warm: Warm,
        trace: &mut SolveTrace,
        want_basis: bool,
    ) -> SolveOutcome {
        self.live_ok = false;
        match warm {
            Warm::Live => {
                // A live basis was optimal for this same objective, so it
                // stays dual feasible under any bound change: skip the
                // pricing scan.
                if let Some(outcome) = self.reoptimize(p, false, want_basis) {
                    trace.warm_used = true;
                    return outcome;
                }
                self.solve_cold(p, want_basis)
            }
            Warm::Basis(basis) => {
                if let Some(outcome) = self.try_warm(basis, p, want_basis) {
                    trace.warm_used = true;
                    return outcome;
                }
                self.solve_cold(p, want_basis)
            }
            Warm::Cold => self.solve_cold(p, want_basis),
        }
    }

    /// Removes any artificial columns left over from a previous cold
    /// solve.
    fn drop_artificials(&mut self) {
        self.art.clear();
        self.lo.truncate(self.form.n_total);
        self.up.truncate(self.form.n_total);
        self.obj.truncate(self.form.n_total);
        self.status.truncate(self.form.n_total);
    }

    fn ncols(&self) -> usize {
        self.form.n_total + self.art.len()
    }

    /// Applies `f(row, value)` over the nonzeros of column `j`.
    fn with_col<F: FnMut(usize, f64)>(&self, j: usize, mut f: F) {
        if j < self.form.n_struct {
            for k in self.form.col_ptr[j]..self.form.col_ptr[j + 1] {
                f(self.form.row_idx[k], self.form.val[k]);
            }
        } else if j < self.form.n_total {
            f(j - self.form.n_struct, 1.0);
        } else {
            let (row, sign) = self.art[j - self.form.n_total];
            f(row, sign);
        }
    }

    /// `w = B^-1 A_j`.
    fn ftran(&self, j: usize, w: &mut [f64]) {
        let m = self.form.m;
        w.fill(0.0);
        self.with_col(j, |r, v| {
            for (i, wi) in w.iter_mut().enumerate() {
                *wi += v * self.binv[i * m + r];
            }
        });
    }

    /// `y = c_B^T B^-1` for the current-phase objective.
    fn compute_y(&self, y: &mut [f64]) {
        let m = self.form.m;
        y.fill(0.0);
        for i in 0..m {
            let c = self.obj[self.basic[i]];
            if c != 0.0 {
                for (r, yr) in y.iter_mut().enumerate() {
                    *yr += c * self.binv[i * m + r];
                }
            }
        }
    }

    fn reduced_cost(&self, j: usize, y: &[f64]) -> f64 {
        let mut d = self.obj[j];
        self.with_col(j, |r, v| d -= y[r] * v);
        d
    }

    /// Value a nonbasic column sits at.
    fn nb_value(&self, j: usize) -> f64 {
        match self.status[j] {
            Status::Upper => self.up[j],
            _ => self.lo[j],
        }
    }

    /// Whether column `j` can move at all (fixed columns never enter).
    fn movable(&self, j: usize) -> bool {
        self.up[j] - self.lo[j] > 1e-12
    }

    /// Recomputes `xb = B^-1 (b - N x_N)` from scratch.
    fn compute_xb(&mut self) {
        let m = self.form.m;
        let mut t = self.form.rhs.clone();
        for j in 0..self.ncols() {
            if self.status[j] != Status::Basic {
                let v = self.nb_value(j);
                if v != 0.0 {
                    self.with_col(j, |r, val| t[r] -= val * v);
                }
            }
        }
        for i in 0..m {
            let mut s = 0.0;
            for (r, tr) in t.iter().enumerate() {
                s += self.binv[i * m + r] * tr;
            }
            self.xb[i] = s;
        }
    }

    /// Rebuilds the dense basis inverse by Gauss-Jordan elimination with
    /// partial pivoting. Returns `false` when the basis matrix is singular.
    fn invert_basis(&mut self) -> bool {
        let m = self.form.m;
        if m == 0 {
            return true;
        }
        // aug = [B | I], row-major, 2m columns.
        let w = 2 * m;
        let mut aug = vec![0.0; m * w];
        for (i, row) in aug.chunks_exact_mut(w).enumerate() {
            row[m + i] = 1.0;
        }
        for (col, &j) in self.basic.iter().enumerate() {
            self.with_col(j, |r, v| aug[r * w + col] += v);
        }
        for col in 0..m {
            // Partial pivot.
            let mut best = col;
            let mut best_mag = aug[col * w + col].abs();
            for r in col + 1..m {
                let mag = aug[r * w + col].abs();
                if mag > best_mag {
                    best = r;
                    best_mag = mag;
                }
            }
            if best_mag < 1e-10 {
                return false;
            }
            if best != col {
                for c in 0..w {
                    aug.swap(col * w + c, best * w + c);
                }
            }
            let piv = aug[col * w + col];
            for c in 0..w {
                aug[col * w + c] /= piv;
            }
            for r in 0..m {
                if r != col {
                    let f = aug[r * w + col];
                    if f.abs() > 1e-14 {
                        for c in 0..w {
                            aug[r * w + c] -= f * aug[col * w + c];
                        }
                    }
                }
            }
        }
        for r in 0..m {
            for c in 0..m {
                self.binv[r * m + c] = aug[r * w + m + c];
            }
        }
        self.pivots = 0;
        self.total_refactors += 1;
        true
    }

    /// Product-form update of the inverse after pivoting column `q`
    /// (direction `w = B^-1 A_q`) into row `r`.
    fn pivot_update(&mut self, r: usize, w: &[f64]) {
        let m = self.form.m;
        let piv = w[r];
        for c in 0..m {
            self.binv[r * m + c] /= piv;
        }
        for (i, &f) in w.iter().enumerate() {
            if i != r && f.abs() > 1e-14 {
                for c in 0..m {
                    self.binv[i * m + c] -= f * self.binv[r * m + c];
                }
            }
        }
        self.pivots += 1;
        self.total_pivots += 1;
    }

    fn maybe_refactor(&mut self) {
        if self.pivots >= REFACTOR_EVERY && self.invert_basis() {
            self.compute_xb();
        }
    }

    /// Bounded-variable primal simplex on the current-phase objective.
    /// Requires a primal-feasible starting basis.
    fn primal(&mut self) -> PrimalEnd {
        let mut y = std::mem::take(&mut self.scratch_y);
        let mut w = std::mem::take(&mut self.scratch_w);
        let mut bland = false;
        let mut stalls = 0usize;
        for _ in 0..MAX_ITERS {
            self.maybe_refactor();
            self.compute_y(&mut y);

            // Entering column: Dantzig (largest violation), Bland on stall.
            let mut entering: Option<(usize, f64)> = None;
            for j in 0..self.ncols() {
                if self.status[j] == Status::Basic || !self.movable(j) {
                    continue;
                }
                let d = self.reduced_cost(j, &y);
                let viol = match self.status[j] {
                    Status::Lower => d,
                    Status::Upper => -d,
                    // lint:allow(panic_freedom, this loop iterates nonbasic columns only)
                    Status::Basic => unreachable!(),
                };
                if viol > DUAL_TOL {
                    if bland {
                        entering = Some((j, d));
                        break;
                    }
                    if entering.is_none_or(|(_, best)| viol > best.abs()) {
                        entering = Some((j, d));
                    }
                }
            }
            let Some((q, _)) = entering else {
                self.scratch_y = y;
                self.scratch_w = w;
                return PrimalEnd::Optimal;
            };

            self.ftran(q, &mut w);
            let dir = if self.status[q] == Status::Lower {
                1.0
            } else {
                -1.0
            };

            // Bounded ratio test: the entering column moves by `t >= 0`;
            // basics move by `-dir * t * w`.
            let mut t_best = self.up[q] - self.lo[q]; // own bound flip
            let mut leave: Option<(usize, Status)> = None;
            for (i, &wi) in w.iter().enumerate() {
                let e = dir * wi;
                let b = self.basic[i];
                if e > PIVOT_TOL {
                    let room = (self.xb[i] - self.lo[b]).max(0.0);
                    let t = room / e;
                    if t < t_best - 1e-12
                        || (bland
                            && (t - t_best).abs() <= 1e-12
                            && leave.is_some_and(|(p, _)| b < self.basic[p]))
                    {
                        t_best = t;
                        leave = Some((i, Status::Lower));
                    }
                } else if e < -PIVOT_TOL && self.up[b].is_finite() {
                    let room = (self.up[b] - self.xb[i]).max(0.0);
                    let t = room / -e;
                    if t < t_best - 1e-12
                        || (bland
                            && (t - t_best).abs() <= 1e-12
                            && leave.is_some_and(|(p, _)| b < self.basic[p]))
                    {
                        t_best = t;
                        leave = Some((i, Status::Upper));
                    }
                }
            }
            if t_best.is_infinite() {
                self.scratch_y = y;
                self.scratch_w = w;
                return PrimalEnd::Unbounded;
            }
            if t_best < 1e-10 {
                stalls += 1;
                if stalls > STALL_LIMIT {
                    bland = true;
                }
            } else {
                stalls = 0;
            }

            let xq = self.nb_value(q) + dir * t_best;
            for (xi, &wi) in self.xb.iter_mut().zip(w.iter()) {
                *xi -= dir * t_best * wi;
            }
            match leave {
                None => {
                    // Bound flip: the entering column crosses to its other
                    // bound without a basis change.
                    self.status[q] = if self.status[q] == Status::Lower {
                        Status::Upper
                    } else {
                        Status::Lower
                    };
                }
                Some((r, side)) => {
                    self.status[self.basic[r]] = side;
                    self.basic[r] = q;
                    self.status[q] = Status::Basic;
                    self.xb[r] = xq;
                    self.pivot_update(r, &w);
                }
            }
        }
        self.scratch_y = y;
        self.scratch_w = w;
        PrimalEnd::IterLimit
    }

    /// Scaled feasibility tolerance for column `j` (infinite bounds do not
    /// widen it).
    fn feas_tol(&self, j: usize) -> f64 {
        let lo = if self.lo[j].is_finite() {
            self.lo[j].abs()
        } else {
            0.0
        };
        let up = if self.up[j].is_finite() {
            self.up[j].abs()
        } else {
            0.0
        };
        FEAS_TOL * lo.max(up).max(1.0)
    }

    /// Largest primal bound violation among basic variables.
    fn worst_violation(&self) -> Option<(usize, bool, f64)> {
        let mut worst: Option<(usize, bool, f64)> = None;
        for i in 0..self.form.m {
            let b = self.basic[i];
            let tol = self.feas_tol(b);
            let below = self.lo[b] - self.xb[i];
            let above = self.xb[i] - self.up[b];
            if below > tol && worst.is_none_or(|(_, _, v)| below > v) {
                worst = Some((i, true, below));
            }
            if above > tol && worst.is_none_or(|(_, _, v)| above > v) {
                worst = Some((i, false, above));
            }
        }
        worst
    }

    /// Bounded-variable dual simplex: restores primal feasibility while
    /// preserving dual feasibility (the warm-start reoptimizer after bound
    /// or rhs changes).
    fn dual(&mut self) -> DualEnd {
        let m = self.form.m;
        let mut y = std::mem::take(&mut self.scratch_y);
        let mut w = std::mem::take(&mut self.scratch_w);
        let mut d = std::mem::take(&mut self.scratch_d);
        let mut alphas = std::mem::take(&mut self.scratch_a);
        let end = self.dual_loop(m, &mut y, &mut w, &mut d, &mut alphas);
        self.scratch_y = y;
        self.scratch_w = w;
        self.scratch_d = d;
        self.scratch_a = alphas;
        end
    }

    fn dual_loop(
        &mut self,
        m: usize,
        y: &mut [f64],
        w: &mut [f64],
        d: &mut Vec<f64>,
        alphas: &mut Vec<f64>,
    ) -> DualEnd {
        // Reduced costs are priced once and then maintained incrementally
        // across pivots (`d_j -= theta * alpha_j`); a pivot-choice drift
        // only costs extra pivots, never correctness, because the primal
        // polish after the dual re-prices from scratch.
        let ncols = self.ncols();
        d.resize(ncols, 0.0);
        alphas.resize(ncols, 0.0);
        self.compute_y(y);
        for (j, dj) in d.iter_mut().enumerate() {
            *dj = if self.status[j] == Status::Basic {
                0.0
            } else {
                self.reduced_cost(j, y)
            };
        }
        for _ in 0..MAX_ITERS {
            self.maybe_refactor();
            let Some((r, below, _)) = self.worst_violation() else {
                return DualEnd::PrimalFeasible;
            };
            let rho = &self.binv[r * m..(r + 1) * m];

            // Entering column: among sign-compatible candidates, the one
            // whose reduced cost reaches zero first keeps dual feasibility.
            let mut best: Option<(usize, f64)> = None; // (col, ratio)
            for j in 0..ncols {
                if self.status[j] == Status::Basic || !self.movable(j) {
                    alphas[j] = 0.0;
                    continue;
                }
                let mut alpha = 0.0;
                self.with_col(j, |row, v| alpha += rho[row] * v);
                alphas[j] = alpha;
                if alpha.abs() <= PIVOT_TOL {
                    continue;
                }
                // Moving j by `delta * t` changes `xb[r]` by
                // `-delta * alpha * t`; pick columns that push `xb[r]`
                // toward the violated bound.
                let delta = if self.status[j] == Status::Lower {
                    1.0
                } else {
                    -1.0
                };
                let pushes_up = delta * alpha < 0.0;
                if pushes_up != below {
                    continue;
                }
                let ratio = d[j].abs() / alpha.abs();
                if best.is_none_or(|(_, r0)| ratio < r0) {
                    best = Some((j, ratio));
                }
            }
            let Some((q, _)) = best else {
                return DualEnd::Infeasible;
            };

            self.ftran(q, w);
            if w[r].abs() <= PIVOT_TOL {
                // Numerical disagreement between the row and column views:
                // refactorize once, then give up on the warm path.
                if !self.invert_basis() {
                    return DualEnd::Stalled;
                }
                self.compute_xb();
                continue;
            }
            // Step length: the leaving variable travels to its violated
            // bound; basics update incrementally (no full recompute).
            let leaving = self.basic[r];
            let bnd = if below {
                self.lo[leaving]
            } else {
                self.up[leaving]
            };
            let delta = if self.status[q] == Status::Lower {
                1.0
            } else {
                -1.0
            };
            let t = (self.xb[r] - bnd) / (delta * w[r]);
            let xq = self.nb_value(q) + delta * t;
            for (xi, &wi) in self.xb.iter_mut().zip(w.iter()) {
                *xi -= delta * t * wi;
            }
            // Dual price update: after the pivot, d_j -= theta * alpha_j
            // with theta = d_q / alpha_q; the leaving column (alpha = 1)
            // picks up -theta, the entering one goes to zero.
            let theta = d[q] / alphas[q];
            if theta != 0.0 {
                for j in 0..ncols {
                    if alphas[j] != 0.0 {
                        d[j] -= theta * alphas[j];
                    }
                }
            }
            d[leaving] = -theta;
            d[q] = 0.0;
            self.status[leaving] = if below { Status::Lower } else { Status::Upper };
            self.basic[r] = q;
            self.status[q] = Status::Basic;
            self.xb[r] = xq;
            self.pivot_update(r, w);
        }
        DualEnd::Stalled
    }

    fn dual_feasible(&self) -> bool {
        let m = self.form.m;
        let mut y = vec![0.0; m];
        self.compute_y(&mut y);
        for j in 0..self.ncols() {
            if self.status[j] == Status::Basic || !self.movable(j) {
                continue;
            }
            let d = self.reduced_cost(j, &y);
            let bad = match self.status[j] {
                Status::Lower => d > DUAL_TOL * 10.0,
                Status::Upper => d < -DUAL_TOL * 10.0,
                // lint:allow(panic_freedom, this loop iterates nonbasic columns only)
                Status::Basic => unreachable!(),
            };
            if bad {
                return false;
            }
        }
        true
    }

    fn primal_feasible(&self) -> bool {
        self.worst_violation().is_none()
    }

    /// Normalizes nonbasic statuses against the current bounds (a column
    /// cannot sit at an infinite bound) and recomputes basic values.
    ///
    /// When the previous solve's bounds are known (`solve_pinned` keeps
    /// them), the basic values are updated *incrementally* from the few
    /// nonbasic columns whose resting value actually moved — a dive
    /// changes one pin, not the whole problem.
    fn rebind(&mut self) {
        let n_total = self.form.n_total;
        let incremental = self.prev_lo.len() == n_total && self.prev_up.len() == n_total;
        let mut w = std::mem::take(&mut self.scratch_w);
        let mut moved = 0usize;
        for j in 0..n_total {
            if self.status[j] == Status::Basic {
                continue;
            }
            let old = if incremental {
                match self.status[j] {
                    Status::Upper => self.prev_up[j],
                    _ => self.prev_lo[j],
                }
            } else {
                0.0
            };
            if self.status[j] == Status::Lower && self.lo[j].is_infinite() {
                self.status[j] = Status::Upper;
            }
            if self.status[j] == Status::Upper && self.up[j].is_infinite() {
                self.status[j] = Status::Lower;
            }
            if incremental && moved != usize::MAX {
                let delta = self.nb_value(j) - old;
                if delta != 0.0 {
                    if delta.is_finite() {
                        // xb -= delta * B^-1 A_j.
                        self.ftran(j, &mut w);
                        for (xi, wi) in self.xb.iter_mut().zip(w.iter()) {
                            *xi -= delta * wi;
                        }
                        moved += 1;
                    } else {
                        moved = usize::MAX; // infinite flip: full recompute
                    }
                }
            }
        }
        self.scratch_w = w;
        if !incremental || moved == usize::MAX {
            self.compute_xb();
        }
    }

    /// Reoptimizes from the currently-installed basis and inverse after a
    /// bounds change (`Warm::Live`). `None` means "fall back cold".
    ///
    /// `check_dual` skips the dual-feasibility scan when the caller knows
    /// the basis was optimal for this very objective (a live dive: bound
    /// changes cannot disturb reduced costs).
    fn reoptimize(
        &mut self,
        p: &Problem,
        check_dual: bool,
        want_basis: bool,
    ) -> Option<SolveOutcome> {
        self.rebind();
        if self.primal_feasible() {
            return match self.primal() {
                PrimalEnd::Optimal => Some(self.extract(p, want_basis)),
                PrimalEnd::Unbounded => Some(SolveOutcome::Unbounded),
                PrimalEnd::IterLimit => None,
            };
        }
        if !check_dual || self.dual_feasible() {
            return match self.dual() {
                // The dual maintains dual feasibility, so a primal-feasible
                // end state is optimal; the primal call below re-prices and
                // normally exits without pivoting (it also mops up any
                // incremental-pricing drift).
                DualEnd::PrimalFeasible => match self.primal() {
                    PrimalEnd::Optimal => Some(self.extract(p, want_basis)),
                    PrimalEnd::Unbounded => Some(SolveOutcome::Unbounded),
                    PrimalEnd::IterLimit => None,
                },
                DualEnd::Infeasible => {
                    // The workspace still holds a consistent, dual-feasible
                    // basis (dual pivots preserve both invariants), so the
                    // next node of the same search can keep reusing it.
                    self.live_ok = true;
                    Some(SolveOutcome::Infeasible)
                }
                DualEnd::Stalled => None,
            };
        }
        None
    }

    /// Attempts a warm start from a stored `basis`; `None` means "fall
    /// back to a cold start".
    fn try_warm(&mut self, basis: &Basis, p: &Problem, want_basis: bool) -> Option<SolveOutcome> {
        if basis.basic.len() != self.form.m || basis.status.len() != self.form.n_total {
            return None;
        }
        self.basic.copy_from_slice(&basis.basic);
        self.status.copy_from_slice(&basis.status);
        if !self.invert_basis() {
            return None;
        }
        self.reoptimize(p, true, want_basis)
    }

    /// Cold start: slack basis, artificial phase one where needed, then
    /// the real objective.
    fn solve_cold(&mut self, p: &Problem, want_basis: bool) -> SolveOutcome {
        let m = self.form.m;
        let n_total = self.form.n_total;
        self.drop_artificials();
        self.status.clear();
        self.status.resize(n_total, Status::Lower);
        for j in 0..n_total {
            if self.lo[j].is_infinite() {
                self.status[j] = Status::Upper;
            }
        }
        for i in 0..m {
            self.basic[i] = self.form.n_struct + i;
            self.status[self.form.n_struct + i] = Status::Basic;
        }
        self.binv.fill(0.0);
        for i in 0..m {
            self.binv[i * m + i] = 1.0;
        }
        self.pivots = 0;
        self.compute_xb();

        // Phase one: artificial columns only on rows whose slack start is
        // out of bounds.
        let mut art_rows = Vec::new();
        for i in 0..m {
            let s = self.basic[i];
            let tol = self.feas_tol(s);
            if self.xb[i] > self.up[s] + tol {
                art_rows.push((i, true, 1.0));
            } else if self.xb[i] < self.lo[s] - tol {
                art_rows.push((i, false, -1.0));
            }
        }
        if !art_rows.is_empty() {
            for &(row, at_upper, sgn) in &art_rows {
                let j = n_total + self.art.len();
                self.art.push((row, sgn));
                self.lo.push(0.0);
                self.up.push(f64::INFINITY);
                self.obj.push(0.0);
                // The slack leaves the basis at its violated bound; the
                // artificial absorbs the residual (positive by sign
                // choice).
                let s = self.basic[row];
                self.status[s] = if at_upper {
                    Status::Upper
                } else {
                    Status::Lower
                };
                self.basic[row] = j;
                self.status.push(Status::Basic);
            }
            // The basis is still diagonal, but negative-sign artificials
            // are -e_i columns: flip their inverse entries in place.
            for &(row, sign) in &self.art {
                if self.basic[row] >= n_total {
                    self.binv[row * m + row] = sign;
                }
            }
            self.compute_xb();
            // Phase-one objective: maximize -(sum of artificials).
            self.obj = vec![0.0; self.ncols()];
            for k in 0..self.art.len() {
                self.obj[n_total + k] = -1.0;
            }
            match self.primal() {
                // lint:allow(panic_freedom, phase one minimizes a sum of bounded artificials, so its primal cannot be unbounded)
                PrimalEnd::Unbounded => unreachable!("phase one is bounded below"),
                // On the (anti-runaway) iteration cap, don't guess: judge
                // by the residual infeasibility below, like a normal exit.
                PrimalEnd::IterLimit | PrimalEnd::Optimal => {}
            }
            let infeasibility: f64 = (0..m)
                .filter(|&i| self.basic[i] >= n_total)
                .map(|i| self.xb[i].max(0.0))
                .sum();
            if infeasibility > 1e-6 {
                return SolveOutcome::Infeasible;
            }
            self.retire_artificials();
        }

        // Phase two: the real objective.
        self.obj.clear();
        self.obj.extend_from_slice(&self.form.obj);
        self.obj.resize(self.ncols(), 0.0);
        match self.primal() {
            PrimalEnd::Optimal | PrimalEnd::IterLimit => self.extract(p, want_basis),
            PrimalEnd::Unbounded => SolveOutcome::Unbounded,
        }
    }

    /// After phase one: fix artificials at zero and pivot basic ones out
    /// where a usable pivot exists (a redundant row may keep one).
    fn retire_artificials(&mut self) {
        let m = self.form.m;
        let n_total = self.form.n_total;
        for k in 0..self.art.len() {
            let j = n_total + k;
            self.lo[j] = 0.0;
            self.up[j] = 0.0;
        }
        let mut w = vec![0.0; m];
        for r in 0..m {
            if self.basic[r] < n_total {
                continue;
            }
            // Prefer the row's own slack, then any structural column.
            let slack = self.form.n_struct + r;
            let candidates = std::iter::once(slack).chain(0..self.form.n_struct);
            for j in candidates {
                if self.status[j] == Status::Basic {
                    continue;
                }
                self.ftran(j, &mut w);
                if w[r].abs() > 1e-7 {
                    // Zero-step pivot: the entering column keeps its bound
                    // value; only the basis bookkeeping changes.
                    let art = self.basic[r];
                    self.status[art] = Status::Lower;
                    self.basic[r] = j;
                    self.status[j] = Status::Basic;
                    self.pivot_update(r, &w);
                    self.compute_xb();
                    break;
                }
            }
        }
    }

    /// Reduced costs of the structural columns in *original* objective
    /// units, for the current (phase-two) objective and installed basis.
    /// Meaningful right after an optimal solve; used for reduced-cost
    /// fixing in branch & bound.
    pub(crate) fn structural_reduced_costs(&mut self) -> Vec<f64> {
        let mut y = std::mem::take(&mut self.scratch_y);
        self.compute_y(&mut y);
        let d = (0..self.form.n_struct)
            .map(|j| {
                if self.status[j] == Status::Basic {
                    0.0
                } else {
                    self.reduced_cost(j, &y) * self.form.obj_scale
                }
            })
            .collect();
        self.scratch_y = y;
        d
    }

    /// Reads out structural values, recomputes the objective from the
    /// original (unscaled) coefficients, and packages the basis.
    fn extract(&mut self, p: &Problem, want_basis: bool) -> SolveOutcome {
        let n = self.form.n_struct;
        let mut values = vec![0.0; n];
        for (j, value) in values.iter_mut().enumerate() {
            *value = match self.status[j] {
                Status::Basic => 0.0, // filled below
                Status::Upper => self.up[j],
                Status::Lower => self.lo[j],
            };
        }
        for (i, &b) in self.basic.iter().enumerate() {
            if b < n {
                values[b] = self.xb[i];
            }
        }
        let objective = p
            .variables
            .iter()
            .enumerate()
            .map(|(i, v)| v.objective * values[i])
            .sum();
        self.live_ok = self.basic.iter().all(|&b| b < self.form.n_total);
        let basis = if want_basis && self.live_ok {
            Some(Basis {
                basic: self.basic.clone(),
                status: self.status[..self.form.n_total].to_vec(),
            })
        } else {
            None
        };
        SolveOutcome::Optimal {
            values,
            objective,
            basis,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Relation, Sense};

    fn solve(p: &Problem, pins: &[Option<f64>]) -> LpResult {
        let form = StandardForm::build(p);
        solve_with_pins(&form, p, pins, None, &mut SolveTrace::default()).0
    }

    #[test]
    fn matches_dense_on_textbook_max() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.continuous("x", 0.0, f64::INFINITY);
        let y = p.continuous("y", 0.0, f64::INFINITY);
        p.set_objective(x, 5.0);
        p.set_objective(y, 4.0);
        p.add_constraint(&[(x, 6.0), (y, 4.0)], Relation::Le, 24.0);
        p.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Le, 6.0);
        let LpResult::Optimal(s) = solve(&p, &[]) else {
            panic!("expected optimal")
        };
        assert!((s.objective - 21.0).abs() < 1e-6, "z = {}", s.objective);
        assert!((s.values[0] - 3.0).abs() < 1e-6);
        assert!((s.values[1] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn phase_one_handles_ge_and_eq() {
        let mut p = Problem::new(Sense::Minimize);
        let x = p.continuous("x", 0.0, f64::INFINITY);
        let y = p.continuous("y", 0.0, f64::INFINITY);
        p.set_objective(x, 2.0);
        p.set_objective(y, 3.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 1.0);
        let LpResult::Optimal(s) = solve(&p, &[]) else {
            panic!("expected optimal")
        };
        assert!((s.objective - 8.0).abs() < 1e-6, "z = {}", s.objective);

        let mut p = Problem::new(Sense::Maximize);
        let x = p.continuous("x", 0.0, 2.0);
        let y = p.continuous("y", 0.0, f64::INFINITY);
        p.set_objective(x, 1.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Eq, 5.0);
        let LpResult::Optimal(s) = solve(&p, &[]) else {
            panic!("expected optimal")
        };
        assert!((s.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible_and_unbounded() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.continuous("x", 0.0, 1.0);
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 2.0);
        assert_eq!(solve(&p, &[]), LpResult::Infeasible);

        let mut p = Problem::new(Sense::Maximize);
        let x = p.continuous("x", 0.0, f64::INFINITY);
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 1.0)], Relation::Ge, 0.0);
        assert_eq!(solve(&p, &[]), LpResult::Unbounded);
    }

    #[test]
    fn pins_respected_without_explicit_rows() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.binary("x");
        let y = p.binary("y");
        p.set_objective(x, 3.0);
        p.set_objective(y, 2.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
        let LpResult::Optimal(s) = solve(&p, &[Some(0.0), None]) else {
            panic!("expected optimal")
        };
        assert!((s.objective - 2.0).abs() < 1e-6);
        assert!(s.values[0].abs() < 1e-9);
    }

    #[test]
    fn warm_start_after_rhs_tightening_matches_cold() {
        // A capacity-style LP: solve, keep the basis, shrink the rhs, and
        // re-solve warm — the dual simplex must land on the cold optimum.
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..6).map(|i| p.binary(&format!("x{i}"))).collect();
        for (i, &v) in vars.iter().enumerate() {
            p.set_objective(v, 10.0 - i as f64);
        }
        let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(&terms, Relation::Le, 4.0);

        let form = StandardForm::build(&p);
        let mut trace = SolveTrace::default();
        let (res, basis) = solve_with_pins(&form, &p, &[], None, &mut trace);
        let LpResult::Optimal(cold) = res else {
            panic!("cold solve failed")
        };
        assert!((cold.objective - 34.0).abs() < 1e-6);
        let basis = basis.expect("storable basis");

        let mut tighter = p.clone();
        tighter.constraints[0].rhs = 2.0;
        let tight_form = StandardForm::build(&tighter);
        let mut warm_trace = SolveTrace::default();
        let (warm_res, _) =
            solve_with_pins(&tight_form, &tighter, &[], Some(&basis), &mut warm_trace);
        let LpResult::Optimal(warm) = warm_res else {
            panic!("warm solve failed")
        };
        assert!(warm_trace.warm_used, "warm path must be taken");
        let (cold_res, _) =
            solve_with_pins(&tight_form, &tighter, &[], None, &mut SolveTrace::default());
        let LpResult::Optimal(cold2) = cold_res else {
            panic!("cold re-solve failed")
        };
        assert!(
            (warm.objective - cold2.objective).abs() < 1e-6,
            "warm {} vs cold {}",
            warm.objective,
            cold2.objective
        );
    }

    #[test]
    fn warm_start_with_pin_matches_cold() {
        // Branch & bound's exact pattern: optimal parent basis, then a
        // child with one variable pinned.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let b = p.binary("b");
        let c = p.binary("c");
        p.set_objective(a, 9.0);
        p.set_objective(b, 9.0);
        p.set_objective(c, 16.0);
        p.add_constraint(&[(a, 5.0), (b, 5.0), (c, 8.0)], Relation::Le, 10.0);

        let form = StandardForm::build(&p);
        let (root, basis) = solve_with_pins(&form, &p, &[], None, &mut SolveTrace::default());
        let LpResult::Optimal(_) = root else {
            panic!("root failed")
        };
        let basis = basis.expect("storable basis");
        for pin in [0.0, 1.0] {
            let pins = vec![None, None, Some(pin)];
            let mut trace = SolveTrace::default();
            let (warm, _) = solve_with_pins(&form, &p, &pins, Some(&basis), &mut trace);
            let (cold, _) = solve_with_pins(&form, &p, &pins, None, &mut SolveTrace::default());
            match (warm, cold) {
                (LpResult::Optimal(w), LpResult::Optimal(c)) => {
                    assert!(
                        (w.objective - c.objective).abs() < 1e-6,
                        "pin {pin}: warm {} vs cold {}",
                        w.objective,
                        c.objective
                    );
                }
                (w, c) => assert_eq!(w, c, "pin {pin}"),
            }
        }
    }

    #[test]
    fn live_reoptimize_matches_fresh_solves() {
        // The dive pattern: keep one workspace, change pins, re-solve live.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let b = p.binary("b");
        let c = p.binary("c");
        p.set_objective(a, 9.0);
        p.set_objective(b, 9.0);
        p.set_objective(c, 16.0);
        p.add_constraint(&[(a, 5.0), (b, 5.0), (c, 8.0)], Relation::Le, 10.0);
        let form = StandardForm::build(&p);

        let mut lp = Lp::new(&form);
        let root = lp.solve(
            &p,
            form.lower.clone(),
            form.upper.clone(),
            Warm::Cold,
            &mut SolveTrace::default(),
            true,
        );
        assert!(matches!(root, SolveOutcome::Optimal { .. }));
        assert!(lp.live_available());

        for pins in [
            vec![None, None, Some(1.0)],
            vec![None, None, Some(0.0)],
            vec![Some(1.0), None, Some(1.0)],
        ] {
            let (lo, up) = form.bounds_with_pins(&pins);
            let mut trace = SolveTrace::default();
            let live = lp.solve(&p, lo, up, Warm::Live, &mut trace, false);
            let (fresh, _) = solve_with_pins(&form, &p, &pins, None, &mut SolveTrace::default());
            match (live, fresh) {
                (
                    SolveOutcome::Optimal { objective, .. },
                    LpResult::Optimal(LpSolution {
                        objective: fresh_obj,
                        ..
                    }),
                ) => {
                    assert!(
                        (objective - fresh_obj).abs() < 1e-6,
                        "{pins:?}: live {objective} vs fresh {fresh_obj}"
                    );
                }
                (SolveOutcome::Infeasible, LpResult::Infeasible) => {}
                (live, fresh) => panic!("{pins:?}: live {live:?} vs fresh {fresh:?}"),
            }
        }
    }

    #[test]
    fn scaling_keeps_byte_sized_coefficients_stable() {
        // Formulation-sized magnitudes: byte coefficients in the millions.
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..8).map(|i| p.binary(&format!("h{i}"))).collect();
        let bytes = [
            600_000.0,
            1_200_000.0,
            300_000.0,
            2_400_000.0,
            150_000.0,
            75_000.0,
            900_000.0,
            37_500.0,
        ];
        for (i, &v) in vars.iter().enumerate() {
            p.set_objective(v, bytes[i] * 0.95);
        }
        let terms: Vec<_> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, bytes[i]))
            .collect();
        p.add_constraint(&terms, Relation::Le, 3_000_000.0);
        let LpResult::Optimal(s) = solve(&p, &[]) else {
            panic!("expected optimal")
        };
        let dense = crate::dense::solve_relaxation_dense(&p, &[]);
        let LpResult::Optimal(d) = dense else {
            panic!("dense failed")
        };
        let rel = (s.objective - d.objective).abs() / d.objective.abs().max(1.0);
        assert!(
            rel < 1e-9,
            "sparse {} vs dense {}",
            s.objective,
            d.objective
        );
    }
}
