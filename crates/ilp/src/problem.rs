//! Linear/integer program description.
//!
//! A [`Problem`] is built incrementally: declare variables (binary or
//! bounded continuous), set objective coefficients, and add linear
//! constraints. The solver consumes the finished problem.

// lint:allow-file(index, coefficient rows are sized to the variable count by the builder)

/// Handle to a declared variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// Less than or equal.
    Le,
    /// Greater than or equal.
    Ge,
    /// Equal.
    Eq,
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub name: String,
    pub lower: f64,
    pub upper: f64,
    pub integer: bool,
    pub objective: f64,
}

/// One linear constraint `sum(coef * var) REL rhs`.
#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    pub terms: Vec<(VarId, f64)>,
    pub relation: Relation,
    pub rhs: f64,
}

/// An integer/linear program under construction.
///
/// # Examples
///
/// ```
/// use smart_ilp::problem::{Problem, Relation, Sense};
///
/// // maximize 5x + 4y  s.t.  6x + 4y <= 24, x + 2y <= 6
/// let mut p = Problem::new(Sense::Maximize);
/// let x = p.continuous("x", 0.0, f64::INFINITY);
/// let y = p.continuous("y", 0.0, f64::INFINITY);
/// p.set_objective(x, 5.0);
/// p.set_objective(y, 4.0);
/// p.add_constraint(&[(x, 6.0), (y, 4.0)], Relation::Le, 24.0);
/// p.add_constraint(&[(x, 1.0), (y, 2.0)], Relation::Le, 6.0);
/// assert_eq!(p.num_vars(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) sense: Sense,
    pub(crate) variables: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates an empty problem with the given sense.
    #[must_use]
    pub fn new(sense: Sense) -> Self {
        Self {
            sense,
            variables: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Declares a binary (0/1) variable.
    pub fn binary(&mut self, name: &str) -> VarId {
        self.var(name, 0.0, 1.0, true)
    }

    /// Declares a bounded continuous variable.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or `lower` is negative (the solver works
    /// on non-negative variables).
    pub fn continuous(&mut self, name: &str, lower: f64, upper: f64) -> VarId {
        self.var(name, lower, upper, false)
    }

    fn var(&mut self, name: &str, lower: f64, upper: f64, integer: bool) -> VarId {
        assert!(lower <= upper, "lower bound exceeds upper bound");
        assert!(lower >= 0.0, "variables must be non-negative");
        let id = VarId(self.variables.len());
        self.variables.push(Variable {
            name: name.to_owned(),
            lower,
            upper,
            integer,
            objective: 0.0,
        });
        id
    }

    /// Sets the objective coefficient of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this problem.
    pub fn set_objective(&mut self, var: VarId, coefficient: f64) {
        assert!(var.0 < self.variables.len(), "unknown variable");
        self.variables[var.0].objective = coefficient;
    }

    /// Adds a linear constraint.
    ///
    /// # Panics
    ///
    /// Panics if any variable does not belong to this problem or `terms` is
    /// empty.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], relation: Relation, rhs: f64) {
        assert!(!terms.is_empty(), "constraint must have terms");
        for (v, _) in terms {
            assert!(v.0 < self.variables.len(), "unknown variable");
        }
        self.constraints.push(Constraint {
            terms: terms.to_vec(),
            relation,
            rhs,
        });
    }

    /// Number of declared variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable name (for diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `var` does not belong to this problem.
    #[must_use]
    pub fn var_name(&self, var: VarId) -> &str {
        &self.variables[var.0].name
    }

    /// Ids of all integer variables.
    #[must_use]
    pub fn integer_vars(&self) -> Vec<VarId> {
        self.variables
            .iter()
            .enumerate()
            .filter(|(_, v)| v.integer)
            .map(|(i, _)| VarId(i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_incrementally() {
        let mut p = Problem::new(Sense::Maximize);
        let x = p.binary("x");
        let y = p.continuous("y", 0.0, 5.0);
        p.set_objective(x, 1.0);
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Relation::Le, 3.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.var_name(x), "x");
        assert_eq!(p.integer_vars(), vec![x]);
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds upper bound")]
    fn inverted_bounds_panic() {
        let mut p = Problem::new(Sense::Minimize);
        let _ = p.continuous("y", 2.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "variables must be non-negative")]
    fn negative_lower_panics() {
        let mut p = Problem::new(Sense::Minimize);
        let _ = p.continuous("y", -1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "constraint must have terms")]
    fn empty_constraint_panics() {
        let mut p = Problem::new(Sense::Minimize);
        p.add_constraint(&[], Relation::Le, 0.0);
    }
}
