//! [`SolverContext`]: cross-solve warm-start state.
//!
//! Sweep-style workloads (the ILP ablation's default-vs-contested capacity
//! runs, the compiler-side capacity sensitivity in `smart-core`) solve long
//! runs of LPs that share a constraint *structure* and differ only in
//! right-hand sides. A [`SolverContext`] remembers the optimal root basis
//! of every structure it has seen (keyed by a fingerprint over the
//! matrix, variables, and objective, *excluding* right-hand sides), so the
//! next solve of an adjacent point starts from a dual-feasible basis and
//! typically reoptimizes in a handful of dual simplex pivots instead of a
//! full cold solve. Sweeps that change bounds or objective coefficients
//! produce different fingerprints and simply solve cold — reuse never
//! risks a stale basis.
//!
//! Alongside the basis store sits an exact-match **solution memo**: full
//! MIP solutions keyed by a 128-bit content hash over the *complete*
//! problem (matrix, bounds, objective, right-hand sides), the incumbent
//! seed, and the solver configuration. The branch & bound search is
//! deterministic, so an identical solve replays the stored
//! [`MipSolution`] verbatim — same objective, values, node count, and
//! optimality flag — and skips the search entirely. This is what makes a
//! warm `--cache-dir` rerun of the ILP ablation near-free: the root-basis
//! warm start only shortcuts the root relaxation, while the memo
//! shortcuts the whole tree.
//!
//! The context is `Sync`: one instance can be shared across the experiment
//! runner's worker threads (the map is mutex-guarded, the counters are
//! atomic), matching how `smart_report::parallel_map` fans sweep points
//! out.

use crate::problem::Problem;
use crate::revised::{Basis, Status};
use crate::solver::MipSolution;
use smart_trace::Tracer;
use smart_units::codec::content_hash;
use smart_units::codec::{ByteReader, ByteWriter, Store};
use smart_units::sync::lock;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Counters describing how much reuse a [`SolverContext`] delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverContextStats {
    /// Solves that found a stored basis for their problem structure.
    pub warm_attempts: u64,
    /// Warm attempts that actually reoptimized from the stored basis
    /// (no cold fallback).
    pub warm_hits: u64,
    /// Solves that started cold (no stored basis, or fallback).
    pub cold_solves: u64,
    /// Distinct problem structures with a stored basis.
    pub stored_bases: usize,
    /// Solves answered verbatim from the exact-match solution memo
    /// (branch & bound skipped entirely).
    pub solution_hits: u64,
    /// Distinct exact problems with a memoized solution.
    pub stored_solutions: usize,
    /// Simplex pivots across every solve (both phases, all nodes).
    pub pivots: u64,
    /// Basis-inverse refactorizations across every solve.
    pub refactorizations: u64,
    /// Branch & bound nodes explored across every solve.
    pub nodes: u64,
}

/// Shared warm-start state threaded through
/// `smart_compiler::formulation::compile_layer_ctx` and
/// `smart_core::sensitivity` sweeps.
#[derive(Debug, Default)]
pub struct SolverContext {
    // Key-ordered maps: the persisted store serializes them in iteration
    // order, so the bytes are deterministic without a sort pass.
    bases: Mutex<BTreeMap<u64, Arc<Basis>>>,
    solutions: Mutex<BTreeMap<u128, Arc<MipSolution>>>,
    warm_attempts: AtomicU64,
    warm_hits: AtomicU64,
    cold_solves: AtomicU64,
    solution_hits: AtomicU64,
    pivots: AtomicU64,
    refactorizations: AtomicU64,
    nodes: AtomicU64,
    /// Span sink for per-node solver instrumentation; disabled (free)
    /// unless a driver installs an enabled tracer.
    tracer: Mutex<Tracer>,
}

impl SolverContext {
    /// An empty context.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> SolverContextStats {
        SolverContextStats {
            warm_attempts: self.warm_attempts.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            cold_solves: self.cold_solves.load(Ordering::Relaxed),
            stored_bases: lock(&self.bases).len(),
            solution_hits: self.solution_hits.load(Ordering::Relaxed),
            stored_solutions: lock(&self.solutions).len(),
            pivots: self.pivots.load(Ordering::Relaxed),
            refactorizations: self.refactorizations.load(Ordering::Relaxed),
            nodes: self.nodes.load(Ordering::Relaxed),
        }
    }

    /// Installs a span sink: every subsequent solve through this context
    /// records its branch & bound nodes as pivot-time spans on a
    /// per-problem lane. The default sink is disabled and free.
    pub fn set_tracer(&self, tracer: Tracer) {
        *lock(&self.tracer) = tracer;
    }

    /// The installed span sink (cheap clone of a shared buffer handle).
    #[must_use]
    pub fn tracer(&self) -> Tracer {
        lock(&self.tracer).clone()
    }

    /// Folds one finished search's work counters into the context.
    pub(crate) fn note_search(&self, pivots: u64, refactorizations: u64, nodes: u64) {
        self.pivots.fetch_add(pivots, Ordering::Relaxed);
        self.refactorizations
            .fetch_add(refactorizations, Ordering::Relaxed);
        self.nodes.fetch_add(nodes, Ordering::Relaxed);
    }

    pub(crate) fn lookup(&self, fp: u64) -> Option<Arc<Basis>> {
        let found = lock(&self.bases).get(&fp).cloned();
        if found.is_some() {
            self.warm_attempts.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    pub(crate) fn store(&self, fp: u64, basis: Arc<Basis>) {
        lock(&self.bases).insert(fp, basis);
    }

    pub(crate) fn note_warm_hit(&self) {
        self.warm_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_cold(&self) {
        self.cold_solves.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn solution_lookup(&self, key: u128) -> Option<Arc<MipSolution>> {
        let found = lock(&self.solutions).get(&key).cloned();
        if found.is_some() {
            self.solution_hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    pub(crate) fn solution_store(&self, key: u128, solution: Arc<MipSolution>) {
        lock(&self.solutions).insert(key, solution);
    }

    /// Serializes every stored basis and memoized solution into a store
    /// payload (maps are key-ordered, so the bytes are deterministic).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let bases = lock(&self.bases);
        let mut w = ByteWriter::new();
        w.u64(bases.len() as u64);
        for (fp, basis) in bases.iter() {
            w.u64(*fp);
            w.u64(basis.basic.len() as u64);
            for &col in &basis.basic {
                w.u64(col as u64);
            }
            w.u64(basis.status.len() as u64);
            for &s in &basis.status {
                w.u8(match s {
                    Status::Basic => 0,
                    Status::Lower => 1,
                    Status::Upper => 2,
                });
            }
        }
        let solutions = lock(&self.solutions);
        w.u64(solutions.len() as u64);
        for (key, sol) in solutions.iter() {
            w.u128(*key);
            w.f64(sol.objective);
            w.u64(sol.values.len() as u64);
            for &v in &sol.values {
                w.f64(v);
            }
            w.u64(sol.nodes as u64);
            w.u8(u8::from(sol.proven_optimal));
        }
        w.into_bytes()
    }

    /// Replaces the stored bases and memoized solutions with the
    /// payload's; `0` on any malformed byte (and the store is left
    /// unchanged — the fall-back-to-cold path). A reloaded basis is only
    /// ever *attempted*: the simplex refactorizes and falls back to a cold
    /// solve if it does not fit its problem. A reloaded solution is keyed
    /// by a content hash of the complete problem plus solver
    /// configuration, so a stale file simply never matches.
    ///
    /// Returns the total number of entries (bases plus solutions) now
    /// stored.
    pub fn load_bytes(&self, payload: &[u8]) -> usize {
        let mut r = ByteReader::new(payload);
        let Some(n) = r.u64().and_then(|n| usize::try_from(n).ok()) else {
            return 0;
        };
        let mut entries = BTreeMap::new();
        for _ in 0..n {
            let Some(fp) = r.u64() else { return 0 };
            let Some(basic) = r.u64_vec() else { return 0 };
            let basic: Vec<usize> = basic.iter().map(|&c| c as usize).collect();
            let Some(len) = r.u64().and_then(|n| usize::try_from(n).ok()) else {
                return 0;
            };
            if len > payload.len() {
                return 0;
            }
            let mut status = Vec::with_capacity(len);
            for _ in 0..len {
                status.push(match r.u8() {
                    Some(0) => Status::Basic,
                    Some(1) => Status::Lower,
                    Some(2) => Status::Upper,
                    _ => return 0,
                });
            }
            entries.insert(fp, Arc::new(Basis { basic, status }));
        }
        let Some(n_sol) = r.u64().and_then(|n| usize::try_from(n).ok()) else {
            return 0;
        };
        let mut sol_entries = BTreeMap::new();
        for _ in 0..n_sol {
            let Some(key) = r.u128() else { return 0 };
            let Some(objective) = r.f64() else { return 0 };
            let Some(len) = r.u64().and_then(|n| usize::try_from(n).ok()) else {
                return 0;
            };
            if len > payload.len() {
                return 0;
            }
            let mut values = Vec::with_capacity(len);
            for _ in 0..len {
                let Some(v) = r.f64() else { return 0 };
                values.push(v);
            }
            let Some(nodes) = r.u64().and_then(|n| usize::try_from(n).ok()) else {
                return 0;
            };
            let proven_optimal = match r.u8() {
                Some(0) => false,
                Some(1) => true,
                _ => return 0,
            };
            sol_entries.insert(
                key,
                Arc::new(MipSolution {
                    objective,
                    values,
                    nodes,
                    proven_optimal,
                }),
            );
        }
        if !r.is_empty() {
            return 0;
        }
        let mut bases = lock(&self.bases);
        let mut solutions = lock(&self.solutions);
        *bases = entries;
        *solutions = sol_entries;
        bases.len() + solutions.len()
    }

    /// Saves the basis store to `dir/`[`BASIS_FILE_NAME`] (atomically).
    ///
    /// # Errors
    ///
    /// [`smart_units::SmartError::Store`] on any underlying filesystem
    /// failure.
    pub fn save_to(&self, dir: &Path) -> smart_units::Result<()> {
        Store::write_file(
            &dir.join(BASIS_FILE_NAME),
            BASIS_TAG,
            BASIS_VERSION,
            self.to_bytes(),
        )?;
        Ok(())
    }

    /// Loads `dir/`[`BASIS_FILE_NAME`] into this context; returns how many
    /// entries (bases plus memoized solutions) are now stored. A missing,
    /// corrupted, truncated, or version-mismatched file loads zero —
    /// solves start cold.
    pub fn load_from(&self, dir: &Path) -> usize {
        let Some(payload) = Store::read_file(&dir.join(BASIS_FILE_NAME), BASIS_TAG, BASIS_VERSION)
        else {
            return 0;
        };
        self.load_bytes(&payload)
    }
}

/// Store tag of the warm-start basis file.
const BASIS_TAG: &str = "smart-ilp-bases";

/// Bump when the serialized basis/solution layout changes.
const BASIS_VERSION: u32 = 2;

/// File name of the basis store inside a `--cache-dir`.
pub const BASIS_FILE_NAME: &str = "ilp-bases.bin";

/// Fingerprint of a problem's warm-start-compatible structure: sense,
/// variables (bounds, integrality, objective), and constraint matrix
/// (relation + terms) — everything *except* the right-hand sides, which a
/// stored basis stays dual-feasible across.
#[must_use]
pub(crate) fn fingerprint(p: &Problem) -> u64 {
    let mut h = DefaultHasher::new();
    (p.num_vars() as u64).hash(&mut h);
    (p.num_constraints() as u64).hash(&mut h);
    matches!(p.sense, crate::problem::Sense::Maximize).hash(&mut h);
    for v in &p.variables {
        v.lower.to_bits().hash(&mut h);
        v.upper.to_bits().hash(&mut h);
        v.integer.hash(&mut h);
        v.objective.to_bits().hash(&mut h);
    }
    for c in &p.constraints {
        (c.relation as u8).hash(&mut h);
        (c.terms.len() as u64).hash(&mut h);
        for &(v, k) in &c.terms {
            (v.index() as u64).hash(&mut h);
            k.to_bits().hash(&mut h);
        }
    }
    h.finish()
}

/// Hashable view of everything that determines a deterministic solve's
/// outcome: the complete problem (including right-hand sides, which the
/// structural [`fingerprint`] deliberately skips), the incumbent seed, and
/// the solver configuration. Variable names are excluded — they never
/// influence the search.
struct SolveKey<'a> {
    problem: &'a Problem,
    seed: Option<&'a [f64]>,
    node_limit: usize,
    warm_start: bool,
}

impl Hash for SolveKey<'_> {
    fn hash<H: Hasher>(&self, h: &mut H) {
        let p = self.problem;
        (p.num_vars() as u64).hash(h);
        (p.num_constraints() as u64).hash(h);
        matches!(p.sense, crate::problem::Sense::Maximize).hash(h);
        for v in &p.variables {
            v.lower.to_bits().hash(h);
            v.upper.to_bits().hash(h);
            v.integer.hash(h);
            v.objective.to_bits().hash(h);
        }
        for c in &p.constraints {
            (c.relation as u8).hash(h);
            c.rhs.to_bits().hash(h);
            (c.terms.len() as u64).hash(h);
            for &(v, k) in &c.terms {
                (v.index() as u64).hash(h);
                k.to_bits().hash(h);
            }
        }
        match self.seed {
            None => 0u8.hash(h),
            Some(vals) => {
                1u8.hash(h);
                (vals.len() as u64).hash(h);
                for v in vals {
                    v.to_bits().hash(h);
                }
            }
        }
        (self.node_limit as u64).hash(h);
        self.warm_start.hash(h);
    }
}

/// 128-bit exact-solve key for the solution memo (see [`SolveKey`]).
#[must_use]
pub(crate) fn solution_key(
    problem: &Problem,
    seed: Option<&[f64]>,
    node_limit: usize,
    warm_start: bool,
) -> u128 {
    content_hash(&SolveKey {
        problem,
        seed,
        node_limit,
        warm_start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Relation, Sense};

    fn knapsack(rhs: f64, weight: f64) -> Problem {
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let b = p.binary("b");
        p.set_objective(a, 3.0);
        p.set_objective(b, 2.0);
        p.add_constraint(&[(a, weight), (b, 1.0)], Relation::Le, rhs);
        p
    }

    #[test]
    fn fingerprint_ignores_rhs_but_not_matrix() {
        let base = fingerprint(&knapsack(2.0, 1.0));
        assert_eq!(base, fingerprint(&knapsack(5.0, 1.0)), "rhs-only change");
        assert_ne!(base, fingerprint(&knapsack(2.0, 4.0)), "matrix change");
    }

    #[test]
    fn basis_store_round_trips_and_rejects_corruption() {
        let dir = std::env::temp_dir().join(format!("smart-ilp-bases-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let ctx = SolverContext::new();
        assert_eq!(ctx.load_from(&dir), 0, "missing file loads cold");
        ctx.store(
            11,
            Arc::new(Basis {
                basic: vec![0, 3],
                status: vec![Status::Basic, Status::Lower, Status::Upper, Status::Basic],
            }),
        );
        ctx.store(
            5,
            Arc::new(Basis {
                basic: vec![1],
                status: vec![Status::Lower, Status::Basic],
            }),
        );
        ctx.solution_store(
            0xdead_beef_u128 << 64 | 7,
            Arc::new(MipSolution {
                objective: 42.5,
                values: vec![1.0, 0.0, 3.0],
                nodes: 17,
                proven_optimal: true,
            }),
        );
        assert_eq!(ctx.to_bytes(), ctx.to_bytes(), "deterministic bytes");
        ctx.save_to(&dir).expect("saves");

        let warm = SolverContext::new();
        assert_eq!(warm.load_from(&dir), 3, "2 bases + 1 solution");
        let reloaded = warm.lookup(11).expect("stored basis");
        assert_eq!(reloaded.basic, vec![0, 3]);
        assert_eq!(
            reloaded.status,
            vec![Status::Basic, Status::Lower, Status::Upper, Status::Basic]
        );
        let sol = warm
            .solution_lookup(0xdead_beef_u128 << 64 | 7)
            .expect("stored solution");
        assert_eq!(sol.objective, 42.5);
        assert_eq!(sol.values, vec![1.0, 0.0, 3.0]);
        assert_eq!(sol.nodes, 17);
        assert!(sol.proven_optimal);
        assert_eq!(warm.stats().solution_hits, 1);

        // Truncation and bit corruption fall back to cold.
        let path = dir.join(BASIS_FILE_NAME);
        let good = std::fs::read(&path).expect("reads");
        std::fs::write(&path, &good[..good.len() / 2]).expect("writes");
        assert_eq!(SolverContext::new().load_from(&dir), 0);
        let mut bad = good;
        let mid = bad.len() / 2;
        bad[mid] ^= 0x04;
        std::fs::write(&path, &bad).expect("writes");
        assert_eq!(SolverContext::new().load_from(&dir), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_to_unwritable_dir_is_a_typed_error() {
        let ctx = SolverContext::new();
        let err = ctx
            .save_to(Path::new("/proc/definitely/not/writable"))
            .expect_err("must fail, not panic");
        assert!(
            matches!(err, smart_units::SmartError::Store { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn stats_track_storage() {
        let ctx = SolverContext::new();
        assert_eq!(ctx.stats(), SolverContextStats::default());
        let basis = Arc::new(crate::revised::Basis {
            basic: vec![2],
            status: vec![
                crate::revised::Status::Lower,
                crate::revised::Status::Lower,
                crate::revised::Status::Basic,
            ],
        });
        ctx.store(7, basis);
        assert_eq!(ctx.stats().stored_bases, 1);
        assert!(ctx.lookup(7).is_some());
        assert!(ctx.lookup(8).is_none());
        assert_eq!(ctx.stats().warm_attempts, 1);
    }
}
