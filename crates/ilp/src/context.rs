//! [`SolverContext`]: cross-solve warm-start state.
//!
//! Sweep-style workloads (the ILP ablation's default-vs-contested capacity
//! runs, the compiler-side capacity sensitivity in `smart-core`) solve long
//! runs of LPs that share a constraint *structure* and differ only in
//! right-hand sides. A [`SolverContext`] remembers the optimal root basis
//! of every structure it has seen (keyed by a fingerprint over the
//! matrix, variables, and objective, *excluding* right-hand sides), so the
//! next solve of an adjacent point starts from a dual-feasible basis and
//! typically reoptimizes in a handful of dual simplex pivots instead of a
//! full cold solve. Sweeps that change bounds or objective coefficients
//! produce different fingerprints and simply solve cold — reuse never
//! risks a stale basis.
//!
//! The context is `Sync`: one instance can be shared across the experiment
//! runner's worker threads (the map is mutex-guarded, the counters are
//! atomic), matching how `smart_report::parallel_map` fans sweep points
//! out.

use crate::problem::Problem;
use crate::revised::Basis;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Counters describing how much reuse a [`SolverContext`] delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SolverContextStats {
    /// Solves that found a stored basis for their problem structure.
    pub warm_attempts: u64,
    /// Warm attempts that actually reoptimized from the stored basis
    /// (no cold fallback).
    pub warm_hits: u64,
    /// Solves that started cold (no stored basis, or fallback).
    pub cold_solves: u64,
    /// Distinct problem structures with a stored basis.
    pub stored_bases: usize,
}

/// Shared warm-start state threaded through
/// `smart_compiler::formulation::compile_layer_ctx` and
/// `smart_core::sensitivity` sweeps.
#[derive(Debug, Default)]
pub struct SolverContext {
    bases: Mutex<HashMap<u64, Arc<Basis>>>,
    warm_attempts: AtomicU64,
    warm_hits: AtomicU64,
    cold_solves: AtomicU64,
}

impl SolverContext {
    /// An empty context.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current counters.
    ///
    /// # Panics
    ///
    /// Panics if the basis map mutex was poisoned.
    #[must_use]
    pub fn stats(&self) -> SolverContextStats {
        SolverContextStats {
            warm_attempts: self.warm_attempts.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
            cold_solves: self.cold_solves.load(Ordering::Relaxed),
            stored_bases: self.bases.lock().expect("solver context poisoned").len(),
        }
    }

    pub(crate) fn lookup(&self, fp: u64) -> Option<Arc<Basis>> {
        let found = self
            .bases
            .lock()
            .expect("solver context poisoned")
            .get(&fp)
            .cloned();
        if found.is_some() {
            self.warm_attempts.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    pub(crate) fn store(&self, fp: u64, basis: Arc<Basis>) {
        self.bases
            .lock()
            .expect("solver context poisoned")
            .insert(fp, basis);
    }

    pub(crate) fn note_warm_hit(&self) {
        self.warm_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_cold(&self) {
        self.cold_solves.fetch_add(1, Ordering::Relaxed);
    }
}

/// Fingerprint of a problem's warm-start-compatible structure: sense,
/// variables (bounds, integrality, objective), and constraint matrix
/// (relation + terms) — everything *except* the right-hand sides, which a
/// stored basis stays dual-feasible across.
#[must_use]
pub(crate) fn fingerprint(p: &Problem) -> u64 {
    let mut h = DefaultHasher::new();
    (p.num_vars() as u64).hash(&mut h);
    (p.num_constraints() as u64).hash(&mut h);
    matches!(p.sense, crate::problem::Sense::Maximize).hash(&mut h);
    for v in &p.variables {
        v.lower.to_bits().hash(&mut h);
        v.upper.to_bits().hash(&mut h);
        v.integer.hash(&mut h);
        v.objective.to_bits().hash(&mut h);
    }
    for c in &p.constraints {
        (c.relation as u8).hash(&mut h);
        (c.terms.len() as u64).hash(&mut h);
        for &(v, k) in &c.terms {
            (v.index() as u64).hash(&mut h);
            k.to_bits().hash(&mut h);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Relation, Sense};

    fn knapsack(rhs: f64, weight: f64) -> Problem {
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let b = p.binary("b");
        p.set_objective(a, 3.0);
        p.set_objective(b, 2.0);
        p.add_constraint(&[(a, weight), (b, 1.0)], Relation::Le, rhs);
        p
    }

    #[test]
    fn fingerprint_ignores_rhs_but_not_matrix() {
        let base = fingerprint(&knapsack(2.0, 1.0));
        assert_eq!(base, fingerprint(&knapsack(5.0, 1.0)), "rhs-only change");
        assert_ne!(base, fingerprint(&knapsack(2.0, 4.0)), "matrix change");
    }

    #[test]
    fn stats_track_storage() {
        let ctx = SolverContext::new();
        assert_eq!(ctx.stats(), SolverContextStats::default());
        let basis = Arc::new(crate::revised::Basis {
            basic: vec![2],
            status: vec![
                crate::revised::Status::Lower,
                crate::revised::Status::Lower,
                crate::revised::Status::Basic,
            ],
        });
        ctx.store(7, basis);
        assert_eq!(ctx.stats().stored_bases, 1);
        assert!(ctx.lookup(7).is_some());
        assert!(ctx.lookup(8).is_none());
        assert_eq!(ctx.stats().warm_attempts, 1);
    }
}
