//! Branch & bound over the LP relaxation, with warm-started node solves,
//! incumbent seeding, and a greedy-rounding fallback.
//!
//! Best-first search on the most-fractional integer variable. The sparse
//! standard form is built **once** per solve; each node only overrides
//! variable bounds (its pins) and warm-starts the dual simplex from its
//! parent's optimal basis, so a child LP typically reoptimizes in a handful
//! of pivots instead of a cold two-phase solve. A caller-supplied incumbent
//! ([`Solver::with_incumbent`] — e.g. the compiler's greedy allocation)
//! seeds the best-bound pruning from node zero, and an incumbent callback
//! ([`Solver::solve_with_callback`]) observes every improvement.
//!
//! The node limit bounds runtime; if it is hit with an incumbent, the
//! incumbent is returned flagged as near-optimal (the paper's compiler is
//! itself only "near-optimal", Sec. 4.3); if no incumbent exists, a greedy
//! rounding repair pass is attempted.

// lint:allow-file(index, branch-and-bound indexes variable arrays sized by the formulation)

use crate::context::{fingerprint, solution_key, SolverContext};
use crate::problem::{Problem, Relation, Sense};
use crate::revised::{Lp, SolveOutcome, SolveTrace, StandardForm, Warm};
use smart_units::{Result, SmartError};
use std::collections::BinaryHeap;
use std::sync::Arc;

const INT_TOL: f64 = 1e-6;

/// Objective granularity for pure-integer objectives: when every variable
/// with a nonzero objective coefficient is integer, any feasible objective
/// is an integer combination of the coefficients, so improving solutions
/// are at least `gcd(coefficients)` apart and nodes inside that window of
/// the incumbent can be pruned *exactly*. Returns 0.0 when no useful
/// granularity exists (continuous objective terms, or a vanishing gcd).
fn objective_granularity(problem: &Problem) -> f64 {
    let mut g = 0.0f64;
    let mut cmax = 0.0f64;
    for v in &problem.variables {
        let c = v.objective.abs();
        if c <= 0.0 {
            continue;
        }
        if !v.integer {
            return 0.0;
        }
        cmax = cmax.max(c);
        g = float_gcd(g, c);
    }
    // Noise floor: a gcd at rounding-error scale is meaningless.
    if g <= 1e-6 * cmax.max(1.0) {
        0.0
    } else {
        g
    }
}

/// Euclid's algorithm on floats, tolerating representation noise.
fn float_gcd(a: f64, b: f64) -> f64 {
    let (mut a, mut b) = (a.max(b), a.min(b));
    if b == 0.0 {
        return a;
    }
    let tol = 1e-9 * a.max(1.0);
    for _ in 0..128 {
        if b <= tol {
            return a;
        }
        let r = a % b;
        let r = if r <= tol || b - r <= tol { 0.0 } else { r };
        a = b;
        b = r;
    }
    0.0
}

/// Solver outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum MipResult {
    /// Proven-optimal integer solution.
    Optimal(MipSolution),
    /// Feasible but not proven optimal (node limit hit).
    Feasible(MipSolution),
    /// No feasible integer point exists.
    Infeasible,
    /// The relaxation is unbounded.
    Unbounded,
}

impl MipResult {
    /// The solution, if any.
    #[must_use]
    pub fn solution(&self) -> Option<&MipSolution> {
        match self {
            Self::Optimal(s) | Self::Feasible(s) => Some(s),
            _ => None,
        }
    }

    /// Converts the outcome into the workspace-wide [`Result`], mapping
    /// [`MipResult::Infeasible`] and [`MipResult::Unbounded`] to their
    /// [`SmartError`] counterparts. The optimal/feasible distinction is
    /// preserved in [`MipSolution::proven_optimal`].
    ///
    /// # Errors
    ///
    /// [`SmartError::Infeasible`] or [`SmartError::Unbounded`],
    /// respectively.
    pub fn into_result(self) -> Result<MipSolution> {
        match self {
            Self::Optimal(s) | Self::Feasible(s) => Ok(s),
            Self::Infeasible => Err(SmartError::infeasible("integer program")),
            Self::Unbounded => Err(SmartError::unbounded("integer program relaxation")),
        }
    }
}

/// An integer-feasible solution.
#[derive(Debug, Clone, PartialEq)]
pub struct MipSolution {
    /// Objective value.
    pub objective: f64,
    /// Variable values in declaration order.
    pub values: Vec<f64>,
    /// Branch & bound nodes explored.
    pub nodes: usize,
    /// `true` when branch & bound proved this solution optimal; `false`
    /// when the node limit stopped the search or the greedy repair pass
    /// produced it.
    pub proven_optimal: bool,
}

impl MipSolution {
    /// Value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[must_use]
    pub fn value(&self, var: crate::problem::VarId) -> f64 {
        self.values[var.index()]
    }
}

/// Branch & bound solver.
#[derive(Debug, Clone)]
pub struct Solver {
    node_limit: usize,
    warm_start: bool,
    seed: Option<Vec<f64>>,
}

impl Solver {
    /// Creates a solver with the default node limit (20 000) and
    /// warm-started node relaxations.
    #[must_use]
    pub fn new() -> Self {
        Self {
            node_limit: 20_000,
            warm_start: true,
            seed: None,
        }
    }

    /// Overrides the node limit.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    #[must_use]
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        assert!(limit > 0, "node limit must be positive");
        self.node_limit = limit;
        self
    }

    /// Disables (or re-enables) warm-starting child relaxations from the
    /// parent's basis. Cold mode exists for A/B verification — the property
    /// suite asserts warm and cold searches reach the same objective.
    #[must_use]
    pub fn with_warm_start(mut self, warm: bool) -> Self {
        self.warm_start = warm;
        self
    }

    /// Seeds the search with a known feasible point (variable values in
    /// declaration order) whose objective becomes the initial best bound.
    ///
    /// The seed is validated against bounds, integrality, and constraints;
    /// an invalid seed is silently ignored (the search then starts with no
    /// incumbent, exactly as without a seed). The compiler seeds its greedy
    /// allocation here, so branch & bound starts pruning immediately and a
    /// node-limited search can never return something worse than greedy.
    #[must_use]
    pub fn with_incumbent(mut self, values: Vec<f64>) -> Self {
        self.seed = Some(values);
        self
    }

    /// Like [`Solver::solve`], but returns the workspace-wide [`Result`]:
    /// infeasible and unbounded programs become [`SmartError`] values
    /// instead of enum variants the caller has to remember to match.
    ///
    /// # Errors
    ///
    /// [`SmartError::Infeasible`] when no integer-feasible point exists and
    /// [`SmartError::Unbounded`] when the relaxation is unbounded.
    pub fn try_solve(&self, problem: &Problem) -> Result<MipSolution> {
        self.solve(problem).into_result()
    }

    /// Like [`Solver::solve_with`], returning the workspace-wide
    /// [`Result`].
    ///
    /// # Errors
    ///
    /// [`SmartError::Infeasible`] or [`SmartError::Unbounded`], as for
    /// [`Solver::try_solve`].
    pub fn try_solve_with(&self, problem: &Problem, ctx: &SolverContext) -> Result<MipSolution> {
        self.solve_with(problem, ctx).into_result()
    }

    /// Solves the problem.
    #[must_use]
    pub fn solve(&self, problem: &Problem) -> MipResult {
        self.solve_impl(problem, None, &mut |_| {})
    }

    /// Solves the problem, reusing (and contributing to) the context's
    /// stored bases: the root relaxation warm-starts from the basis of the
    /// last structurally-identical problem, which makes sweeps over
    /// right-hand sides (capacities, budgets) reoptimizations instead of
    /// cold solves.
    #[must_use]
    pub fn solve_with(&self, problem: &Problem, ctx: &SolverContext) -> MipResult {
        self.solve_impl(problem, Some(ctx), &mut |_| {})
    }

    /// Like [`Solver::solve_with`], invoking `on_incumbent` for every
    /// accepted incumbent (the validated seed first, if any, then each
    /// strict improvement found by the search).
    #[must_use]
    pub fn solve_with_callback(
        &self,
        problem: &Problem,
        ctx: Option<&SolverContext>,
        on_incumbent: &mut dyn FnMut(&MipSolution),
    ) -> MipResult {
        self.solve_impl(problem, ctx, on_incumbent)
    }

    fn solve_impl(
        &self,
        problem: &Problem,
        ctx: Option<&SolverContext>,
        on_incumbent: &mut dyn FnMut(&MipSolution),
    ) -> MipResult {
        let int_vars = problem.integer_vars();
        let sign = match problem.sense {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };

        let form = StandardForm::build(problem);
        let fp = ctx.map(|_| fingerprint(problem));
        // Exact-match solution memo: branch & bound is deterministic, so a
        // solve of an identical (problem, seed, config) triple replays the
        // stored solution verbatim — objective, values, node count, and
        // optimality flag included — without touching the tree. This is
        // the path that makes warm `--cache-dir` reruns of ILP-heavy
        // experiments near-free.
        let memo_key = ctx.map(|_| {
            solution_key(
                problem,
                self.seed.as_deref(),
                self.node_limit,
                self.warm_start,
            )
        });
        if let (Some(c), Some(k)) = (ctx, memo_key) {
            if let Some(sol) = c.solution_lookup(k) {
                let sol = MipSolution::clone(&sol);
                return if sol.proven_optimal {
                    MipResult::Optimal(sol)
                } else {
                    MipResult::Feasible(sol)
                };
            }
        }
        // Per-solve trace lane, keyed by the solution memo key so
        // concurrent solves of distinct problems never interleave on one
        // lane. Virtual time is cumulative simplex pivots within this
        // solve; memo-hit replays above emit nothing (no pivots spent).
        let lane = match (ctx.map(|c| c.tracer()), memo_key) {
            (Some(t), Some(k)) if t.is_enabled() => Some(t.lane(&format!("ilp/{k:032x}"))),
            _ => None,
        };
        if let Some(l) = &lane {
            l.begin("solve", 0);
        }
        let granularity = objective_granularity(problem);
        // Pruning margin: a node whose bound cannot beat the incumbent by
        // at least one objective quantum (minus float slack) holds nothing
        // better. Falls back to the plain integrality tolerance.
        let prune_margin = |inc_objective: f64| -> f64 {
            if granularity > 0.0 {
                (granularity - 1e-6 * (1.0 + inc_objective.abs())).max(INT_TOL)
            } else {
                INT_TOL
            }
        };

        // Seed incumbent (validated; ignored when infeasible).
        let mut incumbent: Option<MipSolution> = self
            .seed
            .as_deref()
            .and_then(|vals| validate_seed(problem, vals))
            .map(|(objective, values)| MipSolution {
                objective,
                values,
                nodes: 0,
                proven_optimal: false,
            });
        if let Some(inc) = &incumbent {
            on_incumbent(inc);
        }

        // Root relaxation, warm-started from the context when a basis for
        // this problem structure is stored. One LP workspace lives for the
        // whole search: dives into child nodes reuse its installed
        // factorization (`Warm::Live`).
        let mut lp = Lp::new(&form);
        // lint:allow(panic_freedom, fp is Some whenever ctx is Some; both are derived from the same caller argument)
        let stored = ctx.and_then(|c| c.lookup(fp.expect("fp set with ctx")));
        let mut trace = SolveTrace::default();
        let root_warm = stored.as_deref().map_or(Warm::Cold, Warm::Basis);
        let root_outcome = lp.solve(
            problem,
            form.lower.clone(),
            form.upper.clone(),
            root_warm,
            &mut trace,
            true,
        );
        if let Some(c) = ctx {
            if trace.warm_used {
                c.note_warm_hit();
            } else {
                c.note_cold();
            }
        }
        let mut pivots_total = trace.pivots;
        let mut refactors_total = trace.refactorizations;
        if let Some(l) = &lane {
            l.span("root relaxation", 0, pivots_total);
        }
        let (root_values, root_objective, root_basis) = match root_outcome {
            SolveOutcome::Optimal {
                values,
                objective,
                basis,
            } => (values, objective, basis),
            SolveOutcome::Infeasible => {
                if let Some(c) = ctx {
                    c.note_search(pivots_total, refactors_total, 0);
                }
                if let Some(l) = &lane {
                    l.end("solve", pivots_total);
                }
                // A validated seed proves feasibility; trust it over a
                // numerically confused relaxation.
                return match incumbent {
                    Some(s) => MipResult::Feasible(s),
                    None => MipResult::Infeasible,
                };
            }
            SolveOutcome::Unbounded => {
                if let Some(c) = ctx {
                    c.note_search(pivots_total, refactors_total, 0);
                }
                if let Some(l) = &lane {
                    l.end("solve", pivots_total);
                }
                return MipResult::Unbounded;
            }
        };
        let root_arc = root_basis.map(Arc::new);
        if let (Some(c), Some(f), Some(b)) = (ctx, fp, root_arc.clone()) {
            c.store(f, b);
        }

        // Reduced-cost fixing: with an incumbent in hand (the seed), any
        // integer variable sitting at a bound in the root relaxation whose
        // reduced cost already eats the whole optimality gap can be fixed
        // there for the entire search — a strictly better solution cannot
        // move it.
        let mut fixed: Vec<(usize, f64)> = Vec::new();
        if self.warm_start && lp.live_available() {
            if let Some(inc) = &incumbent {
                let gap =
                    root_objective * sign - (inc.objective * sign + prune_margin(inc.objective));
                let d = lp.structural_reduced_costs();
                for &v in &int_vars {
                    let j = v.index();
                    let x = root_values[j];
                    if (x - x.round()).abs() <= INT_TOL && d[j].abs() > gap.max(0.0) {
                        fixed.push((j, x.round()));
                    }
                }
            }
        }

        #[derive(Debug)]
        struct Node {
            bound: f64, // objective * sign (higher = more promising)
            /// Compact branching decisions `(variable, pinned value)` on
            /// the path from the root.
            pins: Vec<(usize, f64)>,
        }
        impl PartialEq for Node {
            fn eq(&self, other: &Self) -> bool {
                self.bound == other.bound
            }
        }
        impl Eq for Node {}
        impl PartialOrd for Node {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Node {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.bound.total_cmp(&other.bound)
            }
        }

        let mut heap = BinaryHeap::new();
        // The dive slot: the child processed immediately after its parent.
        // Within one search the objective never changes, so the live
        // workspace basis stays *dual feasible* for every node — dives and
        // heap pops alike reoptimize from it with a few dual simplex
        // pivots and no refactorization.
        let mut dive: Option<Node> = Some(Node {
            bound: root_objective * sign,
            pins: Vec::new(),
        });

        let mut nodes = 0usize;

        // Check the limit before taking a node: discarding a popped-but-
        // unexplored node would leave the search empty and misclassify the
        // incumbent as proven optimal below.
        while nodes < self.node_limit {
            let node = match dive.take() {
                Some(node) => node,
                None => match heap.pop() {
                    Some(node) => node,
                    None => break,
                },
            };
            // Best-bound pruning (granularity-aware).
            if let Some(inc) = &incumbent {
                if node.bound <= inc.objective * sign + prune_margin(inc.objective) {
                    continue;
                }
            }
            nodes += 1;
            let warm = if self.warm_start && lp.live_available() {
                Warm::Live
            } else {
                Warm::Cold
            };
            let mut trace = SolveTrace::default();
            let node_t0 = pivots_total;
            let outcome = lp.solve_pinned(problem, &fixed, &node.pins, warm, &mut trace, false);
            pivots_total += trace.pivots;
            refactors_total += trace.refactorizations;
            if let Some(l) = &lane {
                l.span(&format!("node {nodes}"), node_t0, pivots_total);
            }
            let (values, objective) = match outcome {
                SolveOutcome::Optimal {
                    values, objective, ..
                } => (values, objective),
                SolveOutcome::Infeasible => continue,
                SolveOutcome::Unbounded => {
                    if let Some(c) = ctx {
                        c.note_search(pivots_total, refactors_total, nodes as u64);
                    }
                    if let Some(l) = &lane {
                        l.end("solve", pivots_total);
                    }
                    return MipResult::Unbounded;
                }
            };
            if let Some(inc) = &incumbent {
                if objective * sign <= inc.objective * sign + prune_margin(inc.objective) {
                    continue;
                }
            }

            // Branching variable: among fractional integer variables,
            // weight fractionality by the objective coefficient — driving
            // the heaviest undecided placement to a bound degrades the
            // child bounds fastest, which is what best-bound pruning
            // feeds on.
            let frac_var = int_vars
                .iter()
                .map(|&v| {
                    let frac = (values[v.index()] - values[v.index()].round()).abs();
                    (
                        v,
                        frac,
                        frac * problem.variables[v.index()].objective.abs().max(1.0),
                    )
                })
                .filter(|(_, f, _)| *f > INT_TOL)
                .max_by(|a, b| a.2.total_cmp(&b.2))
                .map(|(v, f, _)| (v, f));

            match frac_var {
                None => {
                    // Integer feasible.
                    let better = incumbent
                        .as_ref()
                        .is_none_or(|inc| objective * sign > inc.objective * sign + INT_TOL);
                    if better {
                        let s = MipSolution {
                            objective,
                            values,
                            nodes,
                            proven_optimal: false,
                        };
                        on_incumbent(&s);
                        incumbent = Some(s);
                    }
                }
                Some((v, _)) => {
                    let val = values[v.index()];
                    // Dive toward the nearer integer; the sibling waits on
                    // the heap.
                    let (first, second) = if val - val.floor() >= 0.5 {
                        (val.ceil(), val.floor())
                    } else {
                        (val.floor(), val.ceil())
                    };
                    let mut dive_pins = node.pins.clone();
                    dive_pins.push((v.index(), first));
                    let mut sibling_pins = node.pins;
                    sibling_pins.push((v.index(), second));
                    dive = Some(Node {
                        bound: objective * sign,
                        pins: dive_pins,
                    });
                    heap.push(Node {
                        bound: objective * sign,
                        pins: sibling_pins,
                    });
                }
            }
        }

        let exhausted = heap.is_empty() && dive.is_none();
        let result = match incumbent {
            Some(mut s) => {
                s.nodes = nodes;
                if exhausted {
                    s.proven_optimal = true;
                    MipResult::Optimal(s)
                } else {
                    MipResult::Feasible(s)
                }
            }
            None => {
                // Greedy fallback: round the root relaxation and check.
                greedy_round(problem, &root_values, nodes)
            }
        };
        if let Some(c) = ctx {
            c.note_search(pivots_total, refactors_total, nodes as u64);
        }
        if let Some(l) = &lane {
            l.end("solve", pivots_total);
        }
        if let (Some(c), Some(k)) = (ctx, memo_key) {
            if let MipResult::Optimal(s) | MipResult::Feasible(s) = &result {
                c.solution_store(k, Arc::new(s.clone()));
            }
        }
        result
    }
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

/// Validates a seed incumbent: bounds, integrality of integer variables,
/// and every constraint within a scaled tolerance. Returns the recomputed
/// objective and the values on success.
fn validate_seed(problem: &Problem, values: &[f64]) -> Option<(f64, Vec<f64>)> {
    if values.len() != problem.num_vars() {
        return None;
    }
    for (i, v) in problem.variables.iter().enumerate() {
        let x = values[i];
        if !x.is_finite() || x < v.lower - INT_TOL || x > v.upper + INT_TOL {
            return None;
        }
        if v.integer && (x - x.round()).abs() > INT_TOL {
            return None;
        }
    }
    for c in &problem.constraints {
        let lhs: f64 = c.terms.iter().map(|(v, k)| k * values[v.index()]).sum();
        let tol = 1e-6 * (1.0 + c.rhs.abs());
        let ok = match c.relation {
            Relation::Le => lhs <= c.rhs + tol,
            Relation::Ge => lhs >= c.rhs - tol,
            Relation::Eq => (lhs - c.rhs).abs() <= tol,
        };
        if !ok {
            return None;
        }
    }
    let objective = problem
        .variables
        .iter()
        .enumerate()
        .map(|(i, v)| v.objective * values[i])
        .sum();
    Some((objective, values.to_vec()))
}

/// Rounds integer variables of an LP point and repairs feasibility by
/// flipping binaries greedily (switching offenders to zero). Returns
/// `Feasible` on success, `Infeasible` if the repair fails.
fn greedy_round(problem: &Problem, lp_values: &[f64], nodes: usize) -> MipResult {
    let mut values = lp_values.to_vec();
    for v in problem.integer_vars() {
        values[v.index()] = values[v.index()].round();
    }
    // Repair loop: while some constraint is violated, zero out the binary
    // with the largest contribution to the violation.
    for _ in 0..problem.num_vars() + 1 {
        let mut violated = None;
        for c in &problem.constraints {
            let lhs: f64 = c.terms.iter().map(|(v, k)| k * values[v.index()]).sum();
            let bad = match c.relation {
                Relation::Le => lhs > c.rhs + 1e-6,
                Relation::Ge => lhs < c.rhs - 1e-6,
                Relation::Eq => (lhs - c.rhs).abs() > 1e-6,
            };
            if bad {
                violated = Some(c);
                break;
            }
        }
        let Some(c) = violated else {
            let objective = problem
                .variables
                .iter()
                .enumerate()
                .map(|(i, v)| v.objective * values[i])
                .sum();
            return MipResult::Feasible(MipSolution {
                objective,
                values,
                nodes,
                proven_optimal: false,
            });
        };
        // Flip the binary with the largest |coefficient| that is currently 1
        // (for Le) or 0 (for Ge).
        let want_zero = matches!(c.relation, Relation::Le | Relation::Eq);
        let candidate = c
            .terms
            .iter()
            .filter(|(v, _)| problem.variables[v.index()].integer)
            .filter(|(v, _)| {
                let x = values[v.index()];
                if want_zero {
                    x > 0.5
                } else {
                    x < 0.5
                }
            })
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()));
        match candidate {
            Some((v, _)) => values[v.index()] = if want_zero { 0.0 } else { 1.0 },
            None => return MipResult::Infeasible,
        }
    }
    MipResult::Infeasible
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Relation, Sense};

    #[test]
    fn knapsack_integer_optimum() {
        // max 10a + 6b + 4c s.t. 5a + 4b + 3c <= 7 => a=0,b=1,c=1: 10 vs
        // a=1: 10 (5 used, nothing else fits but c? 5+3=8>7). a+c infeasible.
        // Optimal: b+c = 10 or a alone = 10: both 10.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let b = p.binary("b");
        let c = p.binary("c");
        p.set_objective(a, 10.0);
        p.set_objective(b, 6.0);
        p.set_objective(c, 4.0);
        p.add_constraint(&[(a, 5.0), (b, 4.0), (c, 3.0)], Relation::Le, 7.0);
        let r = Solver::new().solve(&p);
        let s = r.solution().expect("solution");
        assert!((s.objective - 10.0).abs() < 1e-6, "z = {}", s.objective);
        // Solution is integral.
        for v in &s.values {
            assert!((v - v.round()).abs() < 1e-6);
        }
    }

    #[test]
    fn branching_beats_rounding() {
        // max 9a + 9b + 16c s.t. 5a + 5b + 8c <= 10: LP picks c + fractional;
        // integer optimum is a + b = 18.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let b = p.binary("b");
        let c = p.binary("c");
        p.set_objective(a, 9.0);
        p.set_objective(b, 9.0);
        p.set_objective(c, 16.0);
        p.add_constraint(&[(a, 5.0), (b, 5.0), (c, 8.0)], Relation::Le, 10.0);
        let r = Solver::new().solve(&p);
        let s = r.solution().expect("solution");
        assert!((s.objective - 18.0).abs() < 1e-6, "z = {}", s.objective);
        assert!(matches!(r, MipResult::Optimal(_)));
    }

    #[test]
    fn assignment_problem() {
        // 2x2 assignment: costs [[1, 10], [10, 1]]; minimize.
        let mut p = Problem::new(Sense::Minimize);
        let x00 = p.binary("x00");
        let x01 = p.binary("x01");
        let x10 = p.binary("x10");
        let x11 = p.binary("x11");
        p.set_objective(x00, 1.0);
        p.set_objective(x01, 10.0);
        p.set_objective(x10, 10.0);
        p.set_objective(x11, 1.0);
        for row in [[x00, x01], [x10, x11]] {
            p.add_constraint(&[(row[0], 1.0), (row[1], 1.0)], Relation::Eq, 1.0);
        }
        for col in [[x00, x10], [x01, x11]] {
            p.add_constraint(&[(col[0], 1.0), (col[1], 1.0)], Relation::Eq, 1.0);
        }
        let r = Solver::new().solve(&p);
        let s = r.solution().expect("solution");
        assert!((s.objective - 2.0).abs() < 1e-6);
        assert!((s.value(x00) - 1.0).abs() < 1e-6);
        assert!((s.value(x11) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn try_solve_knapsack_that_must_branch() {
        // max 9a + 9b + 16c s.t. 5a + 5b + 8c <= 10: the LP relaxation is
        // fractional (c = 1, a = 0.2), so branch & bound must actually
        // branch to find the integer optimum a + b = 18.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let b = p.binary("b");
        let c = p.binary("c");
        p.set_objective(a, 9.0);
        p.set_objective(b, 9.0);
        p.set_objective(c, 16.0);
        p.add_constraint(&[(a, 5.0), (b, 5.0), (c, 8.0)], Relation::Le, 10.0);
        let s = Solver::new().try_solve(&p).expect("feasible knapsack");
        assert!((s.objective - 18.0).abs() < 1e-6, "z = {}", s.objective);
        assert!(s.proven_optimal);
        assert!(
            s.nodes > 1,
            "must have branched, explored {} nodes",
            s.nodes
        );
    }

    #[test]
    fn node_limit_never_claims_optimality_with_open_nodes() {
        // With a node limit too small to finish the search, the solver must
        // not report Optimal / proven_optimal: open nodes remain on the
        // heap (a popped-but-unexplored node must not be discarded).
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let b = p.binary("b");
        let c = p.binary("c");
        p.set_objective(a, 9.0);
        p.set_objective(b, 9.0);
        p.set_objective(c, 16.0);
        p.add_constraint(&[(a, 5.0), (b, 5.0), (c, 8.0)], Relation::Le, 10.0);
        for limit in 1..4 {
            let r = Solver::new().with_node_limit(limit).solve(&p);
            assert!(
                !matches!(r, MipResult::Optimal(_)),
                "limit {limit}: claimed optimal with open nodes"
            );
            if let Some(s) = r.solution() {
                assert!(!s.proven_optimal, "limit {limit}");
            }
        }
        // A generous limit does prove optimality.
        let s = Solver::new().try_solve(&p).expect("feasible");
        assert!(s.proven_optimal && (s.objective - 18.0).abs() < 1e-6);
    }

    #[test]
    fn try_solve_reports_infeasible() {
        // Two binaries cannot sum to 3: Err(Infeasible), not a panic.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let b = p.binary("b");
        p.set_objective(a, 1.0);
        p.add_constraint(&[(a, 1.0), (b, 1.0)], Relation::Ge, 3.0);
        let err = Solver::new().try_solve(&p).unwrap_err();
        assert!(matches!(err, SmartError::Infeasible { .. }), "{err}");
    }

    #[test]
    fn try_solve_reports_unbounded() {
        // A free continuous variable with positive objective and no upper
        // bound: Err(Unbounded), not a panic.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let y = p.continuous("y", 0.0, f64::INFINITY);
        p.set_objective(a, 1.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(a, 1.0), (y, 1.0)], Relation::Ge, 0.0);
        let err = Solver::new().try_solve(&p).unwrap_err();
        assert!(matches!(err, SmartError::Unbounded { .. }), "{err}");
    }

    #[test]
    fn infeasible_integer_program() {
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let b = p.binary("b");
        p.set_objective(a, 1.0);
        p.add_constraint(&[(a, 1.0), (b, 1.0)], Relation::Ge, 3.0);
        assert_eq!(Solver::new().solve(&p), MipResult::Infeasible);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 3a + y s.t. a + y <= 2.5, y <= 2 (a binary, y continuous):
        // a = 1, y = 1.5 => 4.5.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let y = p.continuous("y", 0.0, 2.0);
        p.set_objective(a, 3.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(a, 1.0), (y, 1.0)], Relation::Le, 2.5);
        let r = Solver::new().solve(&p);
        let s = r.solution().expect("solution");
        assert!((s.objective - 4.5).abs() < 1e-6, "z = {}", s.objective);
    }

    #[test]
    fn node_limit_returns_feasible() {
        // A problem big enough to hit a 1-node limit after the root: the
        // solver should still produce something via incumbent or greedy.
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..12).map(|i| p.binary(&format!("x{i}"))).collect();
        for (i, &v) in vars.iter().enumerate() {
            p.set_objective(v, 1.0 + (i as f64) * 0.1);
        }
        let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(&terms, Relation::Le, 6.0);
        let r = Solver::new().with_node_limit(1).solve(&p);
        assert!(r.solution().is_some());
    }

    #[test]
    fn larger_cover_problem_solves() {
        // Select minimum-weight cover: 20 binaries, pair constraints.
        let mut p = Problem::new(Sense::Minimize);
        let vars: Vec<_> = (0..20).map(|i| p.binary(&format!("x{i}"))).collect();
        for (i, &v) in vars.iter().enumerate() {
            p.set_objective(v, 1.0 + f64::from(u32::try_from(i % 3).unwrap()));
        }
        for i in 0..19 {
            p.add_constraint(&[(vars[i], 1.0), (vars[i + 1], 1.0)], Relation::Ge, 1.0);
        }
        let r = Solver::new().solve(&p);
        let s = r.solution().expect("solution");
        // A valid vertex cover of a path of 20 nodes needs >= 9 nodes.
        let chosen = s.values.iter().filter(|&&v| v > 0.5).count();
        assert!(chosen >= 9);
    }

    fn branchy_knapsack() -> Problem {
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let b = p.binary("b");
        let c = p.binary("c");
        p.set_objective(a, 9.0);
        p.set_objective(b, 9.0);
        p.set_objective(c, 16.0);
        p.add_constraint(&[(a, 5.0), (b, 5.0), (c, 8.0)], Relation::Le, 10.0);
        p
    }

    #[test]
    fn warm_and_cold_searches_agree() {
        let p = branchy_knapsack();
        let warm = Solver::new().try_solve(&p).expect("warm");
        let cold = Solver::new()
            .with_warm_start(false)
            .try_solve(&p)
            .expect("cold");
        assert!((warm.objective - cold.objective).abs() < 1e-9);
        assert!(warm.proven_optimal && cold.proven_optimal);
    }

    #[test]
    fn seeded_incumbent_prunes_and_is_never_lost() {
        let p = branchy_knapsack();
        // Optimal seed: the search only has to prove it.
        let s = Solver::new()
            .with_incumbent(vec![1.0, 1.0, 0.0])
            .try_solve(&p)
            .expect("feasible");
        assert!((s.objective - 18.0).abs() < 1e-9);
        assert!(s.proven_optimal);
        // Suboptimal seed: the search must still find the optimum.
        let s = Solver::new()
            .with_incumbent(vec![0.0, 0.0, 1.0])
            .try_solve(&p)
            .expect("feasible");
        assert!((s.objective - 18.0).abs() < 1e-6);
        // With a 1-node limit and a seed, the seed survives.
        let r = Solver::new()
            .with_incumbent(vec![0.0, 0.0, 1.0])
            .with_node_limit(1)
            .solve(&p);
        let s = r.solution().expect("seed survives");
        assert!(s.objective >= 16.0 - 1e-9);
    }

    #[test]
    fn invalid_seed_is_ignored() {
        let p = branchy_knapsack();
        for bad in [
            vec![1.0, 1.0, 1.0],      // violates the capacity
            vec![0.5, 0.0, 0.0],      // fractional binary
            vec![2.0, 0.0, 0.0],      // out of bounds
            vec![1.0, 1.0],           // wrong arity
            vec![f64::NAN, 0.0, 0.0], // non-finite
        ] {
            let s = Solver::new()
                .with_incumbent(bad.clone())
                .try_solve(&p)
                .expect("solvable");
            assert!(
                (s.objective - 18.0).abs() < 1e-6,
                "seed {bad:?} corrupted the search: {}",
                s.objective
            );
        }
    }

    #[test]
    fn incumbent_callback_observes_seed_and_improvements() {
        let p = branchy_knapsack();
        let mut seen: Vec<f64> = Vec::new();
        let r = Solver::new()
            .with_incumbent(vec![0.0, 0.0, 1.0])
            .solve_with_callback(&p, None, &mut |s| seen.push(s.objective));
        assert!(matches!(r, MipResult::Optimal(_)));
        assert!(seen.len() >= 2, "seed + at least one improvement: {seen:?}");
        assert!((seen[0] - 16.0).abs() < 1e-9, "first is the seed");
        assert!(
            seen.windows(2).all(|w| w[1] > w[0]),
            "monotone improvements: {seen:?}"
        );
        assert!((seen.last().unwrap() - 18.0).abs() < 1e-6);
    }

    #[test]
    fn context_reuses_bases_across_rhs_sweep() {
        // The same knapsack structure at shrinking capacities: every solve
        // after the first should warm-start from the stored basis.
        let ctx = SolverContext::new();
        let mut objectives = Vec::new();
        for cap in [10.0, 9.0, 8.0, 7.0] {
            let mut p = Problem::new(Sense::Maximize);
            let a = p.binary("a");
            let b = p.binary("b");
            let c = p.binary("c");
            p.set_objective(a, 9.0);
            p.set_objective(b, 9.0);
            p.set_objective(c, 16.0);
            p.add_constraint(&[(a, 5.0), (b, 5.0), (c, 8.0)], Relation::Le, cap);
            let s = Solver::new().try_solve_with(&p, &ctx).expect("feasible");
            objectives.push(s.objective);
        }
        // cap 10: a+b = 18; caps 9 and 8: c = 16; cap 7: a alone = 9.
        assert_eq!(objectives, vec![18.0, 16.0, 16.0, 9.0]);
        let stats = ctx.stats();
        assert_eq!(stats.stored_bases, 1, "one structure, one stored basis");
        assert!(
            stats.warm_attempts >= 3,
            "later sweep points warm-start: {stats:?}"
        );
        assert!(stats.warm_hits >= 1, "{stats:?}");
    }

    #[test]
    fn context_solutions_match_contextless_solutions() {
        let ctx = SolverContext::new();
        for cap in [10.0, 7.0, 12.0, 5.0] {
            let mut p = branchy_knapsack();
            p.constraints[0].rhs = cap;
            let with_ctx = Solver::new().solve_with(&p, &ctx);
            let without = Solver::new().solve(&p);
            match (&with_ctx, &without) {
                (MipResult::Optimal(a), MipResult::Optimal(b)) => {
                    assert!(
                        (a.objective - b.objective).abs() < 1e-9,
                        "cap {cap}: {} vs {}",
                        a.objective,
                        b.objective
                    );
                }
                _ => assert_eq!(with_ctx, without, "cap {cap}"),
            }
        }
    }
}
