//! Branch & bound over the LP relaxation, with a greedy-rounding fallback.
//!
//! Best-first search on the most-fractional integer variable. The node
//! limit bounds runtime; if it is hit with an incumbent, the incumbent is
//! returned flagged as near-optimal (the paper's compiler is itself only
//! "near-optimal", Sec. 4.3); if no incumbent exists, a greedy rounding
//! repair pass is attempted.

use crate::problem::{Problem, Relation, Sense};
use crate::simplex::{solve_relaxation, LpResult};
use smart_units::{Result, SmartError};
use std::collections::BinaryHeap;

const INT_TOL: f64 = 1e-6;

/// Solver outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum MipResult {
    /// Proven-optimal integer solution.
    Optimal(MipSolution),
    /// Feasible but not proven optimal (node limit hit).
    Feasible(MipSolution),
    /// No feasible integer point exists.
    Infeasible,
    /// The relaxation is unbounded.
    Unbounded,
}

impl MipResult {
    /// The solution, if any.
    #[must_use]
    pub fn solution(&self) -> Option<&MipSolution> {
        match self {
            Self::Optimal(s) | Self::Feasible(s) => Some(s),
            _ => None,
        }
    }

    /// Converts the outcome into the workspace-wide [`Result`], mapping
    /// [`MipResult::Infeasible`] and [`MipResult::Unbounded`] to their
    /// [`SmartError`] counterparts. The optimal/feasible distinction is
    /// preserved in [`MipSolution::proven_optimal`].
    ///
    /// # Errors
    ///
    /// [`SmartError::Infeasible`] or [`SmartError::Unbounded`],
    /// respectively.
    pub fn into_result(self) -> Result<MipSolution> {
        match self {
            Self::Optimal(s) | Self::Feasible(s) => Ok(s),
            Self::Infeasible => Err(SmartError::infeasible("integer program")),
            Self::Unbounded => Err(SmartError::unbounded("integer program relaxation")),
        }
    }
}

/// An integer-feasible solution.
#[derive(Debug, Clone, PartialEq)]
pub struct MipSolution {
    /// Objective value.
    pub objective: f64,
    /// Variable values in declaration order.
    pub values: Vec<f64>,
    /// Branch & bound nodes explored.
    pub nodes: usize,
    /// `true` when branch & bound proved this solution optimal; `false`
    /// when the node limit stopped the search or the greedy repair pass
    /// produced it.
    pub proven_optimal: bool,
}

impl MipSolution {
    /// Value of a variable.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    #[must_use]
    pub fn value(&self, var: crate::problem::VarId) -> f64 {
        self.values[var.index()]
    }
}

/// Branch & bound solver.
#[derive(Debug, Clone)]
pub struct Solver {
    node_limit: usize,
}

impl Solver {
    /// Creates a solver with the default node limit (20 000).
    #[must_use]
    pub fn new() -> Self {
        Self { node_limit: 20_000 }
    }

    /// Overrides the node limit.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero.
    #[must_use]
    pub fn with_node_limit(mut self, limit: usize) -> Self {
        assert!(limit > 0, "node limit must be positive");
        self.node_limit = limit;
        self
    }

    /// Like [`Solver::solve`], but returns the workspace-wide [`Result`]:
    /// infeasible and unbounded programs become [`SmartError`] values
    /// instead of enum variants the caller has to remember to match.
    ///
    /// # Errors
    ///
    /// [`SmartError::Infeasible`] when no integer-feasible point exists and
    /// [`SmartError::Unbounded`] when the relaxation is unbounded.
    pub fn try_solve(&self, problem: &Problem) -> Result<MipSolution> {
        self.solve(problem).into_result()
    }

    /// Solves the problem.
    #[must_use]
    pub fn solve(&self, problem: &Problem) -> MipResult {
        let n = problem.num_vars();
        let int_vars = problem.integer_vars();
        let sign = match problem.sense {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };

        // Root relaxation.
        let root = match solve_relaxation(problem, &vec![None; n]) {
            LpResult::Optimal(s) => s,
            LpResult::Infeasible => return MipResult::Infeasible,
            LpResult::Unbounded => return MipResult::Unbounded,
        };

        #[derive(Debug)]
        struct Node {
            bound: f64, // objective * sign (higher = more promising)
            pins: Vec<Option<f64>>,
        }
        impl PartialEq for Node {
            fn eq(&self, other: &Self) -> bool {
                self.bound == other.bound
            }
        }
        impl Eq for Node {}
        impl PartialOrd for Node {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Node {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.bound.total_cmp(&other.bound)
            }
        }

        let mut heap = BinaryHeap::new();
        heap.push(Node {
            bound: root.objective * sign,
            pins: vec![None; n],
        });

        let mut incumbent: Option<MipSolution> = None;
        let mut nodes = 0usize;

        // Check the limit before popping: discarding a popped-but-unexplored
        // node would leave the heap empty and misclassify the incumbent as
        // proven optimal below.
        while nodes < self.node_limit {
            let Some(node) = heap.pop() else { break };
            // Bound pruning.
            if let Some(inc) = &incumbent {
                if node.bound <= inc.objective * sign + INT_TOL {
                    continue;
                }
            }
            nodes += 1;
            let lp = match solve_relaxation(problem, &node.pins) {
                LpResult::Optimal(s) => s,
                LpResult::Infeasible => continue,
                LpResult::Unbounded => return MipResult::Unbounded,
            };
            if let Some(inc) = &incumbent {
                if lp.objective * sign <= inc.objective * sign + INT_TOL {
                    continue;
                }
            }

            // Most fractional integer variable.
            let frac_var = int_vars
                .iter()
                .map(|&v| {
                    (
                        v,
                        (lp.values[v.index()] - lp.values[v.index()].round()).abs(),
                    )
                })
                .filter(|(_, f)| *f > INT_TOL)
                .max_by(|a, b| a.1.total_cmp(&b.1));

            match frac_var {
                None => {
                    // Integer feasible.
                    let better = incumbent
                        .as_ref()
                        .is_none_or(|inc| lp.objective * sign > inc.objective * sign + INT_TOL);
                    if better {
                        incumbent = Some(MipSolution {
                            objective: lp.objective,
                            values: lp.values,
                            nodes,
                            proven_optimal: false,
                        });
                    }
                }
                Some((v, _)) => {
                    let val = lp.values[v.index()];
                    for pin in [val.floor(), val.ceil()] {
                        let mut pins = node.pins.clone();
                        pins[v.index()] = Some(pin);
                        heap.push(Node {
                            bound: lp.objective * sign,
                            pins,
                        });
                    }
                }
            }
        }

        match incumbent {
            Some(mut s) => {
                s.nodes = nodes;
                if heap.is_empty() || nodes < self.node_limit {
                    s.proven_optimal = true;
                    MipResult::Optimal(s)
                } else {
                    MipResult::Feasible(s)
                }
            }
            None => {
                // Greedy fallback: round the root relaxation and check.
                greedy_round(problem, &root.values, nodes)
            }
        }
    }
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

/// Rounds integer variables of an LP point and repairs feasibility by
/// flipping binaries greedily (switching offenders to zero). Returns
/// `Feasible` on success, `Infeasible` if the repair fails.
fn greedy_round(problem: &Problem, lp_values: &[f64], nodes: usize) -> MipResult {
    let mut values = lp_values.to_vec();
    for v in problem.integer_vars() {
        values[v.index()] = values[v.index()].round();
    }
    // Repair loop: while some constraint is violated, zero out the binary
    // with the largest contribution to the violation.
    for _ in 0..problem.num_vars() + 1 {
        let mut violated = None;
        for c in &problem.constraints {
            let lhs: f64 = c.terms.iter().map(|(v, k)| k * values[v.index()]).sum();
            let bad = match c.relation {
                Relation::Le => lhs > c.rhs + 1e-6,
                Relation::Ge => lhs < c.rhs - 1e-6,
                Relation::Eq => (lhs - c.rhs).abs() > 1e-6,
            };
            if bad {
                violated = Some(c);
                break;
            }
        }
        let Some(c) = violated else {
            let objective = problem
                .variables
                .iter()
                .enumerate()
                .map(|(i, v)| v.objective * values[i])
                .sum();
            return MipResult::Feasible(MipSolution {
                objective,
                values,
                nodes,
                proven_optimal: false,
            });
        };
        // Flip the binary with the largest |coefficient| that is currently 1
        // (for Le) or 0 (for Ge).
        let want_zero = matches!(c.relation, Relation::Le | Relation::Eq);
        let candidate = c
            .terms
            .iter()
            .filter(|(v, _)| problem.variables[v.index()].integer)
            .filter(|(v, _)| {
                let x = values[v.index()];
                if want_zero {
                    x > 0.5
                } else {
                    x < 0.5
                }
            })
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()));
        match candidate {
            Some((v, _)) => values[v.index()] = if want_zero { 0.0 } else { 1.0 },
            None => return MipResult::Infeasible,
        }
    }
    MipResult::Infeasible
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Problem, Relation, Sense};

    #[test]
    fn knapsack_integer_optimum() {
        // max 10a + 6b + 4c s.t. 5a + 4b + 3c <= 7 => a=0,b=1,c=1: 10 vs
        // a=1: 10 (5 used, nothing else fits but c? 5+3=8>7). a+c infeasible.
        // Optimal: b+c = 10 or a alone = 10: both 10.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let b = p.binary("b");
        let c = p.binary("c");
        p.set_objective(a, 10.0);
        p.set_objective(b, 6.0);
        p.set_objective(c, 4.0);
        p.add_constraint(&[(a, 5.0), (b, 4.0), (c, 3.0)], Relation::Le, 7.0);
        let r = Solver::new().solve(&p);
        let s = r.solution().expect("solution");
        assert!((s.objective - 10.0).abs() < 1e-6, "z = {}", s.objective);
        // Solution is integral.
        for v in &s.values {
            assert!((v - v.round()).abs() < 1e-6);
        }
    }

    #[test]
    fn branching_beats_rounding() {
        // max 9a + 9b + 16c s.t. 5a + 5b + 8c <= 10: LP picks c + fractional;
        // integer optimum is a + b = 18.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let b = p.binary("b");
        let c = p.binary("c");
        p.set_objective(a, 9.0);
        p.set_objective(b, 9.0);
        p.set_objective(c, 16.0);
        p.add_constraint(&[(a, 5.0), (b, 5.0), (c, 8.0)], Relation::Le, 10.0);
        let r = Solver::new().solve(&p);
        let s = r.solution().expect("solution");
        assert!((s.objective - 18.0).abs() < 1e-6, "z = {}", s.objective);
        assert!(matches!(r, MipResult::Optimal(_)));
    }

    #[test]
    fn assignment_problem() {
        // 2x2 assignment: costs [[1, 10], [10, 1]]; minimize.
        let mut p = Problem::new(Sense::Minimize);
        let x00 = p.binary("x00");
        let x01 = p.binary("x01");
        let x10 = p.binary("x10");
        let x11 = p.binary("x11");
        p.set_objective(x00, 1.0);
        p.set_objective(x01, 10.0);
        p.set_objective(x10, 10.0);
        p.set_objective(x11, 1.0);
        for row in [[x00, x01], [x10, x11]] {
            p.add_constraint(&[(row[0], 1.0), (row[1], 1.0)], Relation::Eq, 1.0);
        }
        for col in [[x00, x10], [x01, x11]] {
            p.add_constraint(&[(col[0], 1.0), (col[1], 1.0)], Relation::Eq, 1.0);
        }
        let r = Solver::new().solve(&p);
        let s = r.solution().expect("solution");
        assert!((s.objective - 2.0).abs() < 1e-6);
        assert!((s.value(x00) - 1.0).abs() < 1e-6);
        assert!((s.value(x11) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn try_solve_knapsack_that_must_branch() {
        // max 9a + 9b + 16c s.t. 5a + 5b + 8c <= 10: the LP relaxation is
        // fractional (c = 1, a = 0.2), so branch & bound must actually
        // branch to find the integer optimum a + b = 18.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let b = p.binary("b");
        let c = p.binary("c");
        p.set_objective(a, 9.0);
        p.set_objective(b, 9.0);
        p.set_objective(c, 16.0);
        p.add_constraint(&[(a, 5.0), (b, 5.0), (c, 8.0)], Relation::Le, 10.0);
        let s = Solver::new().try_solve(&p).expect("feasible knapsack");
        assert!((s.objective - 18.0).abs() < 1e-6, "z = {}", s.objective);
        assert!(s.proven_optimal);
        assert!(
            s.nodes > 1,
            "must have branched, explored {} nodes",
            s.nodes
        );
    }

    #[test]
    fn node_limit_never_claims_optimality_with_open_nodes() {
        // With a node limit too small to finish the search, the solver must
        // not report Optimal / proven_optimal: open nodes remain on the
        // heap (a popped-but-unexplored node must not be discarded).
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let b = p.binary("b");
        let c = p.binary("c");
        p.set_objective(a, 9.0);
        p.set_objective(b, 9.0);
        p.set_objective(c, 16.0);
        p.add_constraint(&[(a, 5.0), (b, 5.0), (c, 8.0)], Relation::Le, 10.0);
        for limit in 1..4 {
            let r = Solver::new().with_node_limit(limit).solve(&p);
            assert!(
                !matches!(r, MipResult::Optimal(_)),
                "limit {limit}: claimed optimal with open nodes"
            );
            if let Some(s) = r.solution() {
                assert!(!s.proven_optimal, "limit {limit}");
            }
        }
        // A generous limit does prove optimality.
        let s = Solver::new().try_solve(&p).expect("feasible");
        assert!(s.proven_optimal && (s.objective - 18.0).abs() < 1e-6);
    }

    #[test]
    fn try_solve_reports_infeasible() {
        // Two binaries cannot sum to 3: Err(Infeasible), not a panic.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let b = p.binary("b");
        p.set_objective(a, 1.0);
        p.add_constraint(&[(a, 1.0), (b, 1.0)], Relation::Ge, 3.0);
        let err = Solver::new().try_solve(&p).unwrap_err();
        assert!(matches!(err, SmartError::Infeasible { .. }), "{err}");
    }

    #[test]
    fn try_solve_reports_unbounded() {
        // A free continuous variable with positive objective and no upper
        // bound: Err(Unbounded), not a panic.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let y = p.continuous("y", 0.0, f64::INFINITY);
        p.set_objective(a, 1.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(a, 1.0), (y, 1.0)], Relation::Ge, 0.0);
        let err = Solver::new().try_solve(&p).unwrap_err();
        assert!(matches!(err, SmartError::Unbounded { .. }), "{err}");
    }

    #[test]
    fn infeasible_integer_program() {
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let b = p.binary("b");
        p.set_objective(a, 1.0);
        p.add_constraint(&[(a, 1.0), (b, 1.0)], Relation::Ge, 3.0);
        assert_eq!(Solver::new().solve(&p), MipResult::Infeasible);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 3a + y s.t. a + y <= 2.5, y <= 2 (a binary, y continuous):
        // a = 1, y = 1.5 => 4.5.
        let mut p = Problem::new(Sense::Maximize);
        let a = p.binary("a");
        let y = p.continuous("y", 0.0, 2.0);
        p.set_objective(a, 3.0);
        p.set_objective(y, 1.0);
        p.add_constraint(&[(a, 1.0), (y, 1.0)], Relation::Le, 2.5);
        let r = Solver::new().solve(&p);
        let s = r.solution().expect("solution");
        assert!((s.objective - 4.5).abs() < 1e-6, "z = {}", s.objective);
    }

    #[test]
    fn node_limit_returns_feasible() {
        // A problem big enough to hit a 1-node limit after the root: the
        // solver should still produce something via incumbent or greedy.
        let mut p = Problem::new(Sense::Maximize);
        let vars: Vec<_> = (0..12).map(|i| p.binary(&format!("x{i}"))).collect();
        for (i, &v) in vars.iter().enumerate() {
            p.set_objective(v, 1.0 + (i as f64) * 0.1);
        }
        let terms: Vec<_> = vars.iter().map(|&v| (v, 1.0)).collect();
        p.add_constraint(&terms, Relation::Le, 6.0);
        let r = Solver::new().with_node_limit(1).solve(&p);
        assert!(r.solution().is_some());
    }

    #[test]
    fn larger_cover_problem_solves() {
        // Select minimum-weight cover: 20 binaries, pair constraints.
        let mut p = Problem::new(Sense::Minimize);
        let vars: Vec<_> = (0..20).map(|i| p.binary(&format!("x{i}"))).collect();
        for (i, &v) in vars.iter().enumerate() {
            p.set_objective(v, 1.0 + f64::from(u32::try_from(i % 3).unwrap()));
        }
        for i in 0..19 {
            p.add_constraint(&[(vars[i], 1.0), (vars[i + 1], 1.0)], Relation::Ge, 1.0);
        }
        let r = Solver::new().solve(&p);
        let s = r.solution().expect("solution");
        // A valid vertex cover of a path of 20 nodes needs >= 9 nodes.
        let chosen = s.values.iter().filter(|&&v| v > 0.5).count();
        assert!(chosen >= 9);
    }
}
