//! Compiler output: per-object placements and the derived load-exposure
//! model the evaluator consumes.

// lint:allow-file(index, schedule slots are indexed by positions produced by the same pass)

use crate::lifespan::Lifespan;
use smart_systolic::dag::LayerDag;
use smart_systolic::trace::DataClass;
use smart_units::Time;

/// Where an object is allocated for its whole lifespan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Location {
    /// The class's SHIFT staging array.
    Shift,
    /// The shared RANDOM array.
    Random,
    /// Not SPM-resident: streamed from DRAM on use.
    Dram,
}

impl std::fmt::Display for Location {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Shift => "SHIFT",
            Self::Random => "RANDOM",
            Self::Dram => "DRAM",
        })
    }
}

/// Placement decision for one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Object id.
    pub object: u32,
    /// Chosen location.
    pub location: Location,
}

/// How the schedule was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleSource {
    /// The ILP solver proved optimality.
    IlpOptimal,
    /// The ILP solver hit its node limit; best incumbent used.
    IlpFeasible,
    /// Greedy allocation (baseline schemes or ILP fallback).
    Greedy,
}

/// A compiled layer schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Placement per object, indexed by object id.
    pub placements: Vec<Placement>,
    /// Lifespans used (fixes prefetch distances).
    pub lifespans: Vec<Lifespan>,
    /// Prefetch window `a` the schedule was built with.
    pub prefetch_window: u32,
    /// ILP objective value (time saved, in model units), if solved.
    pub objective: f64,
    /// Provenance.
    pub source: ScheduleSource,
    /// Branch & bound nodes the solver explored to produce this schedule
    /// (0 for greedy allocations — and for ILP schedules whose seeded
    /// greedy incumbent was already provably optimal).
    pub nodes: usize,
}

impl Schedule {
    /// Placement of an object.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn location_of(&self, object: u32) -> Location {
        self.placements[object as usize].location
    }

    /// Bytes allocated to each location across the layer.
    #[must_use]
    pub fn bytes_by_location(&self, dag: &LayerDag) -> (u64, u64, u64) {
        let mut shift = 0;
        let mut random = 0;
        let mut dram = 0;
        for p in &self.placements {
            let b = dag.objects[p.object as usize].bytes;
            match p.location {
                Location::Shift => shift += b,
                Location::Random => random += b,
                Location::Dram => dram += b,
            }
        }
        (shift, random, dram)
    }

    /// Fraction of the layer's bytes the schedule keeps SPM-resident
    /// (SHIFT or RANDOM). Returns `0.0` for an empty or zero-byte DAG
    /// instead of NaN, like [`Schedule::prefetched_fraction`].
    #[must_use]
    pub fn spm_resident_fraction(&self, dag: &LayerDag) -> f64 {
        let (shift, random, dram) = self.bytes_by_location(dag);
        let total = shift + random + dram;
        if total == 0 {
            0.0
        } else {
            (shift + random) as f64 / total as f64
        }
    }

    /// Fraction of SPM-resident bytes whose loads are prefetched at least
    /// one iteration early. Returns `0.0` (not NaN) when nothing is
    /// resident — including degenerate zero-byte DAGs.
    #[must_use]
    pub fn prefetched_fraction(&self, dag: &LayerDag) -> f64 {
        let mut resident = 0u64;
        let mut early = 0u64;
        for p in &self.placements {
            if p.location == Location::Dram {
                continue;
            }
            let o = &dag.objects[p.object as usize];
            if o.class == DataClass::Output {
                continue;
            }
            resident += o.bytes;
            if self.lifespans[p.object as usize].prefetch_distance() >= 1 {
                early += o.bytes;
            }
        }
        if resident == 0 {
            0.0
        } else {
            early as f64 / resident as f64
        }
    }

    /// Exposed (non-overlapped) load time of the layer: for each
    /// SPM-resident object, the part of its load time not hidden behind the
    /// `prefetch_distance` iterations of compute that precede its use.
    ///
    /// `iteration_time` is the compute time of one iteration;
    /// `load_time_of(bytes, location)` prices a load (DRAM bandwidth or
    /// RANDOM array streaming).
    #[must_use]
    pub fn exposed_load_time(
        &self,
        dag: &LayerDag,
        iteration_time: Time,
        load_time_of: impl Fn(u64, Location) -> Time,
    ) -> Time {
        let mut exposed = Time::ZERO;
        for p in &self.placements {
            let o = &dag.objects[p.object as usize];
            if o.class == DataClass::Output {
                continue; // writes drain asynchronously
            }
            let load = load_time_of(o.bytes, p.location);
            let hidden =
                iteration_time * f64::from(self.lifespans[p.object as usize].prefetch_distance());
            exposed += (load - hidden).max(Time::ZERO);
        }
        exposed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifespan::analyze;
    use smart_systolic::dag::LayerDag;
    use smart_systolic::layer::ConvLayer;
    use smart_systolic::mapping::{ArrayShape, LayerMapping};

    fn fixture(a: u32) -> (LayerDag, Schedule) {
        let l = ConvLayer::conv("c", 27, 27, 96, 256, 5, 1, 2);
        let m = LayerMapping::map(&l, ArrayShape::new(64, 256), 1);
        let dag = LayerDag::build(&m, 6);
        let lifespans = analyze(&dag, a);
        let placements = dag
            .objects
            .iter()
            .map(|o| Placement {
                object: o.id,
                location: Location::Shift,
            })
            .collect();
        let schedule = Schedule {
            placements,
            lifespans,
            prefetch_window: a,
            objective: 0.0,
            source: ScheduleSource::Greedy,
            nodes: 0,
        };
        (dag, schedule)
    }

    #[test]
    fn bytes_by_location_sum_to_total() {
        let (dag, s) = fixture(3);
        let (h, r, d) = s.bytes_by_location(&dag);
        let total: u64 = dag.objects.iter().map(|o| o.bytes).sum();
        assert_eq!(h + r + d, total);
        assert_eq!(r, 0);
        assert_eq!(d, 0);
    }

    #[test]
    fn prefetched_fraction_grows_with_window() {
        let (dag1, s1) = fixture(1);
        let (dag3, s3) = fixture(3);
        assert_eq!(s1.prefetched_fraction(&dag1), 0.0);
        assert!(s3.prefetched_fraction(&dag3) > 0.5);
    }

    #[test]
    fn exposure_shrinks_with_prefetch() {
        let load = |bytes: u64, _loc: Location| Time::from_ns(bytes as f64 * 0.01);
        let iter_time = Time::from_us(1.0);
        let (dag1, s1) = fixture(1);
        let (dag3, s3) = fixture(3);
        let e1 = s1.exposed_load_time(&dag1, iter_time, load);
        let e3 = s3.exposed_load_time(&dag3, iter_time, load);
        assert!(e3.as_si() < e1.as_si());
    }

    /// A degenerate DAG whose objects all have zero bytes — the ratio
    /// helpers must return 0.0, not NaN.
    fn zero_byte_fixture() -> (LayerDag, Schedule) {
        let (mut dag, _) = fixture(3);
        for o in &mut dag.objects {
            o.bytes = 0;
        }
        let lifespans = analyze(&dag, 3);
        let placements = dag
            .objects
            .iter()
            .map(|o| Placement {
                object: o.id,
                location: Location::Shift,
            })
            .collect();
        let schedule = Schedule {
            placements,
            lifespans,
            prefetch_window: 3,
            objective: 0.0,
            source: ScheduleSource::Greedy,
            nodes: 0,
        };
        (dag, schedule)
    }

    #[test]
    fn zero_byte_dag_fractions_are_zero_not_nan() {
        let (dag, s) = zero_byte_fixture();
        let prefetched = s.prefetched_fraction(&dag);
        let resident = s.spm_resident_fraction(&dag);
        assert!(!prefetched.is_nan() && !resident.is_nan());
        assert_eq!(prefetched, 0.0);
        assert_eq!(resident, 0.0);
    }

    #[test]
    fn spm_resident_fraction_counts_both_arrays() {
        let (dag, mut s) = fixture(3);
        assert!((s.spm_resident_fraction(&dag) - 1.0).abs() < 1e-12);
        // Push one object to DRAM: the fraction must drop below one.
        s.placements[0].location = Location::Dram;
        let f = s.spm_resident_fraction(&dag);
        assert!(f < 1.0 && f > 0.0);
    }

    #[test]
    fn location_display_names() {
        assert_eq!(Location::Shift.to_string(), "SHIFT");
        assert_eq!(Location::Random.to_string(), "RANDOM");
        assert_eq!(Location::Dram.to_string(), "DRAM");
    }

    #[test]
    fn outputs_excluded_from_exposure() {
        let (dag, s) = fixture(1);
        // A load function that bills everything absurdly: outputs must not
        // contribute.
        let with_outputs: u64 = dag.objects.iter().map(|o| o.bytes).sum();
        let without_outputs: u64 = dag
            .objects
            .iter()
            .filter(|o| o.class != smart_systolic::trace::DataClass::Output)
            .map(|o| o.bytes)
            .sum();
        let e = s.exposed_load_time(&dag, Time::ZERO, |b, _| Time::from_ns(b as f64));
        assert!((e.as_ns() - without_outputs as f64).abs() < 1e-6);
        assert!(without_outputs < with_outputs);
    }
}
