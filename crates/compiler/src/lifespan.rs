//! Lifespan analysis of memory objects on the layer DAG (Sec. 4.3).
//!
//! Unlike prior SPM work that assumes an object is alive for a whole basic
//! block, SMART computes per-object lifespans over the unrolled iteration
//! DAG and *extends them backward* to enable prefetching: with a window of
//! `a` iterations, the weights of iteration `n` may be fetched as early as
//! iteration `n - a` (the paper's `alpha[n+1, n+a]` annotation on edge
//! `e_2n`).

// lint:allow-file(index, interval endpoints are clamped to the layer count before use)

use smart_systolic::dag::{LayerDag, MemoryObject};
use smart_systolic::trace::DataClass;

/// The edge window during which an object may be resident in an SPM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lifespan {
    /// Object id.
    pub object: u32,
    /// First edge index on which the object may be resident (inclusive).
    pub first_edge: u32,
    /// Last edge index on which the object is needed (inclusive).
    pub last_edge: u32,
    /// Earliest iteration the object may be fetched at.
    pub fetch_iteration: u32,
    /// The iteration that uses the object.
    pub use_iteration: u32,
}

impl Lifespan {
    /// Number of edges the object may occupy SPM space on.
    #[must_use]
    pub fn span_edges(&self) -> u32 {
        self.last_edge - self.first_edge + 1
    }

    /// Prefetch distance in iterations.
    #[must_use]
    pub fn prefetch_distance(&self) -> u32 {
        self.use_iteration - self.fetch_iteration
    }
}

/// Computes lifespans for every object of a DAG under prefetch window `a`
/// (`a = 1` means no prefetch, matching Fig. 24's x-axis).
///
/// Read-only inputs/weights of iteration `n` live from edge `2*(n-a+1)`
/// (clamped to 0) through edge `2n+1`. PSums live through their iteration's
/// edges; outputs are produced at iteration `n` and die on the next
/// iteration's first edge (where they are written back).
///
/// # Panics
///
/// Panics if `a` is zero.
#[must_use]
pub fn analyze(dag: &LayerDag, a: u32) -> Vec<Lifespan> {
    assert!(a > 0, "prefetch window must be at least 1");
    dag.objects.iter().map(|o| lifespan_of(dag, o, a)).collect()
}

fn lifespan_of(dag: &LayerDag, o: &MemoryObject, a: u32) -> Lifespan {
    let n = o.iteration;
    let last_iteration = dag.iterations - 1;
    match o.class {
        DataClass::Weight | DataClass::Input => {
            let fetch = n.saturating_sub(a - 1);
            Lifespan {
                object: o.id,
                first_edge: 2 * fetch,
                last_edge: 2 * n + 1,
                fetch_iteration: fetch,
                use_iteration: n,
            }
        }
        DataClass::Psum => {
            // PSums of iteration n accumulate across its folds; they may
            // also be prefetched (read-modify-write) like inputs.
            let fetch = n.saturating_sub(a - 1);
            Lifespan {
                object: o.id,
                first_edge: 2 * fetch,
                last_edge: 2 * n + 1,
                fetch_iteration: fetch,
                use_iteration: n,
            }
        }
        DataClass::Output => {
            // Produced at n, written back on the next iteration's first
            // edge (or on its own compute edge at layer end).
            let end = (n + 1).min(last_iteration);
            Lifespan {
                object: o.id,
                first_edge: 2 * n + 1,
                last_edge: (2 * end).max(2 * n + 1),
                fetch_iteration: n,
                use_iteration: n,
            }
        }
    }
}

/// Bytes resident on a given edge if all objects in `chosen` were placed in
/// the same array (capacity accounting helper).
#[must_use]
pub fn resident_bytes_on_edge(
    dag: &LayerDag,
    lifespans: &[Lifespan],
    chosen: &[u32],
    edge: u32,
) -> u64 {
    chosen
        .iter()
        .filter_map(|&id| {
            let ls = lifespans[id as usize];
            if ls.first_edge <= edge && edge <= ls.last_edge {
                Some(dag.objects[id as usize].bytes)
            } else {
                None
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_systolic::dag::LayerDag;
    use smart_systolic::layer::ConvLayer;
    use smart_systolic::mapping::{ArrayShape, LayerMapping};

    fn dag() -> LayerDag {
        let l = ConvLayer::conv("conv2", 27, 27, 96, 256, 5, 1, 2);
        let m = LayerMapping::map(&l, ArrayShape::new(64, 256), 1);
        LayerDag::build(&m, 8)
    }

    #[test]
    fn no_prefetch_window_is_tight() {
        let d = dag();
        let spans = analyze(&d, 1);
        for ls in &spans {
            let o = &d.objects[ls.object as usize];
            if matches!(o.class, DataClass::Weight | DataClass::Input) {
                assert_eq!(ls.prefetch_distance(), 0);
                assert_eq!(ls.first_edge, 2 * o.iteration);
            }
        }
    }

    #[test]
    fn prefetch_extends_lifespan_backward() {
        let d = dag();
        let a3 = analyze(&d, 3);
        let a1 = analyze(&d, 1);
        // Pick the weight object of iteration 5.
        let o = d
            .objects
            .iter()
            .find(|o| o.class == DataClass::Weight && o.iteration == 5)
            .unwrap();
        let ls3 = a3[o.id as usize];
        let ls1 = a1[o.id as usize];
        assert_eq!(ls3.prefetch_distance(), 2);
        assert_eq!(ls1.prefetch_distance(), 0);
        assert!(ls3.first_edge < ls1.first_edge);
        assert_eq!(ls3.last_edge, ls1.last_edge);
    }

    #[test]
    fn early_iterations_clamp_to_zero() {
        let d = dag();
        let spans = analyze(&d, 4);
        let o = d
            .objects
            .iter()
            .find(|o| o.class == DataClass::Input && o.iteration == 1)
            .unwrap();
        assert_eq!(spans[o.id as usize].fetch_iteration, 0);
    }

    #[test]
    fn outputs_live_until_next_iteration() {
        let d = dag();
        let spans = analyze(&d, 3);
        let o = d
            .objects
            .iter()
            .find(|o| o.class == DataClass::Output && o.iteration == 3)
            .unwrap();
        let ls = spans[o.id as usize];
        assert_eq!(ls.first_edge, 7);
        assert_eq!(ls.last_edge, 8);
    }

    #[test]
    fn resident_bytes_accumulate() {
        let d = dag();
        let spans = analyze(&d, 2);
        let all: Vec<u32> = d.objects.iter().map(|o| o.id).collect();
        let bytes = resident_bytes_on_edge(&d, &spans, &all, 5);
        assert!(bytes > 0);
        // More prefetch => more simultaneous residency.
        let wide = analyze(&d, 5);
        let bytes_wide = resident_bytes_on_edge(&d, &wide, &all, 5);
        assert!(bytes_wide >= bytes);
    }

    #[test]
    #[should_panic(expected = "prefetch window must be at least 1")]
    fn zero_window_panics() {
        let _ = analyze(&dag(), 0);
    }
}
