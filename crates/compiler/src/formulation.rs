//! The ILP formulation of SPM allocation and prefetching (Sec. 4.3,
//! Eq. 5-6), built per layer and solved with `smart-ilp`.
//!
//! Variables: for every memory object `o`, binaries `h_o` (allocated to its
//! class's SHIFT array) and `r_o` (allocated to the shared RANDOM array);
//! unallocated objects stream from DRAM.
//!
//! Objective (Eq. 5): maximize the access-time saving of SPM residency
//! minus the cost of the loads that bring objects in (`T^HD`, `T^RD`,
//! `T^HR` terms — weights arrive from DRAM, inputs/PSums from the RANDOM
//! array or DRAM).
//!
//! Constraints:
//! * placement exclusivity: `h_o + r_o <= 1`;
//! * Eq. 6 consistency is enforced *by construction*: an object's residency
//!   interval is exactly its lifespan window, so it is loaded once at its
//!   fetch edge and stays until its last edge;
//! * SPM size per edge: resident bytes fit the SHIFT array of each class
//!   and the shared RANDOM array on every edge;
//! * SPM bandwidth: bytes fetched at one edge are bounded by the transfer
//!   budget of one iteration;
//! * sub-bank: at most `banks` objects may be fetched into the RANDOM array
//!   on the same edge (conflicting fetches serialize).

// lint:allow-file(index, the formulation indexes object/slot matrices sized by its own constructor)

use crate::lifespan::{analyze, Lifespan};
use crate::schedule::{Location, Placement, Schedule, ScheduleSource};
use smart_ilp::problem::{Problem, Relation, Sense, VarId};
use smart_ilp::solver::{MipSolution, Solver};
use smart_ilp::SolverContext;
use smart_systolic::dag::LayerDag;
use smart_systolic::trace::DataClass;
use smart_units::{Result, SmartError};

/// Cost/capacity parameters of the formulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FormulationParams {
    /// Per-class SHIFT array capacity in bytes.
    pub shift_capacity: u64,
    /// Shared RANDOM array capacity in bytes.
    pub random_capacity: u64,
    /// RANDOM array bank count (sub-bank constraint).
    pub random_banks: u32,
    /// Bytes transferable into SPMs during one iteration (bandwidth
    /// constraint).
    pub bytes_per_iteration: u64,
    /// Prefetch window `a` (>= 1).
    pub prefetch_window: u32,
    /// Relative time saved per byte when streaming from SHIFT instead of
    /// DRAM (the Eq. 5 `T^H_s` coefficient).
    pub shift_saving_per_byte: f64,
    /// Relative time saved per byte when streaming from RANDOM instead of
    /// DRAM (`T^R_s`).
    pub random_saving_per_byte: f64,
    /// Load cost per byte into SHIFT (`T^HD/HR_r`).
    pub shift_load_per_byte: f64,
    /// Load cost per byte into RANDOM (`T^RD_r`).
    pub random_load_per_byte: f64,
}

impl FormulationParams {
    /// The SMART defaults (Table 4 geometry, cost ratios from the access
    /// latencies: SHIFT 0.02 ns/word, RANDOM 0.103 ns/word, DRAM reference
    /// 1.0).
    #[must_use]
    pub fn smart_default() -> Self {
        Self {
            shift_capacity: 32 * 1024,
            random_capacity: 28 * 1024 * 1024,
            random_banks: 256,
            bytes_per_iteration: 4 * 1024 * 1024,
            prefetch_window: 3,
            shift_saving_per_byte: 1.0,
            random_saving_per_byte: 0.9,
            shift_load_per_byte: 0.05,
            random_load_per_byte: 0.1,
        }
    }
}

/// Builds and solves the allocation ILP for one layer DAG with a private,
/// throwaway [`SolverContext`].
///
/// Falls back to the greedy allocator when the solver cannot find a
/// feasible point (the paper's compiler is "near-optimal" as well). Use
/// [`compile_layer_strict`] to surface solver failures instead of silently
/// degrading, and [`compile_layer_ctx`] to share warm-start state across a
/// sweep of related compilations.
///
/// # Panics
///
/// Panics if `params.prefetch_window` is zero.
#[must_use]
pub fn compile_layer(dag: &LayerDag, params: &FormulationParams) -> Schedule {
    compile_layer_ctx(dag, params, &SolverContext::new())
}

/// Like [`compile_layer`], threading a shared [`SolverContext`] through the
/// solver so adjacent compilations (the same layer at different capacities,
/// the ablation's default-vs-contested runs, sensitivity sweeps) warm-start
/// from each other's optimal bases.
///
/// The greedy allocation is computed first and seeded as the solver's
/// initial incumbent, so best-bound pruning starts at node zero and a
/// node-limited search can never return something worse than greedy.
///
/// # Panics
///
/// Panics if `params.prefetch_window` is zero.
#[must_use]
pub fn compile_layer_ctx(
    dag: &LayerDag,
    params: &FormulationParams,
    solver: &SolverContext,
) -> Schedule {
    let lifespans = analyze(dag, params.prefetch_window);
    let greedy = crate::greedy::allocate(dag, params, lifespans.clone());
    match solve_with_lifespans(dag, params, lifespans, &greedy, solver) {
        // The incumbent seed makes the solver's result at least as good as
        // greedy; this guard only survives as a numerical backstop.
        Ok(s) if s.source == ScheduleSource::IlpFeasible && greedy.objective > s.objective => {
            greedy
        }
        Ok(s) => s,
        Err(_) => greedy,
    }
}

/// Builds and solves the allocation ILP for one layer DAG, surfacing
/// failures as [`SmartError`] instead of falling back to the greedy
/// allocator.
///
/// # Errors
///
/// * [`SmartError::InvalidInput`] when `params.prefetch_window` is zero,
/// * [`SmartError::Infeasible`] / [`SmartError::Unbounded`] from the
///   underlying integer program.
pub fn compile_layer_strict(dag: &LayerDag, params: &FormulationParams) -> Result<Schedule> {
    compile_layer_strict_ctx(dag, params, &SolverContext::new())
}

/// Like [`compile_layer_strict`], with a shared [`SolverContext`] (see
/// [`compile_layer_ctx`]).
///
/// # Errors
///
/// As for [`compile_layer_strict`].
pub fn compile_layer_strict_ctx(
    dag: &LayerDag,
    params: &FormulationParams,
    solver: &SolverContext,
) -> Result<Schedule> {
    if params.prefetch_window == 0 {
        return Err(SmartError::invalid_input(
            "prefetch window must be >= 1 iteration",
        ));
    }
    let lifespans = analyze(dag, params.prefetch_window);
    // The greedy allocation seeds the solver's bound here too, so the
    // strict and fallback entry points explore identically and return the
    // same schedules on solvable layers.
    let greedy = crate::greedy::allocate(dag, params, lifespans.clone());
    solve_with_lifespans(dag, params, lifespans, &greedy, solver)
}

/// Shared core of the `compile_layer*` entry points: formulate and solve
/// given already-computed lifespans (the analysis is O(objects x edges) and
/// every entry point needs it), seeding the greedy schedule as the initial
/// incumbent.
fn solve_with_lifespans(
    dag: &LayerDag,
    params: &FormulationParams,
    lifespans: Vec<Lifespan>,
    greedy: &Schedule,
    solver: &SolverContext,
) -> Result<Schedule> {
    let (p, h_vars, r_vars) = build_problem(dag, params, &lifespans);
    let seed = seed_values(dag, greedy, &h_vars, &r_vars, p.num_vars());
    let sol = Solver::new()
        .with_node_limit(2_000)
        .with_incumbent(seed)
        .try_solve_with(&p, solver)?;
    Ok(schedule_from(
        dag, params, lifespans, &sol, &h_vars, &r_vars,
    ))
}

/// Encodes a (greedy) schedule as ILP variable values, for incumbent
/// seeding: `h_o = 1` for SHIFT placements, `r_o = 1` for RANDOM ones.
fn seed_values(
    dag: &LayerDag,
    schedule: &Schedule,
    h_vars: &[VarId],
    r_vars: &[VarId],
    n_vars: usize,
) -> Vec<f64> {
    let mut values = vec![0.0; n_vars];
    for o in &dag.objects {
        match schedule.location_of(o.id) {
            Location::Shift => values[h_vars[o.id as usize].index()] = 1.0,
            Location::Random => values[r_vars[o.id as usize].index()] = 1.0,
            Location::Dram => {}
        }
    }
    values
}

/// Assembles the Eq. 5/6 problem: placement binaries, the saving-minus-load
/// objective, and per-edge capacity / bandwidth / sub-bank constraints.
///
/// Adjacent edges usually see the same live/fetch sets, so the per-edge
/// loops produce long runs of *identical* rows; those are deduplicated
/// before reaching the solver (a duplicate constraint cannot change the
/// feasible region, but every extra row widens the simplex basis).
fn build_problem(
    dag: &LayerDag,
    params: &FormulationParams,
    lifespans: &[Lifespan],
) -> (Problem, Vec<VarId>, Vec<VarId>) {
    let n_objects = dag.objects.len();

    let mut p = Problem::new(Sense::Maximize);
    let mut h_vars = Vec::with_capacity(n_objects);
    let mut r_vars = Vec::with_capacity(n_objects);
    for o in &dag.objects {
        let h = p.binary(&format!("h_{}", o.id));
        let r = p.binary(&format!("r_{}", o.id));
        let bytes = o.bytes as f64;
        // Eq. 5: saving minus load cost, folded per object.
        p.set_objective(
            h,
            bytes * (params.shift_saving_per_byte - params.shift_load_per_byte),
        );
        p.set_objective(
            r,
            bytes * (params.random_saving_per_byte - params.random_load_per_byte),
        );
        p.add_constraint(&[(h, 1.0), (r, 1.0)], Relation::Le, 1.0);
        h_vars.push(h);
        r_vars.push(r);
    }

    let mut seen = std::collections::HashSet::new();
    let mut add_unique = |p: &mut Problem, terms: &[(VarId, f64)], rhs: f64| {
        if terms.is_empty() {
            return;
        }
        let mut key = Vec::with_capacity(terms.len() * 2 + 1);
        for (v, k) in terms {
            key.push(v.index() as u64);
            key.push(k.to_bits());
        }
        key.push(rhs.to_bits());
        if seen.insert(key) {
            p.add_constraint(terms, Relation::Le, rhs);
        }
    };

    let edges = dag.edges.len() as u32;
    for edge in 0..edges {
        // SHIFT capacity per class.
        for class in DataClass::ALL {
            let terms: Vec<_> = dag
                .objects
                .iter()
                .filter(|o| o.class == class)
                .filter(|o| live_on(&lifespans[o.id as usize], edge))
                .map(|o| (h_vars[o.id as usize], o.bytes as f64))
                .collect();
            add_unique(&mut p, &terms, params.shift_capacity as f64);
        }
        // RANDOM capacity (shared).
        let terms: Vec<_> = dag
            .objects
            .iter()
            .filter(|o| live_on(&lifespans[o.id as usize], edge))
            .map(|o| (r_vars[o.id as usize], o.bytes as f64))
            .collect();
        add_unique(&mut p, &terms, params.random_capacity as f64);
        // Bandwidth: objects whose fetch edge is this edge.
        let fetch_terms: Vec<_> = dag
            .objects
            .iter()
            .filter(|o| lifespans[o.id as usize].first_edge == edge)
            .flat_map(|o| {
                [
                    (h_vars[o.id as usize], o.bytes as f64),
                    (r_vars[o.id as usize], o.bytes as f64),
                ]
            })
            .collect();
        add_unique(&mut p, &fetch_terms, params.bytes_per_iteration as f64);
        // Sub-bank: count of simultaneous RANDOM fetches.
        let bank_terms: Vec<_> = dag
            .objects
            .iter()
            .filter(|o| lifespans[o.id as usize].first_edge == edge)
            .map(|o| (r_vars[o.id as usize], 1.0))
            .collect();
        add_unique(&mut p, &bank_terms, f64::from(params.random_banks));
    }

    (p, h_vars, r_vars)
}

/// Decodes a MIP solution into object placements.
fn schedule_from(
    dag: &LayerDag,
    params: &FormulationParams,
    lifespans: Vec<Lifespan>,
    sol: &MipSolution,
    h_vars: &[VarId],
    r_vars: &[VarId],
) -> Schedule {
    let source = if sol.proven_optimal {
        ScheduleSource::IlpOptimal
    } else {
        ScheduleSource::IlpFeasible
    };
    let placements = dag
        .objects
        .iter()
        .map(|o| {
            let location = if sol.value(h_vars[o.id as usize]) > 0.5 {
                Location::Shift
            } else if sol.value(r_vars[o.id as usize]) > 0.5 {
                Location::Random
            } else {
                Location::Dram
            };
            Placement {
                object: o.id,
                location,
            }
        })
        .collect();
    Schedule {
        placements,
        lifespans,
        prefetch_window: params.prefetch_window,
        objective: sol.objective,
        source,
        nodes: sol.nodes,
    }
}

fn live_on(ls: &Lifespan, edge: u32) -> bool {
    ls.first_edge <= edge && edge <= ls.last_edge
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_systolic::layer::ConvLayer;
    use smart_systolic::mapping::{ArrayShape, LayerMapping};

    fn dag_for(layer: &ConvLayer) -> LayerDag {
        let m = LayerMapping::map(layer, ArrayShape::new(64, 256), 1);
        LayerDag::build(&m, 6)
    }

    #[test]
    fn small_layer_fully_resident() {
        // A small layer fits everything in SPM: no object left in DRAM.
        let l = ConvLayer::conv("c", 13, 13, 64, 64, 3, 1, 1);
        let dag = dag_for(&l);
        let s = compile_layer(&dag, &FormulationParams::smart_default());
        assert!(matches!(
            s.source,
            ScheduleSource::IlpOptimal | ScheduleSource::IlpFeasible
        ));
        let (_, _, dram) = s.bytes_by_location(&dag);
        assert_eq!(dram, 0, "everything should be SPM-resident");
    }

    #[test]
    fn shift_preferred_for_fit() {
        // SHIFT has the higher saving, so small objects should prefer it.
        let l = ConvLayer::conv("c", 13, 13, 64, 64, 3, 1, 1);
        let dag = dag_for(&l);
        let s = compile_layer(&dag, &FormulationParams::smart_default());
        let (shift, _, _) = s.bytes_by_location(&dag);
        assert!(shift > 0);
    }

    #[test]
    fn capacity_respected() {
        // Shrink the SHIFT arrays so large objects must go to RANDOM.
        let l = ConvLayer::conv("c", 56, 56, 128, 256, 3, 1, 1);
        let dag = dag_for(&l);
        let mut params = FormulationParams::smart_default();
        params.shift_capacity = 1024;
        let s = compile_layer(&dag, &params);
        // Verify per-edge residency against capacity.
        for edge in 0..dag.edges.len() as u32 {
            for class in DataClass::ALL {
                let resident: u64 = dag
                    .objects
                    .iter()
                    .filter(|o| o.class == class)
                    .filter(|o| s.location_of(o.id) == Location::Shift)
                    .filter(|o| {
                        let ls = s.lifespans[o.id as usize];
                        ls.first_edge <= edge && edge <= ls.last_edge
                    })
                    .map(|o| o.bytes)
                    .sum();
                assert!(
                    resident <= params.shift_capacity,
                    "edge {edge} class {class:?}: {resident} bytes"
                );
            }
        }
    }

    #[test]
    fn tiny_random_array_pushes_data_to_dram() {
        let l = ConvLayer::conv("c", 56, 56, 128, 256, 3, 1, 1);
        let dag = dag_for(&l);
        let mut params = FormulationParams::smart_default();
        params.shift_capacity = 512;
        params.random_capacity = 1024;
        let s = compile_layer(&dag, &params);
        let (_, _, dram) = s.bytes_by_location(&dag);
        assert!(dram > 0, "overflow must fall back to DRAM");
    }

    #[test]
    fn objective_positive_when_spm_used() {
        let l = ConvLayer::conv("c", 13, 13, 64, 64, 3, 1, 1);
        let dag = dag_for(&l);
        let s = compile_layer(&dag, &FormulationParams::smart_default());
        assert!(s.objective > 0.0);
    }

    #[test]
    fn strict_rejects_zero_prefetch_window() {
        let l = ConvLayer::conv("c", 13, 13, 64, 64, 3, 1, 1);
        let dag = dag_for(&l);
        let mut params = FormulationParams::smart_default();
        params.prefetch_window = 0;
        let err = compile_layer_strict(&dag, &params).unwrap_err();
        assert!(matches!(err, SmartError::InvalidInput { .. }), "{err}");
    }

    #[test]
    fn strict_matches_fallback_on_solvable_layers() {
        let l = ConvLayer::conv("c", 13, 13, 64, 64, 3, 1, 1);
        let dag = dag_for(&l);
        let params = FormulationParams::smart_default();
        let strict = compile_layer_strict(&dag, &params).expect("solvable");
        let fallback = compile_layer(&dag, &params);
        assert_eq!(strict.source, fallback.source);
        assert!((strict.objective - fallback.objective).abs() < 1e-9);
    }

    #[test]
    fn prefetch_window_recorded() {
        let l = ConvLayer::conv("c", 13, 13, 64, 64, 3, 1, 1);
        let dag = dag_for(&l);
        let mut params = FormulationParams::smart_default();
        params.prefetch_window = 4;
        let s = compile_layer(&dag, &params);
        assert_eq!(s.prefetch_window, 4);
        assert!(s.prefetched_fraction(&dag) > 0.0);
    }
}
