//! The ILP-based SPM compiler of SMART (Sec. 4.3).
//!
//! Pipeline per convolutional layer:
//!
//! 1. the layer is unrolled into an iteration DAG with memory objects
//!    ([`smart_systolic::dag`], Fig. 15),
//! 2. [`lifespan`] analysis computes each object's residency window,
//!    extended backward by the prefetch window `a`,
//! 3. [`formulation`] builds the Eq. 5/6 ILP (placement objective, per-edge
//!    capacity, bandwidth, and sub-bank constraints) and solves it with
//!    `smart-ilp`,
//! 4. the resulting [`schedule::Schedule`] prices exposed (non-overlapped)
//!    load time for the evaluator; [`greedy`] provides the ideal-static
//!    baseline allocation used by the `Heter`/`Pipe` schemes.
//!
//! # Quick start
//!
//! ```
//! use smart_compiler::formulation::{compile_layer, FormulationParams};
//! use smart_systolic::dag::LayerDag;
//! use smart_systolic::layer::ConvLayer;
//! use smart_systolic::mapping::{ArrayShape, LayerMapping};
//!
//! let layer = ConvLayer::conv("conv3", 13, 13, 256, 384, 3, 1, 1);
//! let mapping = LayerMapping::map(&layer, ArrayShape::new(64, 256), 1);
//! let dag = LayerDag::build(&mapping, 6);
//! let schedule = compile_layer(&dag, &FormulationParams::smart_default());
//! assert!(schedule.objective > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod formulation;
pub mod greedy;
pub mod lifespan;
pub mod schedule;

pub use formulation::{
    compile_layer, compile_layer_ctx, compile_layer_strict, compile_layer_strict_ctx,
    FormulationParams,
};
pub use lifespan::{analyze, resident_bytes_on_edge, Lifespan};
pub use schedule::{Location, Placement, Schedule, ScheduleSource};
pub use smart_ilp::{SolverContext, SolverContextStats};
pub use smart_units::{Result, SmartError};
