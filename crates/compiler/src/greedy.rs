//! Greedy SPM allocation: the "ideal static" baseline of the paper's
//! `Heter`/`Pipe` schemes, and the fallback when the ILP cannot produce a
//! feasible point.
//!
//! Objects are visited largest-saving-first and placed into the first array
//! (SHIFT, then RANDOM) whose per-edge capacity still fits them; leftovers
//! stay in DRAM. No prefetch decisions beyond the window already baked into
//! the lifespans.
//!
//! Beyond serving as a baseline, the greedy schedule seeds branch & bound:
//! `formulation` encodes its placements as ILP variable values and hands
//! them to the solver as the initial incumbent, so best-bound pruning is
//! active from the first node and the search only has to *improve on*
//! greedy rather than rediscover it.

// lint:allow-file(index, greedy allocation walks index pairs bounded by the lane counts it derives)

use crate::formulation::FormulationParams;
use crate::lifespan::Lifespan;
use crate::schedule::{Location, Placement, Schedule, ScheduleSource};
use smart_systolic::dag::LayerDag;
use smart_systolic::trace::DataClass;

/// Greedily allocates the DAG's objects.
#[must_use]
pub fn allocate(dag: &LayerDag, params: &FormulationParams, lifespans: Vec<Lifespan>) -> Schedule {
    let edges = dag.edges.len() as u32;
    // Remaining capacity per edge for each array.
    let mut shift_free: Vec<[i64; 4]> = vec![[params.shift_capacity as i64; 4]; edges as usize];
    let mut random_free: Vec<i64> = vec![params.random_capacity as i64; edges as usize];
    // Per-edge fetch budget (the same bandwidth constraint the ILP has).
    let mut fetch_free: Vec<i64> = vec![params.bytes_per_iteration as i64; edges as usize];

    // Largest objects first (they are hardest to place).
    let mut order: Vec<u32> = dag.objects.iter().map(|o| o.id).collect();
    order.sort_by_key(|&id| std::cmp::Reverse(dag.objects[id as usize].bytes));

    let mut placements = vec![
        Placement {
            object: 0,
            location: Location::Dram,
        };
        dag.objects.len()
    ];
    let mut objective = 0.0;

    for id in order {
        let o = &dag.objects[id as usize];
        let ls = &lifespans[id as usize];
        let class_idx = class_index(o.class);
        let bytes = o.bytes as i64;

        let bandwidth_ok = fetch_free[ls.first_edge as usize] >= bytes;
        let fits_shift = bandwidth_ok
            && (ls.first_edge..=ls.last_edge).all(|e| shift_free[e as usize][class_idx] >= bytes);
        let location = if fits_shift {
            for e in ls.first_edge..=ls.last_edge {
                shift_free[e as usize][class_idx] -= bytes;
            }
            fetch_free[ls.first_edge as usize] -= bytes;
            objective +=
                o.bytes as f64 * (params.shift_saving_per_byte - params.shift_load_per_byte);
            Location::Shift
        } else {
            let fits_random = bandwidth_ok
                && (ls.first_edge..=ls.last_edge).all(|e| random_free[e as usize] >= bytes);
            if fits_random {
                for e in ls.first_edge..=ls.last_edge {
                    random_free[e as usize] -= bytes;
                }
                fetch_free[ls.first_edge as usize] -= bytes;
                objective +=
                    o.bytes as f64 * (params.random_saving_per_byte - params.random_load_per_byte);
                Location::Random
            } else {
                Location::Dram
            }
        };
        placements[id as usize] = Placement {
            object: id,
            location,
        };
    }

    Schedule {
        placements,
        lifespans,
        prefetch_window: params.prefetch_window,
        objective,
        source: ScheduleSource::Greedy,
        nodes: 0,
    }
}

fn class_index(class: DataClass) -> usize {
    match class {
        DataClass::Weight => 0,
        DataClass::Input => 1,
        DataClass::Output => 2,
        DataClass::Psum => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifespan::analyze;
    use smart_systolic::layer::ConvLayer;
    use smart_systolic::mapping::{ArrayShape, LayerMapping};

    fn fixture() -> (LayerDag, FormulationParams) {
        let l = ConvLayer::conv("c", 27, 27, 96, 256, 5, 1, 2);
        let m = LayerMapping::map(&l, ArrayShape::new(64, 256), 1);
        (LayerDag::build(&m, 6), FormulationParams::smart_default())
    }

    #[test]
    fn greedy_places_everything_when_roomy() {
        let (dag, params) = fixture();
        let s = allocate(&dag, &params, analyze(&dag, params.prefetch_window));
        let (_, _, dram) = s.bytes_by_location(&dag);
        assert_eq!(dram, 0);
        assert_eq!(s.source, ScheduleSource::Greedy);
    }

    #[test]
    fn greedy_respects_shift_capacity() {
        let (dag, mut params) = fixture();
        params.shift_capacity = 2048;
        let s = allocate(&dag, &params, analyze(&dag, params.prefetch_window));
        for edge in 0..dag.edges.len() as u32 {
            for class in DataClass::ALL {
                let resident: u64 = dag
                    .objects
                    .iter()
                    .filter(|o| o.class == class)
                    .filter(|o| s.location_of(o.id) == Location::Shift)
                    .filter(|o| {
                        let ls = s.lifespans[o.id as usize];
                        ls.first_edge <= edge && edge <= ls.last_edge
                    })
                    .map(|o| o.bytes)
                    .sum();
                assert!(resident <= params.shift_capacity);
            }
        }
    }

    #[test]
    fn greedy_overflows_to_random_then_dram() {
        let (dag, mut params) = fixture();
        params.shift_capacity = 64;
        params.random_capacity = 4096;
        let s = allocate(&dag, &params, analyze(&dag, params.prefetch_window));
        let (shift, random, dram) = s.bytes_by_location(&dag);
        assert!(random > 0 || dram > 0);
        // SHIFT never exceeds its tiny per-edge capacity times classes and
        // edges (each edge's capacity can be reused by disjoint lifespans).
        assert!(shift <= 64 * 4 * dag.edges.len() as u64);
    }

    #[test]
    fn greedy_objective_nonnegative() {
        let (dag, params) = fixture();
        let s = allocate(&dag, &params, analyze(&dag, params.prefetch_window));
        assert!(s.objective >= 0.0);
    }
}
