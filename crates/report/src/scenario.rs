//! [`Scenario`]: a named sweep over typed evaluation points.
//!
//! A scenario is the *input* side of an experiment: its identity, the axes
//! being swept (human-readable, for `--list` style introspection), and the
//! concrete points to evaluate. The point type is generic — `smart-bench`
//! instantiates it with `(Scheme, ModelId, batch)` grids for the
//! performance figures and with capacity/window values for the sensitivity
//! sweeps — so this layer stays free of accelerator types and the whole
//! engine can be tested with plain integers.

use crate::pool::parallel_map;

/// A named sweep: what is being varied ([`Scenario::axes`]) and the points
/// to evaluate ([`Scenario::points`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario<P> {
    /// Scenario name (usually the experiment name, e.g. `fig18`).
    pub name: String,
    /// Human-readable description of each sweep axis, e.g.
    /// `["model", "scheme"]`.
    pub axes: Vec<String>,
    /// The evaluation points, in presentation order.
    pub points: Vec<P>,
}

impl<P> Scenario<P> {
    /// An empty scenario.
    #[must_use]
    pub fn new(name: impl Into<String>, axes: &[&str]) -> Self {
        Self {
            name: name.into(),
            axes: axes.iter().map(|&a| a.to_owned()).collect(),
            points: Vec::new(),
        }
    }

    /// A scenario over an existing point list.
    #[must_use]
    pub fn over(name: impl Into<String>, axes: &[&str], points: Vec<P>) -> Self {
        Self {
            points,
            ..Self::new(name, axes)
        }
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the scenario has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Evaluates every point on up to `jobs` worker threads, preserving
    /// point order (see [`parallel_map`]). The closure typically closes
    /// over a shared evaluation cache, which deduplicates points that
    /// recur across scenarios.
    pub fn run<R, F>(&self, jobs: usize, f: F) -> Vec<R>
    where
        P: Sync,
        R: Send,
        F: Fn(&P) -> R + Sync,
    {
        parallel_map(jobs, &self.points, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_points_in_order() {
        let s = Scenario::over("squares", &["x"], (0u64..20).collect());
        assert_eq!(s.len(), 20);
        assert!(!s.is_empty());
        let out = s.run(4, |&x| x * x);
        assert_eq!(out[7], 49);
        assert_eq!(out.len(), 20);
    }

    #[test]
    fn axes_are_recorded() {
        let s: Scenario<u8> = Scenario::new("empty", &["model", "scheme"]);
        assert_eq!(s.axes, vec!["model", "scheme"]);
        assert!(s.is_empty());
    }
}
