//! [`ResultTable`]: labelled rows of typed cells, plus the text / CSV /
//! JSON renderers.
//!
//! The text renderer reproduces the fixed-width layout of the paper's
//! figures (per-column width and alignment, a configurable column
//! separator, an optional header row, `key = value` summary lines, and
//! free-text notes), so the per-figure binaries keep printing the familiar
//! reports while tests and scripts consume the typed cells.

use smart_units::{Area, Energy, Frequency, Length, Power, Time};
use std::fmt;

/// Display unit of a [`Value::Quantity`] cell: the scale the cell renders
/// at and the suffix JSON/CSV consumers see. The stored value is always SI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::doc_markdown)]
pub enum Unit {
    /// Picoseconds.
    Ps,
    /// Nanoseconds.
    Ns,
    /// Microseconds.
    Us,
    /// Attojoules.
    Aj,
    /// Femtojoules.
    Fj,
    /// Picojoules.
    Pj,
    /// Joules.
    J,
    /// Nanowatts.
    Nw,
    /// Microwatts.
    Uw,
    /// Milliwatts.
    Mw,
    /// Square millimeters.
    Mm2,
    /// Gigahertz.
    Ghz,
    /// Micrometers.
    Um,
    /// Millimeters.
    Mm,
}

impl Unit {
    /// Display units per SI unit (`display = si * per_si`). A multiplier,
    /// not a divisor, so rendering matches the `smart_units` accessors
    /// (`Time::as_ps` is `si * 1e12`) bit for bit.
    #[must_use]
    pub fn per_si(self) -> f64 {
        match self {
            Self::Ps => 1e12,
            Self::Ns => 1e9,
            Self::Us => 1e6,
            Self::Aj => 1e18,
            Self::Fj => 1e15,
            Self::Pj => 1e12,
            Self::J => 1.0,
            Self::Nw => 1e9,
            Self::Uw => 1e6,
            Self::Mw => 1e3,
            Self::Mm2 => 1e6,
            Self::Ghz => 1e-9,
            Self::Um => 1e6,
            Self::Mm => 1e3,
        }
    }

    /// Display suffix (also the `unit` tag in JSON output).
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            Self::Ps => "ps",
            Self::Ns => "ns",
            Self::Us => "us",
            Self::Aj => "aJ",
            Self::Fj => "fJ",
            Self::Pj => "pJ",
            Self::J => "J",
            Self::Nw => "nW",
            Self::Uw => "uW",
            Self::Mw => "mW",
            Self::Mm2 => "mm2",
            Self::Ghz => "GHz",
            Self::Um => "um",
            Self::Mm => "mm",
        }
    }
}

/// One typed table cell.
///
/// Numeric variants carry their own display precision so a table can mix
/// scales (a 0.02 ns cycle next to a 315 pJ access) without a per-table
/// format string. [`Value::Quantity`] cells remember their SI value and
/// display [`Unit`], which is what makes the JSON output machine-usable
/// and the finite-check meaningful.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Free text (labels, annotated addresses).
    Text(String),
    /// An exact count (banks, repeaters, cycles).
    Count(u64),
    /// A flag (e.g. design-point feasibility).
    Bool(bool),
    /// A dimensionless number at fixed precision (speedups, ratios).
    Num {
        /// The number.
        value: f64,
        /// Digits after the decimal point.
        precision: usize,
    },
    /// A dimensionless number in scientific notation.
    Sci {
        /// The number.
        value: f64,
        /// Digits after the decimal point.
        precision: usize,
    },
    /// A fraction rendered as a percentage (`0.161` renders `16.1%`).
    Percent {
        /// The fraction (1.0 = 100%).
        fraction: f64,
        /// Digits after the decimal point.
        precision: usize,
    },
    /// A physical quantity stored in SI, displayed at a [`Unit`] scale.
    Quantity {
        /// SI value (seconds, joules, watts, square meters, hertz,
        /// meters).
        si: f64,
        /// Display scale and JSON unit tag.
        unit: Unit,
        /// Digits after the decimal point.
        precision: usize,
        /// Whether the rendered cell carries the unit suffix (off when the
        /// column header names the unit).
        show_unit: bool,
    },
}

impl Value {
    /// A text cell.
    #[must_use]
    pub fn text(s: impl Into<String>) -> Self {
        Self::Text(s.into())
    }

    /// A count cell.
    #[must_use]
    pub fn count(n: u64) -> Self {
        Self::Count(n)
    }

    /// A dimensionless fixed-precision cell.
    #[must_use]
    pub fn num(value: f64, precision: usize) -> Self {
        Self::Num { value, precision }
    }

    /// A scientific-notation cell.
    #[must_use]
    pub fn sci(value: f64, precision: usize) -> Self {
        Self::Sci { value, precision }
    }

    /// A percentage cell from a fraction (1.0 = 100%).
    #[must_use]
    pub fn percent(fraction: f64, precision: usize) -> Self {
        Self::Percent {
            fraction,
            precision,
        }
    }

    /// A quantity cell from a raw SI value; the suffix is left to the
    /// column header.
    #[must_use]
    pub fn quantity(si: f64, unit: Unit, precision: usize) -> Self {
        Self::Quantity {
            si,
            unit,
            precision,
            show_unit: false,
        }
    }

    /// Turns on the unit suffix of a [`Value::Quantity`] cell; no-op for
    /// other variants.
    #[must_use]
    pub fn with_unit_suffix(mut self) -> Self {
        if let Self::Quantity { show_unit, .. } = &mut self {
            *show_unit = true;
        }
        self
    }

    /// A [`Time`] cell.
    #[must_use]
    pub fn time(t: Time, unit: Unit, precision: usize) -> Self {
        debug_assert!(matches!(unit, Unit::Ps | Unit::Ns | Unit::Us));
        Self::quantity(t.as_si(), unit, precision)
    }

    /// An [`Energy`] cell.
    #[must_use]
    pub fn energy(e: Energy, unit: Unit, precision: usize) -> Self {
        debug_assert!(matches!(unit, Unit::Aj | Unit::Fj | Unit::Pj | Unit::J));
        Self::quantity(e.as_si(), unit, precision)
    }

    /// A [`Power`] cell.
    #[must_use]
    pub fn power(p: Power, unit: Unit, precision: usize) -> Self {
        debug_assert!(matches!(unit, Unit::Nw | Unit::Uw | Unit::Mw));
        Self::quantity(p.as_si(), unit, precision)
    }

    /// An [`Area`] cell.
    #[must_use]
    pub fn area(a: Area, unit: Unit, precision: usize) -> Self {
        debug_assert!(matches!(unit, Unit::Mm2));
        Self::quantity(a.as_si(), unit, precision)
    }

    /// A [`Frequency`] cell.
    #[must_use]
    pub fn frequency(f: Frequency, unit: Unit, precision: usize) -> Self {
        debug_assert!(matches!(unit, Unit::Ghz));
        Self::quantity(f.as_si(), unit, precision)
    }

    /// A [`Length`] cell.
    #[must_use]
    pub fn length(l: Length, unit: Unit, precision: usize) -> Self {
        debug_assert!(matches!(unit, Unit::Um | Unit::Mm));
        Self::quantity(l.as_si(), unit, precision)
    }

    /// The numeric payload, if any, in its *display* scale (percent cells
    /// report percentage points; quantities report the display-unit value).
    #[must_use]
    pub fn as_display_f64(&self) -> Option<f64> {
        match self {
            Self::Text(_) | Self::Bool(_) => None,
            #[allow(clippy::cast_precision_loss)]
            Self::Count(n) => Some(*n as f64),
            Self::Num { value, .. } | Self::Sci { value, .. } => Some(*value),
            Self::Percent { fraction, .. } => Some(fraction * 100.0),
            Self::Quantity { si, unit, .. } => Some(si * unit.per_si()),
        }
    }

    /// Whether the cell's numeric payload (if any) is finite. Text, count,
    /// and bool cells are trivially finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.as_display_f64().is_none_or(f64::is_finite)
    }

    /// Renders the cell without padding.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Self::Text(s) => s.clone(),
            Self::Count(n) => n.to_string(),
            Self::Bool(b) => b.to_string(),
            Self::Num { value, precision } => format!("{value:.precision$}"),
            Self::Sci { value, precision } => format!("{value:.precision$e}"),
            Self::Percent {
                fraction,
                precision,
            } => format!("{:.precision$}%", fraction * 100.0),
            Self::Quantity {
                si,
                unit,
                precision,
                show_unit,
            } => {
                let v = si * unit.per_si();
                if *show_unit {
                    format!("{v:.precision$} {}", unit.suffix())
                } else {
                    format!("{v:.precision$}")
                }
            }
        }
    }
}

/// Cell alignment within a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right.
    Left,
    /// Pad on the left.
    Right,
}

/// A column of a [`ResultTable`]: header label, alignment, minimum width.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSpec {
    /// Header label (carries the unit when cells omit their suffix).
    pub label: String,
    /// Cell alignment.
    pub align: Align,
    /// Minimum rendered width; longer cells are never truncated.
    pub width: usize,
}

impl ColumnSpec {
    /// A left-aligned column.
    #[must_use]
    pub fn left(label: impl Into<String>, width: usize) -> Self {
        Self {
            label: label.into(),
            align: Align::Left,
            width,
        }
    }

    /// A right-aligned column.
    #[must_use]
    pub fn right(label: impl Into<String>, width: usize) -> Self {
        Self {
            label: label.into(),
            align: Align::Right,
            width,
        }
    }
}

/// A typed experiment result: a titled table of [`Value`] rows plus typed
/// summary lines and free-text notes.
///
/// `Display` renders [`ResultTable::to_text`], so a binary can
/// `print!("{table}")` exactly as it printed the old pre-formatted string.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultTable {
    /// Experiment name (e.g. `fig18`); the key used by the runner.
    pub name: String,
    /// Human-readable title (the figure/table caption).
    pub title: String,
    /// Column specifications.
    pub columns: Vec<ColumnSpec>,
    /// Data rows; every row has one cell per column.
    pub rows: Vec<Vec<Value>>,
    /// Typed key-value lines rendered after the rows as `key = value`.
    pub summary: Vec<(String, Value)>,
    /// Free-text lines rendered last.
    pub notes: Vec<String>,
    /// Separator between rendered cells (default one space).
    pub column_sep: String,
    /// Whether to render the header row (Fig. 16 has none).
    pub show_header: bool,
}

impl ResultTable {
    /// An empty table with the default single-space separator and a
    /// header.
    #[must_use]
    pub fn new(name: impl Into<String>, title: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            title: title.into(),
            columns: Vec::new(),
            rows: Vec::new(),
            summary: Vec::new(),
            notes: Vec::new(),
            column_sep: " ".to_owned(),
            show_header: true,
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row's cell count does not match the column count.
    pub fn push_row(&mut self, cells: Vec<Value>) {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "{}: row has {} cells for {} columns",
            self.name,
            cells.len(),
            self.columns.len()
        );
        self.rows.push(cells);
    }

    /// Appends a `key = value` summary line.
    pub fn push_summary(&mut self, label: impl Into<String>, value: Value) {
        self.summary.push((label.into(), value));
    }

    /// Appends a free-text note line.
    pub fn push_note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Coordinates (`row`, `column`, rendered value) of every non-finite
    /// numeric cell, including summary lines (reported with `row =
    /// rows.len() + i`). An empty result means the table is safe to
    /// publish.
    #[must_use]
    pub fn non_finite_cells(&self) -> Vec<(usize, usize, String)> {
        let mut bad = Vec::new();
        for (r, row) in self.rows.iter().enumerate() {
            for (c, cell) in row.iter().enumerate() {
                if !cell.is_finite() {
                    bad.push((r, c, cell.render()));
                }
            }
        }
        for (i, (label, value)) in self.summary.iter().enumerate() {
            if !value.is_finite() {
                bad.push((
                    self.rows.len() + i,
                    0,
                    format!("{label} = {}", value.render()),
                ));
            }
        }
        bad
    }

    fn pad(cell: &str, spec: &ColumnSpec, last: bool) -> String {
        match spec.align {
            // The final column never grows trailing spaces.
            Align::Left if last => cell.to_owned(),
            Align::Left => format!("{cell:<width$}", width = spec.width),
            Align::Right => format!("{cell:>width$}", width = spec.width),
        }
    }

    /// Renders the fixed-width text report (title, header, rows, summary,
    /// notes), matching the layout of the paper's figure scripts.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let last = self.columns.len().saturating_sub(1);
        if self.show_header && !self.columns.is_empty() {
            let header: Vec<String> = self
                .columns
                .iter()
                .enumerate()
                .map(|(i, c)| Self::pad(&c.label, c, i == last))
                .collect();
            out.push_str(header.join(&self.column_sep).trim_end());
            out.push('\n');
        }
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .zip(&self.columns)
                .enumerate()
                .map(|(i, (v, c))| Self::pad(&v.render(), c, i == last))
                .collect();
            out.push_str(&cells.join(&self.column_sep));
            out.push('\n');
        }
        for (label, value) in &self.summary {
            out.push_str(&format!("{label} = {}\n", value.render()));
        }
        for note in &self.notes {
            out.push_str(note);
            out.push('\n');
        }
        out
    }

    /// Renders RFC-4180-style CSV: one header line of column labels, one
    /// line per row. Numeric cells emit their raw payload at full
    /// precision (quantities in SI, percentages as fractions); the JSON
    /// renderer is the one that carries unit tags.
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn csv_escape(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        fn csv_cell(v: &Value) -> String {
            match v {
                Value::Text(s) => csv_escape(s),
                Value::Count(n) => n.to_string(),
                Value::Bool(b) => b.to_string(),
                Value::Num { value, .. } | Value::Sci { value, .. } => value.to_string(),
                Value::Percent { fraction, .. } => fraction.to_string(),
                Value::Quantity { si, .. } => si.to_string(),
            }
        }
        let mut out = String::new();
        let header: Vec<String> = self.columns.iter().map(|c| csv_escape(&c.label)).collect();
        out.push_str(&header.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(csv_cell).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table as a JSON object (hand-rolled, no dependencies):
    /// `{"name", "title", "columns", "rows", "summary", "notes"}`. Typed
    /// cells become `{"si", "unit"}` objects (quantities), plain numbers
    /// (counts, numbers, percent fractions), strings, or booleans;
    /// non-finite numbers become `null` (and are caught beforehand by
    /// [`ResultTable::non_finite_cells`] wherever the runner checks).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"name\":{},", json_string(&self.name)));
        out.push_str(&format!("\"title\":{},", json_string(&self.title)));
        let cols: Vec<String> = self.columns.iter().map(|c| json_string(&c.label)).collect();
        out.push_str(&format!("\"columns\":[{}],", cols.join(",")));
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|row| {
                let cells: Vec<String> = row.iter().map(json_cell).collect();
                format!("[{}]", cells.join(","))
            })
            .collect();
        out.push_str(&format!("\"rows\":[{}],", rows.join(",")));
        let summary: Vec<String> = self
            .summary
            .iter()
            .map(|(label, value)| {
                format!(
                    "{{\"label\":{},\"value\":{}}}",
                    json_string(label),
                    json_cell(value)
                )
            })
            .collect();
        out.push_str(&format!("\"summary\":[{}],", summary.join(",")));
        let notes: Vec<String> = self.notes.iter().map(|n| json_string(n)).collect();
        out.push_str(&format!("\"notes\":[{}]", notes.join(",")));
        out.push('}');
        out
    }
}

impl fmt::Display for ResultTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

fn json_number(v: f64) -> String {
    if v.is_finite() {
        v.to_string()
    } else {
        "null".to_owned()
    }
}

fn json_cell(v: &Value) -> String {
    match v {
        Value::Text(s) => json_string(s),
        Value::Count(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Num { value, .. } | Value::Sci { value, .. } => json_number(*value),
        Value::Percent { fraction, .. } => json_number(*fraction),
        Value::Quantity { si, unit, .. } => format!(
            "{{\"si\":{},\"unit\":{}}}",
            json_number(*si),
            json_string(unit.suffix())
        ),
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultTable {
        let mut t = ResultTable::new("t", "Title line");
        t.columns = vec![
            ColumnSpec::left("label", 8),
            ColumnSpec::right("num", 10),
            ColumnSpec::right("qty(ps)", 12),
        ];
        t.push_row(vec![
            Value::text("a"),
            Value::num(1.5, 2),
            Value::time(Time::from_ps(103.02), Unit::Ps, 2),
        ]);
        t.push_summary("points", Value::count(1));
        t.push_note("(a note)");
        t
    }

    #[test]
    fn text_layout_matches_figure_style() {
        let t = sample();
        let text = t.to_text();
        // The renderer must reproduce the legacy `write!` column layout.
        let header = format!("{:<8} {:>10} {:>12}", "label", "num", "qty(ps)");
        let row = format!("{:<8} {:>10.2} {:>12.2}", "a", 1.5, 103.02);
        assert_eq!(
            text,
            format!("Title line\n{header}\n{row}\npoints = 1\n(a note)\n")
        );
        assert_eq!(format!("{t}"), text);
    }

    #[test]
    fn right_aligned_percent_matches_legacy_format() {
        // The legacy scripts printed `{:>7.1}%`; a Percent cell
        // right-aligned at width 8 must render identically.
        let p = Value::percent(-0.023, 1);
        assert_eq!(format!("{:>8}", p.render()), format!("{:>7.1}%", -2.3));
    }

    #[test]
    fn csv_escapes_and_emits_si() {
        let mut t = sample();
        t.push_row(vec![
            Value::text("with,comma"),
            Value::percent(0.5, 1),
            Value::quantity(1e-9, Unit::Ps, 2),
        ]);
        let csv = t.to_csv();
        assert!(csv.starts_with("label,num,qty(ps)\n"));
        assert!(csv.contains("\"with,comma\",0.5,0.000000001\n"));
    }

    #[test]
    fn json_is_wellformed_and_typed() {
        let json = sample().to_json();
        assert!(json.contains("\"name\":\"t\""));
        assert!(json.contains("{\"si\":0.000000000103"));
        assert!(json.contains("\"unit\":\"ps\""));
        assert!(json.contains("\"summary\":[{\"label\":\"points\",\"value\":1}]"));
    }

    #[test]
    fn json_escapes_control_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_cells_are_reported() {
        let mut t = sample();
        t.push_row(vec![
            Value::text("bad"),
            Value::num(f64::NAN, 2),
            Value::quantity(f64::INFINITY, Unit::Ps, 2),
        ]);
        t.push_summary("broken", Value::num(f64::NEG_INFINITY, 1));
        let bad = t.non_finite_cells();
        assert_eq!(bad.len(), 3);
        assert_eq!(bad[0].0, 1);
        assert_eq!(bad[0].1, 1);
        // Non-finite numbers degrade to null in JSON rather than emitting
        // invalid tokens.
        assert!(t.to_json().contains("null"));
        assert!(sample().non_finite_cells().is_empty());
    }

    #[test]
    fn row_width_is_enforced() {
        let mut t = sample();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.push_row(vec![Value::count(1)]);
        }));
        assert!(r.is_err());
    }

    #[test]
    fn unit_scales_round_trip() {
        for unit in [
            Unit::Ps,
            Unit::Ns,
            Unit::Aj,
            Unit::Fj,
            Unit::Pj,
            Unit::J,
            Unit::Nw,
            Unit::Uw,
            Unit::Mw,
            Unit::Mm2,
            Unit::Ghz,
            Unit::Um,
            Unit::Mm,
        ] {
            let v = Value::quantity(3.5 / unit.per_si(), unit, 1);
            assert_eq!(v.render(), "3.5");
            assert!(!unit.suffix().is_empty());
        }
    }

    #[test]
    fn headerless_tables_skip_the_header() {
        let mut t = sample();
        t.show_header = false;
        assert!(!t.to_text().contains("label"));
    }
}
