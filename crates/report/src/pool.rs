//! An order-preserving worker pool built on [`std::thread::scope`].
//!
//! The experiment engine fans independent work items (whole experiments,
//! sweep points, model/scheme grid cells) across a bounded number of OS
//! threads. Work is claimed from a shared atomic cursor in small chunks,
//! so uneven item costs balance themselves while cheap items amortize the
//! claim; results land back at their item's index, so callers see the
//! same ordering as a sequential `map`. The calling thread is one of the
//! workers: `jobs` workers spawn only `jobs - 1` threads, and the caller
//! starts claiming items immediately instead of blocking on joins —
//! which is what keeps a small fan-out (few items, trivial `f`) from
//! costing more at `jobs = 4` than at `jobs = 1`.

use smart_units::sync::lock;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

/// Maps `f` over `items` on up to `jobs` workers (the caller plus
/// `jobs - 1` spawned threads), preserving order.
///
/// `jobs <= 1` (or a single item) runs inline on the caller's thread with
/// no synchronization. Threads are scoped, so `f` may borrow from the
/// caller's stack (e.g. a shared evaluation cache).
///
/// # Panics
///
/// Propagates a panic from `f` after all workers finish.
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = jobs.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    // Chunked claiming: ~8 claims per worker over the whole run, but never
    // a chunk so large that one slow worker strands work (uneven costs
    // still balance across the remaining claims).
    let chunk = (items.len() / (workers * 8)).max(1);

    let run = || loop {
        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= items.len() {
            break;
        }
        for (item, slot) in items.iter().zip(&slots).skip(start).take(chunk) {
            let result = f(item);
            *lock(slot) = Some(result);
        }
    };

    std::thread::scope(|scope| {
        for _ in 1..workers {
            scope.spawn(run);
        }
        run(); // the caller is the last worker
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                // lint:allow(panic_freedom, the scope joined every worker and the cursor covers 0..len, so each slot was filled)
                .expect("every index was claimed by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(4, &items, |&x| x * x);
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn sequential_path_matches_parallel() {
        let items: Vec<i32> = (0..17).collect();
        assert_eq!(
            parallel_map(1, &items, |&x| x + 1),
            parallel_map(8, &items, |&x| x + 1)
        );
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<u8> = vec![];
        assert!(parallel_map(4, &none, |&x| x).is_empty());
        assert_eq!(parallel_map(4, &[7], |&x: &i32| x * 2), vec![14]);
    }

    #[test]
    fn chunked_claiming_covers_every_index() {
        // Sizes around the chunking thresholds (chunk > 1 kicks in at
        // items >= workers * 16) and worker counts that do not divide the
        // item count evenly.
        for jobs in [2usize, 3, 4, 7] {
            for len in [2usize, 15, 16, 31, 64, 257] {
                let items: Vec<usize> = (0..len).collect();
                let out = parallel_map(jobs, &items, |&x| x * 3);
                let expected: Vec<usize> = items.iter().map(|&x| x * 3).collect();
                assert_eq!(out, expected, "jobs={jobs} len={len}");
            }
        }
    }

    #[test]
    fn workers_share_borrowed_state() {
        let base = 10usize;
        let items: Vec<usize> = (0..32).collect();
        let out = parallel_map(3, &items, |&x| x + base);
        assert_eq!(out[31], 41);
    }
}
