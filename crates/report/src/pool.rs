//! An order-preserving worker pool built on [`std::thread::scope`].
//!
//! The experiment engine fans independent work items (whole experiments,
//! sweep points, model/scheme grid cells) across a bounded number of OS
//! threads. Work is claimed from a shared atomic cursor, so uneven item
//! costs balance themselves; results land back at their item's index, so
//! callers see the same ordering as a sequential `map`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Maps `f` over `items` on up to `jobs` worker threads, preserving order.
///
/// `jobs <= 1` (or a single item) runs inline on the caller's thread with
/// no synchronization. Threads are scoped, so `f` may borrow from the
/// caller's stack (e.g. a shared evaluation cache).
///
/// # Panics
///
/// Propagates a panic from `f` after all workers finish.
pub fn parallel_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = jobs.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was claimed by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = parallel_map(4, &items, |&x| x * x);
        let expected: Vec<u64> = items.iter().map(|&x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn sequential_path_matches_parallel() {
        let items: Vec<i32> = (0..17).collect();
        assert_eq!(
            parallel_map(1, &items, |&x| x + 1),
            parallel_map(8, &items, |&x| x + 1)
        );
    }

    #[test]
    fn empty_and_singleton() {
        let none: Vec<u8> = vec![];
        assert!(parallel_map(4, &none, |&x| x).is_empty());
        assert_eq!(parallel_map(4, &[7], |&x: &i32| x * 2), vec![14]);
    }

    #[test]
    fn workers_share_borrowed_state() {
        let base = 10usize;
        let items: Vec<usize> = (0..32).collect();
        let out = parallel_map(3, &items, |&x| x + base);
        assert_eq!(out[31], 41);
    }
}
