//! Typed experiment-result layer of the SMART workspace.
//!
//! Every experiment in `smart-bench` *produces data*, not text: a
//! [`ResultTable`] of labelled rows whose cells are typed [`Value`]s
//! (counts, dimensionless numbers, percentages, and unit-carrying physical
//! quantities from [`smart_units`]). Renderers derive the human-readable
//! output from the data — [`ResultTable::to_text`] reproduces the paper's
//! fixed-width figure layout, [`ResultTable::to_csv`] and
//! [`ResultTable::to_json`] feed scripts and plots — so the data can be
//! asserted in tests instead of string-matched.
//!
//! Three things live here:
//!
//! * [`table`] — [`ResultTable`], [`ColumnSpec`], and the typed [`Value`] /
//!   [`Unit`] cell model with the three renderers,
//! * [`scenario`] — [`Scenario`], a named sweep over typed points that runs
//!   its points through a worker pool,
//! * [`pool`] — [`parallel_map`], an order-preserving `std::thread::scope`
//!   worker pool (no dependencies, no unsafe).
//!
//! # Examples
//!
//! ```
//! use smart_report::{Align, ColumnSpec, ResultTable, Unit, Value};
//! use smart_units::Time;
//!
//! let mut t = ResultTable::new("demo", "Demo: a latency table");
//! t.columns = vec![
//!     ColumnSpec::left("stage", 8),
//!     ColumnSpec::right("latency", 12),
//! ];
//! t.push_row(vec![
//!     Value::text("decode"),
//!     Value::time(Time::from_ps(103.02), Unit::Ps, 2),
//! ]);
//! assert!(t.to_text().contains("103.02"));
//! assert!(t.non_finite_cells().is_empty());
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod pool;
pub mod scenario;
pub mod table;

pub use pool::parallel_map;
pub use scenario::Scenario;
pub use table::{Align, ColumnSpec, ResultTable, Unit, Value};
