//! Golden cross-validation tests: the acceptance gates of the replay
//! simulator.
//!
//! 1. On *every* ablation scheme with a heterogeneous SPM — the Fig. 18
//!    set's Heter/Pipe/SMART, all Fig. 7 RANDOM-technology variants, and
//!    the Fig. 24 prefetch windows — the cycle-level replay of the ILP
//!    schedule agrees with the analytic `evaluate()` latency within 1% in
//!    the stall-free regime (idealized RANDOM twin, buffer depth covering
//!    the window).
//! 2. A constrained-bandwidth scenario exposes stalls the analytic model
//!    cannot see: the analytic latency is bandwidth-blind, while the
//!    replay degrades and attributes the loss to data classes.

use smart_core::eval::evaluate;
use smart_core::scheme::{AllocationPolicy, Scheme};
use smart_cryomem::array::RandomArrayKind;
use smart_systolic::models::ModelId;
use smart_timing::{max_layer_deviation, simulate_scheme, TimingConfig};

/// Every heterogeneous ablation scheme in the repo's experiment set.
fn ablation_schemes() -> Vec<Scheme> {
    let mut schemes = vec![Scheme::heter(), Scheme::pipe(), Scheme::smart()];
    // Fig. 7: each RANDOM technology behind the staging arrays.
    for kind in [
        RandomArrayKind::JosephsonCmosSram,
        RandomArrayKind::SheMram,
        RandomArrayKind::Snm,
        RandomArrayKind::Vtm,
    ] {
        schemes.push(Scheme::fig7_hetero(kind, false));
    }
    schemes.push(Scheme::fig7_hetero(RandomArrayKind::Vtm, true));
    // Fig. 24: the prefetch-window sweep.
    for window in 1..=5 {
        let mut s = Scheme::smart();
        s.policy = AllocationPolicy::Prefetch { window };
        schemes.push(s);
    }
    schemes
}

/// Acceptance gate 1: replay == analytic within 1% in the stall-free
/// regime, for every ablation scheme. The buffer depth is set to cover
/// the widest swept prefetch window so the schedule, not the buffer,
/// decides the prefetch distances.
#[test]
fn stall_free_replay_agrees_with_analytic_on_every_ablation_scheme() {
    let model = ModelId::AlexNet.build();
    let cfg = TimingConfig::nominal().with_depth(5);
    for scheme in ablation_schemes() {
        let dev = max_layer_deviation(&scheme, &model, &cfg).expect("heterogeneous scheme");
        assert!(
            dev < 0.01,
            "{} ({:?}): stall-free deviation {:.4} >= 1%",
            scheme.name,
            scheme.policy,
            dev
        );
    }
}

/// Acceptance gate 2: at 10% RANDOM bandwidth the replay exposes large
/// stalls while the analytic evaluator — which has no bandwidth-contention
/// term — reports the very same latency it reports at full bandwidth.
#[test]
fn constrained_bandwidth_exposes_stalls_the_analytic_model_cannot_see() {
    let model = ModelId::AlexNet.build();
    let scheme = Scheme::smart();
    let analytic = evaluate(&scheme, &model, 1);

    let nominal = simulate_scheme(&scheme, &model, &TimingConfig::nominal()).expect("simulates");
    let starved = simulate_scheme(
        &scheme,
        &model,
        &TimingConfig::nominal().with_bandwidth_pct(10),
    )
    .expect("simulates");

    // The replay degrades by several x...
    let slowdown = starved.total_time().as_s() / nominal.total_time().as_s();
    assert!(slowdown > 3.0, "slowdown only {slowdown:.2}x");
    // ...with the loss attributed to exposed per-class stalls...
    let exposed = starved.exposed_total() as f64 / starved.total_cycles() as f64;
    assert!(exposed > 0.5, "exposed fraction {exposed:.2}");
    // ...while the analytic model cannot tell the two configurations
    // apart: the replay under starvation is far beyond its latency.
    assert!(
        starved.total_time().as_s() > 3.0 * analytic.total_time.as_s(),
        "replay {:.1} us vs analytic {:.1} us",
        starved.total_time().as_us(),
        analytic.total_time.as_us()
    );
}

/// The replay is a lower-bounded model: it can never beat the analytic
/// ideal (pure compute) on any ablation scheme.
#[test]
fn replay_never_beats_the_compute_ideal() {
    let model = ModelId::AlexNet.build();
    for scheme in ablation_schemes() {
        let sim = simulate_scheme(&scheme, &model, &TimingConfig::nominal()).expect("simulates");
        for (timing, layer) in sim.layers.iter().zip(&model.layers) {
            let mapping = smart_systolic::mapping::LayerMapping::map(layer, scheme.config.shape, 1);
            assert!(
                timing.total_cycles >= mapping.compute_cycles(),
                "{}/{}: replay {} < ideal {}",
                scheme.name,
                layer.name,
                timing.total_cycles,
                mapping.compute_cycles()
            );
            assert!(timing.is_consistent(), "{}/{}", scheme.name, layer.name);
        }
    }
}

/// Determinism: two independent simulations of the same point are
/// identical, whatever the order (the experiment engine's `--jobs`
/// fan-outs rely on this).
#[test]
fn replay_is_reproducible() {
    let model = ModelId::Vgg16.build();
    let cfg = TimingConfig::nominal().with_bandwidth_pct(50);
    let a = simulate_scheme(&Scheme::smart(), &model, &cfg).expect("simulates");
    let b = simulate_scheme(&Scheme::smart(), &model, &cfg).expect("simulates");
    assert_eq!(a, b);
}
