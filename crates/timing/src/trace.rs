//! Deterministic span derivation for replay timelines.
//!
//! [`trace_model_replay`] converts a finished [`ModelTimingReport`] into
//! a span tree on the virtual replay-cycle clock: one span per layer,
//! tiled exactly by `compute`, `stream stall`, and the per-class exposed
//! stalls. The tree is *derived from the accounting identity*
//! (`total = compute + stream_stall + Σ exposed`, see
//! [`TimingReport::is_consistent`]) rather than recorded inside the
//! replay inner loop — so the replay hot path stays untouched, the
//! timeline is identical whether the report came from a cold replay or a
//! warm [`crate::cache::TimingCache`] hit, and the spans sum to the
//! layer totals by construction.

use crate::report::{ModelTimingReport, TimingReport};
use smart_systolic::trace::DataClass;
use smart_trace::Tracer;

/// Records the replay timeline of `report` onto the lane `lane_name`.
///
/// Layers are laid out back to back starting at virtual cycle 0, each
/// wrapped in a span named after the layer and tiled by its non-zero
/// accounting components in identity order (compute, stream stall, then
/// exposed stalls per [`DataClass::ALL`]). A model-level root span named
/// `"<scheme> <model>"` encloses everything. No-op on a disabled tracer.
pub fn trace_model_replay(report: &ModelTimingReport, tracer: &Tracer, lane_name: &str) {
    if !tracer.is_enabled() {
        return;
    }
    let lane = tracer.lane(lane_name);
    let root = format!("{} {}", report.scheme, report.model);
    lane.begin(&root, 0);
    let mut t = 0u64;
    for layer in &report.layers {
        t = trace_layer(layer, &lane, t);
    }
    lane.end(&root, t);
}

/// Emits one layer's span tree starting at `t`; returns the end cycle.
/// An inconsistent report (components exceeding `total_cycles`) extends
/// the layer span to cover its children so the trace stays valid.
fn trace_layer(layer: &TimingReport, lane: &smart_trace::Lane, t: u64) -> u64 {
    let accounted = layer.compute_cycles + layer.stream_stall_cycles + layer.exposed_total();
    let end = t + layer.total_cycles.max(accounted);
    lane.begin(&layer.name, t);
    let mut cursor = t;
    if layer.compute_cycles > 0 {
        lane.span("compute", cursor, cursor + layer.compute_cycles);
        cursor += layer.compute_cycles;
    }
    if layer.stream_stall_cycles > 0 {
        lane.span("stream stall", cursor, cursor + layer.stream_stall_cycles);
        cursor += layer.stream_stall_cycles;
    }
    for class in DataClass::ALL {
        let cycles = layer.exposed_of(class);
        if cycles > 0 {
            lane.span(
                &format!("exposed {}", class.name()),
                cursor,
                cursor + cycles,
            );
            cursor += cycles;
        }
    }
    lane.end(&layer.name, end);
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_trace::{chrome, EventKind};
    use smart_units::Frequency;

    fn layer(name: &str, compute: u64, stream: u64, exposed: [u64; 4]) -> TimingReport {
        TimingReport {
            name: name.to_owned(),
            total_cycles: compute + stream + exposed.iter().sum::<u64>(),
            compute_cycles: compute,
            stream_stall_cycles: stream,
            exposed_stall_cycles: exposed,
            prefetch_work_cycles: 0,
            prefetch_stall_cycles: 0,
            random_busy_cycles: 0,
        }
    }

    fn model() -> ModelTimingReport {
        ModelTimingReport {
            scheme: "SMART",
            model: "toy".to_owned(),
            clock: Frequency::from_ghz(52.6),
            layers: vec![
                layer("conv1", 100, 10, [5, 0, 0, 5]),
                layer("conv2", 50, 0, [0, 20, 0, 0]),
            ],
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        trace_model_replay(&model(), &tracer, "replay/toy");
        assert_eq!(tracer.event_count(), 0);
    }

    #[test]
    fn spans_tile_the_accounting_identity() {
        let tracer = Tracer::enabled();
        trace_model_replay(&model(), &tracer, "replay/toy");
        let lanes = tracer.lanes();
        let events = &lanes["replay/toy"];
        // Root span covers both layers back to back.
        assert_eq!(events[0].name, "SMART toy");
        assert_eq!(events[0].kind, EventKind::Begin);
        let last = events.last().expect("events");
        assert_eq!((last.name.as_str(), last.ts), ("SMART toy", 190));
        // conv1 [0, 120] tiled compute / stream stall / exposed classes;
        // conv2 starts where conv1 ends. Zero components are skipped.
        let begins: Vec<(&str, u64)> = events
            .iter()
            .filter(|e| e.kind == EventKind::Begin)
            .map(|e| (e.name.as_str(), e.ts))
            .collect();
        assert_eq!(
            begins,
            [
                ("SMART toy", 0),
                ("conv1", 0),
                ("compute", 0),
                ("stream stall", 100),
                ("exposed weights", 110),
                ("exposed psums", 115),
                ("conv2", 120),
                ("compute", 120),
                ("exposed inputs", 170),
            ]
        );
        // The derived tree is a valid, exportable Chrome trace.
        chrome::export(&tracer).expect("valid nesting and timestamps");
    }

    #[test]
    fn same_report_exports_identical_bytes() {
        let export = |_: u32| {
            let tracer = Tracer::enabled();
            trace_model_replay(&model(), &tracer, "replay/toy");
            chrome::export(&tracer).expect("valid trace")
        };
        assert_eq!(export(0), export(1));
    }
}
