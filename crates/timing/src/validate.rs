//! Scheme-level simulation and cross-validation against the analytic
//! evaluator.
//!
//! [`simulate_scheme`] compiles every layer of a model with the ILP
//! compiler (the same Eq. 5/6 formulation the experiments use) and replays
//! the resulting schedules through the scheme's heterogeneous SPM.
//!
//! [`stall_free_variant`] builds the *validation twin* of a scheme: the
//! same geometry with an idealized RANDOM array (vanishing access latency
//! and issue interval). On that twin the analytic evaluator exposes no
//! memory time and the replay hides every prefetch, so the two must agree
//! on every layer — [`max_layer_deviation`] measures how closely they do.
//! On the *real* array the replay sees arbitration and late prefetches the
//! analytic `overlap_fraction` cannot, which is the simulator's purpose.

use crate::cache::TimingCache;
use crate::config::TimingConfig;
use crate::replay::{replay_layer, LayerInstance};
use crate::report::{ModelTimingReport, TimingReport};
use smart_compiler::formulation::{compile_layer_ctx, FormulationParams};
use smart_compiler::SolverContext;
use smart_core::eval::evaluate;
use smart_core::scheme::{AllocationPolicy, Scheme, SpmOrganization};
use smart_spm::hetero::HeterogeneousSpm;
use smart_systolic::dag::LayerDag;
use smart_systolic::layer::CnnModel;
use smart_systolic::mapping::LayerMapping;
use smart_systolic::trace::LayerDemand;
use smart_units::{Result, SmartError, Time};

/// The scheme's heterogeneous SPM, or a typed error for organizations the
/// replay simulator does not model (ideal, pure-SHIFT, pure-RANDOM).
///
/// # Errors
///
/// [`SmartError::InvalidInput`] unless the scheme is heterogeneous.
pub fn hetero_spm(scheme: &Scheme) -> Result<&HeterogeneousSpm> {
    match &scheme.spm {
        SpmOrganization::Heterogeneous(spm) => Ok(spm),
        other => Err(SmartError::invalid_input(format!(
            "timing replay needs a heterogeneous SPM; scheme {} has {other:?}",
            scheme.name
        ))),
    }
}

/// The scheme's prefetch window: the ILP `a` for prefetching policies, 1
/// (no prefetch) for static allocation.
#[must_use]
pub fn prefetch_window(policy: AllocationPolicy) -> u32 {
    match policy {
        AllocationPolicy::Static => 1,
        AllocationPolicy::Prefetch { window } => window.max(1),
    }
}

/// Formulation parameters matching a scheme's SPM geometry and policy, so
/// the replayed schedules are compiled against the hardware they run on.
#[must_use]
pub fn params_for(spm: &HeterogeneousSpm, policy: AllocationPolicy) -> FormulationParams {
    FormulationParams {
        shift_capacity: spm.input_shift.capacity_bytes(),
        random_capacity: spm.random.capacity_bytes,
        random_banks: spm.random.banks,
        prefetch_window: prefetch_window(policy),
        ..FormulationParams::smart_default()
    }
}

/// Compiles and replays every layer of `model` on `scheme`. Layers run
/// sequentially through one shared [`SolverContext`] so adjacent
/// compilations warm-start, and the whole function is deterministic.
///
/// # Errors
///
/// [`SmartError::InvalidInput`] when the scheme's SPM is not
/// heterogeneous.
pub fn simulate_scheme(
    scheme: &Scheme,
    model: &CnnModel,
    cfg: &TimingConfig,
) -> Result<ModelTimingReport> {
    let spm = hetero_spm(scheme)?;
    let params = params_for(spm, scheme.policy);
    let solver = SolverContext::new();
    let layers: Vec<TimingReport> = model
        .layers
        .iter()
        .map(|layer| {
            let mapping = LayerMapping::map(layer, scheme.config.shape, 1);
            let demand = LayerDemand::derive(layer, &mapping);
            let dag = LayerDag::build(&mapping, cfg.max_iterations);
            let schedule = compile_layer_ctx(&dag, &params, &solver);
            replay_layer(
                &LayerInstance {
                    name: &layer.name,
                    mapping: &mapping,
                    demand: &demand,
                    dag: &dag,
                    schedule: &schedule,
                },
                spm,
                scheme.config.frequency,
                cfg,
            )
        })
        .collect();
    Ok(ModelTimingReport {
        scheme: scheme.name,
        model: model.name.clone(),
        clock: scheme.config.frequency,
        layers,
    })
}

/// The validation twin of a scheme: same SPM geometry with an idealized
/// RANDOM array (attosecond access latency and issue interval). The
/// analytic evaluator and the replay simulator must agree on this twin —
/// every RANDOM-side term vanishes on both sides, leaving only compute and
/// SHIFT streaming, which both model word-exactly.
///
/// # Errors
///
/// [`SmartError::InvalidInput`] when the scheme's SPM is not
/// heterogeneous.
pub fn stall_free_variant(scheme: &Scheme) -> Result<Scheme> {
    let spm = hetero_spm(scheme)?;
    let mut idealized = *spm;
    let ideal = Time::from_s(1e-18);
    idealized.random.read_latency = ideal;
    idealized.random.write_latency = ideal;
    idealized.random.issue_interval = ideal;
    Ok(Scheme {
        spm: SpmOrganization::Heterogeneous(idealized),
        ..scheme.clone()
    })
}

/// Cross-validates the replay against the analytic evaluator on the
/// stall-free twin of `scheme`: returns the maximum relative deviation of
/// per-layer total latency (and of the model total) between
/// [`simulate_scheme`] and [`evaluate`].
///
/// # Errors
///
/// [`SmartError::InvalidInput`] when the scheme's SPM is not
/// heterogeneous.
pub fn max_layer_deviation(scheme: &Scheme, model: &CnnModel, cfg: &TimingConfig) -> Result<f64> {
    let twin = stall_free_variant(scheme)?;
    let sim = simulate_scheme(&twin, model, cfg)?;
    let analytic = evaluate(&twin, model, 1);
    let mut worst: f64 = 0.0;
    for (s, a) in sim.layers.iter().zip(&analytic.layers) {
        let sim_t = s.total_time(sim.clock).as_s();
        let ana_t = a.total.as_s();
        worst = worst.max((sim_t - ana_t).abs() / ana_t.max(1e-30));
    }
    let sim_total = sim.total_time().as_s();
    let ana_total = analytic.total_time.as_s();
    worst = worst.max((sim_total - ana_total).abs() / ana_total.max(1e-30));
    Ok(worst)
}

/// Memoized [`simulate_scheme`] for a model id (the entry point the
/// experiment builders use through [`TimingCache`]).
///
/// # Errors
///
/// As for [`simulate_scheme`].
pub fn simulate_model(
    cache: &TimingCache,
    scheme: &Scheme,
    model: smart_systolic::models::ModelId,
    cfg: &TimingConfig,
) -> Result<std::sync::Arc<ModelTimingReport>> {
    cache.report(scheme, model, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_systolic::models::ModelId;

    #[test]
    fn non_heterogeneous_schemes_are_rejected() {
        let err = simulate_scheme(
            &Scheme::supernpu(),
            &ModelId::AlexNet.build(),
            &TimingConfig::nominal(),
        )
        .unwrap_err();
        assert!(matches!(err, SmartError::InvalidInput { .. }), "{err}");
        assert!(hetero_spm(&Scheme::tpu()).is_err());
    }

    #[test]
    fn params_follow_scheme_geometry() {
        let scheme = Scheme::smart();
        let spm = hetero_spm(&scheme).expect("hetero");
        let p = params_for(spm, scheme.policy);
        assert_eq!(p.shift_capacity, 32 * 1024);
        assert_eq!(p.random_capacity, 28 * 1024 * 1024);
        assert_eq!(p.random_banks, 256);
        assert_eq!(p.prefetch_window, 3);
        assert_eq!(params_for(spm, AllocationPolicy::Static).prefetch_window, 1);
    }

    #[test]
    fn simulate_smart_alexnet_is_consistent() {
        let report = simulate_scheme(
            &Scheme::smart(),
            &ModelId::AlexNet.build(),
            &TimingConfig::nominal(),
        )
        .expect("simulates");
        assert_eq!(report.layers.len(), 8);
        for l in &report.layers {
            assert!(l.is_consistent(), "{}: {l:?}", l.name);
            assert!(l.total_cycles > 0);
        }
        assert!(report.total_time().as_s() > 0.0);
    }

    #[test]
    fn stall_free_twin_agrees_with_analytic_within_1pct() {
        let model = ModelId::AlexNet.build();
        for scheme in [Scheme::heter(), Scheme::pipe(), Scheme::smart()] {
            let dev = max_layer_deviation(&scheme, &model, &TimingConfig::nominal())
                .expect("heterogeneous");
            assert!(dev < 0.01, "{}: deviation {:.4}", scheme.name, dev);
        }
    }

    #[test]
    fn simulated_total_never_beats_analytic_ideal() {
        let model = ModelId::AlexNet.build();
        let scheme = Scheme::smart();
        let sim = simulate_scheme(&scheme, &model, &TimingConfig::nominal()).expect("simulates");
        for (s, layer) in sim.layers.iter().zip(&model.layers) {
            let mapping = LayerMapping::map(layer, scheme.config.shape, 1);
            assert!(
                s.compute_cycles == mapping.compute_cycles(),
                "{}: compute drifted",
                layer.name
            );
            assert!(s.total_cycles >= mapping.compute_cycles());
        }
    }
}
