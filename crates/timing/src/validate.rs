//! Scheme-level simulation and cross-validation against the analytic
//! evaluator.
//!
//! [`simulate_scheme`] compiles every layer of a model with the ILP
//! compiler (the same Eq. 5/6 formulation the experiments use) and replays
//! the resulting schedules through the scheme's heterogeneous SPM.
//!
//! [`stall_free_variant`] builds the *validation twin* of a scheme: the
//! same geometry with an idealized RANDOM array (vanishing access latency
//! and issue interval). On that twin the analytic evaluator exposes no
//! memory time and the replay hides every prefetch, so the two must agree
//! on every layer — [`max_layer_deviation`] measures how closely they do.
//! On the *real* array the replay sees arbitration and late prefetches the
//! analytic `overlap_fraction` cannot, which is the simulator's purpose.

use crate::cache::TimingCache;
use crate::config::TimingConfig;
use crate::replay::{LayerInstance, LayerPrepass, RandomCosts};
use crate::report::ModelTimingReport;
use smart_compiler::formulation::{compile_layer_ctx, FormulationParams};
use smart_compiler::schedule::Schedule;
use smart_compiler::SolverContext;
use smart_core::eval::evaluate;
use smart_core::scheme::{AllocationPolicy, Scheme, SpmOrganization};
use smart_spm::hetero::HeterogeneousSpm;
use smart_systolic::dag::LayerDag;
use smart_systolic::layer::{CnnModel, ConvLayer};
use smart_systolic::mapping::LayerMapping;
use smart_systolic::trace::LayerDemand;
use smart_units::{Result, SmartError, Time};

/// The scheme's heterogeneous SPM, or a typed error for organizations the
/// replay simulator does not model (ideal, pure-SHIFT, pure-RANDOM).
///
/// # Errors
///
/// [`SmartError::InvalidInput`] unless the scheme is heterogeneous.
pub fn hetero_spm(scheme: &Scheme) -> Result<&HeterogeneousSpm> {
    match &scheme.spm {
        SpmOrganization::Heterogeneous(spm) => Ok(spm),
        other => Err(SmartError::invalid_input(format!(
            "timing replay needs a heterogeneous SPM; scheme {} has {other:?}",
            scheme.name
        ))),
    }
}

/// The scheme's prefetch window: the ILP `a` for prefetching policies, 1
/// (no prefetch) for static allocation.
#[must_use]
pub fn prefetch_window(policy: AllocationPolicy) -> u32 {
    match policy {
        AllocationPolicy::Static => 1,
        AllocationPolicy::Prefetch { window } => window.max(1),
    }
}

/// Formulation parameters matching a scheme's SPM geometry and policy, so
/// the replayed schedules are compiled against the hardware they run on.
#[must_use]
pub fn params_for(spm: &HeterogeneousSpm, policy: AllocationPolicy) -> FormulationParams {
    FormulationParams {
        shift_capacity: spm.input_shift.capacity_bytes(),
        random_capacity: spm.random.capacity_bytes,
        random_banks: spm.random.banks,
        prefetch_window: prefetch_window(policy),
        ..FormulationParams::smart_default()
    }
}

/// One layer taken through the full compile pipeline: mapping → demand →
/// iteration DAG → ILP schedule. This is the plumbing every consumer of the
/// compiler shares — the replay prepass ([`prepare_model_ctx`]), the
/// stall-breakdown experiment, and the design-space search — deduplicated
/// here so the pipeline exists exactly once.
#[derive(Debug, Clone)]
pub struct LayerCompilation {
    /// The layer's fold mapping onto the scheme's array shape (batch 1).
    pub mapping: LayerMapping,
    /// Streaming demand derived from the mapping.
    pub demand: LayerDemand,
    /// The coarsened iteration DAG.
    pub dag: LayerDag,
    /// The ILP (or provably-optimal greedy) allocation schedule.
    pub schedule: Schedule,
}

impl LayerCompilation {
    /// The config-independent replay prepass of this compilation.
    #[must_use]
    pub fn prepass(
        &self,
        name: &str,
        spm: &HeterogeneousSpm,
        clock: smart_units::Frequency,
    ) -> LayerPrepass {
        LayerPrepass::build(
            &LayerInstance {
                name,
                mapping: &self.mapping,
                demand: &self.demand,
                dag: &self.dag,
                schedule: &self.schedule,
            },
            spm,
            clock,
        )
    }
}

/// Compiles one layer of `scheme` end to end — mapping, demand, DAG, and
/// the ILP allocation schedule — through a caller-owned [`SolverContext`]
/// so adjacent compilations (neighboring design points, other layers of
/// the same model) warm-start from each other's bases.
///
/// # Errors
///
/// [`SmartError::InvalidInput`] when the scheme's SPM is not
/// heterogeneous.
pub fn compile_scheme_layer(
    scheme: &Scheme,
    layer: &ConvLayer,
    max_iterations: u32,
    solver: &SolverContext,
) -> Result<LayerCompilation> {
    let spm = hetero_spm(scheme)?;
    let params = params_for(spm, scheme.policy);
    Ok(compile_layer_for(
        layer,
        scheme,
        &params,
        max_iterations,
        solver,
    ))
}

/// [`compile_scheme_layer`] with the formulation parameters already in
/// hand (sweeps that perturb capacities reuse one `params` across layers).
fn compile_layer_for(
    layer: &ConvLayer,
    scheme: &Scheme,
    params: &FormulationParams,
    max_iterations: u32,
    solver: &SolverContext,
) -> LayerCompilation {
    let mapping = LayerMapping::map(layer, scheme.config.shape, 1);
    let demand = LayerDemand::derive(layer, &mapping);
    let dag = LayerDag::build(&mapping, max_iterations);
    let schedule = compile_layer_ctx(&dag, params, solver);
    LayerCompilation {
        mapping,
        demand,
        dag,
        schedule,
    }
}

/// The compiled, config-independent half of a whole-model simulation: one
/// [`LayerPrepass`] per layer, plus the scheme context the finish passes
/// need ([`Self::replay`] prices each config against the captured SPM and
/// clock). Built once by [`prepare_model`] — which pays the ILP compile —
/// and replayed per [`TimingConfig`], so a sweep compiles each layer once
/// instead of once per point.
#[derive(Debug, Clone)]
pub struct ModelPrepass {
    /// Scheme name (copied into each report).
    scheme: &'static str,
    /// Model name (copied into each report).
    model: String,
    /// The scheme's heterogeneous SPM.
    spm: HeterogeneousSpm,
    /// Accelerator clock.
    clock: smart_units::Frequency,
    /// The DAG coarsening cap the layers were compiled with; every
    /// replayed config must carry the same value.
    max_iterations: u32,
    /// Per-layer prepasses, in model order.
    pub(crate) layers: Vec<LayerPrepass>,
}

impl ModelPrepass {
    /// The per-scenario RANDOM cost table for this prepass's SPM and
    /// clock.
    #[must_use]
    pub fn costs(&self, cfg: &TimingConfig) -> RandomCosts {
        RandomCosts::new(&self.spm, self.clock, cfg)
    }

    /// The per-layer prepasses, in model order.
    #[must_use]
    pub fn layers(&self) -> &[LayerPrepass] {
        &self.layers
    }

    /// The per-config finish pass over every layer, bit-identical to
    /// [`simulate_scheme`] on the same scheme/model.
    ///
    /// # Panics
    ///
    /// Panics when `cfg.max_iterations` differs from the value the layers
    /// were compiled with — the iteration DAG is baked into the prepass,
    /// so such a replay would silently simulate the wrong DAG.
    #[must_use]
    pub fn replay(&self, cfg: &TimingConfig) -> ModelTimingReport {
        assert_eq!(
            cfg.max_iterations, self.max_iterations,
            "prepass compiled with max_iterations {} replayed with {}",
            self.max_iterations, cfg.max_iterations
        );
        let costs = self.costs(cfg);
        ModelTimingReport {
            scheme: self.scheme,
            model: self.model.clone(),
            clock: self.clock,
            layers: self.layers.iter().map(|l| l.replay(&costs, cfg)).collect(),
        }
    }

    /// Replays every config in `cfgs` through the struct-of-arrays sweep
    /// kernel, layer by layer in lockstep. Element `s` is bit-identical
    /// to `self.replay(&cfgs[s])`.
    ///
    /// # Panics
    ///
    /// As for [`ModelPrepass::replay`], for any config in the sweep.
    #[must_use]
    pub fn sweep(&self, cfgs: &[TimingConfig]) -> Vec<ModelTimingReport> {
        for cfg in cfgs {
            assert_eq!(
                cfg.max_iterations, self.max_iterations,
                "prepass compiled with max_iterations {} swept with {}",
                self.max_iterations, cfg.max_iterations
            );
        }
        let costs: Vec<RandomCosts> = cfgs.iter().map(|c| self.costs(c)).collect();
        let mut reports: Vec<ModelTimingReport> = cfgs
            .iter()
            .map(|_| ModelTimingReport {
                scheme: self.scheme,
                model: self.model.clone(),
                clock: self.clock,
                layers: Vec::with_capacity(self.layers.len()),
            })
            .collect();
        for layer in &self.layers {
            let lanes = crate::batch::replay_sweep_layer(layer, &costs, cfgs);
            for (report, lane) in reports.iter_mut().zip(lanes) {
                report.layers.push(lane);
            }
        }
        reports
    }
}

/// Compiles every layer of `model` on `scheme` (the ILP plus the
/// config-independent replay prepass), without replaying anything. Layers
/// run sequentially through one shared [`SolverContext`] so adjacent
/// compilations warm-start, and the whole function is deterministic.
///
/// # Errors
///
/// [`SmartError::InvalidInput`] when the scheme's SPM is not
/// heterogeneous.
pub fn prepare_model(
    scheme: &Scheme,
    model: &CnnModel,
    max_iterations: u32,
) -> Result<ModelPrepass> {
    prepare_model_ctx(scheme, model, max_iterations, &SolverContext::new())
}

/// Like [`prepare_model`], threading a caller-owned [`SolverContext`]
/// through every layer compilation, so bases warm-start across models and
/// — through the context's persisted basis store — across processes.
/// Warm starts never change the optimum (the simplex refactorizes and
/// falls back cold when a stored basis does not fit), so results are
/// identical to [`prepare_model`]'s.
///
/// # Errors
///
/// [`SmartError::InvalidInput`] when the scheme's SPM is not
/// heterogeneous.
pub fn prepare_model_ctx(
    scheme: &Scheme,
    model: &CnnModel,
    max_iterations: u32,
    solver: &SolverContext,
) -> Result<ModelPrepass> {
    let spm = hetero_spm(scheme)?;
    let params = params_for(spm, scheme.policy);
    let layers: Vec<LayerPrepass> = model
        .layers
        .iter()
        .map(|layer| {
            compile_layer_for(layer, scheme, &params, max_iterations, solver).prepass(
                &layer.name,
                spm,
                scheme.config.frequency,
            )
        })
        .collect();
    Ok(ModelPrepass {
        scheme: scheme.name,
        model: model.name.clone(),
        spm: *spm,
        clock: scheme.config.frequency,
        max_iterations,
        layers,
    })
}

/// Compiles and replays every layer of `model` on `scheme`: exactly
/// [`prepare_model`] followed by [`ModelPrepass::replay`], which is what
/// makes delta replay equivalent to full simulation by construction.
///
/// # Errors
///
/// [`SmartError::InvalidInput`] when the scheme's SPM is not
/// heterogeneous.
pub fn simulate_scheme(
    scheme: &Scheme,
    model: &CnnModel,
    cfg: &TimingConfig,
) -> Result<ModelTimingReport> {
    Ok(prepare_model(scheme, model, cfg.max_iterations)?.replay(cfg))
}

/// The validation twin of a scheme: same SPM geometry with an idealized
/// RANDOM array (attosecond access latency and issue interval). The
/// analytic evaluator and the replay simulator must agree on this twin —
/// every RANDOM-side term vanishes on both sides, leaving only compute and
/// SHIFT streaming, which both model word-exactly.
///
/// # Errors
///
/// [`SmartError::InvalidInput`] when the scheme's SPM is not
/// heterogeneous.
pub fn stall_free_variant(scheme: &Scheme) -> Result<Scheme> {
    let spm = hetero_spm(scheme)?;
    let mut idealized = *spm;
    let ideal = Time::from_s(1e-18);
    idealized.random.read_latency = ideal;
    idealized.random.write_latency = ideal;
    idealized.random.issue_interval = ideal;
    Ok(Scheme {
        spm: SpmOrganization::Heterogeneous(idealized),
        ..scheme.clone()
    })
}

/// Cross-validates the replay against the analytic evaluator on the
/// stall-free twin of `scheme`: returns the maximum relative deviation of
/// per-layer total latency (and of the model total) between
/// [`simulate_scheme`] and [`evaluate`].
///
/// # Errors
///
/// [`SmartError::InvalidInput`] when the scheme's SPM is not
/// heterogeneous.
pub fn max_layer_deviation(scheme: &Scheme, model: &CnnModel, cfg: &TimingConfig) -> Result<f64> {
    let twin = stall_free_variant(scheme)?;
    let sim = simulate_scheme(&twin, model, cfg)?;
    let analytic = evaluate(&twin, model, 1);
    let mut worst: f64 = 0.0;
    for (s, a) in sim.layers.iter().zip(&analytic.layers) {
        let sim_t = s.total_time(sim.clock).as_s();
        let ana_t = a.total.as_s();
        worst = worst.max((sim_t - ana_t).abs() / ana_t.max(1e-30));
    }
    let sim_total = sim.total_time().as_s();
    let ana_total = analytic.total_time.as_s();
    worst = worst.max((sim_total - ana_total).abs() / ana_total.max(1e-30));
    Ok(worst)
}

/// Memoized [`simulate_scheme`] for a model id (the entry point the
/// experiment builders use through [`TimingCache`]).
///
/// # Errors
///
/// As for [`simulate_scheme`].
pub fn simulate_model(
    cache: &TimingCache,
    scheme: &Scheme,
    model: smart_systolic::models::ModelId,
    cfg: &TimingConfig,
) -> Result<std::sync::Arc<ModelTimingReport>> {
    cache.report(scheme, model, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_systolic::models::ModelId;

    #[test]
    fn non_heterogeneous_schemes_are_rejected() {
        let err = simulate_scheme(
            &Scheme::supernpu(),
            &ModelId::AlexNet.build(),
            &TimingConfig::nominal(),
        )
        .unwrap_err();
        assert!(matches!(err, SmartError::InvalidInput { .. }), "{err}");
        assert!(hetero_spm(&Scheme::tpu()).is_err());
    }

    #[test]
    fn params_follow_scheme_geometry() {
        let scheme = Scheme::smart();
        let spm = hetero_spm(&scheme).expect("hetero");
        let p = params_for(spm, scheme.policy);
        assert_eq!(p.shift_capacity, 32 * 1024);
        assert_eq!(p.random_capacity, 28 * 1024 * 1024);
        assert_eq!(p.random_banks, 256);
        assert_eq!(p.prefetch_window, 3);
        assert_eq!(params_for(spm, AllocationPolicy::Static).prefetch_window, 1);
    }

    #[test]
    fn simulate_smart_alexnet_is_consistent() {
        let report = simulate_scheme(
            &Scheme::smart(),
            &ModelId::AlexNet.build(),
            &TimingConfig::nominal(),
        )
        .expect("simulates");
        assert_eq!(report.layers.len(), 8);
        for l in &report.layers {
            assert!(l.is_consistent(), "{}: {l:?}", l.name);
            assert!(l.total_cycles > 0);
        }
        assert!(report.total_time().as_s() > 0.0);
    }

    #[test]
    fn prepared_model_replays_identically_across_configs() {
        let scheme = Scheme::smart();
        let model = ModelId::AlexNet.build();
        let nominal = TimingConfig::nominal();
        let prepass = prepare_model(&scheme, &model, nominal.max_iterations).expect("prepares");
        for cfg in [
            nominal,
            nominal.with_depth(1),
            nominal.with_bandwidth_pct(25),
            nominal.with_depth(5).with_bandwidth_pct(400),
        ] {
            let delta = prepass.replay(&cfg);
            let full = simulate_scheme(&scheme, &model, &cfg).expect("simulates");
            assert_eq!(delta, full, "{cfg:?}");
        }
    }

    #[test]
    #[should_panic(expected = "max_iterations")]
    fn replaying_a_foreign_dag_depth_is_rejected() {
        let prepass = prepare_model(&Scheme::smart(), &ModelId::AlexNet.build(), 6).expect("ok");
        let mut cfg = TimingConfig::nominal();
        cfg.max_iterations = 4;
        let _ = prepass.replay(&cfg);
    }

    #[test]
    fn stall_free_twin_agrees_with_analytic_within_1pct() {
        let model = ModelId::AlexNet.build();
        for scheme in [Scheme::heter(), Scheme::pipe(), Scheme::smart()] {
            let dev = max_layer_deviation(&scheme, &model, &TimingConfig::nominal())
                .expect("heterogeneous");
            assert!(dev < 0.01, "{}: deviation {:.4}", scheme.name, dev);
        }
    }

    #[test]
    fn simulated_total_never_beats_analytic_ideal() {
        let model = ModelId::AlexNet.build();
        let scheme = Scheme::smart();
        let sim = simulate_scheme(&scheme, &model, &TimingConfig::nominal()).expect("simulates");
        for (s, layer) in sim.layers.iter().zip(&model.layers) {
            let mapping = LayerMapping::map(layer, scheme.config.shape, 1);
            assert!(
                s.compute_cycles == mapping.compute_cycles(),
                "{}: compute drifted",
                layer.name
            );
            assert!(s.total_cycles >= mapping.compute_cycles());
        }
    }
}
