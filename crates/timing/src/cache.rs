//! [`TimingCache`]: a thread-safe memoization layer over
//! [`crate::validate::simulate_scheme`], mirroring
//! `smart_core::cache::EvalCache`.
//!
//! The timing experiments replay the same `(scheme, model, config)` points
//! repeatedly — the nominal SMART replay is the baseline row of both the
//! buffer-depth sweep and the bandwidth sweep — so replays are keyed on
//! the full scheme/config values and shared as [`Arc`]s across the
//! experiment runner's worker threads. Errors (non-heterogeneous schemes)
//! are not cached.

use crate::config::TimingConfig;
use crate::report::ModelTimingReport;
use crate::validate::simulate_scheme;
use smart_core::scheme::Scheme;
use smart_systolic::models::ModelId;
use smart_units::Result;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss/size counters of a [`TimingCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingCacheStats {
    /// Lookups served from the map.
    pub hits: u64,
    /// Lookups that ran the replay simulator.
    pub misses: u64,
    /// Distinct `(Scheme, ModelId, TimingConfig)` points stored.
    pub entries: usize,
}

/// A memoized, thread-safe front end to the replay simulator.
#[derive(Debug, Default)]
pub struct TimingCache {
    map: Mutex<HashMap<(Scheme, ModelId, TimingConfig), Arc<ModelTimingReport>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TimingCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The memoized equivalent of
    /// `simulate_scheme(scheme, &model.build(), cfg)`.
    ///
    /// # Errors
    ///
    /// [`smart_units::SmartError::InvalidInput`] when the scheme's SPM is
    /// not heterogeneous (the error is recomputed, never cached).
    ///
    /// # Panics
    ///
    /// Panics if the map mutex was poisoned by a panicking replay on
    /// another thread.
    pub fn report(
        &self,
        scheme: &Scheme,
        model: ModelId,
        cfg: &TimingConfig,
    ) -> Result<Arc<ModelTimingReport>> {
        let key = (scheme.clone(), model, *cfg);
        if let Some(found) = self.map.lock().expect("timing cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(found));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let report = Arc::new(simulate_scheme(scheme, &model.build(), cfg)?);
        Ok(Arc::clone(
            self.map
                .lock()
                .expect("timing cache poisoned")
                .entry(key)
                .or_insert(report),
        ))
    }

    /// Current counters.
    ///
    /// # Panics
    ///
    /// Panics if the map mutex was poisoned.
    #[must_use]
    pub fn stats(&self) -> TimingCacheStats {
        TimingCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().expect("timing cache poisoned").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits_and_shares() {
        let cache = TimingCache::new();
        let scheme = Scheme::smart();
        let cfg = TimingConfig::nominal();
        let a = cache.report(&scheme, ModelId::AlexNet, &cfg).expect("ok");
        let b = cache.report(&scheme, ModelId::AlexNet, &cfg).expect("ok");
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn config_is_part_of_the_key() {
        let cache = TimingCache::new();
        let scheme = Scheme::smart();
        let nominal = cache
            .report(&scheme, ModelId::AlexNet, &TimingConfig::nominal())
            .expect("ok");
        let slow = cache
            .report(
                &scheme,
                ModelId::AlexNet,
                &TimingConfig::nominal().with_bandwidth_pct(10),
            )
            .expect("ok");
        assert!(slow.total_cycles() > nominal.total_cycles());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = TimingCache::new();
        let cfg = TimingConfig::nominal();
        assert!(cache
            .report(&Scheme::supernpu(), ModelId::AlexNet, &cfg)
            .is_err());
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn cached_equals_uncached() {
        let cache = TimingCache::new();
        let scheme = Scheme::pipe();
        let cfg = TimingConfig::nominal();
        let direct =
            crate::validate::simulate_scheme(&scheme, &ModelId::AlexNet.build(), &cfg).expect("ok");
        let cached = cache.report(&scheme, ModelId::AlexNet, &cfg).expect("ok");
        assert_eq!(*cached, direct);
    }
}
