//! [`TimingCache`]: a thread-safe, single-flight memoization layer over
//! [`crate::validate::simulate_scheme`], mirroring
//! `smart_core::cache::EvalCache`.
//!
//! The timing experiments replay the same `(scheme, model, config)` points
//! repeatedly — the nominal SMART replay is the baseline row of both the
//! buffer-depth sweep and the bandwidth sweep — so replays are keyed on
//! the full scheme/config values and shared as [`Arc`]s across the
//! experiment runner's worker threads. Errors (non-heterogeneous schemes)
//! are not cached.
//!
//! Concurrent misses on one key are **single-flight**: the map stores an
//! [`OnceLock`] cell per key, so the first thread to claim a cell runs the
//! replay while every other thread blocks on the same cell and shares the
//! result — the old drop-the-lock-then-insert window that let two threads
//! replay the same model twice is gone (`concurrent_misses_replay_once`
//! pins this).
//!
//! Two more tiers sit behind the exact-key map:
//!
//! * a **warm store** of content-hash-keyed reports loaded from a previous
//!   process via [`crate::persist`] — consulted on a miss before the
//!   replay runs, so a `--cache-dir` run starts warm;
//! * the **sweep path** ([`TimingCache::sweep`]): uncached points of a
//!   config sweep are compiled once per `(scheme, model)` through
//!   [`crate::validate::prepare_model`] and replayed by the batched
//!   struct-of-arrays kernel, instead of paying one full
//!   `simulate_scheme` per point.

// lint:allow-file(index, sweep slots are allocated one per requested config before being indexed)

use crate::config::TimingConfig;
use crate::report::ModelTimingReport;
use crate::validate::prepare_model_ctx;
use smart_compiler::SolverContext;
use smart_core::scheme::Scheme;
use smart_systolic::models::ModelId;
use smart_units::codec::content_hash;
use smart_units::sync::lock;
use smart_units::Result;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

type Key = (Scheme, ModelId, TimingConfig);
type Slot = Arc<OnceLock<Result<Arc<ModelTimingReport>>>>;

/// Hit/miss/size counters of a [`TimingCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingCacheStats {
    /// Lookups served from a ready entry (an exact-map or warm-store
    /// result already stored when the lookup arrived).
    pub hits: u64,
    /// Lookups that ran the replay simulator.
    pub misses: u64,
    /// Lookups that blocked on another thread's in-flight replay of the
    /// same key and shared its result. The hit/coalesced split depends
    /// on thread timing; `hits + coalesced` is the deterministic count
    /// of lookups served without running the replay.
    pub coalesced: u64,
    /// Distinct `(Scheme, ModelId, TimingConfig)` points stored.
    pub entries: usize,
}

/// A memoized, thread-safe, single-flight front end to the replay
/// simulator.
#[derive(Debug, Default)]
pub struct TimingCache {
    // lint:allow(determinism, exact-key memo map: lookup-only during a run; serialization iterates the content-hash-ordered warm tier instead)
    map: Mutex<HashMap<Key, Slot>>,
    /// Content-hash-keyed reports reloaded from a previous process (see
    /// [`crate::persist`]); consulted on a miss, never written during a
    /// run. Key-ordered so persisted store bytes are deterministic.
    warm: Mutex<BTreeMap<u128, Arc<ModelTimingReport>>>,
    /// ILP warm-start state threaded through every replay compile this
    /// cache runs, so bases reuse across models — and, via
    /// [`SolverContext::save_to`]/[`SolverContext::load_from`], across
    /// processes.
    solver: SolverContext,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

impl TimingCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The ILP warm-start context this cache compiles through (exposed so
    /// callers can persist its basis store next to the report store).
    #[must_use]
    pub fn solver(&self) -> &SolverContext {
        &self.solver
    }

    /// The cell for `key`, plus whether this call created it (and
    /// therefore owns its initialization).
    fn slot(&self, key: &Key) -> (Slot, bool) {
        let mut map = lock(&self.map);
        if let Some(cell) = map.get(key) {
            (Arc::clone(cell), false)
        } else {
            let cell: Slot = Arc::new(OnceLock::new());
            map.insert(key.clone(), Arc::clone(&cell));
            (Arc::clone(&cell), true)
        }
    }

    /// Drops `key` from the map if it still holds exactly `cell` (the
    /// errors-are-not-cached path: the next lookup retries).
    fn evict(&self, key: &Key, cell: &Slot) {
        let mut map = lock(&self.map);
        if map.get(key).is_some_and(|c| Arc::ptr_eq(c, cell)) {
            map.remove(key);
        }
    }

    /// The warm-store entry for `key`, if a previous process persisted
    /// one.
    fn warm_lookup(&self, key: &Key) -> Option<Arc<ModelTimingReport>> {
        lock(&self.warm).get(&content_hash(key)).cloned()
    }

    /// The memoized equivalent of
    /// `simulate_scheme(scheme, &model.build(), cfg)`.
    ///
    /// # Errors
    ///
    /// [`smart_units::SmartError::InvalidInput`] when the scheme's SPM is
    /// not heterogeneous (the error is recomputed, never cached).
    pub fn report(
        &self,
        scheme: &Scheme,
        model: ModelId,
        cfg: &TimingConfig,
    ) -> Result<Arc<ModelTimingReport>> {
        let key = (scheme.clone(), model, *cfg);
        let (cell, _) = self.slot(&key);
        // Probe before entering the single-flight cell: a ready result is
        // a plain hit; reaching `get_or_init` without running the closure
        // means this lookup waited on another thread's in-flight replay
        // and is counted separately as coalesced.
        if let Some(result) = cell.get() {
            if result.is_ok() {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
            return result.clone();
        }
        let mut ran = false;
        let result = cell
            .get_or_init(|| {
                ran = true;
                if let Some(found) = self.warm_lookup(&key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(found);
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                prepare_model_ctx(scheme, &model.build(), cfg.max_iterations, &self.solver)
                    .map(|prepass| Arc::new(prepass.replay(cfg)))
            })
            .clone();
        if ran && result.is_err() {
            self.evict(&key, &cell);
        }
        if !ran && result.is_ok() {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Replays a whole config sweep over `(scheme, model)`: cached points
    /// are served from the map or warm store, and the *uncached* points
    /// share one ILP compile ([`prepare_model_ctx`]) and one pass of the
    /// batched struct-of-arrays kernel instead of a full `simulate_scheme`
    /// each. Point results are bit-identical to [`TimingCache::report`]
    /// (same prepass, same finish pass) and are stored in the map like any
    /// other lookup. Configs may mix `max_iterations`; points are grouped
    /// per value.
    ///
    /// # Errors
    ///
    /// [`smart_units::SmartError::InvalidInput`] when the scheme's SPM is
    /// not heterogeneous (nothing is cached in that case).
    pub fn sweep(
        &self,
        scheme: &Scheme,
        model: ModelId,
        cfgs: &[TimingConfig],
    ) -> Result<Vec<Arc<ModelTimingReport>>> {
        let mut results: Vec<Option<Arc<ModelTimingReport>>> = vec![None; cfgs.len()];
        let mut cells: Vec<(Slot, bool)> = Vec::with_capacity(cfgs.len());
        let mut ours: Vec<usize> = Vec::new();
        for (i, cfg) in cfgs.iter().enumerate() {
            let key = (scheme.clone(), model, *cfg);
            let (cell, created) = self.slot(&key);
            if created {
                if let Some(found) = self.warm_lookup(&key) {
                    // Warm entries publish immediately (another thread may
                    // already be waiting on the cell).
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    let _ = cell.set(Ok(Arc::clone(&found)));
                    results[i] = Some(found);
                } else {
                    ours.push(i);
                }
            }
            cells.push((cell, created));
        }

        // Batch-compute the points this call owns, one prepass per
        // distinct max_iterations.
        let mut pending = ours;
        while let Some(&first) = pending.first() {
            let max_iterations = cfgs[first].max_iterations;
            let (group, rest): (Vec<usize>, Vec<usize>) = pending
                .into_iter()
                .partition(|&i| cfgs[i].max_iterations == max_iterations);
            pending = rest;
            let prepass =
                match prepare_model_ctx(scheme, &model.build(), max_iterations, &self.solver) {
                    Ok(p) => p,
                    Err(e) => {
                        // Errors are not cached: withdraw every cell this call
                        // created (including warm-published ones would be
                        // wrong — those are valid results — so only the
                        // uninitialized ones go).
                        for &i in group.iter().chain(&pending) {
                            let key = (scheme.clone(), model, cfgs[i]);
                            self.evict(&key, &cells[i].0);
                        }
                        return Err(e);
                    }
                };
            let group_cfgs: Vec<TimingConfig> = group.iter().map(|&i| cfgs[i]).collect();
            let reports = prepass.sweep(&group_cfgs);
            for (&i, report) in group.iter().zip(reports) {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let report = Arc::new(report);
                // If a racing `report()` call initialized our cell first,
                // its (identical, deterministic) value wins.
                let stored = cells[i]
                    .0
                    .get_or_init(|| Ok(report))
                    .clone()
                    // lint:allow(panic_freedom, cell holds our own Ok or a racing report()'s Ok; Err cells are evicted before publication)
                    .expect("batched replay is infallible");
                results[i] = Some(stored);
            }
        }

        // Points owned by other in-flight calls (or already ready): wait
        // on their cells; the fallback closure only runs if that owner
        // errored out and evicted the cell before we read it.
        for (i, cfg) in cfgs.iter().enumerate() {
            if results[i].is_some() {
                continue;
            }
            let (cell, created) = &cells[i];
            // Same probe-then-wait split as `report`: ready cells are
            // plain hits, waiting on another call's in-flight point is
            // coalesced.
            if !*created {
                if let Some(result) = cell.get() {
                    if result.is_ok() {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                    }
                    results[i] = Some(result.clone()?);
                    continue;
                }
            }
            let mut ran = false;
            let result = cell
                .get_or_init(|| {
                    ran = true;
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    prepare_model_ctx(scheme, &model.build(), cfg.max_iterations, &self.solver)
                        .map(|prepass| Arc::new(prepass.replay(cfg)))
                })
                .clone();
            if ran && result.is_err() {
                let key = (scheme.clone(), model, *cfg);
                self.evict(&key, cell);
            }
            if !ran && !*created && result.is_ok() {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
            }
            results[i] = Some(result?);
        }

        // lint:allow(panic_freedom, every index is filled by one of the three loops above or the fn returned Err)
        Ok(results.into_iter().map(|r| r.expect("filled")).collect())
    }

    /// Installs `entries` (content-hash keyed, from a persisted store) as
    /// the warm tier; returns how many are now loaded. Existing warm
    /// entries are replaced wholesale.
    pub(crate) fn load_warm_entries(
        &self,
        entries: BTreeMap<u128, Arc<ModelTimingReport>>,
    ) -> usize {
        let mut warm = lock(&self.warm);
        *warm = entries;
        warm.len()
    }

    /// Every persistable entry: the warm tier plus all ready `Ok` cells
    /// (which shadow warm entries of the same key, though by construction
    /// they are identical). Key-ordered, so serializing it in iteration
    /// order yields deterministic store bytes.
    pub(crate) fn snapshot_entries(&self) -> BTreeMap<u128, Arc<ModelTimingReport>> {
        let mut out = lock(&self.warm).clone();
        let map = lock(&self.map);
        for (key, cell) in map.iter() {
            if let Some(Ok(report)) = cell.get() {
                out.insert(content_hash(key), Arc::clone(report));
            }
        }
        out
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> TimingCacheStats {
        TimingCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            entries: lock(&self.map).len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_lookup_hits_and_shares() {
        let cache = TimingCache::new();
        let scheme = Scheme::smart();
        let cfg = TimingConfig::nominal();
        let a = cache.report(&scheme, ModelId::AlexNet, &cfg).expect("ok");
        let b = cache.report(&scheme, ModelId::AlexNet, &cfg).expect("ok");
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn config_is_part_of_the_key() {
        let cache = TimingCache::new();
        let scheme = Scheme::smart();
        let nominal = cache
            .report(&scheme, ModelId::AlexNet, &TimingConfig::nominal())
            .expect("ok");
        let slow = cache
            .report(
                &scheme,
                ModelId::AlexNet,
                &TimingConfig::nominal().with_bandwidth_pct(10),
            )
            .expect("ok");
        assert!(slow.total_cycles() > nominal.total_cycles());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = TimingCache::new();
        let cfg = TimingConfig::nominal();
        assert!(cache
            .report(&Scheme::supernpu(), ModelId::AlexNet, &cfg)
            .is_err());
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn cached_equals_uncached() {
        let cache = TimingCache::new();
        let scheme = Scheme::pipe();
        let cfg = TimingConfig::nominal();
        let direct =
            crate::validate::simulate_scheme(&scheme, &ModelId::AlexNet.build(), &cfg).expect("ok");
        let cached = cache.report(&scheme, ModelId::AlexNet, &cfg).expect("ok");
        assert_eq!(*cached, direct);
    }

    #[test]
    fn concurrent_misses_replay_once() {
        // The single-flight cell: N threads racing on one cold key run
        // the replay exactly once and all share its Arc.
        let cache = TimingCache::new();
        let scheme = Scheme::smart();
        let cfg = TimingConfig::nominal();
        let reports: Vec<Arc<ModelTimingReport>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| cache.report(&scheme, ModelId::AlexNet, &cfg).expect("ok")))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("joins"))
                .collect()
        });
        for r in &reports[1..] {
            assert!(Arc::ptr_eq(&reports[0], r));
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "exactly one replay ran: {stats:?}");
        assert_eq!(
            stats.hits + stats.coalesced,
            3,
            "the other three lookups shared the ready or in-flight \
             result: {stats:?}"
        );
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn sweep_matches_pointwise_reports() {
        let swept = TimingCache::new();
        let pointwise = TimingCache::new();
        let scheme = Scheme::smart();
        let nominal = TimingConfig::nominal();
        let cfgs: Vec<TimingConfig> = [1u32, 2, 3, 4, 5]
            .iter()
            .map(|&d| nominal.with_depth(d).with_bandwidth_pct(50))
            .collect();
        let batch = swept.sweep(&scheme, ModelId::AlexNet, &cfgs).expect("ok");
        assert_eq!(batch.len(), cfgs.len());
        for (cfg, got) in cfgs.iter().zip(&batch) {
            let want = pointwise
                .report(&scheme, ModelId::AlexNet, cfg)
                .expect("ok");
            assert_eq!(**got, *want, "{cfg:?}");
        }
        // The sweep cached every point: re-sweeping is all hits.
        let before = swept.stats();
        assert_eq!(before.entries, cfgs.len());
        let again = swept.sweep(&scheme, ModelId::AlexNet, &cfgs).expect("ok");
        for (a, b) in batch.iter().zip(&again) {
            assert!(Arc::ptr_eq(a, b));
        }
        let after = swept.stats();
        assert_eq!(after.misses, before.misses, "no recompute");
        assert_eq!(after.hits, before.hits + cfgs.len() as u64);
    }

    #[test]
    fn sweep_errors_cache_nothing() {
        let cache = TimingCache::new();
        let cfgs = [
            TimingConfig::nominal(),
            TimingConfig::nominal().with_depth(1),
        ];
        assert!(cache
            .sweep(&Scheme::tpu(), ModelId::AlexNet, &cfgs)
            .is_err());
        assert_eq!(cache.stats().entries, 0);
    }
}
