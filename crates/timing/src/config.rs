//! [`TimingConfig`]: the replay simulator's policy and scenario knobs.
//!
//! The hardware itself (array geometries, latencies, issue intervals) comes
//! from the evaluated [`smart_core::scheme::Scheme`]; this config carries
//! the *simulation* choices that the analytic evaluator cannot express —
//! how deep the double-buffering runs ahead, and how much of the RANDOM
//! array's nominal bandwidth the replay is allowed to use (the
//! constrained-bandwidth scenarios of the `timing_random_bandwidth`
//! experiment).

/// Replay policy knobs. All fields are integers so a config can key the
/// [`crate::cache::TimingCache`] directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingConfig {
    /// Double-buffer depth in iterations: the load for iteration `n` may
    /// not begin before compute of iteration `n - depth` has finished
    /// (its staging buffer is still occupied until then). Depth 1 is
    /// classic double buffering; the ILP schedule's prefetch distances
    /// only take full effect once `depth >= prefetch_window - 1`.
    pub buffer_depth: u32,
    /// RANDOM-array bandwidth scale in percent of nominal (100 = the
    /// array's own issue interval and access latency). Values below 100
    /// model a constrained / contended array; large values approximate an
    /// ideal channel.
    pub random_bandwidth_pct: u32,
    /// DAG coarsening cap handed to [`smart_systolic::dag::LayerDag`]
    /// (the experiment engine compiles with 6).
    pub max_iterations: u32,
}

impl TimingConfig {
    /// The nominal replay configuration: depth 3 (enough for the paper's
    /// `a = 3` prefetch window), full RANDOM bandwidth, 6-iteration DAGs.
    #[must_use]
    pub fn nominal() -> Self {
        Self {
            buffer_depth: 3,
            random_bandwidth_pct: 100,
            max_iterations: 6,
        }
    }

    /// This config with a different double-buffer depth (clamped to 1).
    #[must_use]
    pub fn with_depth(self, depth: u32) -> Self {
        Self {
            buffer_depth: depth.max(1),
            ..self
        }
    }

    /// This config with a different RANDOM bandwidth scale (clamped to 1%).
    #[must_use]
    pub fn with_bandwidth_pct(self, pct: u32) -> Self {
        Self {
            random_bandwidth_pct: pct.max(1),
            ..self
        }
    }

    /// The RANDOM time scale factor: service times are multiplied by
    /// `100 / random_bandwidth_pct`.
    #[must_use]
    pub fn random_time_scale(&self) -> f64 {
        100.0 / f64::from(self.random_bandwidth_pct.max(1))
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self::nominal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_matches_paper_defaults() {
        let c = TimingConfig::nominal();
        assert_eq!(c.buffer_depth, 3);
        assert_eq!(c.random_bandwidth_pct, 100);
        assert_eq!(c.max_iterations, 6);
        assert_eq!(c, TimingConfig::default());
    }

    #[test]
    fn builders_clamp() {
        assert_eq!(TimingConfig::nominal().with_depth(0).buffer_depth, 1);
        assert_eq!(
            TimingConfig::nominal()
                .with_bandwidth_pct(0)
                .random_bandwidth_pct,
            1
        );
    }

    #[test]
    fn time_scale_inverts_bandwidth() {
        let half = TimingConfig::nominal().with_bandwidth_pct(50);
        assert!((half.random_time_scale() - 2.0).abs() < 1e-12);
        let quad = TimingConfig::nominal().with_bandwidth_pct(400);
        assert!((quad.random_time_scale() - 0.25).abs() < 1e-12);
    }
}
