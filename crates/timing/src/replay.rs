//! The cycle-level replay engine: one layer's word streams, realignments,
//! spills, and compiler-scheduled prefetches replayed through the
//! heterogeneous SPM on integer accelerator cycles.
//!
//! The model is a deterministic event replay over the layer's iteration
//! DAG with three resources:
//!
//! * the **matrix unit**, busy `cycles_per_fold` per fold;
//! * the per-class **SHIFT staging arrays**, streaming one word per lane
//!   per SHIFT cycle — an iteration whose staging traffic outruns its
//!   compute shows up as `stream_stall_cycles`;
//! * the shared **RANDOM array channel**, a single arbitrated resource
//!   (bank parallelism is folded into its word rate, exactly as in
//!   `RandomArray::serve_stream`) that carries prefetch loads, fold-
//!   boundary realignment accesses, and PSum spill round trips. The
//!   arbitration is **demand-priority**: realignments, spills, and on-use
//!   streams are served first, and prefetch loads fill the issue slots
//!   left over (the internal `PriorityChannel`) — so a prefetch that
//!   contends with a demand burst arrives late and stalls compute, the
//!   effect the analytic evaluator's single `overlap_fraction` cannot
//!   express.
//!
//! DRAM overflow traffic (working set beyond the RANDOM capacity) moves on
//! its own channel at [`smart_core::config::DRAM_BANDWIDTH`], like the
//! analytic model's separate DRAM path.
//!
//! Every stall is attributed to a [`DataClass`]: the class of the
//! last-arriving prefetch, the class of the realignment that gated an
//! iteration, PSums for spill overruns, inputs for DRAM thrash.
//!
//! # Delta replay
//!
//! A sweep varies only [`TimingConfig`] knobs (buffer depth, RANDOM
//! bandwidth) while the layer's demand shares, schedules, and SHIFT
//! streaming are fixed per `(scheme, model)`. The replay is therefore
//! split in two:
//!
//! * [`LayerPrepass::build`] — the config-*independent* prepass: fold
//!   shares, per-iteration word demand, SHIFT service durations, spill and
//!   DRAM overflow shares, realignment counts, and the schedule's load and
//!   stream lists;
//! * [`LayerPrepass::replay`] — the cheap per-config finish pass, driven
//!   by a [`RandomCosts`] table of the (bandwidth-scaled) per-word RANDOM
//!   latency math.
//!
//! [`replay_layer`] is exactly the composition of the two, so a sweep that
//! reuses one prepass across configs is bit-identical to replaying each
//! point from scratch (the `prepass_replay_matches_full` test, plus the
//! `delta_replay_equivalence` property test at the workspace root, pin
//! this). The struct-of-arrays sweep kernel in [`crate::batch`] drives the
//! same finish pass over many configs in lockstep.

// lint:allow-file(index, replay indexes class and lane arrays sized by DataClass::ALL and the geometry)

use crate::config::TimingConfig;
use crate::report::TimingReport;
use smart_compiler::schedule::{Location, Schedule};
use smart_core::config::DRAM_BANDWIDTH;
use smart_core::eval::PSUM_SPILL_FACTOR;
use smart_spm::hetero::HeterogeneousSpm;
use smart_spm::service::SpmService;
use smart_systolic::dag::LayerDag;
use smart_systolic::mapping::LayerMapping;
use smart_systolic::trace::{DataClass, LayerDemand};
use smart_units::Frequency;

/// Everything the replay needs to know about one compiled layer: the
/// mapping, its derived demand, the iteration DAG, and the compiler
/// schedule built *for that DAG*.
#[derive(Debug, Clone, Copy)]
pub struct LayerInstance<'a> {
    /// Layer name (copied into the report).
    pub name: &'a str,
    /// Weight-stationary mapping of the layer.
    pub mapping: &'a LayerMapping,
    /// Per-layer memory demand derived from the mapping.
    pub demand: &'a LayerDemand,
    /// The iteration DAG the schedule was compiled against.
    pub dag: &'a LayerDag,
    /// The compiler schedule to replay.
    pub schedule: &'a Schedule,
}

/// Precomputed per-word RANDOM-array latency math for one
/// `(scheme, clock, config)` point — the bandwidth-scaled read/write
/// latencies and the per-word issue interval that every load, stream,
/// spill, and realignment in the finish pass prices itself with. Hoisted
/// out of the replay loop (it used to be recomputed through closures per
/// call site) and shared with the batched sweep kernel in
/// [`crate::batch`], which builds one table per sweep scenario up front.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomCosts {
    /// Accelerator clock period in seconds.
    period: f64,
    /// Scaled first-word read latency in seconds.
    rd_latency: f64,
    /// Scaled first-word write latency in seconds.
    wr_latency: f64,
    /// Scaled per-word issue interval (bank parallelism folded in).
    word_interval: f64,
    /// Cycles of one fold-boundary realignment access.
    pub realign_access: u64,
}

impl RandomCosts {
    /// The cost table for `spm`'s RANDOM array at `clock` under `cfg`'s
    /// bandwidth scale.
    #[must_use]
    pub fn new(spm: &HeterogeneousSpm, clock: Frequency, cfg: &TimingConfig) -> Self {
        let period = clock.period().as_s();
        let scale = cfg.random_time_scale();
        let random = &spm.random;
        let rd_latency = random.effective_read_latency().as_s() * scale;
        let wr_latency = random.write_latency.as_s() * scale;
        let word_interval = random.issue_interval.as_s() * scale / f64::from(random.banks);
        let realign_access = cycles_at(period, rd_latency);
        Self {
            period,
            rd_latency,
            wr_latency,
            word_interval,
            realign_access,
        }
    }

    /// Seconds to whole accelerator cycles (ceiling).
    #[must_use]
    pub fn cycles_of(&self, seconds: f64) -> u64 {
        cycles_at(self.period, seconds)
    }

    /// Cycles to read `words` words back-to-back (0 for an empty burst).
    #[must_use]
    pub fn read(&self, words: u64) -> u64 {
        if words == 0 {
            0
        } else {
            self.cycles_of(self.rd_latency + (words - 1) as f64 * self.word_interval)
        }
    }

    /// Cycles to write `words` words back-to-back (0 for an empty burst).
    #[must_use]
    pub fn write(&self, words: u64) -> u64 {
        if words == 0 {
            0
        } else {
            self.cycles_of(self.wr_latency + (words - 1) as f64 * self.word_interval)
        }
    }
}

/// Seconds to whole cycles at a clock `period`, as the replay has always
/// rounded (ceiling).
fn cycles_at(period: f64, seconds: f64) -> u64 {
    debug_assert!(seconds >= 0.0);
    (seconds / period).ceil() as u64
}

/// One prefetch load bucketed at its issue iteration, priced at issue
/// time with the lane's [`RandomCosts`] (so one bucketing can serve many
/// bandwidth scenarios in the sweep kernel).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct BucketedLoad {
    pub(crate) class: DataClass,
    pub(crate) use_iteration: u32,
    pub(crate) words: u64,
}

/// One prefetch load as the schedule recorded it, before the finish pass
/// buckets it by issue iteration (bucketing depends on the config's buffer
/// depth, so it cannot happen in the prepass). Kept in `dag.objects` order
/// so the finish pass reproduces `replay_layer`'s stable sort exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ScheduledLoad {
    class: DataClass,
    fetch_iteration: u32,
    use_iteration: u32,
    words: u64,
}

/// The RANDOM channel under demand-priority arbitration.
///
/// Demand traffic (realignments, PSum spills, on-use streams) is served
/// work-conserving behind previous demand only; prefetch loads consume
/// the *gaps* between demand bursts, FIFO among themselves. The model is
/// optimistic for demand (a demand burst never waits on an in-flight
/// prefetch — banks preempt per access), which is exactly the
/// bank-conflict arbitration policy a prefetch engine would use.
pub(crate) struct PriorityChannel {
    /// Cursor behind which new demand queues.
    demand_free: u64,
    /// Demand busy intervals, non-overlapping, in start order.
    intervals: Vec<(u64, u64)>,
    /// Gap-time frontier for the prefetch FIFO.
    prefetch_frontier: u64,
    /// First interval the prefetch frontier has not yet passed.
    interval_idx: usize,
    /// Total busy cycles (demand + prefetch).
    pub(crate) busy: u64,
}

impl PriorityChannel {
    pub(crate) fn new() -> Self {
        Self {
            demand_free: 0,
            intervals: Vec::new(),
            prefetch_frontier: 0,
            interval_idx: 0,
            busy: 0,
        }
    }

    /// Serves a demand burst requested at `request`; returns completion.
    pub(crate) fn demand(&mut self, request: u64, work: u64) -> u64 {
        let start = request.max(self.demand_free);
        let done = start + work;
        if work > 0 {
            self.demand_free = done;
            self.busy += work;
            match self.intervals.last_mut() {
                Some(last) if last.1 >= start => last.1 = done,
                _ => self.intervals.push((start, done)),
            }
        }
        done
    }

    /// Serves a prefetch load issued at `issue` from leftover issue slots;
    /// returns completion.
    pub(crate) fn prefetch(&mut self, issue: u64, work: u64) -> u64 {
        let mut remaining = work;
        let mut t = issue.max(self.prefetch_frontier);
        self.busy += work;
        while remaining > 0 {
            while self
                .intervals
                .get(self.interval_idx)
                .is_some_and(|&(_, end)| end <= t)
            {
                self.interval_idx += 1;
            }
            match self.intervals.get(self.interval_idx) {
                Some(&(start, end)) if t >= start => {
                    t = end;
                    self.interval_idx += 1;
                }
                Some(&(start, end)) => {
                    let gap = (start - t).min(remaining);
                    t += gap;
                    remaining -= gap;
                    if remaining > 0 {
                        t = end;
                        self.interval_idx += 1;
                    }
                }
                None => {
                    t += remaining;
                    remaining = 0;
                }
            }
        }
        self.prefetch_frontier = t;
        t
    }
}

/// Splits `total` across iterations proportionally to each iteration's
/// fold share, exactly (prefix differences, so the shares sum to `total`).
fn proportional_shares(total: u64, folds_per_iter: &[u64], folds_total: u64) -> Vec<u64> {
    let mut shares = Vec::with_capacity(folds_per_iter.len());
    let mut cum = 0u64;
    let mut prev = 0u64;
    for &f in folds_per_iter {
        cum += f;
        // total <= ~2^40 words and cum <= folds_total <= ~2^24, so the
        // product fits u128 comfortably (and usually u64).
        let upto = (u128::from(total) * u128::from(cum) / u128::from(folds_total)) as u64;
        shares.push(upto - prev);
        prev = upto;
    }
    shares
}

/// The config-independent half of a layer replay: everything that depends
/// only on the compiled layer, the SPM geometry, and the clock — demand
/// word shares, SHIFT service durations, spill/DRAM overflow shares,
/// realignment counts, and the schedule's load and stream lists. Built
/// once per `(scheme, model)` layer and replayed per [`TimingConfig`] with
/// [`LayerPrepass::replay`]; a sweep amortizes the ILP compile *and* this
/// prepass across all its points.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPrepass {
    /// Layer name (copied into each report).
    name: String,
    /// Iteration count of the DAG the schedule was compiled against.
    pub(crate) iterations: u32,
    /// Matrix-unit busy cycles per iteration.
    pub(crate) compute_per_iter: Vec<u64>,
    /// `max(compute, SHIFT in/out/weight service)` per iteration — the
    /// iteration's duration before exposed RANDOM/DRAM stalls.
    pub(crate) dur_per_iter: Vec<u64>,
    /// PSum spill round-trip words per iteration (zero when the PSum
    /// working set fits the output SHIFT array).
    pub(crate) spill_words: Vec<u64>,
    /// DRAM overflow bytes per iteration.
    pub(crate) dram_bytes: Vec<u64>,
    /// Fold-boundary realignment counts per class per iteration.
    pub(crate) realigns: Vec<(DataClass, Vec<u64>)>,
    /// Schedule prefetch loads in `dag.objects` order (bucketed per config
    /// by the finish pass, because the issue iteration depends on the
    /// buffer depth).
    loads: Vec<ScheduledLoad>,
    /// Unprefetchable (DRAM-placed) object streams, bucketed by use
    /// iteration and sorted by class — both config-independent.
    pub(crate) streams_by_iter: Vec<Vec<(DataClass, u64)>>,
}

impl LayerPrepass {
    /// Runs the config-independent prepass for one compiled layer.
    ///
    /// # Panics
    ///
    /// Panics if the instance's `dag`/`schedule` disagree on object count
    /// (they must come from the same compilation).
    #[must_use]
    pub fn build(layer: &LayerInstance<'_>, spm: &HeterogeneousSpm, clock: Frequency) -> Self {
        let LayerInstance {
            name,
            mapping,
            demand,
            dag,
            schedule,
        } = *layer;
        assert_eq!(
            dag.objects.len(),
            schedule.placements.len(),
            "schedule must belong to this DAG"
        );
        let period = clock.period().as_s();

        // --- Per-iteration static demand -------------------------------
        let iterations = dag.iterations as usize;
        let folds_total = mapping.folds().max(1);
        let base = folds_total / iterations as u64;
        let rem = (folds_total % iterations as u64) as usize;
        let folds_per_iter: Vec<u64> = (0..iterations).map(|n| base + u64::from(n < rem)).collect();

        let share = |total: u64| proportional_shares(total, &folds_per_iter, folds_total);
        let in_words = share(demand.reads_of(DataClass::Input));
        let out_words = share(demand.writes_of(DataClass::Output));
        let w_words = share(demand.reads_of(DataClass::Weight));

        // Each iteration runs at the slower of compute and SHIFT staging
        // streaming; both sides are config-independent, so the durations
        // are fixed here once.
        let compute_per_iter: Vec<u64> = folds_per_iter
            .iter()
            .map(|&f| f * mapping.cycles_per_fold)
            .collect();
        let dur_per_iter: Vec<u64> = (0..iterations)
            .map(|n| {
                let svc_in = cycles_at(
                    period,
                    spm.input_shift.serve_stream(in_words[n], false).time.as_s(),
                );
                let svc_out = cycles_at(
                    period,
                    spm.output_shift
                        .serve_stream(out_words[n], true)
                        .time
                        .as_s(),
                );
                let svc_w = cycles_at(
                    period,
                    spm.weight_shift.serve_stream(w_words[n], false).time.as_s(),
                );
                compute_per_iter[n].max(svc_in).max(svc_out).max(svc_w)
            })
            .collect();

        // PSum spill round trips (same working-set criterion as the
        // analytic `serve_hetero`).
        let psum_ws = mapping.live_output_bytes / mapping.m_folds.max(1);
        let psum_words = demand.reads_of(DataClass::Psum) + demand.writes_of(DataClass::Psum);
        let spill_total = if psum_ws > spm.output_shift.capacity_bytes() {
            (psum_words as f64 * PSUM_SPILL_FACTOR) as u64
        } else {
            0
        };
        let spill_words = share(spill_total);

        // DRAM overflow of the activation working set.
        let working_set = mapping.live_input_bytes + mapping.live_output_bytes;
        let dram_bytes = share(working_set.saturating_sub(spm.random.capacity_bytes));

        // Fold-boundary realignment accesses, one RANDOM access latency
        // each (priced per config by the finish pass).
        let realigns: Vec<(DataClass, Vec<u64>)> = demand
            .realignments
            .iter()
            .map(|r| (r.class, share(r.count)))
            .collect();

        // --- Prefetch loads and on-use streams from the schedule -------
        let mut loads = Vec::new();
        // Objects the schedule left in DRAM stream through the RANDOM
        // array *during* their use iteration instead (the evaluator's
        // no-thrashing assumption: per-layer loads never wait on raw DRAM
        // bandwidth, but an unprefetchable stream can still outlive its
        // iteration's compute).
        let mut streams_by_iter: Vec<Vec<(DataClass, u64)>> =
            (0..iterations).map(|_| Vec::new()).collect();
        for o in &dag.objects {
            if o.class == DataClass::Output {
                continue; // outputs drain asynchronously
            }
            let ls = &schedule.lifespans[o.id as usize];
            match schedule.location_of(o.id) {
                // SPM-resident objects load through the RANDOM array, as
                // early as the schedule allows and the double buffer
                // permits — the buffer-depth bucketing happens per config
                // in the finish pass.
                Location::Shift | Location::Random => {
                    loads.push(ScheduledLoad {
                        class: o.class,
                        fetch_iteration: ls.fetch_iteration,
                        use_iteration: ls.use_iteration,
                        words: o.bytes,
                    });
                }
                Location::Dram => {
                    streams_by_iter[ls.use_iteration.min(dag.iterations - 1) as usize]
                        .push((o.class, o.bytes));
                }
            }
        }
        for list in &mut streams_by_iter {
            list.sort_by_key(|&(class, _)| class as u32);
        }

        Self {
            name: name.to_owned(),
            iterations: dag.iterations,
            compute_per_iter,
            dur_per_iter,
            spill_words,
            dram_bytes,
            realigns,
            loads,
            streams_by_iter,
        }
    }

    /// The layer name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Buckets the schedule's prefetch loads by issue iteration for one
    /// config's buffer depth — exactly the bucketing `replay_layer` has
    /// always done (same stable sort), shared with the sweep kernel, which
    /// reuses one bucketing across every scenario of equal depth.
    pub(crate) fn bucket_loads(&self, depth: u32) -> Vec<Vec<BucketedLoad>> {
        let mut loads_by_iter: Vec<Vec<BucketedLoad>> =
            (0..self.iterations as usize).map(|_| Vec::new()).collect();
        for l in &self.loads {
            let issue_at = l.fetch_iteration.max(l.use_iteration.saturating_sub(depth));
            loads_by_iter[issue_at.min(self.iterations - 1) as usize].push(BucketedLoad {
                class: l.class,
                use_iteration: l.use_iteration,
                words: l.words,
            });
        }
        for list in &mut loads_by_iter {
            list.sort_by_key(|l| (l.use_iteration, l.class as u32));
        }
        loads_by_iter
    }

    /// The per-config finish pass: replays this prepass under one
    /// [`TimingConfig`], bit-identical to [`replay_layer`] on the same
    /// inputs.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn replay(&self, costs: &RandomCosts, cfg: &TimingConfig) -> TimingReport {
        let iterations = self.iterations as usize;
        let depth = cfg.buffer_depth.max(1);
        let loads_by_iter = self.bucket_loads(depth);

        // --- The replay ------------------------------------------------
        let mut prev_end = 0u64;
        let mut channel = PriorityChannel::new();
        let mut dram_free = 0u64;
        let mut prefetch_work = 0u64;
        let mut prefetch_stall = 0u64;
        let mut compute_cycles = 0u64;
        let mut stream_stall = 0u64;
        let mut exposed = [0u64; 4];
        // Completion times of in-flight loads, keyed by use iteration.
        let mut pending: Vec<(u32, DataClass, u64)> = Vec::new();
        // Realignment completion gate for the next iteration.
        let mut realign_gate: Option<(u64, DataClass)> = None;

        for n in 0..iterations {
            // 1. Launch this boundary's prefetches. They fill the RANDOM
            // channel's leftover issue slots, overlapping compute of this
            // and later iterations.
            for load in &loads_by_iter[n] {
                let cycles = costs.read(load.words);
                let done = channel.prefetch(prev_end, cycles);
                prefetch_work += cycles;
                pending.push((load.use_iteration, load.class, done));
            }

            // 2. Compute may start once its operands arrived and the
            // previous boundary's realignments finished.
            let mut start = prev_end;
            let mut stall_source: Option<(DataClass, bool)> = None;
            if let Some((done, class)) = realign_gate.take() {
                if done > start {
                    start = done;
                    stall_source = Some((class, false));
                }
            }
            for &(use_iter, class, done) in &pending {
                if use_iter == n as u32 && done > start {
                    start = done;
                    stall_source = Some((class, true));
                }
            }
            pending.retain(|&(use_iter, ..)| use_iter > n as u32);
            let stall = start - prev_end;
            if stall > 0 {
                // lint:allow(panic_freedom, a nonzero stall always records its source earlier in this loop)
                let (class, is_load) = stall_source.expect("a stall has a source");
                exposed[class_idx(class)] += stall;
                if is_load {
                    prefetch_stall += stall;
                }
            }

            // 3. The iteration runs at the slower of compute and staging
            // streaming (both precomputed by the prepass).
            let compute = self.compute_per_iter[n];
            compute_cycles += compute;
            let dur = self.dur_per_iter[n];
            stream_stall += dur - compute;
            let mut end = start + dur;

            // 4. Demand traffic of this iteration: unprefetchable (DRAM-
            // placed) object streams, PSum spill round trips, and DRAM
            // overflow must finish before the iteration retires.
            for &(class, words) in &self.streams_by_iter[n] {
                let done = channel.demand(start, costs.read(words));
                if done > end {
                    exposed[class_idx(class)] += done - end;
                    end = done;
                }
            }
            if self.spill_words[n] > 0 {
                let rd = costs.read(self.spill_words[n] / 2);
                let wr = costs.write(self.spill_words[n] - self.spill_words[n] / 2);
                let done = channel.demand(start, rd + wr);
                if done > end {
                    exposed[class_idx(DataClass::Psum)] += done - end;
                    end = done;
                }
            }
            if self.dram_bytes[n] > 0 {
                let cyc = costs.cycles_of(self.dram_bytes[n] as f64 / DRAM_BANDWIDTH);
                let s = start.max(dram_free);
                let done = s + cyc;
                dram_free = done;
                if done > end {
                    exposed[class_idx(DataClass::Input)] += done - end;
                    end = done;
                }
            }

            // 5. This iteration's fold-boundary realignments: the
            // alignment unit works ahead during compute, but the
            // repositioning must be done before the next iteration
            // consumes the arrays.
            for (class, counts) in &self.realigns {
                let work = counts[n] * costs.realign_access;
                if work == 0 {
                    continue;
                }
                let done = channel.demand(start, work);
                if realign_gate.is_none_or(|(t, _)| done > t) {
                    realign_gate = Some((done, *class));
                }
            }

            prev_end = end;
        }

        TimingReport {
            name: self.name.clone(),
            total_cycles: prev_end,
            compute_cycles,
            stream_stall_cycles: stream_stall,
            exposed_stall_cycles: exposed,
            prefetch_work_cycles: prefetch_work,
            prefetch_stall_cycles: prefetch_stall,
            random_busy_cycles: channel.busy,
        }
    }
}

/// Index of a class in [`DataClass::ALL`] (the exposed-stall array order).
pub(crate) fn class_idx(c: DataClass) -> usize {
    // lint:allow(panic_freedom, DataClass::ALL enumerates every variant)
    DataClass::ALL.iter().position(|&x| x == c).expect("class")
}

/// Replays one layer through the heterogeneous SPM under the compiler's
/// schedule. Cycle counts are in accelerator clock cycles at `clock`.
///
/// This is exactly [`LayerPrepass::build`] followed by
/// [`LayerPrepass::replay`]; sweeps that hold the layer fixed reuse the
/// prepass across configs instead of calling this per point.
///
/// # Panics
///
/// Panics if the instance's `dag`/`schedule` disagree on object count
/// (they must come from the same compilation).
#[must_use]
pub fn replay_layer(
    layer: &LayerInstance<'_>,
    spm: &HeterogeneousSpm,
    clock: Frequency,
    cfg: &TimingConfig,
) -> TimingReport {
    let prepass = LayerPrepass::build(layer, spm, clock);
    prepass.replay(&RandomCosts::new(spm, clock, cfg), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_compiler::formulation::{compile_layer, FormulationParams};
    use smart_systolic::layer::ConvLayer;
    use smart_systolic::mapping::ArrayShape;

    struct Compiled {
        layer: ConvLayer,
        mapping: LayerMapping,
        demand: LayerDemand,
        dag: LayerDag,
        schedule: Schedule,
    }

    fn compile(cfg: &TimingConfig) -> Compiled {
        let layer = ConvLayer::conv("conv2", 27, 27, 96, 256, 5, 1, 2);
        let mapping = LayerMapping::map(&layer, ArrayShape::new(64, 256), 1);
        let demand = LayerDemand::derive(&layer, &mapping);
        let dag = LayerDag::build(&mapping, cfg.max_iterations);
        let schedule = compile_layer(&dag, &FormulationParams::smart_default());
        Compiled {
            layer,
            mapping,
            demand,
            dag,
            schedule,
        }
    }

    fn instance(c: &Compiled) -> LayerInstance<'_> {
        LayerInstance {
            name: &c.layer.name,
            mapping: &c.mapping,
            demand: &c.demand,
            dag: &c.dag,
            schedule: &c.schedule,
        }
    }

    fn fixture(cfg: &TimingConfig) -> TimingReport {
        let c = compile(cfg);
        let spm = HeterogeneousSpm::smart_default();
        replay_layer(&instance(&c), &spm, Frequency::from_ghz(52.6), cfg)
    }

    #[test]
    fn accounting_identity_holds() {
        let r = fixture(&TimingConfig::nominal());
        assert!(r.is_consistent(), "{r:?}");
        assert!(r.total_cycles >= r.compute_cycles);
    }

    #[test]
    fn compute_cycles_match_mapping() {
        let layer = ConvLayer::conv("conv2", 27, 27, 96, 256, 5, 1, 2);
        let mapping = LayerMapping::map(&layer, ArrayShape::new(64, 256), 1);
        let r = fixture(&TimingConfig::nominal());
        assert_eq!(r.compute_cycles, mapping.compute_cycles());
    }

    #[test]
    fn constrained_bandwidth_never_faster() {
        let nominal = fixture(&TimingConfig::nominal());
        let slow = fixture(&TimingConfig::nominal().with_bandwidth_pct(10));
        assert!(slow.total_cycles >= nominal.total_cycles);
        assert!(slow.exposed_total() >= nominal.exposed_total());
    }

    #[test]
    fn deeper_buffer_never_slower() {
        let shallow = fixture(&TimingConfig::nominal().with_depth(1));
        let deep = fixture(&TimingConfig::nominal().with_depth(4));
        assert!(deep.total_cycles <= shallow.total_cycles);
    }

    #[test]
    fn replay_is_deterministic() {
        let a = fixture(&TimingConfig::nominal());
        let b = fixture(&TimingConfig::nominal());
        assert_eq!(a, b);
    }

    #[test]
    fn occupancy_grows_when_bandwidth_shrinks() {
        let nominal = fixture(&TimingConfig::nominal());
        let slow = fixture(&TimingConfig::nominal().with_bandwidth_pct(25));
        assert!(slow.random_busy_cycles > nominal.random_busy_cycles);
    }

    #[test]
    fn proportional_shares_are_exact() {
        let folds = [7u64, 7, 7, 7, 7, 3];
        let shares = proportional_shares(1_000_003, &folds, 38);
        assert_eq!(shares.iter().sum::<u64>(), 1_000_003);
        assert_eq!(shares.len(), folds.len());
        // Rough proportionality.
        assert!(shares[0] > shares[5]);
    }

    #[test]
    fn prepass_replay_matches_full() {
        // One prepass, replayed across the whole config grid, must be
        // bit-identical to the monolithic replay at every point.
        let nominal = TimingConfig::nominal();
        let c = compile(&nominal);
        let spm = HeterogeneousSpm::smart_default();
        let clock = Frequency::from_ghz(52.6);
        let prepass = LayerPrepass::build(&instance(&c), &spm, clock);
        for depth in [1, 2, 3, 5] {
            for pct in [10, 25, 50, 100, 400] {
                let cfg = nominal.with_depth(depth).with_bandwidth_pct(pct);
                let delta = prepass.replay(&RandomCosts::new(&spm, clock, &cfg), &cfg);
                let full = replay_layer(&instance(&c), &spm, clock, &cfg);
                assert_eq!(delta, full, "depth {depth}, bandwidth {pct}%");
            }
        }
    }

    #[test]
    fn random_costs_scale_with_bandwidth() {
        let spm = HeterogeneousSpm::smart_default();
        let clock = Frequency::from_ghz(52.6);
        let nominal = RandomCosts::new(&spm, clock, &TimingConfig::nominal());
        let half = RandomCosts::new(&spm, clock, &TimingConfig::nominal().with_bandwidth_pct(50));
        assert_eq!(nominal.read(0), 0);
        assert_eq!(nominal.write(0), 0);
        assert!(half.read(1024) > nominal.read(1024));
        assert!(half.write(1024) > nominal.write(1024));
        assert!(half.realign_access >= nominal.realign_access);
        // Large bursts approach the pure word-rate ratio (2x here).
        let big = 1 << 20;
        let ratio = half.read(big) as f64 / nominal.read(big) as f64;
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }
}
