//! The cycle-level replay engine: one layer's word streams, realignments,
//! spills, and compiler-scheduled prefetches replayed through the
//! heterogeneous SPM on integer accelerator cycles.
//!
//! The model is a deterministic event replay over the layer's iteration
//! DAG with three resources:
//!
//! * the **matrix unit**, busy `cycles_per_fold` per fold;
//! * the per-class **SHIFT staging arrays**, streaming one word per lane
//!   per SHIFT cycle — an iteration whose staging traffic outruns its
//!   compute shows up as `stream_stall_cycles`;
//! * the shared **RANDOM array channel**, a single arbitrated resource
//!   (bank parallelism is folded into its word rate, exactly as in
//!   `RandomArray::serve_stream`) that carries prefetch loads, fold-
//!   boundary realignment accesses, and PSum spill round trips. The
//!   arbitration is **demand-priority**: realignments, spills, and on-use
//!   streams are served first, and prefetch loads fill the issue slots
//!   left over (the internal `PriorityChannel`) — so a prefetch that
//!   contends with a demand burst arrives late and stalls compute, the
//!   effect the analytic evaluator's single `overlap_fraction` cannot
//!   express.
//!
//! DRAM overflow traffic (working set beyond the RANDOM capacity) moves on
//! its own channel at [`smart_core::config::DRAM_BANDWIDTH`], like the
//! analytic model's separate DRAM path.
//!
//! Every stall is attributed to a [`DataClass`]: the class of the
//! last-arriving prefetch, the class of the realignment that gated an
//! iteration, PSums for spill overruns, inputs for DRAM thrash.

use crate::config::TimingConfig;
use crate::report::TimingReport;
use smart_compiler::schedule::{Location, Schedule};
use smart_core::config::DRAM_BANDWIDTH;
use smart_core::eval::PSUM_SPILL_FACTOR;
use smart_spm::hetero::HeterogeneousSpm;
use smart_spm::service::SpmService;
use smart_systolic::dag::LayerDag;
use smart_systolic::mapping::LayerMapping;
use smart_systolic::trace::{DataClass, LayerDemand};
use smart_units::Frequency;

/// Everything the replay needs to know about one compiled layer: the
/// mapping, its derived demand, the iteration DAG, and the compiler
/// schedule built *for that DAG*.
#[derive(Debug, Clone, Copy)]
pub struct LayerInstance<'a> {
    /// Layer name (copied into the report).
    pub name: &'a str,
    /// Weight-stationary mapping of the layer.
    pub mapping: &'a LayerMapping,
    /// Per-layer memory demand derived from the mapping.
    pub demand: &'a LayerDemand,
    /// The iteration DAG the schedule was compiled against.
    pub dag: &'a LayerDag,
    /// The compiler schedule to replay.
    pub schedule: &'a Schedule,
}

/// One prefetch load command derived from the schedule.
struct Load {
    class: DataClass,
    use_iteration: u32,
    cycles: u64,
}

/// The RANDOM channel under demand-priority arbitration.
///
/// Demand traffic (realignments, PSum spills, on-use streams) is served
/// work-conserving behind previous demand only; prefetch loads consume
/// the *gaps* between demand bursts, FIFO among themselves. The model is
/// optimistic for demand (a demand burst never waits on an in-flight
/// prefetch — banks preempt per access), which is exactly the
/// bank-conflict arbitration policy a prefetch engine would use.
struct PriorityChannel {
    /// Cursor behind which new demand queues.
    demand_free: u64,
    /// Demand busy intervals, non-overlapping, in start order.
    intervals: Vec<(u64, u64)>,
    /// Gap-time frontier for the prefetch FIFO.
    prefetch_frontier: u64,
    /// First interval the prefetch frontier has not yet passed.
    interval_idx: usize,
    /// Total busy cycles (demand + prefetch).
    busy: u64,
}

impl PriorityChannel {
    fn new() -> Self {
        Self {
            demand_free: 0,
            intervals: Vec::new(),
            prefetch_frontier: 0,
            interval_idx: 0,
            busy: 0,
        }
    }

    /// Serves a demand burst requested at `request`; returns completion.
    fn demand(&mut self, request: u64, work: u64) -> u64 {
        let start = request.max(self.demand_free);
        let done = start + work;
        if work > 0 {
            self.demand_free = done;
            self.busy += work;
            match self.intervals.last_mut() {
                Some(last) if last.1 >= start => last.1 = done,
                _ => self.intervals.push((start, done)),
            }
        }
        done
    }

    /// Serves a prefetch load issued at `issue` from leftover issue slots;
    /// returns completion.
    fn prefetch(&mut self, issue: u64, work: u64) -> u64 {
        let mut remaining = work;
        let mut t = issue.max(self.prefetch_frontier);
        self.busy += work;
        while remaining > 0 {
            while self
                .intervals
                .get(self.interval_idx)
                .is_some_and(|&(_, end)| end <= t)
            {
                self.interval_idx += 1;
            }
            match self.intervals.get(self.interval_idx) {
                Some(&(start, end)) if t >= start => {
                    t = end;
                    self.interval_idx += 1;
                }
                Some(&(start, end)) => {
                    let gap = (start - t).min(remaining);
                    t += gap;
                    remaining -= gap;
                    if remaining > 0 {
                        t = end;
                        self.interval_idx += 1;
                    }
                }
                None => {
                    t += remaining;
                    remaining = 0;
                }
            }
        }
        self.prefetch_frontier = t;
        t
    }
}

/// Splits `total` across iterations proportionally to each iteration's
/// fold share, exactly (prefix differences, so the shares sum to `total`).
fn proportional_shares(total: u64, folds_per_iter: &[u64], folds_total: u64) -> Vec<u64> {
    let mut shares = Vec::with_capacity(folds_per_iter.len());
    let mut cum = 0u64;
    let mut prev = 0u64;
    for &f in folds_per_iter {
        cum += f;
        // total <= ~2^40 words and cum <= folds_total <= ~2^24, so the
        // product fits u128 comfortably (and usually u64).
        let upto = (u128::from(total) * u128::from(cum) / u128::from(folds_total)) as u64;
        shares.push(upto - prev);
        prev = upto;
    }
    shares
}

/// Replays one layer through the heterogeneous SPM under the compiler's
/// schedule. Cycle counts are in accelerator clock cycles at `clock`.
///
/// # Panics
///
/// Panics if the instance's `dag`/`schedule` disagree on object count
/// (they must come from the same compilation).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn replay_layer(
    layer: &LayerInstance<'_>,
    spm: &HeterogeneousSpm,
    clock: Frequency,
    cfg: &TimingConfig,
) -> TimingReport {
    let LayerInstance {
        name,
        mapping,
        demand,
        dag,
        schedule,
    } = *layer;
    assert_eq!(
        dag.objects.len(),
        schedule.placements.len(),
        "schedule must belong to this DAG"
    );
    let period = clock.period().as_s();
    let cycles_of = |seconds: f64| -> u64 {
        debug_assert!(seconds >= 0.0);
        (seconds / period).ceil() as u64
    };
    let scale = cfg.random_time_scale();
    let random = &spm.random;
    let rd_latency = random.effective_read_latency().as_s() * scale;
    let wr_latency = random.write_latency.as_s() * scale;
    let word_interval = random.issue_interval.as_s() * scale / f64::from(random.banks);
    let random_read = |words: u64| -> u64 {
        if words == 0 {
            0
        } else {
            cycles_of(rd_latency + (words - 1) as f64 * word_interval)
        }
    };
    let random_write = |words: u64| -> u64 {
        if words == 0 {
            0
        } else {
            cycles_of(wr_latency + (words - 1) as f64 * word_interval)
        }
    };

    // --- Per-iteration static demand -----------------------------------
    let iterations = dag.iterations as usize;
    let folds_total = mapping.folds().max(1);
    let base = folds_total / iterations as u64;
    let rem = (folds_total % iterations as u64) as usize;
    let folds_per_iter: Vec<u64> = (0..iterations).map(|n| base + u64::from(n < rem)).collect();

    let share = |total: u64| proportional_shares(total, &folds_per_iter, folds_total);
    let in_words = share(demand.reads_of(DataClass::Input));
    let out_words = share(demand.writes_of(DataClass::Output));
    let w_words = share(demand.reads_of(DataClass::Weight));

    // PSum spill round trips (same working-set criterion as the analytic
    // `serve_hetero`).
    let psum_ws = mapping.live_output_bytes / mapping.m_folds.max(1);
    let psum_words = demand.reads_of(DataClass::Psum) + demand.writes_of(DataClass::Psum);
    let spill_total = if psum_ws > spm.output_shift.capacity_bytes() {
        (psum_words as f64 * PSUM_SPILL_FACTOR) as u64
    } else {
        0
    };
    let spill_words = share(spill_total);

    // DRAM overflow of the activation working set.
    let working_set = mapping.live_input_bytes + mapping.live_output_bytes;
    let dram_bytes = share(working_set.saturating_sub(random.capacity_bytes));

    // Fold-boundary realignment accesses, one RANDOM access latency each.
    let realign_access = cycles_of(rd_latency);
    let realigns: Vec<(DataClass, Vec<u64>)> = demand
        .realignments
        .iter()
        .map(|r| (r.class, share(r.count)))
        .collect();

    // --- Prefetch loads and on-use streams from the schedule -----------
    let depth = cfg.buffer_depth.max(1);
    let mut loads_by_iter: Vec<Vec<Load>> = (0..iterations).map(|_| Vec::new()).collect();
    // Objects the schedule left in DRAM stream through the RANDOM array
    // *during* their use iteration instead (the evaluator's no-thrashing
    // assumption: per-layer loads never wait on raw DRAM bandwidth, but an
    // unprefetchable stream can still outlive its iteration's compute).
    let mut streams_by_iter: Vec<Vec<(DataClass, u64)>> =
        (0..iterations).map(|_| Vec::new()).collect();
    for o in &dag.objects {
        if o.class == DataClass::Output {
            continue; // outputs drain asynchronously
        }
        let ls = &schedule.lifespans[o.id as usize];
        match schedule.location_of(o.id) {
            // SPM-resident objects load through the RANDOM array, as early
            // as the schedule allows and the double buffer permits.
            Location::Shift | Location::Random => {
                let issue_at = ls
                    .fetch_iteration
                    .max(ls.use_iteration.saturating_sub(depth));
                loads_by_iter[issue_at.min(dag.iterations - 1) as usize].push(Load {
                    class: o.class,
                    use_iteration: ls.use_iteration,
                    cycles: random_read(o.bytes),
                });
            }
            Location::Dram => {
                streams_by_iter[ls.use_iteration.min(dag.iterations - 1) as usize]
                    .push((o.class, random_read(o.bytes)));
            }
        }
    }
    for list in &mut loads_by_iter {
        list.sort_by_key(|l| (l.use_iteration, l.class as u32));
    }
    for list in &mut streams_by_iter {
        list.sort_by_key(|&(class, _)| class as u32);
    }

    // --- The replay ----------------------------------------------------
    let mut prev_end = 0u64;
    let mut channel = PriorityChannel::new();
    let mut dram_free = 0u64;
    let mut prefetch_work = 0u64;
    let mut prefetch_stall = 0u64;
    let mut compute_cycles = 0u64;
    let mut stream_stall = 0u64;
    let mut exposed = [0u64; 4];
    // Completion times of in-flight loads, keyed by use iteration.
    let mut pending: Vec<(u32, DataClass, u64)> = Vec::new();
    // Realignment completion gate for the next iteration.
    let mut realign_gate: Option<(u64, DataClass)> = None;

    let class_idx = |c: DataClass| DataClass::ALL.iter().position(|&x| x == c).expect("class");

    for n in 0..iterations {
        // 1. Launch this boundary's prefetches. They fill the RANDOM
        // channel's leftover issue slots, overlapping compute of this and
        // later iterations.
        for load in &loads_by_iter[n] {
            let done = channel.prefetch(prev_end, load.cycles);
            prefetch_work += load.cycles;
            pending.push((load.use_iteration, load.class, done));
        }

        // 2. Compute may start once its operands arrived and the previous
        // boundary's realignments finished.
        let mut start = prev_end;
        let mut stall_source: Option<(DataClass, bool)> = None;
        if let Some((done, class)) = realign_gate.take() {
            if done > start {
                start = done;
                stall_source = Some((class, false));
            }
        }
        for &(use_iter, class, done) in &pending {
            if use_iter == n as u32 && done > start {
                start = done;
                stall_source = Some((class, true));
            }
        }
        pending.retain(|&(use_iter, ..)| use_iter > n as u32);
        let stall = start - prev_end;
        if stall > 0 {
            let (class, is_load) = stall_source.expect("a stall has a source");
            exposed[class_idx(class)] += stall;
            if is_load {
                prefetch_stall += stall;
            }
        }

        // 3. The iteration runs at the slower of compute and staging
        // streaming.
        let compute = folds_per_iter[n] * mapping.cycles_per_fold;
        compute_cycles += compute;
        let svc_in = cycles_of(spm.input_shift.serve_stream(in_words[n], false).time.as_s());
        let svc_out = cycles_of(
            spm.output_shift
                .serve_stream(out_words[n], true)
                .time
                .as_s(),
        );
        let svc_w = cycles_of(spm.weight_shift.serve_stream(w_words[n], false).time.as_s());
        let dur = compute.max(svc_in).max(svc_out).max(svc_w);
        stream_stall += dur - compute;
        let mut end = start + dur;

        // 4. Demand traffic of this iteration: unprefetchable (DRAM-
        // placed) object streams, PSum spill round trips, and DRAM
        // overflow must finish before the iteration retires.
        for &(class, cyc) in &streams_by_iter[n] {
            let done = channel.demand(start, cyc);
            if done > end {
                exposed[class_idx(class)] += done - end;
                end = done;
            }
        }
        if spill_words[n] > 0 {
            let rd = random_read(spill_words[n] / 2);
            let wr = random_write(spill_words[n] - spill_words[n] / 2);
            let done = channel.demand(start, rd + wr);
            if done > end {
                exposed[class_idx(DataClass::Psum)] += done - end;
                end = done;
            }
        }
        if dram_bytes[n] > 0 {
            let cyc = cycles_of(dram_bytes[n] as f64 / DRAM_BANDWIDTH);
            let s = start.max(dram_free);
            let done = s + cyc;
            dram_free = done;
            if done > end {
                exposed[class_idx(DataClass::Input)] += done - end;
                end = done;
            }
        }

        // 5. This iteration's fold-boundary realignments: the alignment
        // unit works ahead during compute, but the repositioning must be
        // done before the next iteration consumes the arrays.
        for (class, counts) in &realigns {
            let work = counts[n] * realign_access;
            if work == 0 {
                continue;
            }
            let done = channel.demand(start, work);
            if realign_gate.is_none_or(|(t, _)| done > t) {
                realign_gate = Some((done, *class));
            }
        }

        prev_end = end;
    }

    TimingReport {
        name: name.to_owned(),
        total_cycles: prev_end,
        compute_cycles,
        stream_stall_cycles: stream_stall,
        exposed_stall_cycles: exposed,
        prefetch_work_cycles: prefetch_work,
        prefetch_stall_cycles: prefetch_stall,
        random_busy_cycles: channel.busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_compiler::formulation::{compile_layer, FormulationParams};
    use smart_systolic::layer::ConvLayer;
    use smart_systolic::mapping::ArrayShape;

    fn fixture(cfg: &TimingConfig) -> TimingReport {
        let layer = ConvLayer::conv("conv2", 27, 27, 96, 256, 5, 1, 2);
        let mapping = LayerMapping::map(&layer, ArrayShape::new(64, 256), 1);
        let demand = LayerDemand::derive(&layer, &mapping);
        let dag = LayerDag::build(&mapping, cfg.max_iterations);
        let schedule = compile_layer(&dag, &FormulationParams::smart_default());
        let spm = HeterogeneousSpm::smart_default();
        replay_layer(
            &LayerInstance {
                name: &layer.name,
                mapping: &mapping,
                demand: &demand,
                dag: &dag,
                schedule: &schedule,
            },
            &spm,
            Frequency::from_ghz(52.6),
            cfg,
        )
    }

    #[test]
    fn accounting_identity_holds() {
        let r = fixture(&TimingConfig::nominal());
        assert!(r.is_consistent(), "{r:?}");
        assert!(r.total_cycles >= r.compute_cycles);
    }

    #[test]
    fn compute_cycles_match_mapping() {
        let layer = ConvLayer::conv("conv2", 27, 27, 96, 256, 5, 1, 2);
        let mapping = LayerMapping::map(&layer, ArrayShape::new(64, 256), 1);
        let r = fixture(&TimingConfig::nominal());
        assert_eq!(r.compute_cycles, mapping.compute_cycles());
    }

    #[test]
    fn constrained_bandwidth_never_faster() {
        let nominal = fixture(&TimingConfig::nominal());
        let slow = fixture(&TimingConfig::nominal().with_bandwidth_pct(10));
        assert!(slow.total_cycles >= nominal.total_cycles);
        assert!(slow.exposed_total() >= nominal.exposed_total());
    }

    #[test]
    fn deeper_buffer_never_slower() {
        let shallow = fixture(&TimingConfig::nominal().with_depth(1));
        let deep = fixture(&TimingConfig::nominal().with_depth(4));
        assert!(deep.total_cycles <= shallow.total_cycles);
    }

    #[test]
    fn replay_is_deterministic() {
        let a = fixture(&TimingConfig::nominal());
        let b = fixture(&TimingConfig::nominal());
        assert_eq!(a, b);
    }

    #[test]
    fn occupancy_grows_when_bandwidth_shrinks() {
        let nominal = fixture(&TimingConfig::nominal());
        let slow = fixture(&TimingConfig::nominal().with_bandwidth_pct(25));
        assert!(slow.random_busy_cycles > nominal.random_busy_cycles);
    }

    #[test]
    fn proportional_shares_are_exact() {
        let folds = [7u64, 7, 7, 7, 7, 3];
        let shares = proportional_shares(1_000_003, &folds, 38);
        assert_eq!(shares.iter().sum::<u64>(), 1_000_003);
        assert_eq!(shares.len(), folds.len());
        // Rough proportionality.
        assert!(shares[0] > shares[5]);
    }
}
