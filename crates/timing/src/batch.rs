//! The batched struct-of-arrays sweep kernel: every sweep scenario
//! advances over a layer in lockstep.
//!
//! A buffer-depth or bandwidth sweep replays the *same* prepass under many
//! [`TimingConfig`]s. Replaying them one scenario at a time walks the
//! prepass arrays (durations, spill shares, realignment counts, stream
//! lists) once per scenario; [`replay_sweep_layer`] instead walks each
//! iteration **once** and advances all scenarios against it, with the
//! scenario state held in parallel arrays (struct-of-arrays) and the
//! per-word RANDOM latency math hoisted into one [`RandomCosts`] table per
//! scenario up front:
//!
//! * the matrix/SHIFT duration, spill share, DRAM share, and realignment
//!   counts of iteration `n` are loaded once and applied to every
//!   scenario;
//! * load bucketing (the only depth-dependent preprocessing) is computed
//!   once per *distinct* buffer depth and shared across scenarios, with
//!   per-scenario cycle pricing folded in at issue time;
//! * scenarios never interact, so each lane's result is bit-identical to
//!   [`LayerPrepass::replay`] under its own config — pinned by the
//!   `sweep_matches_scalar_replay` test here and the
//!   `batched_sweep_equivalence` property test at the workspace root.
//!
//! [`replay_sweep`] is the model-level entry point the buffer-depth and
//! bandwidth experiments drive (through `TimingCache::sweep`).

// lint:allow-file(index, batched replay indexes per-config arrays allocated to the config count)

use crate::config::TimingConfig;
use crate::replay::{class_idx, LayerPrepass, PriorityChannel, RandomCosts};
use crate::report::{ModelTimingReport, TimingReport};
use crate::validate::ModelPrepass;
use smart_core::config::DRAM_BANDWIDTH;
use smart_systolic::trace::DataClass;

/// Per-scenario mutable replay state, struct-of-arrays over the sweep
/// lanes (index = scenario).
struct SweepState {
    prev_end: Vec<u64>,
    dram_free: Vec<u64>,
    prefetch_work: Vec<u64>,
    prefetch_stall: Vec<u64>,
    exposed: Vec<[u64; 4]>,
    channels: Vec<PriorityChannel>,
    /// In-flight loads per lane: `(use_iteration, class, done)`.
    pending: Vec<Vec<(u32, DataClass, u64)>>,
    realign_gate: Vec<Option<(u64, DataClass)>>,
}

impl SweepState {
    fn new(lanes: usize) -> Self {
        Self {
            prev_end: vec![0; lanes],
            dram_free: vec![0; lanes],
            prefetch_work: vec![0; lanes],
            prefetch_stall: vec![0; lanes],
            exposed: vec![[0; 4]; lanes],
            channels: (0..lanes).map(|_| PriorityChannel::new()).collect(),
            pending: (0..lanes).map(|_| Vec::new()).collect(),
            realign_gate: vec![None; lanes],
        }
    }
}

/// Replays one layer prepass under every config in `cfgs` in lockstep.
/// Lane `s` of the result is bit-identical to
/// `prepass.replay(&costs[s], &cfgs[s])`.
///
/// # Panics
///
/// Panics when `costs` and `cfgs` disagree on length.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn replay_sweep_layer(
    prepass: &LayerPrepass,
    costs: &[RandomCosts],
    cfgs: &[TimingConfig],
) -> Vec<TimingReport> {
    assert_eq!(costs.len(), cfgs.len(), "one cost table per scenario");
    let lanes = cfgs.len();
    let iterations = prepass.iterations as usize;

    // Load bucketing is the only preprocessing that depends on a config
    // knob (the buffer depth): compute it once per distinct depth and let
    // lanes with equal depth share (cycle pricing differs per lane but the
    // bucket membership and order do not).
    let depths: Vec<u32> = cfgs.iter().map(|c| c.buffer_depth.max(1)).collect();
    let mut distinct: Vec<u32> = depths.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let shared_buckets: Vec<_> = distinct.iter().map(|&d| prepass.bucket_loads(d)).collect();
    let bucket_idx: Vec<usize> = depths
        .iter()
        // lint:allow(panic_freedom, distinct was deduplicated from these same depths above)
        .map(|d| distinct.iter().position(|x| x == d).expect("present"))
        .collect();

    let mut st = SweepState::new(lanes);
    let mut compute_cycles = 0u64;
    let mut stream_stall = 0u64;

    for n in 0..iterations {
        // Config-independent per-iteration facts, loaded once per
        // iteration for all lanes.
        let compute = prepass.compute_per_iter[n];
        compute_cycles += compute;
        let dur = prepass.dur_per_iter[n];
        stream_stall += dur - compute;
        let spill = prepass.spill_words[n];
        let dram = prepass.dram_bytes[n];
        let streams = &prepass.streams_by_iter[n];

        for s in 0..lanes {
            let channel = &mut st.channels[s];
            let cost = &costs[s];
            let prev_end = st.prev_end[s];

            // 1. Launch this boundary's prefetches.
            for load in &shared_buckets[bucket_idx[s]][n] {
                let cycles = cost.read(load.words);
                let done = channel.prefetch(prev_end, cycles);
                st.prefetch_work[s] += cycles;
                st.pending[s].push((load.use_iteration, load.class, done));
            }

            // 2. Compute starts once operands arrived and the previous
            // boundary's realignments finished.
            let mut start = prev_end;
            let mut stall_source: Option<(DataClass, bool)> = None;
            if let Some((done, class)) = st.realign_gate[s].take() {
                if done > start {
                    start = done;
                    stall_source = Some((class, false));
                }
            }
            for &(use_iter, class, done) in &st.pending[s] {
                if use_iter == n as u32 && done > start {
                    start = done;
                    stall_source = Some((class, true));
                }
            }
            st.pending[s].retain(|&(use_iter, ..)| use_iter > n as u32);
            let stall = start - prev_end;
            if stall > 0 {
                // lint:allow(panic_freedom, a nonzero stall always records its source earlier in this loop)
                let (class, is_load) = stall_source.expect("a stall has a source");
                st.exposed[s][class_idx(class)] += stall;
                if is_load {
                    st.prefetch_stall[s] += stall;
                }
            }

            // 3. The iteration itself (shared duration).
            let mut end = start + dur;

            // 4. Demand traffic: streams, spill round trips, DRAM
            // overflow.
            for &(class, words) in streams {
                let done = channel.demand(start, cost.read(words));
                if done > end {
                    st.exposed[s][class_idx(class)] += done - end;
                    end = done;
                }
            }
            if spill > 0 {
                let rd = cost.read(spill / 2);
                let wr = cost.write(spill - spill / 2);
                let done = channel.demand(start, rd + wr);
                if done > end {
                    st.exposed[s][class_idx(DataClass::Psum)] += done - end;
                    end = done;
                }
            }
            if dram > 0 {
                let cyc = cost.cycles_of(dram as f64 / DRAM_BANDWIDTH);
                let begin = start.max(st.dram_free[s]);
                let done = begin + cyc;
                st.dram_free[s] = done;
                if done > end {
                    st.exposed[s][class_idx(DataClass::Input)] += done - end;
                    end = done;
                }
            }

            // 5. Fold-boundary realignments gate the next iteration.
            for (class, counts) in &prepass.realigns {
                let work = counts[n] * cost.realign_access;
                if work == 0 {
                    continue;
                }
                let done = channel.demand(start, work);
                if st.realign_gate[s].is_none_or(|(t, _)| done > t) {
                    st.realign_gate[s] = Some((done, *class));
                }
            }

            st.prev_end[s] = end;
        }
    }

    (0..lanes)
        .map(|s| TimingReport {
            name: prepass.name().to_owned(),
            total_cycles: st.prev_end[s],
            compute_cycles,
            stream_stall_cycles: stream_stall,
            exposed_stall_cycles: st.exposed[s],
            prefetch_work_cycles: st.prefetch_work[s],
            prefetch_stall_cycles: st.prefetch_stall[s],
            random_busy_cycles: st.channels[s].busy,
        })
        .collect()
}

/// Replays a whole prepared model under every config in `cfgs`, layer by
/// layer in lockstep. Element `s` of the result is bit-identical to
/// `prepass.replay(&cfgs[s])`.
///
/// # Panics
///
/// Panics when any config's `max_iterations` differs from the value the
/// prepass was compiled with (same contract as [`ModelPrepass::replay`]).
#[must_use]
pub fn replay_sweep(prepass: &ModelPrepass, cfgs: &[TimingConfig]) -> Vec<ModelTimingReport> {
    prepass.sweep(cfgs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::prepare_model;
    use smart_core::scheme::Scheme;
    use smart_systolic::models::ModelId;

    #[test]
    fn sweep_matches_scalar_replay() {
        let nominal = TimingConfig::nominal();
        let prepass = prepare_model(&Scheme::smart(), &ModelId::AlexNet.build(), 6).expect("ok");
        let cfgs: Vec<TimingConfig> = [10u32, 25, 50, 100, 400]
            .iter()
            .flat_map(|&pct| {
                [1u32, 3, 5]
                    .iter()
                    .map(move |&d| nominal.with_depth(d).with_bandwidth_pct(pct))
                    .collect::<Vec<_>>()
            })
            .collect();
        let batched = replay_sweep(&prepass, &cfgs);
        assert_eq!(batched.len(), cfgs.len());
        for (cfg, got) in cfgs.iter().zip(&batched) {
            assert_eq!(*got, prepass.replay(cfg), "{cfg:?}");
        }
    }

    #[test]
    fn empty_sweep_is_empty() {
        let prepass = prepare_model(&Scheme::smart(), &ModelId::AlexNet.build(), 6).expect("ok");
        assert!(replay_sweep(&prepass, &[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "one cost table per scenario")]
    fn mismatched_costs_are_rejected() {
        let prepass = prepare_model(&Scheme::smart(), &ModelId::AlexNet.build(), 6).expect("ok");
        let cfg = TimingConfig::nominal();
        let costs = [prepass.costs(&cfg)];
        let _ = replay_sweep_layer(&prepass.layers()[0], &costs, &[cfg, cfg]);
    }
}
