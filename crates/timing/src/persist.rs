//! Persistence of the [`TimingCache`] across processes: save/load of the
//! content-hash-keyed report store through the
//! [`smart_units::codec`] container.
//!
//! A sweep process that ran once has already paid the ILP compiles and
//! replays for every point it touched; persisting the cache lets the next
//! process (a re-render, a CI warm pass, an interactive iteration on one
//! experiment) start from those results. The guarantees are exactly the
//! codec's:
//!
//! * **fall back to cold, never fail** — a missing, truncated, corrupted,
//!   or version-mismatched file loads as zero entries;
//! * **exact values** — every `f64` travels as its IEEE bit pattern, and
//!   cycle counts as `u64`s, so a warm run's output is byte-identical to
//!   the cold run that produced the store (pinned by the
//!   `warm_reload_is_byte_identical` property test and the golden-snapshot
//!   CI job's warm pass);
//! * **keys are content hashes** — a [`crate::cache::TimingCache`] key is
//!   a full `(Scheme, ModelId, TimingConfig)` value; the store keys its
//!   entries by [`smart_units::codec::content_hash`] of that value, and
//!   the in-memory exact-key map stays authoritative (a hash collision
//!   could at worst serve a wrong warm entry for a key pair that collides
//!   on both independent 64-bit halves — negligible at cache scale).
//!
//! Scheme names inside reports are `&'static str`; on load each distinct
//! name is interned once per process (a bounded [`Box::leak`]).

use crate::cache::TimingCache;
use crate::report::{ModelTimingReport, TimingReport};
use smart_units::codec::{ByteReader, ByteWriter, Store};
use smart_units::sync::lock;
use smart_units::Frequency;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

/// Store tag of the timing-cache file.
const TAG: &str = "smart-timing-cache";

/// Bump when the serialized report layout changes (older files then fall
/// back to cold).
const VERSION: u32 = 1;

/// File name of the timing store inside a `--cache-dir`.
pub const FILE_NAME: &str = "timing-cache.bin";

/// Interns a scheme name: reports carry `&'static str` names, so each
/// distinct name loaded from a store leaks exactly once per process (a
/// handful of short strings).
fn intern(name: String) -> &'static str {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let mut names = lock(NAMES.get_or_init(|| Mutex::new(Vec::new())));
    if let Some(found) = names.iter().find(|n| **n == name) {
        return found;
    }
    let leaked: &'static str = Box::leak(name.into_boxed_str());
    names.push(leaked);
    leaked
}

fn write_layer(w: &mut ByteWriter, l: &TimingReport) {
    w.str(&l.name);
    w.u64(l.total_cycles);
    w.u64(l.compute_cycles);
    w.u64(l.stream_stall_cycles);
    for &x in &l.exposed_stall_cycles {
        w.u64(x);
    }
    w.u64(l.prefetch_work_cycles);
    w.u64(l.prefetch_stall_cycles);
    w.u64(l.random_busy_cycles);
}

fn read_layer(r: &mut ByteReader<'_>) -> Option<TimingReport> {
    let name = r.str()?;
    let total_cycles = r.u64()?;
    let compute_cycles = r.u64()?;
    let stream_stall_cycles = r.u64()?;
    let mut exposed_stall_cycles = [0u64; 4];
    for x in &mut exposed_stall_cycles {
        *x = r.u64()?;
    }
    Some(TimingReport {
        name,
        total_cycles,
        compute_cycles,
        stream_stall_cycles,
        exposed_stall_cycles,
        prefetch_work_cycles: r.u64()?,
        prefetch_stall_cycles: r.u64()?,
        random_busy_cycles: r.u64()?,
    })
}

fn write_report(w: &mut ByteWriter, report: &ModelTimingReport) {
    w.str(report.scheme);
    w.str(&report.model);
    w.f64(report.clock.as_si()); // raw SI bits: exact round trip
    w.u64(report.layers.len() as u64);
    for l in &report.layers {
        write_layer(w, l);
    }
}

fn read_report(r: &mut ByteReader<'_>) -> Option<ModelTimingReport> {
    let scheme = intern(r.str()?);
    let model = r.str()?;
    let clock = Frequency::from_si(r.f64()?);
    let n = usize::try_from(r.u64()?).ok()?;
    let mut layers = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        layers.push(read_layer(r)?);
    }
    Some(ModelTimingReport {
        scheme,
        model,
        clock,
        layers,
    })
}

/// Serializes every persistable entry of `cache` into a sealed store
/// payload.
#[must_use]
pub fn to_bytes(cache: &TimingCache) -> Vec<u8> {
    // Key-ordered map: iteration order is the deterministic file order.
    let entries = cache.snapshot_entries();
    let mut w = ByteWriter::new();
    w.u64(entries.len() as u64);
    for (key, report) in &entries {
        w.u128(*key);
        write_report(&mut w, report);
    }
    w.into_bytes()
}

/// Parses a store payload back into a warm-entry map; `None` on any
/// truncation or malformed field (the caller falls back to cold).
fn from_bytes(payload: &[u8]) -> Option<BTreeMap<u128, Arc<ModelTimingReport>>> {
    let mut r = ByteReader::new(payload);
    let n = usize::try_from(r.u64()?).ok()?;
    let mut entries = BTreeMap::new();
    for _ in 0..n {
        let key = r.u128()?;
        entries.insert(key, Arc::new(read_report(&mut r)?));
    }
    if !r.is_empty() {
        return None;
    }
    Some(entries)
}

/// Saves `cache` to `dir/`[`FILE_NAME`] (atomically).
///
/// # Errors
///
/// [`smart_units::SmartError::Store`] on any underlying filesystem
/// failure.
pub fn save(cache: &TimingCache, dir: &Path) -> smart_units::Result<()> {
    Store::write_file(&dir.join(FILE_NAME), TAG, VERSION, to_bytes(cache))?;
    Ok(())
}

/// Loads `dir/`[`FILE_NAME`] into `cache`'s warm tier; returns how many
/// entries are now warm. A missing, corrupted, truncated, or
/// version-mismatched file loads zero entries — the run simply starts
/// cold.
pub fn load(cache: &TimingCache, dir: &Path) -> usize {
    let Some(payload) = Store::read_file(&dir.join(FILE_NAME), TAG, VERSION) else {
        return 0;
    };
    let Some(entries) = from_bytes(&payload) else {
        return 0;
    };
    cache.load_warm_entries(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TimingConfig;
    use smart_core::scheme::Scheme;
    use smart_systolic::models::ModelId;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("smart-timing-persist-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn round_trip_serves_warm_and_identical() {
        let dir = tmp_dir("round");
        let cold = TimingCache::new();
        let scheme = Scheme::smart();
        let cfg = TimingConfig::nominal();
        let direct = cold.report(&scheme, ModelId::AlexNet, &cfg).expect("ok");
        save(&cold, &dir).expect("saves");

        let warm = TimingCache::new();
        assert_eq!(load(&warm, &dir), 1);
        let reloaded = warm.report(&scheme, ModelId::AlexNet, &cfg).expect("ok");
        assert_eq!(*reloaded, *direct, "warm result identical to cold");
        let stats = warm.stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (1, 0),
            "served from the warm store without replaying"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_and_corrupt_files_fall_back_to_cold() {
        let dir = tmp_dir("corrupt");
        let cache = TimingCache::new();
        assert_eq!(load(&cache, &dir), 0, "missing file");

        let scheme = Scheme::pipe();
        let cfg = TimingConfig::nominal();
        cache.report(&scheme, ModelId::AlexNet, &cfg).expect("ok");
        save(&cache, &dir).expect("saves");
        let path = dir.join(FILE_NAME);
        let good = std::fs::read(&path).expect("reads");

        // Truncations and single-bit corruption at every eighth offset.
        for cut in [0, 1, good.len() / 2, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).expect("writes");
            assert_eq!(load(&TimingCache::new(), &dir), 0, "truncated at {cut}");
        }
        for i in (0..good.len()).step_by(8) {
            let mut bad = good.clone();
            bad[i] ^= 0x10;
            std::fs::write(&path, &bad).expect("writes");
            assert_eq!(load(&TimingCache::new(), &dir), 0, "corrupted at {i}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_to_unwritable_dir_is_a_typed_error() {
        let cache = TimingCache::new();
        let err = save(&cache, Path::new("/proc/definitely/not/writable"))
            .expect_err("must fail, not panic");
        assert!(
            matches!(err, smart_units::SmartError::Store { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn save_is_deterministic() {
        let cache = TimingCache::new();
        let scheme = Scheme::smart();
        for pct in [50, 100] {
            cache
                .report(
                    &scheme,
                    ModelId::AlexNet,
                    &TimingConfig::nominal().with_bandwidth_pct(pct),
                )
                .expect("ok");
        }
        assert_eq!(to_bytes(&cache), to_bytes(&cache));
    }
}
