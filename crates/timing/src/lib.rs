//! `smart-timing` — a cycle-level SPM/systolic replay simulator for the
//! SMART accelerator (the SCALE-SIM-style counterpart to the analytic
//! evaluator in `smart-core`).
//!
//! The analytic evaluator prices each layer with closed-form service
//! models and a single `overlap_fraction`; it cannot see *when* a prefetch
//! lands, whether the RANDOM array's issue slots were free when a
//! realignment burst arrived, or how deep the double buffering must be for
//! the ILP schedule's distances to pay off. This crate replays every
//! layer's [`smart_systolic::trace::LayerDemand`] word streams and the
//! compiler [`smart_compiler::schedule::Schedule`]'s prefetches through
//! the heterogeneous SPM at integer accelerator cycles:
//!
//! * [`replay::replay_layer`] — the deterministic event replay: matrix
//!   unit, per-class SHIFT staging streams, and an arbitrated RANDOM
//!   channel carrying prefetch loads, fold-boundary realignments, and
//!   PSum spills (plus a separate DRAM overflow channel);
//! * [`report::TimingReport`] — per-layer cycles with exposed stalls
//!   broken down by [`smart_systolic::trace::DataClass`], prefetch-hidden
//!   cycles, and RANDOM occupancy, under the accounting identity
//!   `total = compute + stream_stall + exposed`;
//! * [`validate`] — scheme-level simulation ([`validate::simulate_scheme`])
//!   and the stall-free cross-validation twin
//!   ([`validate::stall_free_variant`], [`validate::max_layer_deviation`])
//!   on which replay and analytic evaluator must agree within 1%;
//! * [`cache::TimingCache`] — the memoized front end the experiment
//!   engine's `ExperimentContext` shares across worker threads;
//! * [`trace::trace_model_replay`] — derives a deterministic span-tree
//!   timeline (layer spans tiled by the accounting identity) from a
//!   finished report for `smart-trace` Chrome export;
//! * [`config::TimingConfig`] — the scenario knobs the analytic model does
//!   not have: double-buffer depth and RANDOM bandwidth scaling.
//!
//! # Quick start
//!
//! ```
//! use smart_core::scheme::Scheme;
//! use smart_systolic::models::ModelId;
//! use smart_timing::{simulate_scheme, TimingConfig};
//!
//! let report = simulate_scheme(
//!     &Scheme::smart(),
//!     &ModelId::AlexNet.build(),
//!     &TimingConfig::nominal(),
//! )
//! .expect("SMART is heterogeneous");
//! assert!(report.layers.iter().all(|l| l.is_consistent()));
//! assert!(report.total_time().as_s() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod batch;
pub mod cache;
pub mod config;
pub mod persist;
pub mod replay;
pub mod report;
pub mod trace;
pub mod validate;

pub use batch::{replay_sweep, replay_sweep_layer};
pub use cache::{TimingCache, TimingCacheStats};
pub use config::TimingConfig;
pub use replay::{replay_layer, LayerInstance, LayerPrepass, RandomCosts};
pub use report::{ModelTimingReport, TimingReport};
pub use trace::trace_model_replay;
pub use validate::{
    compile_scheme_layer, hetero_spm, max_layer_deviation, params_for, prefetch_window,
    prepare_model, prepare_model_ctx, simulate_model, simulate_scheme, stall_free_variant,
    LayerCompilation, ModelPrepass,
};
