//! [`TimingReport`] / [`ModelTimingReport`]: the replay simulator's
//! cycle-accurate per-layer and per-model results.
//!
//! Every cycle of a replayed layer is accounted for exactly once:
//!
//! ```text
//! total = compute + stream_stall + sum(exposed_stall per DataClass)
//! ```
//!
//! which is asserted by [`TimingReport::is_consistent`] and by the replay
//! engine's own tests. The exposed-stall breakdown is the simulator's main
//! product: the analytic evaluator folds all overlap into one
//! `overlap_fraction`, while the replay shows *which class's* prefetch,
//! realignment, or spill was late.

// lint:allow-file(index, class columns are indexed by positions found in DataClass::ALL)

use smart_systolic::trace::DataClass;
use smart_units::{Frequency, Time};

/// Cycle-level result of replaying one layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimingReport {
    /// Layer name.
    pub name: String,
    /// End-to-end replay length in accelerator cycles.
    pub total_cycles: u64,
    /// Matrix-unit busy cycles (identical to the analytic
    /// `LayerMapping::compute_cycles`).
    pub compute_cycles: u64,
    /// Cycles the matrix unit waited on SHIFT staging-array streaming
    /// bandwidth.
    pub stream_stall_cycles: u64,
    /// Exposed (non-overlapped) stall cycles by data class, in
    /// [`DataClass::ALL`] order: prefetches that arrived late, realignment
    /// accesses that gated the next iteration, and PSum spill / DRAM
    /// overflow round trips that outlived their iteration.
    pub exposed_stall_cycles: [u64; 4],
    /// Total RANDOM/DRAM channel cycles spent on prefetch loads (the work,
    /// whether hidden or exposed).
    pub prefetch_work_cycles: u64,
    /// The part of [`Self::prefetch_work_cycles`] that showed up as
    /// compute stall (late arrivals).
    pub prefetch_stall_cycles: u64,
    /// Cycles the shared RANDOM array was busy (loads + realignments +
    /// spills).
    pub random_busy_cycles: u64,
}

impl TimingReport {
    /// Exposed stall cycles of one class.
    #[must_use]
    pub fn exposed_of(&self, class: DataClass) -> u64 {
        let idx = DataClass::ALL
            .iter()
            .position(|&c| c == class)
            // lint:allow(panic_freedom, DataClass::ALL enumerates every variant)
            .expect("class in ALL");
        self.exposed_stall_cycles[idx]
    }

    /// Total exposed stall cycles across classes.
    #[must_use]
    pub fn exposed_total(&self) -> u64 {
        self.exposed_stall_cycles.iter().sum()
    }

    /// Prefetch cycles hidden behind compute.
    #[must_use]
    pub fn prefetch_hidden_cycles(&self) -> u64 {
        self.prefetch_work_cycles
            .saturating_sub(self.prefetch_stall_cycles)
    }

    /// Fraction of prefetch work hidden behind compute; `0.0` for a layer
    /// with no prefetch traffic (never NaN).
    #[must_use]
    pub fn prefetch_hidden_fraction(&self) -> f64 {
        if self.prefetch_work_cycles == 0 {
            0.0
        } else {
            self.prefetch_hidden_cycles() as f64 / self.prefetch_work_cycles as f64
        }
    }

    /// RANDOM-array occupancy over the layer; `0.0` for an empty replay
    /// (never NaN). Clamped to `1.0`: the demand-priority channel is
    /// optimistic for demand (see `replay`), which can double-book a few
    /// percent of slots under saturation.
    #[must_use]
    pub fn random_occupancy(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            (self.random_busy_cycles as f64 / self.total_cycles as f64).min(1.0)
        }
    }

    /// Wall-clock replay length at `clock`.
    #[must_use]
    pub fn total_time(&self, clock: Frequency) -> Time {
        clock.period() * self.total_cycles as f64
    }

    /// The cycle-accounting identity holds: every cycle is compute, a
    /// streaming stall, or an exposed stall — nothing double-counted.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        self.compute_cycles + self.stream_stall_cycles + self.exposed_total() == self.total_cycles
    }
}

/// Replay of a whole model: one [`TimingReport`] per layer plus the clock
/// they were simulated at.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelTimingReport {
    /// Scheme name (display).
    pub scheme: &'static str,
    /// Model name.
    pub model: String,
    /// Accelerator clock the cycle counts convert to time with.
    pub clock: Frequency,
    /// Per-layer replays, in model order.
    pub layers: Vec<TimingReport>,
}

impl ModelTimingReport {
    /// Total replay cycles across layers.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.total_cycles).sum()
    }

    /// End-to-end replay time.
    #[must_use]
    pub fn total_time(&self) -> Time {
        self.clock.period() * self.total_cycles() as f64
    }

    /// Summed exposed stall cycles of one class across layers.
    #[must_use]
    pub fn exposed_of(&self, class: DataClass) -> u64 {
        self.layers.iter().map(|l| l.exposed_of(class)).sum()
    }

    /// Summed exposed stall cycles across all classes and layers.
    #[must_use]
    pub fn exposed_total(&self) -> u64 {
        self.layers.iter().map(TimingReport::exposed_total).sum()
    }

    /// Summed streaming stalls across layers.
    #[must_use]
    pub fn stream_stall_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.stream_stall_cycles).sum()
    }

    /// Whole-model RANDOM occupancy; `0.0` for an empty model. Clamped
    /// like [`TimingReport::random_occupancy`].
    #[must_use]
    pub fn random_occupancy(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            (self
                .layers
                .iter()
                .map(|l| l.random_busy_cycles)
                .sum::<u64>() as f64
                / total as f64)
                .min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> TimingReport {
        TimingReport {
            name: "t".to_owned(),
            total_cycles: 130,
            compute_cycles: 100,
            stream_stall_cycles: 10,
            exposed_stall_cycles: [5, 10, 0, 5],
            prefetch_work_cycles: 40,
            prefetch_stall_cycles: 15,
            random_busy_cycles: 65,
        }
    }

    #[test]
    fn accounting_identity() {
        let r = report();
        assert!(r.is_consistent());
        assert_eq!(r.exposed_total(), 20);
        assert_eq!(r.exposed_of(DataClass::Input), 10);
        assert_eq!(r.exposed_of(DataClass::Weight), 5);
    }

    #[test]
    fn hidden_fraction_and_occupancy_guarded() {
        let r = report();
        assert_eq!(r.prefetch_hidden_cycles(), 25);
        assert!((r.prefetch_hidden_fraction() - 25.0 / 40.0).abs() < 1e-12);
        assert!((r.random_occupancy() - 0.5).abs() < 1e-12);

        let empty = TimingReport {
            name: "empty".to_owned(),
            total_cycles: 0,
            compute_cycles: 0,
            stream_stall_cycles: 0,
            exposed_stall_cycles: [0; 4],
            prefetch_work_cycles: 0,
            prefetch_stall_cycles: 0,
            random_busy_cycles: 0,
        };
        assert_eq!(empty.prefetch_hidden_fraction(), 0.0);
        assert_eq!(empty.random_occupancy(), 0.0);
        assert!(empty.prefetch_hidden_fraction().is_finite());
    }

    #[test]
    fn model_report_aggregates() {
        let m = ModelTimingReport {
            scheme: "SMART",
            model: "toy".to_owned(),
            clock: Frequency::from_ghz(52.6),
            layers: vec![report(), report()],
        };
        assert_eq!(m.total_cycles(), 260);
        assert_eq!(m.exposed_total(), 40);
        assert_eq!(m.stream_stall_cycles(), 20);
        assert!((m.random_occupancy() - 0.5).abs() < 1e-12);
        let expect = 260.0 / 52.6e9;
        assert!((m.total_time().as_s() - expect).abs() < 1e-18);
    }

    #[test]
    fn empty_model_occupancy_guarded() {
        let m = ModelTimingReport {
            scheme: "SMART",
            model: "none".to_owned(),
            clock: Frequency::from_ghz(1.0),
            layers: Vec::new(),
        };
        assert_eq!(m.random_occupancy(), 0.0);
        assert_eq!(m.total_cycles(), 0);
    }
}
