//! The workspace-wide error type.
//!
//! Every fallible layer of the SMART stack reports through [`SmartError`]:
//! the ILP solver maps infeasible/unbounded outcomes to
//! [`SmartError::Infeasible`] / [`SmartError::Unbounded`], the `josim-lite`
//! transient engine converts its `SimulationError` via `From`, and the
//! allocation compiler surfaces formulation problems as
//! [`SmartError::InvalidInput`]. The umbrella `smart` crate re-exports this
//! one type so downstream users handle a single error everywhere.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, SmartError>;

/// The one error type of the SMART workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmartError {
    /// An optimization problem (LP relaxation or integer program) has no
    /// feasible point.
    Infeasible {
        /// What was being solved when infeasibility was detected.
        context: String,
    },
    /// An optimization problem's objective is unbounded.
    Unbounded {
        /// What was being solved when unboundedness was detected.
        context: String,
    },
    /// A transient circuit simulation failed (singular MNA matrix, Newton
    /// divergence, ...).
    Simulation {
        /// The engine's description of the failure.
        message: String,
    },
    /// A model or formulation was given parameters outside its domain.
    InvalidInput {
        /// What was wrong with the input.
        message: String,
    },
    /// A persistent warm-start store could not be written (or, for the
    /// rare caller that treats it as fatal, read). Load paths never
    /// produce this: a missing/corrupt/mismatched store falls back to a
    /// cold start by contract.
    Store {
        /// The underlying filesystem/serialization failure.
        message: String,
    },
}

impl SmartError {
    /// Convenience constructor for [`SmartError::Infeasible`].
    #[must_use]
    pub fn infeasible(context: impl Into<String>) -> Self {
        Self::Infeasible {
            context: context.into(),
        }
    }

    /// Convenience constructor for [`SmartError::Unbounded`].
    #[must_use]
    pub fn unbounded(context: impl Into<String>) -> Self {
        Self::Unbounded {
            context: context.into(),
        }
    }

    /// Convenience constructor for [`SmartError::Simulation`].
    #[must_use]
    pub fn simulation(message: impl Into<String>) -> Self {
        Self::Simulation {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`SmartError::InvalidInput`].
    #[must_use]
    pub fn invalid_input(message: impl Into<String>) -> Self {
        Self::InvalidInput {
            message: message.into(),
        }
    }

    /// Convenience constructor for [`SmartError::Store`].
    #[must_use]
    pub fn store(message: impl Into<String>) -> Self {
        Self::Store {
            message: message.into(),
        }
    }
}

impl From<std::io::Error> for SmartError {
    /// Filesystem failures surface as [`SmartError::Store`]: the only I/O
    /// the workspace performs is reading and writing warm-start stores.
    fn from(e: std::io::Error) -> Self {
        Self::store(e.to_string())
    }
}

impl fmt::Display for SmartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Infeasible { context } => write!(f, "no feasible point: {context}"),
            Self::Unbounded { context } => write!(f, "unbounded objective: {context}"),
            Self::Simulation { message } => write!(f, "simulation failed: {message}"),
            Self::InvalidInput { message } => write!(f, "invalid input: {message}"),
            Self::Store { message } => write!(f, "store failed: {message}"),
        }
    }
}

impl std::error::Error for SmartError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = SmartError::infeasible("SPM allocation ILP");
        assert_eq!(e.to_string(), "no feasible point: SPM allocation ILP");
        let e = SmartError::unbounded("LP relaxation");
        assert_eq!(e.to_string(), "unbounded objective: LP relaxation");
        let e = SmartError::simulation("newton diverged at t = 1e-12 s");
        assert!(e.to_string().starts_with("simulation failed"));
        let e = SmartError::invalid_input("prefetch window must be >= 1");
        assert!(e.to_string().starts_with("invalid input"));
        let e = SmartError::store("disk full");
        assert_eq!(e.to_string(), "store failed: disk full");
    }

    #[test]
    fn io_errors_convert_to_store() {
        let io = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "read-only cache dir");
        let e = SmartError::from(io);
        assert!(matches!(e, SmartError::Store { .. }), "{e:?}");
        assert!(e.to_string().contains("read-only cache dir"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SmartError::infeasible("x"));
    }
}
