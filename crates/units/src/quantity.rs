//! Strongly-typed physical quantities used throughout the SMART workspace.
//!
//! Every quantity is stored in SI base units (seconds, joules, watts, meters,
//! square meters, hertz) inside a newtype, so that a picosecond can never be
//! confused with a nanosecond and an attojoule can never be confused with a
//! picojoule. Constructors and accessors exist for the unit scales the paper
//! uses (ps/ns, fJ/pJ/aJ, um/mm, GHz).
//!
//! # Examples
//!
//! ```
//! use smart_units::{Time, Energy, Power};
//!
//! let latency = Time::from_ps(103.02);
//! assert!((latency.as_ns() - 0.10302).abs() < 1e-12);
//!
//! let e = Energy::from_fj(0.1) * 3.0;
//! assert!((e.as_fj() - 0.3).abs() < 1e-12);
//!
//! // power * time = energy
//! let p = Power::from_uw(8.8);
//! let leak = p * Time::from_ns(10.0);
//! assert!((leak.as_fj() - 88.0).abs() < 1e-9);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! quantity {
    ($(#[$meta:meta])* $name:ident, $unit:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates a quantity from a raw SI value.
            #[must_use]
            pub const fn from_si(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw SI value.
            #[must_use]
            pub const fn as_si(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is exactly zero.
            #[must_use]
            pub fn is_zero(self) -> bool {
                self.0 == 0.0
            }

            /// Returns `true` if the value is finite (not NaN or infinite).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the larger of two quantities.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of two quantities.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Dimensionless ratio of two quantities of the same kind.
            ///
            /// # Examples
            ///
            /// ```
            #[doc = concat!("use smart_units::", stringify!($name), ";")]
            #[doc = concat!(
                "let a = ", stringify!($name), "::from_si(4.0);"
            )]
            #[doc = concat!(
                "let b = ", stringify!($name), "::from_si(2.0);"
            )]
            /// assert_eq!(a.ratio(b), 2.0);
            /// ```
            #[must_use]
            pub fn ratio(self, other: Self) -> f64 {
                self.0 / other.0
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl SubAssign for $name {
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div for $name {
            type Output = f64;
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }

        /// Quantities are used as memoization-cache key components (e.g.
        /// `smart_core`'s evaluation cache keys on a full `Scheme`), which
        /// requires total equality. A NaN quantity would break reflexivity;
        /// NaN is never a meaningful physical value here and is treated as
        /// an upstream bug (the experiment runner rejects non-finite
        /// results).
        impl Eq for $name {}

        /// Hashes the IEEE-754 bit pattern, normalizing `-0.0` to `+0.0`
        /// so that `Hash` stays consistent with `PartialEq` (which treats
        /// the two zeros as equal).
        impl std::hash::Hash for $name {
            fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
                (self.0 + 0.0).to_bits().hash(state);
            }
        }
    };
}

quantity!(
    /// A time duration, stored in seconds.
    Time,
    "s"
);
quantity!(
    /// An amount of energy, stored in joules.
    Energy,
    "J"
);
quantity!(
    /// A power, stored in watts.
    Power,
    "W"
);
quantity!(
    /// A one-dimensional length, stored in meters.
    Length,
    "m"
);
quantity!(
    /// A two-dimensional area, stored in square meters.
    Area,
    "m^2"
);
quantity!(
    /// A frequency, stored in hertz.
    Frequency,
    "Hz"
);

impl Time {
    /// Creates a time from picoseconds.
    #[must_use]
    pub fn from_ps(ps: f64) -> Self {
        Self(ps * 1e-12)
    }

    /// Creates a time from nanoseconds.
    #[must_use]
    pub fn from_ns(ns: f64) -> Self {
        Self(ns * 1e-9)
    }

    /// Creates a time from microseconds.
    #[must_use]
    pub fn from_us(us: f64) -> Self {
        Self(us * 1e-6)
    }

    /// Creates a time from seconds.
    #[must_use]
    pub fn from_s(s: f64) -> Self {
        Self(s)
    }

    /// Returns the value in picoseconds.
    #[must_use]
    pub fn as_ps(self) -> f64 {
        self.0 * 1e12
    }

    /// Returns the value in nanoseconds.
    #[must_use]
    pub fn as_ns(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns the value in microseconds.
    #[must_use]
    pub fn as_us(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the value in seconds.
    #[must_use]
    pub fn as_s(self) -> f64 {
        self.0
    }

    /// Number of cycles this duration spans at `clock` frequency,
    /// rounded up to a whole cycle.
    ///
    /// # Examples
    ///
    /// ```
    /// use smart_units::{Frequency, Time};
    /// let t = Time::from_ns(0.11);
    /// let clk = Frequency::from_ghz(52.6);
    /// assert_eq!(t.cycles_at(clk), 6); // 0.11 ns * 52.6 GHz = 5.79
    /// ```
    #[must_use]
    pub fn cycles_at(self, clock: Frequency) -> u64 {
        (self.0 * clock.as_si()).ceil() as u64
    }
}

impl Energy {
    /// Creates an energy from attojoules (1e-18 J).
    #[must_use]
    pub fn from_aj(aj: f64) -> Self {
        Self(aj * 1e-18)
    }

    /// Creates an energy from femtojoules (1e-15 J).
    #[must_use]
    pub fn from_fj(fj: f64) -> Self {
        Self(fj * 1e-15)
    }

    /// Creates an energy from picojoules (1e-12 J).
    #[must_use]
    pub fn from_pj(pj: f64) -> Self {
        Self(pj * 1e-12)
    }

    /// Creates an energy from nanojoules (1e-9 J).
    #[must_use]
    pub fn from_nj(nj: f64) -> Self {
        Self(nj * 1e-9)
    }

    /// Creates an energy from joules.
    #[must_use]
    pub fn from_j(j: f64) -> Self {
        Self(j)
    }

    /// Returns the value in attojoules.
    #[must_use]
    pub fn as_aj(self) -> f64 {
        self.0 * 1e18
    }

    /// Returns the value in femtojoules.
    #[must_use]
    pub fn as_fj(self) -> f64 {
        self.0 * 1e15
    }

    /// Returns the value in picojoules.
    #[must_use]
    pub fn as_pj(self) -> f64 {
        self.0 * 1e12
    }

    /// Returns the value in nanojoules.
    #[must_use]
    pub fn as_nj(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns the value in joules.
    #[must_use]
    pub fn as_j(self) -> f64 {
        self.0
    }
}

impl Power {
    /// Creates a power from nanowatts.
    #[must_use]
    pub fn from_nw(nw: f64) -> Self {
        Self(nw * 1e-9)
    }

    /// Creates a power from microwatts.
    #[must_use]
    pub fn from_uw(uw: f64) -> Self {
        Self(uw * 1e-6)
    }

    /// Creates a power from milliwatts.
    #[must_use]
    pub fn from_mw(mw: f64) -> Self {
        Self(mw * 1e-3)
    }

    /// Creates a power from watts.
    #[must_use]
    pub fn from_w(w: f64) -> Self {
        Self(w)
    }

    /// Returns the value in nanowatts.
    #[must_use]
    pub fn as_nw(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns the value in microwatts.
    #[must_use]
    pub fn as_uw(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the value in milliwatts.
    #[must_use]
    pub fn as_mw(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the value in watts.
    #[must_use]
    pub fn as_w(self) -> f64 {
        self.0
    }
}

impl Length {
    /// Creates a length from nanometers.
    #[must_use]
    pub fn from_nm(nm: f64) -> Self {
        Self(nm * 1e-9)
    }

    /// Creates a length from micrometers.
    #[must_use]
    pub fn from_um(um: f64) -> Self {
        Self(um * 1e-6)
    }

    /// Creates a length from millimeters.
    #[must_use]
    pub fn from_mm(mm: f64) -> Self {
        Self(mm * 1e-3)
    }

    /// Returns the value in nanometers.
    #[must_use]
    pub fn as_nm(self) -> f64 {
        self.0 * 1e9
    }

    /// Returns the value in micrometers.
    #[must_use]
    pub fn as_um(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the value in millimeters.
    #[must_use]
    pub fn as_mm(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the value in meters.
    #[must_use]
    pub fn as_m(self) -> f64 {
        self.0
    }
}

impl Area {
    /// Creates an area from square micrometers.
    #[must_use]
    pub fn from_um2(um2: f64) -> Self {
        Self(um2 * 1e-12)
    }

    /// Creates an area from square millimeters.
    #[must_use]
    pub fn from_mm2(mm2: f64) -> Self {
        Self(mm2 * 1e-6)
    }

    /// Returns the value in square micrometers.
    #[must_use]
    pub fn as_um2(self) -> f64 {
        self.0 * 1e12
    }

    /// Returns the value in square millimeters.
    #[must_use]
    pub fn as_mm2(self) -> f64 {
        self.0 * 1e6
    }
}

impl Frequency {
    /// Creates a frequency from gigahertz.
    #[must_use]
    pub fn from_ghz(ghz: f64) -> Self {
        Self(ghz * 1e9)
    }

    /// Creates a frequency from megahertz.
    #[must_use]
    pub fn from_mhz(mhz: f64) -> Self {
        Self(mhz * 1e6)
    }

    /// Returns the value in gigahertz.
    #[must_use]
    pub fn as_ghz(self) -> f64 {
        self.0 * 1e-9
    }

    /// Returns the value in megahertz.
    #[must_use]
    pub fn as_mhz(self) -> f64 {
        self.0 * 1e-6
    }

    /// Returns the clock period of this frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[must_use]
    pub fn period(self) -> Time {
        assert!(self.0 > 0.0, "period of zero frequency");
        Time(1.0 / self.0)
    }
}

// Cross-quantity arithmetic that actually arises in the models.

impl Mul<Time> for Power {
    type Output = Energy;
    fn mul(self, rhs: Time) -> Energy {
        Energy(self.0 * rhs.0)
    }
}

impl Mul<Power> for Time {
    type Output = Energy;
    fn mul(self, rhs: Power) -> Energy {
        Energy(self.0 * rhs.0)
    }
}

impl Div<Time> for Energy {
    type Output = Power;
    fn div(self, rhs: Time) -> Power {
        Power(self.0 / rhs.0)
    }
}

impl Mul<Length> for Length {
    type Output = Area;
    fn mul(self, rhs: Length) -> Area {
        Area(self.0 * rhs.0)
    }
}

impl Div<Frequency> for f64 {
    type Output = Time;
    fn div(self, rhs: Frequency) -> Time {
        Time(self / rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions_round_trip() {
        let t = Time::from_ps(250.0);
        assert!((t.as_ns() - 0.25).abs() < 1e-12);
        assert!((t.as_ps() - 250.0).abs() < 1e-9);
        assert!((Time::from_ns(2.0).as_ps() - 2000.0).abs() < 1e-9);
        assert!((Time::from_us(1.5).as_ns() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn energy_conversions_round_trip() {
        let e = Energy::from_fj(0.1);
        assert!((e.as_aj() - 100.0).abs() < 1e-9);
        assert!((Energy::from_pj(1.0).as_fj() - 1000.0).abs() < 1e-9);
        assert!((Energy::from_nj(1.0).as_pj() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn power_times_time_is_energy() {
        let e = Power::from_mw(102.0) * Time::from_ns(1.0);
        assert!((e.as_pj() - 102.0).abs() < 1e-9);
    }

    #[test]
    fn energy_over_time_is_power() {
        let p = Energy::from_pj(40.0) / Time::from_ns(2.0);
        assert!((p.as_mw() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn length_squared_is_area() {
        let a = Length::from_um(3.0) * Length::from_um(4.0);
        assert!((a.as_um2() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn frequency_period_inverse() {
        let f = Frequency::from_ghz(52.6);
        assert!((f.period().as_ps() - 19.0114068441).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "period of zero frequency")]
    fn zero_frequency_period_panics() {
        let _ = Frequency::from_ghz(0.0).period();
    }

    #[test]
    fn cycles_at_rounds_up() {
        assert_eq!(Time::from_ns(0.02).cycles_at(Frequency::from_ghz(52.6)), 2);
        assert_eq!(Time::ZERO.cycles_at(Frequency::from_ghz(52.6)), 0);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Time::from_ps(10.0);
        let b = Time::from_ps(5.0);
        assert!(((a + b).as_ps() - 15.0).abs() < 1e-9);
        assert!(((a - b).as_ps() - 5.0).abs() < 1e-9);
        assert!(((a * 2.0).as_ps() - 20.0).abs() < 1e-9);
        assert!(((a / 2.0).as_ps() - 5.0).abs() < 1e-9);
        assert!((a / b - 2.0).abs() < 1e-12);
        assert!((a.ratio(b) - 2.0).abs() < 1e-12);
        assert!(((-a).as_ps() + 10.0).abs() < 1e-9);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Time = (1..=4).map(|i| Time::from_ps(f64::from(i))).sum();
        assert!((total.as_ps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Time::from_s(1.0)), "1 s");
        assert_eq!(format!("{}", Power::from_w(2.0)), "2 W");
    }

    #[test]
    fn min_max_abs() {
        let a = Energy::from_fj(1.0);
        let b = Energy::from_fj(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!((-1.0 * a).abs(), a);
    }
}
