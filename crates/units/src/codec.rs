//! A hand-rolled compact binary codec and versioned store container for
//! the workspace's persistent warm-start caches.
//!
//! The sweep workloads (RANDOM-technology ablations, buffer-depth and
//! bandwidth scans, the coming Pareto searches) call the evaluator, the
//! ILP compiler, and the cycle replay thousands of times per *process*,
//! and every process used to start cold. The caches
//! (`smart_core::cache::EvalCache`, `smart_timing::TimingCache`,
//! `smart_josim::cache::CircuitCache`, `smart_ilp`'s `SolverContext`
//! basis store) now serialize themselves through this module so a repeated
//! run starts warm from a `--cache-dir`.
//!
//! Design constraints, in order:
//!
//! 1. **No new dependencies.** Everything is length-prefixed little-endian
//!    primitives ([`ByteWriter`] / [`ByteReader`]); floats travel as IEEE
//!    bit patterns so values round-trip *exactly* (warm runs must be
//!    byte-identical to cold runs).
//! 2. **Fall back to cold, never fail.** A store that is truncated,
//!    corrupted, from a different format revision, or from a different
//!    build simply opens as `None` — the caller starts with an empty cache
//!    and overwrites the file on save. A cache file can never make a run
//!    error or (worse) silently produce different numbers: payloads are
//!    guarded by a length field and an FNV-1a checksum, and every store
//!    carries both the container format version and an app-level version.
//! 3. **Content-hash keys.** Cache keys (a full `Scheme` value, a
//!    `CellSpec`, an ILP fingerprint) are persisted as 128-bit content
//!    hashes ([`content_hash`]), not serialized key structures — the
//!    in-memory cache still compares real keys, and the persisted side map
//!    is only consulted on a miss. Hashes are deterministic within one
//!    build of the workspace; a toolchain bump at worst empties the warm
//!    store (the app version gate catches intentional layout changes).
//!
//! ```
//! use smart_units::codec::{ByteReader, ByteWriter, Store};
//!
//! let mut w = ByteWriter::new();
//! w.u64(42);
//! w.f64(1.5);
//! w.str("conv2");
//! let file = Store::seal("demo", 1, w.into_bytes());
//!
//! let payload = Store::open(&file, "demo", 1).expect("fresh store opens");
//! let mut r = ByteReader::new(payload);
//! assert_eq!(r.u64(), Some(42));
//! assert_eq!(r.f64(), Some(1.5));
//! assert_eq!(r.str().as_deref(), Some("conv2"));
//!
//! // Any flipped bit falls back to cold (None), never to bad data.
//! let mut bad = file.clone();
//! *bad.last_mut().unwrap() ^= 1;
//! assert!(Store::open(&bad, "demo", 1).is_none());
//! ```

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::Path;

/// Magic prefix of every store file.
const MAGIC: &[u8; 4] = b"SMRT";

/// Container format revision (bump when the header layout changes).
const FORMAT_VERSION: u32 = 1;

/// FNV-1a over a byte slice: the store checksum. Deliberately simple —
/// this guards against truncation and bit rot, not adversaries.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A 128-bit content hash of any `Hash` value, built from two
/// domain-separated [`DefaultHasher`] passes. Used as the persisted key of
/// cache entries: collisions would need two live keys agreeing on both
/// independent 64-bit halves, which is negligible at cache scale (and a
/// collision degrades to a stale-looking entry the in-memory layer never
/// confirms, not to silent corruption of the exact-key map).
#[must_use]
pub fn content_hash<K: Hash>(key: &K) -> u128 {
    let mut a = DefaultHasher::new();
    0xa5a5_a5a5_u32.hash(&mut a);
    key.hash(&mut a);
    let mut b = DefaultHasher::new();
    0x5a5a_5a5a_u32.hash(&mut b);
    key.hash(&mut b);
    (u128::from(a.finish()) << 64) | u128::from(b.finish())
}

/// Little-endian append-only byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes and returns the raw bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128`, little-endian.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip,
    /// NaN payloads included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn u64_slice(&mut self, v: &[u64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.u64(x);
        }
    }
}

/// Cursor over a byte slice; every accessor returns `None` past the end
/// (and the caller treats `None` as "fall back to cold").
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader over `bytes`, positioned at the start.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    /// True once every byte has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.at >= self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    /// Reads a little-endian `u128`.
    pub fn u128(&mut self) -> Option<u128> {
        Some(u128::from_le_bytes(self.take(16)?.try_into().ok()?))
    }

    /// Reads an `f64` bit pattern.
    pub fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string. The length is bounds-checked
    /// against the remaining bytes before allocating, so a corrupted
    /// prefix cannot trigger an absurd allocation.
    pub fn str(&mut self) -> Option<String> {
        let len = usize::try_from(self.u64()?).ok()?;
        let s = self.take(len)?;
        String::from_utf8(s.to_vec()).ok()
    }

    /// Reads a length-prefixed `u64` vector (length bounds-checked like
    /// [`ByteReader::str`]).
    pub fn u64_vec(&mut self) -> Option<Vec<u64>> {
        let len = usize::try_from(self.u64()?).ok()?;
        if len > self.bytes.len().saturating_sub(self.at) / 8 {
            return None;
        }
        (0..len).map(|_| self.u64()).collect()
    }
}

/// The versioned, checksummed container every persistent cache ships its
/// payload in.
///
/// Layout: `b"SMRT"` · container version `u32` · app tag (str) · app
/// version `u32` · payload length `u64` · payload bytes · FNV-1a of the
/// payload `u64`, all little-endian. Any deviation opens as `None`.
#[derive(Debug)]
pub struct Store;

impl Store {
    /// Wraps `payload` in a store envelope for `tag` at `version`.
    #[must_use]
    pub fn seal(tag: &str, version: u32, payload: Vec<u8>) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.buf.extend_from_slice(MAGIC);
        w.u32(FORMAT_VERSION);
        w.str(tag);
        w.u32(version);
        w.u64(payload.len() as u64);
        w.buf.extend_from_slice(&payload);
        w.u64(fnv1a(&payload));
        w.into_bytes()
    }

    /// Opens a sealed store, returning the payload slice only when the
    /// magic, container version, tag, app version, length, and checksum
    /// all match — anything else is a cold start.
    #[must_use]
    pub fn open<'a>(bytes: &'a [u8], tag: &str, version: u32) -> Option<&'a [u8]> {
        let mut r = ByteReader::new(bytes);
        if r.take(MAGIC.len())? != MAGIC {
            return None;
        }
        if r.u32()? != FORMAT_VERSION {
            return None;
        }
        if r.str()? != tag {
            return None;
        }
        if r.u32()? != version {
            return None;
        }
        let len = usize::try_from(r.u64()?).ok()?;
        let payload = r.take(len)?;
        if r.u64()? != fnv1a(payload) {
            return None;
        }
        if !r.is_empty() {
            return None;
        }
        Some(payload)
    }

    /// Reads and opens a store file; `None` on any I/O error or container
    /// mismatch (the fall-back-to-cold path).
    #[must_use]
    pub fn read_file(path: &Path, tag: &str, version: u32) -> Option<Vec<u8>> {
        let bytes = std::fs::read(path).ok()?;
        Some(Self::open(&bytes, tag, version)?.to_vec())
    }

    /// Seals and writes a store file atomically (write to a sibling temp
    /// file, then rename), so a crashed or concurrent run leaves either
    /// the old file or the new one — never a torn store. A torn leftover
    /// temp file is harmless garbage.
    ///
    /// # Errors
    ///
    /// Any underlying filesystem error (missing directory, permissions).
    pub fn write_file(
        path: &Path,
        tag: &str,
        version: u32,
        payload: Vec<u8>,
    ) -> std::io::Result<()> {
        let sealed = Self::seal(tag, version, payload);
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(format!(".tmp.{}", std::process::id()));
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, sealed)?;
        std::fs::rename(&tmp, path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_payload() -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u8(7);
        w.u32(0xdead_beef);
        w.u64(u64::MAX - 3);
        w.u128(u128::from(u64::MAX) + 99);
        w.f64(-0.0);
        w.f64(f64::MIN_POSITIVE);
        w.str("conv4_2");
        w.u64_slice(&[1, 2, 3]);
        w.into_bytes()
    }

    #[test]
    fn primitives_round_trip_exactly() {
        let bytes = sample_payload();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u8(), Some(7));
        assert_eq!(r.u32(), Some(0xdead_beef));
        assert_eq!(r.u64(), Some(u64::MAX - 3));
        assert_eq!(r.u128(), Some(u128::from(u64::MAX) + 99));
        let neg_zero = r.f64().expect("f64");
        assert_eq!(neg_zero.to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64(), Some(f64::MIN_POSITIVE));
        assert_eq!(r.str().as_deref(), Some("conv4_2"));
        assert_eq!(r.u64_vec(), Some(vec![1, 2, 3]));
        assert!(r.is_empty());
    }

    #[test]
    fn reads_past_the_end_are_none() {
        let mut w = ByteWriter::new();
        w.u32(5);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.u32(), Some(5));
        assert_eq!(r.u32(), None);
        assert_eq!(r.u64(), None);
        assert_eq!(r.str(), None);
    }

    #[test]
    fn corrupted_length_prefix_cannot_over_allocate() {
        let mut w = ByteWriter::new();
        w.u64(u64::MAX); // absurd string length
        let bytes = w.into_bytes();
        assert_eq!(ByteReader::new(&bytes).str(), None);
        assert_eq!(ByteReader::new(&bytes).u64_vec(), None);
    }

    #[test]
    fn store_round_trips() {
        let sealed = Store::seal("unit-test", 3, sample_payload());
        let payload = Store::open(&sealed, "unit-test", 3).expect("opens");
        assert_eq!(payload, sample_payload());
    }

    #[test]
    fn store_rejects_mismatches_and_corruption() {
        let sealed = Store::seal("unit-test", 3, sample_payload());
        assert!(Store::open(&sealed, "other-tag", 3).is_none());
        assert!(Store::open(&sealed, "unit-test", 4).is_none());
        assert!(Store::open(&sealed[..sealed.len() - 1], "unit-test", 3).is_none());
        assert!(Store::open(b"", "unit-test", 3).is_none());
        assert!(Store::open(b"JUNKJUNKJUNK", "unit-test", 3).is_none());
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x40;
            assert!(
                Store::open(&bad, "unit-test", 3).is_none(),
                "flip at {i} must not open"
            );
        }
        let mut trailing = sealed.clone();
        trailing.push(0);
        assert!(Store::open(&trailing, "unit-test", 3).is_none());
    }

    #[test]
    fn content_hash_separates_and_repeats() {
        let a = content_hash(&("SMART", 3u32));
        let b = content_hash(&("SMART", 4u32));
        let c = content_hash(&("SMART", 3u32));
        assert_ne!(a, b);
        assert_eq!(a, c);
        assert_ne!(a >> 64, a & u128::from(u64::MAX), "halves independent");
    }

    #[test]
    fn file_round_trip_and_missing_file() {
        let dir = std::env::temp_dir().join(format!("smart-codec-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("demo.bin");
        assert!(Store::read_file(&path, "demo", 1).is_none(), "missing");
        Store::write_file(&path, "demo", 1, sample_payload()).expect("writes");
        assert_eq!(
            Store::read_file(&path, "demo", 1),
            Some(sample_payload()),
            "round trip"
        );
        assert!(Store::read_file(&path, "demo", 2).is_none(), "version gate");
        std::fs::remove_dir_all(&dir).ok();
    }
}
