//! Hand-rolled deterministic pseudo-random number generation for the
//! serving-workload generators (no external deps, stable across
//! platforms and versions).
//!
//! Two pieces, both classics with public-domain reference code:
//!
//! * [`splitmix64`] — the one-instruction-per-state-word mixer used to
//!   expand a user seed into full-entropy state (it cannot get stuck at
//!   zero and decorrelates adjacent seeds);
//! * [`Rng`] — an xorshift128+ generator seeded through
//!   [`splitmix64`], with helpers for unit-interval doubles,
//!   exponential inter-arrival draws, and weighted choices.
//!
//! Determinism is the whole point: a serving trace is keyed by its
//! `(seed, workload)` pair, and the same seed must replay byte-identically
//! on every machine, worker count, and run. Everything here is pure
//! integer/f64 arithmetic with no platform-dependent calls.
//!
//! # Examples
//!
//! ```
//! use smart_units::rng::Rng;
//!
//! let mut a = Rng::new(42);
//! let mut b = Rng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let u = a.next_f64();
//! assert!((0.0..1.0).contains(&u));
//! ```

/// Advances `state` by the splitmix64 step and returns the mixed output.
/// The underlying counter sequence visits every `u64`, so any seed —
/// including 0 — yields a full-period, well-mixed stream.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A small, fast xorshift128+ generator. Not cryptographic — it drives
/// workload synthesis, where speed and reproducibility matter and
/// adversarial prediction does not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s0: u64,
    s1: u64,
}

impl Rng {
    /// A generator seeded from `seed` via two splitmix64 draws (so
    /// seeds 0, 1, 2, … give decorrelated streams, and the all-zero
    /// xorshift fixed point is unreachable).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s0 = splitmix64(&mut sm);
        let s1 = splitmix64(&mut sm);
        Self { s0, s1 }
    }

    /// An independent generator for substream `stream` of this seed
    /// (tenant-local or phase-local randomness that must not shift when
    /// another stream draws a different amount).
    #[must_use]
    pub fn stream(seed: u64, stream: u64) -> Self {
        // Mix the stream id through splitmix64 before xoring so streams
        // 0 and 1 of one seed share no state structure.
        let mut sm = stream;
        Self::new(seed ^ splitmix64(&mut sm))
    }

    /// The next raw 64-bit draw (xorshift128+).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }

    /// A uniform draw in `[0, 1)` with 53 random mantissa bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An exponential draw with the given mean (inter-arrival times of a
    /// Poisson process). Returns 0.0 for a non-positive mean.
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // 1 - u is in (0, 1], so ln is finite and the draw non-negative.
        -mean * (1.0 - self.next_f64()).ln()
    }

    /// A weighted choice: index `i` with probability `weights[i] / total`.
    /// Zero or negative weights never win; returns 0 if every weight is
    /// non-positive or `weights` is empty-summed (callers validate their
    /// mixes — this is a total fallback, not an error path).
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().filter(|w| **w > 0.0).sum();
        if total <= 0.0 {
            return 0;
        }
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if target < w {
                return i;
            }
            target -= w;
        }
        // Float round-off on the last subtraction: the last positive
        // weight wins.
        weights.iter().rposition(|w| *w > 0.0).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_nonzero() {
        let mut a = 0u64;
        let mut b = 0u64;
        let xs: Vec<u64> = (0..4).map(|_| splitmix64(&mut a)).collect();
        let ys: Vec<u64> = (0..4).map(|_| splitmix64(&mut b)).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().any(|&x| x != 0));
        assert_ne!(xs[0], xs[1]);
    }

    #[test]
    fn rng_streams_are_deterministic_and_distinct() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        let mut c = Rng::new(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
        let mut s0 = Rng::stream(7, 0);
        let mut s1 = Rng::stream(7, 1);
        assert_ne!(s0.next_u64(), s1.next_u64());
    }

    #[test]
    fn unit_draws_stay_in_range_and_cover() {
        let mut rng = Rng::new(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u), "{u}");
            lo |= u < 0.5;
            hi |= u >= 0.5;
        }
        assert!(lo && hi, "1000 draws never crossed 0.5");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = Rng::new(3);
        let n = 20_000;
        let mean = 4.0;
        let sum: f64 = (0..n).map(|_| rng.next_exp(mean)).sum();
        let got = sum / f64::from(n);
        assert!((got - mean).abs() < 0.15 * mean, "sample mean {got}");
        assert_eq!(rng.next_exp(0.0), 0.0);
        assert_eq!(rng.next_exp(-1.0), 0.0);
    }

    #[test]
    fn weighted_pick_follows_weights() {
        let mut rng = Rng::new(5);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..4000 {
            counts[rng.pick_weighted(&weights)] += 1;
        }
        assert_eq!(counts[1], 0, "zero weight must never win");
        assert!(counts[2] > counts[0], "3:1 weight ratio inverted");
        assert!(counts[0] > 500, "1/4 of the mass missing: {counts:?}");
        // Degenerate mixes fall back to index 0.
        assert_eq!(rng.pick_weighted(&[]), 0);
        assert_eq!(rng.pick_weighted(&[0.0, -1.0]), 0);
    }
}
