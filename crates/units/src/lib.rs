//! The zero-dependency foundation layer of the SMART workspace.
//!
//! Every other crate in the workspace depends on this one (and on nothing
//! outside the workspace), which keeps the layering acyclic:
//!
//! ```text
//! units → { sfq, systolic, ilp } → { josim, cryomem, compiler }
//!       → spm → core → bench → smart
//! ```
//!
//! (See the README for the exact per-crate dependency edges.)
//!
//! Three things live here:
//!
//! * [`quantity`] — strongly-typed physical quantities ([`Time`],
//!   [`Energy`], [`Power`], [`Length`], [`Area`], [`Frequency`]), stored in
//!   SI base units so a picosecond can never be confused with a nanosecond,
//! * [`error`] — the workspace-wide [`SmartError`] type and [`Result`]
//!   alias that all fallible layers (the ILP solver, the transient circuit
//!   engine, the allocation compiler) funnel into,
//! * [`codec`] — the hand-rolled versioned binary store format the
//!   persistent warm-start caches serialize through,
//! * [`rng`] — hand-rolled deterministic pseudo-random generation
//!   (splitmix64 seeding + xorshift128+) for the serving-workload
//!   generators,
//! * [`sync`] — poison-proof locking for the single-insert memo maps
//!   every cache layer guards (a panicked worker costs a memo entry,
//!   never a cascading panic).
//!
//! # Examples
//!
//! ```
//! use smart_units::{Power, Time};
//!
//! let leak = Power::from_uw(8.8) * Time::from_ns(10.0);
//! assert!((leak.as_fj() - 88.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod codec;
pub mod error;
pub mod quantity;
pub mod rng;
pub mod sync;

pub use error::{Result, SmartError};
pub use quantity::{Area, Energy, Frequency, Length, Power, Time};
