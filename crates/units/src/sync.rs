//! Poison-proof locking for the workspace's memoization caches.
//!
//! Every cache in the stack (`EvalCache`, `CircuitCache`, `TimingCache`,
//! `SolverContext`) guards a plain-data map with a [`Mutex`]. The maps
//! hold *completed* results only — a writer inserts a finished value or
//! nothing — so a thread that panics while holding the lock cannot leave
//! a torn entry behind: the worst case is a missing memo, which the next
//! lookup simply recomputes. Propagating the poison flag as a second
//! panic would turn one worker's failure into a panic in every other
//! thread (and, through the persisted-store paths, violate the PR 6
//! contract that a cache problem may cost a warm start but never a
//! crash). [`lock`] therefore takes the guard whether or not the mutex
//! is poisoned.
//!
//! Do **not** use this for locks protecting multi-step invariants — only
//! for maps whose entries are inserted atomically.

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Locks `mutex`, recovering the guard if a previous holder panicked.
///
/// The caller asserts the protected data is valid at every lock release
/// (single-insert memo maps are; see the module docs).
pub fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisoned_mutex_still_serves_its_data() {
        let shared = Mutex::new(vec![1, 2, 3]);
        // Poison the mutex: a scoped thread panics while holding it.
        let result = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = shared.lock().expect("first lock");
                panic!("poison the lock");
            })
            .join()
        });
        assert!(result.is_err(), "the poisoning thread must have panicked");
        assert!(shared.is_poisoned());
        // A plain .lock().unwrap() would now panic; lock() recovers.
        assert_eq!(*lock(&shared), vec![1, 2, 3]);
        lock(&shared).push(4);
        assert_eq!(lock(&shared).len(), 4);
    }
}
