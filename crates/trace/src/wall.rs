//! [`WallProfile`]: the explicitly non-deterministic wall-clock sink.
//!
//! Everything else in this crate is stamped with virtual time and is
//! byte-reproducible; coarse "where did the seconds go" profiling of
//! the experiment drivers is the one place wall clocks are the right
//! tool. This module quarantines that: durations recorded here are for
//! **stderr reporting only** and must never reach stdout tables, trace
//! files, or persisted store bytes. Keeping the `Instant` reads in one
//! module scopes the determinism-lint exemption to exactly this file.

// lint:allow-file(determinism, wall-clock profiling sink: durations are stderr-only reporting and never reach stdout, trace files, or store bytes)

use crate::lock;
use std::sync::Mutex;
use std::time::Instant;

/// One timed entry: label and elapsed microseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WallEntry {
    /// What was timed (an experiment name, a phase).
    pub label: String,
    /// Elapsed wall time in microseconds.
    pub elapsed_us: u64,
}

/// A wall-clock profiling sink: times closures, renders a stderr
/// summary tree. Disabled by default; a disabled profile still runs the
/// closures but records nothing.
#[derive(Debug, Default)]
pub struct WallProfile {
    enabled: bool,
    entries: Mutex<Vec<WallEntry>>,
}

impl WallProfile {
    /// A recording profile.
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            entries: Mutex::new(Vec::new()),
        }
    }

    /// A no-op profile (the default).
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether closures run under [`WallProfile::time`] are recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Runs `f`, recording its wall duration under `label` when enabled.
    pub fn time<R>(&self, label: &str, f: impl FnOnce() -> R) -> R {
        if !self.enabled {
            return f();
        }
        let start = Instant::now();
        let out = f();
        let elapsed_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        lock(&self.entries).push(WallEntry {
            label: label.to_owned(),
            elapsed_us,
        });
        out
    }

    /// The recorded entries, in completion order.
    #[must_use]
    pub fn entries(&self) -> Vec<WallEntry> {
        lock(&self.entries).clone()
    }

    /// A stderr-ready summary tree: one line per entry under a root line
    /// with the recorded total. Empty string when nothing was recorded.
    #[must_use]
    pub fn to_text(&self, root: &str) -> String {
        let entries = self.entries();
        if entries.is_empty() {
            return String::new();
        }
        let total: u64 = entries.iter().map(|e| e.elapsed_us).sum();
        let width = entries.iter().map(|e| e.label.len()).max().unwrap_or(0);
        let mut out = format!("{root}: {:.1} ms wall\n", total as f64 / 1e3);
        for e in &entries {
            out.push_str(&format!(
                "  {:<width$} {:>10.1} ms\n",
                e.label,
                e.elapsed_us as f64 / 1e3
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profile_runs_but_records_nothing() {
        let p = WallProfile::disabled();
        assert!(!p.is_enabled());
        assert_eq!(p.time("x", || 41 + 1), 42);
        assert!(p.entries().is_empty());
        assert_eq!(p.to_text("root"), "");
    }

    #[test]
    fn enabled_profile_records_each_closure() {
        let p = WallProfile::enabled();
        assert_eq!(p.time("first", || "a"), "a");
        p.time("second", || {});
        let entries = p.entries();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].label, "first");
        assert_eq!(entries[1].label, "second");
        let text = p.to_text("run");
        assert!(text.starts_with("run: "), "{text}");
        assert!(text.contains("first") && text.contains("second"), "{text}");
    }
}
