//! [`MetricsRegistry`] / [`MetricsSnapshot`]: named counters and gauges
//! with deterministic ordering.
//!
//! The workspace grew one ad-hoc counter struct per subsystem
//! (`CacheStats`, `TimingCacheStats`, the solver context's warm/cold
//! tallies, …) and three divergent stderr report formats on top of
//! them. This module is the unification point: every subsystem's
//! counters are poured into one registry under dotted names
//! (`eval_cache.hits`, `ilp.pivots`, `timing_cache.misses`), and one
//! [`MetricsSnapshot`] renders them all — as aligned text for stderr or
//! as CSV. `BTreeMap` storage makes every dump deterministically
//! ordered.
//!
//! *Counters* are monotonic event tallies (hits, misses, pivots);
//! *gauges* are point-in-time levels (entries stored, bases loaded).
//! The split matters for consumers diffing two snapshots: counter
//! deltas are meaningful, gauge deltas are not.

use crate::lock;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A thread-safe registry of named monotonic counters and gauges.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, u64>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the counter `name` (created at zero).
    pub fn add(&self, name: &str, delta: u64) {
        let mut counters = lock(&self.counters);
        match counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                counters.insert(name.to_owned(), delta);
            }
        }
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: u64) {
        lock(&self.gauges).insert(name.to_owned(), value);
    }

    /// A point-in-time copy of every counter and gauge.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock(&self.counters).clone(),
            gauges: lock(&self.gauges).clone(),
        }
    }
}

/// A deterministic, name-ordered copy of a registry's contents.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotonic counters, name-ordered.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time gauges, name-ordered.
    pub gauges: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// The counter `name`, or 0 when absent (absent and never-incremented
    /// are the same thing for a monotonic counter).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge `name`, if set.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.get(name).copied()
    }

    /// Sum of every counter whose name starts with `prefix` — the
    /// convenient roll-up for dotted families (`eval_cache.`).
    #[must_use]
    pub fn counter_family(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(name, _)| name.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Aligned `name value` lines, counters first then gauges, each block
    /// name-ordered. The canonical `--metrics` stderr dump.
    #[must_use]
    pub fn to_text(&self) -> String {
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .map(String::len)
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for (kind, map) in [("counter", &self.counters), ("gauge", &self.gauges)] {
            for (name, value) in map {
                out.push_str(&format!("{kind:<7} {name:<width$} {value}\n"));
            }
        }
        out
    }

    /// `kind,name,value` CSV lines with a header, same order as
    /// [`MetricsSnapshot::to_text`].
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,value\n");
        for (kind, map) in [("counter", &self.counters), ("gauge", &self.gauges)] {
            for (name, value) in map {
                out.push_str(&format!("{kind},{name},{value}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let reg = MetricsRegistry::new();
        reg.add("cache.hits", 2);
        reg.add("cache.hits", 3);
        reg.set_gauge("cache.entries", 7);
        reg.set_gauge("cache.entries", 4);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("cache.hits"), 5);
        assert_eq!(snap.counter("cache.misses"), 0);
        assert_eq!(snap.gauge("cache.entries"), Some(4));
        assert_eq!(snap.gauge("cache.ghost"), None);
    }

    #[test]
    fn counter_saturates_instead_of_wrapping() {
        let reg = MetricsRegistry::new();
        reg.add("c", u64::MAX - 1);
        reg.add("c", 5);
        assert_eq!(reg.snapshot().counter("c"), u64::MAX);
    }

    #[test]
    fn family_rollup_sums_the_prefix() {
        let reg = MetricsRegistry::new();
        reg.add("eval_cache.hits", 2);
        reg.add("eval_cache.coalesced", 1);
        reg.add("timing_cache.hits", 9);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_family("eval_cache."), 3);
        assert_eq!(snap.counter_family("nope."), 0);
    }

    #[test]
    fn dumps_are_name_ordered_and_stable() {
        let reg = MetricsRegistry::new();
        reg.add("b.second", 2);
        reg.add("a.first", 1);
        reg.set_gauge("z.gauge", 3);
        let snap = reg.snapshot();
        let text = snap.to_text();
        let a = text.find("a.first").expect("a.first listed");
        let b = text.find("b.second").expect("b.second listed");
        let z = text.find("z.gauge").expect("z.gauge listed");
        assert!(a < b && b < z, "{text}");
        assert_eq!(
            snap.to_csv(),
            "kind,name,value\ncounter,a.first,1\ncounter,b.second,2\ngauge,z.gauge,3\n"
        );
        // Two snapshots of the same registry render identically.
        assert_eq!(text, reg.snapshot().to_text());
    }

    #[test]
    fn empty_snapshot_renders_headers_only() {
        let snap = MetricsSnapshot::default();
        assert_eq!(snap.to_text(), "");
        assert_eq!(snap.to_csv(), "kind,name,value\n");
    }
}
