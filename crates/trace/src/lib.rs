//! Layer 0: structured spans, a unified metrics registry, and
//! deterministic trace export.
//!
//! The simulators of this workspace run on *virtual* clocks — replay
//! cycles, simulated serving microseconds, ILP pivot counts — so their
//! execution timelines can be recorded **deterministically**: two traced
//! runs of the same seed produce byte-identical trace files, something a
//! wall-clock profiler can never offer. Three pillars:
//!
//! * **Spans & events** ([`Tracer`] / [`Lane`]): a lightweight handle
//!   that records nested spans and instant events stamped with virtual
//!   time onto named lanes (one lane per tenant / model / problem). A
//!   disabled tracer is a no-op cheap enough for replay inner loops —
//!   every recording call is a single `Option` check.
//! * **Metrics** ([`MetricsRegistry`] / [`MetricsSnapshot`]): named
//!   monotonic counters and gauges with deterministic `BTreeMap`
//!   ordering, absorbing the scattered per-cache and per-solver counter
//!   structs behind one dump format (text or CSV).
//! * **Exporters** ([`chrome`]): Chrome trace-event JSON loadable in
//!   Perfetto / `chrome://tracing`, validated (balanced span nesting,
//!   per-lane monotone timestamps) before a byte is written.
//!
//! The one deliberately *non*-deterministic corner is [`wall`]: a
//! wall-clock profiling sink for coarse per-experiment timing, kept in
//! its own module so the determinism lint exemption is scoped to it.
//!
//! # Example
//!
//! ```
//! use smart_trace::{chrome, Tracer};
//!
//! let tracer = Tracer::enabled();
//! let lane = tracer.lane("tenant 0 AlexNet");
//! lane.instant("arrive", 10);
//! lane.begin("run L0..L3", 40);
//! lane.end("run L0..L3", 90);
//! let json = chrome::export(&tracer).expect("valid trace");
//! assert!(json.contains("traceEvents"));
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod chrome;
pub mod metrics;
pub mod wall;

pub use metrics::{MetricsRegistry, MetricsSnapshot};
pub use wall::WallProfile;

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Poison-tolerant lock: a panicked recorder loses its own events only,
/// never the whole trace.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What one recorded event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span opens (Chrome `ph: "B"`).
    Begin,
    /// A span closes (Chrome `ph: "E"`).
    End,
    /// A zero-duration instant (Chrome `ph: "i"`). Named `Mark` rather
    /// than `Instant` so the identifier can never be confused with (or
    /// lint-matched as) the wall-clock `std::time::Instant` — this crate
    /// records virtual time only.
    Mark,
}

/// One recorded event on a lane, stamped with virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Begin / end / instant.
    pub kind: EventKind,
    /// Span or instant name.
    pub name: String,
    /// Virtual timestamp (cycles, simulated µs, pivots — the recorder's
    /// clock; exported as Chrome µs).
    pub ts: u64,
}

/// Per-lane event storage. Lanes are keyed by name so the export order
/// (and therefore the output bytes) never depends on recording order
/// across threads — only the *within-lane* sequence matters, and each
/// lane has a single logical writer.
type Lanes = Mutex<BTreeMap<String, Arc<Mutex<Vec<Event>>>>>;

#[derive(Debug, Default)]
struct TraceBuf {
    lanes: Lanes,
}

/// A handle recording spans and instant events onto named lanes.
///
/// Cloning is cheap (a shared buffer); a [`Tracer::disabled`] tracer
/// records nothing and costs one `Option` check per call.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    buf: Option<Arc<TraceBuf>>,
}

impl Tracer {
    /// A tracer that records nothing (the default).
    #[must_use]
    pub fn disabled() -> Self {
        Self { buf: None }
    }

    /// A tracer that records events.
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            buf: Some(Arc::new(TraceBuf::default())),
        }
    }

    /// Whether this tracer records anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// The lane named `name`, created on first use. On a disabled tracer
    /// the returned lane is a no-op.
    #[must_use]
    pub fn lane(&self, name: &str) -> Lane {
        let events = self.buf.as_ref().map(|buf| {
            let mut lanes = lock(&buf.lanes);
            match lanes.get(name) {
                Some(events) => Arc::clone(events),
                None => {
                    let events = Arc::new(Mutex::new(Vec::new()));
                    lanes.insert(name.to_owned(), Arc::clone(&events));
                    events
                }
            }
        });
        Lane { events }
    }

    /// Every lane's events, keyed by lane name, each lane stably sorted
    /// by timestamp (recording order breaks ties, so nesting survives).
    /// This is the exporters' input; the name-keyed `BTreeMap` makes the
    /// result — and everything serialized from it — deterministic.
    #[must_use]
    pub fn lanes(&self) -> BTreeMap<String, Vec<Event>> {
        let Some(buf) = &self.buf else {
            return BTreeMap::new();
        };
        let lanes = lock(&buf.lanes);
        lanes
            .iter()
            .map(|(name, events)| {
                let mut events = lock(events).clone();
                events.sort_by_key(|e| e.ts);
                (name.clone(), events)
            })
            .collect()
    }

    /// Total recorded events across lanes.
    #[must_use]
    pub fn event_count(&self) -> usize {
        self.buf.as_ref().map_or(0, |buf| {
            lock(&buf.lanes).values().map(|v| lock(v).len()).sum()
        })
    }
}

/// A recording handle for one lane. No-op when obtained from a disabled
/// tracer; otherwise each call appends one event under the lane's lock.
#[derive(Debug, Clone)]
pub struct Lane {
    events: Option<Arc<Mutex<Vec<Event>>>>,
}

impl Lane {
    fn push(&self, kind: EventKind, name: &str, ts: u64) {
        if let Some(events) = &self.events {
            lock(events).push(Event {
                kind,
                name: name.to_owned(),
                ts,
            });
        }
    }

    /// Whether events recorded here are kept (mirror of the owning
    /// tracer's [`Tracer::is_enabled`]); lets callers skip building
    /// event names on the disabled path.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.events.is_some()
    }

    /// Opens a span at virtual time `ts`.
    pub fn begin(&self, name: &str, ts: u64) {
        self.push(EventKind::Begin, name, ts);
    }

    /// Closes the innermost open span at virtual time `ts`. Chrome pairs
    /// `E` with the nearest unmatched `B` on the lane, so `name` is
    /// advisory — the validator checks it matches anyway.
    pub fn end(&self, name: &str, ts: u64) {
        self.push(EventKind::End, name, ts);
    }

    /// Records a complete `[start, end]` span.
    pub fn span(&self, name: &str, start: u64, end: u64) {
        self.begin(name, start);
        self.end(name, end.max(start));
    }

    /// Records a zero-duration instant event.
    pub fn instant(&self, name: &str, ts: u64) {
        self.push(EventKind::Mark, name, ts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        let lane = t.lane("x");
        assert!(!t.is_enabled());
        assert!(!lane.is_enabled());
        lane.begin("a", 0);
        lane.end("a", 5);
        lane.instant("b", 3);
        assert_eq!(t.event_count(), 0);
        assert!(t.lanes().is_empty());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Tracer::default().is_enabled());
    }

    #[test]
    fn lanes_are_name_keyed_and_ts_sorted() {
        let t = Tracer::enabled();
        let b = t.lane("b");
        let a = t.lane("a");
        b.span("late", 10, 20);
        // Emitted after, stamped before: the snapshot re-sorts.
        b.instant("early", 5);
        a.instant("only", 1);
        let lanes = t.lanes();
        let names: Vec<&str> = lanes.keys().map(String::as_str).collect();
        assert_eq!(names, ["a", "b"]);
        let b_events = &lanes["b"];
        assert_eq!(b_events[0].name, "early");
        assert_eq!(b_events[1].kind, EventKind::Begin);
        assert_eq!(t.event_count(), 4);
    }

    #[test]
    fn equal_timestamps_keep_recording_order() {
        let t = Tracer::enabled();
        let lane = t.lane("l");
        lane.begin("outer", 7);
        lane.begin("inner", 7);
        lane.end("inner", 7);
        lane.end("outer", 7);
        let lanes = t.lanes();
        let kinds: Vec<EventKind> = lanes["l"].iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            [
                EventKind::Begin,
                EventKind::Begin,
                EventKind::End,
                EventKind::End
            ]
        );
    }

    #[test]
    fn clones_share_the_buffer() {
        let t = Tracer::enabled();
        let clone = t.clone();
        clone.lane("l").instant("e", 1);
        assert_eq!(t.event_count(), 1);
    }

    #[test]
    fn span_clamps_inverted_ends() {
        let t = Tracer::enabled();
        t.lane("l").span("s", 10, 4);
        let lanes = t.lanes();
        assert_eq!(lanes["l"][1].ts, 10, "end is clamped to start");
    }
}
