//! Chrome trace-event JSON export, validated before serialization.
//!
//! The output is the ["JSON Array Format" with a `traceEvents`
//! envelope]: one process (`pid` 1), one thread per lane, `B`/`E`
//! duration events and `i` instants, plus a `thread_name` metadata
//! event per lane so Perfetto / `chrome://tracing` label the tracks.
//! Lane `tid`s are assigned by sorted lane name, so the same trace
//! content always serializes to the same bytes — the determinism golden
//! tests diff two traced runs with `assert_eq!` on the raw strings.
//!
//! [`export`] refuses to serialize a malformed trace: [`validate`]
//! checks every lane for balanced, name-matched span nesting and
//! monotone non-decreasing timestamps first, so a wiring bug in a
//! recorder fails the run loudly instead of producing a file the viewer
//! silently mis-renders.
//!
//! ["JSON Array Format" with a `traceEvents` envelope]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::{Event, EventKind, Tracer};
use std::collections::BTreeMap;

/// Validates every lane of a [`Tracer::lanes`] snapshot:
///
/// * timestamps are monotone non-decreasing within a lane;
/// * `B`/`E` events nest: every `E` matches the name of the innermost
///   open `B`, and no span is left open at the end of a lane.
///
/// # Errors
///
/// A human-readable description of the first violation, naming the lane.
pub fn validate(lanes: &BTreeMap<String, Vec<Event>>) -> Result<(), String> {
    for (lane, events) in lanes {
        let mut last_ts = 0u64;
        let mut open: Vec<&str> = Vec::new();
        for e in events {
            if e.ts < last_ts {
                return Err(format!(
                    "lane `{lane}`: timestamp went backwards ({} after {last_ts}) at `{}`",
                    e.ts, e.name
                ));
            }
            last_ts = e.ts;
            match e.kind {
                EventKind::Begin => open.push(&e.name),
                EventKind::End => match open.pop() {
                    Some(top) if top == e.name => {}
                    Some(top) => {
                        return Err(format!(
                            "lane `{lane}`: span end `{}` closes open span `{top}`",
                            e.name
                        ))
                    }
                    None => {
                        return Err(format!(
                            "lane `{lane}`: span end `{}` with no open span",
                            e.name
                        ))
                    }
                },
                EventKind::Mark => {}
            }
        }
        if let Some(top) = open.pop() {
            return Err(format!("lane `{lane}`: span `{top}` never ends"));
        }
    }
    Ok(())
}

/// Serializes the tracer's lanes as Chrome trace-event JSON.
///
/// # Errors
///
/// Propagates [`validate`]'s description when the recorded events do not
/// form a well-nested, monotone trace.
pub fn export(tracer: &Tracer) -> Result<String, String> {
    let lanes = tracer.lanes();
    validate(&lanes)?;
    let mut out = String::from("{\"traceEvents\":[\n");
    let mut first = true;
    let mut push = |line: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };
    for (tid, (lane, events)) in lanes.iter().enumerate() {
        let tid = tid + 1;
        push(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(lane)
            ),
            &mut out,
        );
        for e in events {
            let line = match e.kind {
                EventKind::Begin | EventKind::End => format!(
                    "{{\"name\":\"{}\",\"ph\":\"{}\",\"pid\":1,\"tid\":{tid},\"ts\":{}}}",
                    escape(&e.name),
                    if e.kind == EventKind::Begin { "B" } else { "E" },
                    e.ts
                ),
                EventKind::Mark => format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"ts\":{},\
                     \"s\":\"t\"}}",
                    escape(&e.name),
                    e.ts
                ),
            };
            push(line, &mut out);
        }
    }
    out.push_str("\n]}\n");
    Ok(out)
}

/// JSON string escaping for event and lane names.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_is_deterministic_and_lane_ordered() {
        let make = || {
            let t = Tracer::enabled();
            // Record lanes out of name order; export must not care.
            let b = t.lane("z lane");
            b.span("work", 5, 9);
            let a = t.lane("a lane");
            a.instant("tick", 2);
            t
        };
        let one = export(&make()).expect("valid");
        let two = export(&make()).expect("valid");
        assert_eq!(one, two);
        let a_at = one.find("a lane").expect("a lane present");
        let z_at = one.find("z lane").expect("z lane present");
        assert!(a_at < z_at, "lanes serialize in name order:\n{one}");
        assert!(one.contains("\"ph\":\"B\""));
        assert!(one.contains("\"ph\":\"E\""));
        assert!(one.contains("\"ph\":\"i\""));
        assert!(one.contains("\"ph\":\"M\""));
    }

    #[test]
    fn empty_tracer_exports_an_empty_event_array() {
        let json = export(&Tracer::enabled()).expect("valid");
        assert_eq!(json, "{\"traceEvents\":[\n\n]}\n");
        assert_eq!(export(&Tracer::disabled()).expect("valid"), json);
    }

    #[test]
    fn unbalanced_spans_are_rejected() {
        let t = Tracer::enabled();
        t.lane("l").begin("open", 1);
        let err = export(&t).expect_err("unclosed span");
        assert!(err.contains("never ends"), "{err}");

        let t = Tracer::enabled();
        t.lane("l").end("stray", 1);
        let err = export(&t).expect_err("stray end");
        assert!(err.contains("no open span"), "{err}");

        let t = Tracer::enabled();
        let lane = t.lane("l");
        lane.begin("outer", 1);
        lane.end("inner", 2);
        let err = export(&t).expect_err("mismatched end");
        assert!(err.contains("closes open span"), "{err}");
    }

    #[test]
    fn snapshot_sorting_repairs_out_of_order_recording() {
        // An instant stamped before an already-recorded span is legal —
        // the snapshot sorts per lane before validation.
        let t = Tracer::enabled();
        let lane = t.lane("l");
        lane.span("late", 100, 200);
        lane.instant("early", 10);
        assert!(export(&t).is_ok());
    }

    #[test]
    fn names_are_json_escaped() {
        let t = Tracer::enabled();
        t.lane("quote \" lane").instant("tab\there", 1);
        let json = export(&t).expect("valid");
        assert!(json.contains("quote \\\" lane"));
        assert!(json.contains("tab\\there"));
        assert_eq!(escape("a\\b\nc\u{1}"), "a\\\\b\\nc\\u0001");
    }
}
