//! Josephson junction (JJ) device model.
//!
//! A JJ is the basic switching element of SFQ logic: a thin insulator
//! sandwiched between two superconductors (Sec. 2.1 of the paper). When the
//! current through the junction exceeds its critical current `Ic`, the
//! junction phase slips by 2*pi and emits a single-flux-quantum (SFQ) voltage
//! pulse of area `Phi0 = h / 2e ~= 2.07 mV*ps`.
//!
//! Two views of the device coexist here:
//!
//! * an *architectural* view — switching delay, switching energy, and area,
//!   used by the memory and accelerator models, and
//! * a *circuit* view — the RSJ (resistively-shunted junction) parameters
//!   `Ic`, `R`, `C` consumed by the [`smart_josim`](../../josim) transient
//!   simulator.

use smart_units::{Area, Energy, Frequency, Length, Time};

/// The magnetic flux quantum `Phi0 = h / 2e` in webers (V*s).
pub const FLUX_QUANTUM: f64 = 2.067_833_848e-15;

/// RSJ-model parameters of a Josephson junction.
///
/// The defaults model a self-shunted Nb junction in a Hypres-class ERSFQ
/// process with a critical current of 100 uA, as assumed throughout the
/// paper's energy discussion (~1e-19 J per switching, ~70 GHz operation).
///
/// # Examples
///
/// ```
/// use smart_sfq::jj::JosephsonJunction;
///
/// let jj = JosephsonJunction::hypres_ersfq();
/// // One switching dissipates on the order of 1e-19 J.
/// let e = jj.switching_energy();
/// assert!(e.as_aj() > 0.05 && e.as_aj() < 1.0);
/// // The junction can keep up with ~70 GHz clocking.
/// assert!(jj.max_switching_rate().as_ghz() > 60.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JosephsonJunction {
    /// Critical current in amperes.
    ic: f64,
    /// Shunt resistance in ohms.
    resistance: f64,
    /// Junction capacitance in farads.
    capacitance: f64,
    /// Junction diameter (the paper's feature size `F` for SFQ parts).
    diameter: Length,
}

impl JosephsonJunction {
    /// Creates a junction from raw RSJ parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or non-finite.
    #[must_use]
    pub fn new(ic: f64, resistance: f64, capacitance: f64, diameter: Length) -> Self {
        assert!(
            ic > 0.0 && ic.is_finite(),
            "critical current must be positive"
        );
        assert!(
            resistance > 0.0 && resistance.is_finite(),
            "shunt resistance must be positive"
        );
        assert!(
            capacitance > 0.0 && capacitance.is_finite(),
            "capacitance must be positive"
        );
        assert!(diameter.as_si() > 0.0, "diameter must be positive");
        Self {
            ic,
            resistance,
            capacitance,
            diameter,
        }
    }

    /// The junction assumed by the paper: Hypres ERSFQ 1.0 um technology
    /// ([Yohannes et al. 2015], paper Sec. 5), `Ic = 100 uA`, critically
    /// damped shunt.
    #[must_use]
    pub fn hypres_ersfq() -> Self {
        // Ic*R product of ~0.3 mV is typical for Nb/AlOx/Nb at 10 uA/um^2;
        // C chosen for a Stewart-McCumber parameter near 1 (critical damping).
        let ic = 100e-6;
        let r = 3.0;
        let beta_c = 1.0;
        let c = beta_c * FLUX_QUANTUM / (2.0 * std::f64::consts::PI * ic * r * r);
        Self::new(ic, r, c, Length::from_um(1.0))
    }

    /// A junction scaled to a 28 nm diameter, the paper's scaling assumption
    /// for area comparisons ("SuperNPU assumes JJs can be scaled to 28 nm",
    /// Sec. 3). `Ic` scales with junction area at fixed critical current
    /// density; `Ic*R` stays roughly constant for self-shunted junctions.
    #[must_use]
    pub fn scaled_28nm() -> Self {
        let base = Self::hypres_ersfq();
        let scale = Length::from_nm(28.0).as_si() / base.diameter.as_si();
        // Ic ~ area ~ scale^2 at fixed Jc, but deep-submicron junctions use
        // higher Jc (600 uA/um^2 per the paper's VTM discussion); keep Ic at
        // a floor of 20 uA for thermal stability at 4 K.
        let ic = (base.ic * scale * scale * 60.0).max(20e-6);
        let r = base.ic * base.resistance / ic; // preserve IcR product
        let beta_c = 1.0;
        let c = beta_c * FLUX_QUANTUM / (2.0 * std::f64::consts::PI * ic * r * r);
        Self::new(ic, r, c, Length::from_nm(28.0))
    }

    /// Critical current in amperes.
    #[must_use]
    pub fn critical_current(&self) -> f64 {
        self.ic
    }

    /// Shunt resistance in ohms.
    #[must_use]
    pub fn resistance(&self) -> f64 {
        self.resistance
    }

    /// Junction capacitance in farads.
    #[must_use]
    pub fn capacitance(&self) -> f64 {
        self.capacitance
    }

    /// Junction diameter (feature size `F`).
    #[must_use]
    pub fn diameter(&self) -> Length {
        self.diameter
    }

    /// Junction footprint, `F^2`.
    #[must_use]
    pub fn area(&self) -> Area {
        self.diameter * self.diameter
    }

    /// The characteristic voltage `Vc = Ic * R`.
    #[must_use]
    pub fn characteristic_voltage(&self) -> f64 {
        self.ic * self.resistance
    }

    /// Energy dissipated by one 2*pi phase slip: `E = Ic * Phi0`.
    ///
    /// For `Ic = 100 uA` this is ~2.1e-19 J, matching the paper's "each JJ
    /// switching costs only ~1e-19 J".
    #[must_use]
    pub fn switching_energy(&self) -> Energy {
        Energy::from_j(self.ic * FLUX_QUANTUM)
    }

    /// Characteristic switching time `tau = Phi0 / (2*pi*Vc)`.
    #[must_use]
    pub fn switching_time(&self) -> Time {
        Time::from_s(FLUX_QUANTUM / (2.0 * std::f64::consts::PI * self.characteristic_voltage()))
    }

    /// Maximum reliable switching rate, taken as `1 / (10 * tau)` — the usual
    /// engineering margin that puts a 100 uA / 0.3 mV junction at ~70 GHz
    /// (paper Sec. 2.1: "a JJ can reliably operate at ~70 GHz").
    #[must_use]
    pub fn max_switching_rate(&self) -> Frequency {
        Frequency::from_si(1.0 / (10.0 * self.switching_time().as_s()))
    }

    /// The Stewart-McCumber damping parameter
    /// `beta_c = 2*pi*Ic*R^2*C / Phi0`. SFQ logic requires `beta_c <~ 1`
    /// (overdamped or critically damped) so junctions do not latch.
    #[must_use]
    pub fn stewart_mccumber(&self) -> f64 {
        2.0 * std::f64::consts::PI * self.ic * self.resistance * self.resistance * self.capacitance
            / FLUX_QUANTUM
    }
}

impl Default for JosephsonJunction {
    fn default() -> Self {
        Self::hypres_ersfq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flux_quantum_value() {
        // h / 2e to 5 significant digits.
        assert!((FLUX_QUANTUM - 2.0678e-15).abs() < 1e-19);
    }

    #[test]
    fn hypres_switching_energy_near_1e19() {
        let jj = JosephsonJunction::hypres_ersfq();
        let e = jj.switching_energy().as_j();
        assert!(e > 1e-19 && e < 3e-19, "got {e}");
    }

    #[test]
    fn hypres_operates_near_70ghz() {
        let jj = JosephsonJunction::hypres_ersfq();
        let f = jj.max_switching_rate().as_ghz();
        assert!(f > 60.0 && f < 120.0, "got {f} GHz");
    }

    #[test]
    fn hypres_is_critically_damped() {
        let jj = JosephsonJunction::hypres_ersfq();
        assert!((jj.stewart_mccumber() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scaled_junction_smaller_and_cheaper() {
        let base = JosephsonJunction::hypres_ersfq();
        let scaled = JosephsonJunction::scaled_28nm();
        assert!(scaled.area().as_si() < base.area().as_si());
        assert!(scaled.switching_energy().as_si() < base.switching_energy().as_si());
        // Still a valid SFQ junction.
        assert!(scaled.stewart_mccumber() <= 1.0 + 1e-9);
    }

    #[test]
    fn area_is_f_squared() {
        let jj = JosephsonJunction::hypres_ersfq();
        assert!((jj.area().as_um2() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "critical current must be positive")]
    fn zero_ic_panics() {
        let _ = JosephsonJunction::new(0.0, 3.0, 1e-15, Length::from_um(1.0));
    }

    #[test]
    #[should_panic(expected = "shunt resistance must be positive")]
    fn negative_resistance_panics() {
        let _ = JosephsonJunction::new(1e-4, -3.0, 1e-15, Length::from_um(1.0));
    }
}
