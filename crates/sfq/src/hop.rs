//! A PTL "hop": a splitter unit driving a PTL of a given length.
//!
//! This is the exact structure the paper characterizes in Fig. 13 to
//! validate its SFQ H-Tree model against JoSIM: a pulse enters the splitter
//! unit's receiver, is split, leaves through one driver, and traverses a PTL
//! of length `l` to the next receiver. The crate-level analytic model here is
//! what `smart-josim` cross-checks with a transient circuit simulation.

use crate::components::SplitterUnit;
use crate::jj::JosephsonJunction;
use crate::ptl::{PtlGeometry, PtlLine};
use smart_units::{Energy, Frequency, Length, Time};

/// A splitter unit plus its outgoing PTL segment (one H-Tree hop).
///
/// # Examples
///
/// ```
/// use smart_sfq::hop::PtlHop;
/// use smart_units::Length;
///
/// let hop = PtlHop::new(Length::from_mm(0.5));
/// // Fig. 13a: tens-of-GHz resonance-limited operating frequency.
/// assert!(hop.max_operating_frequency().as_ghz() > 20.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtlHop {
    unit: SplitterUnit,
    line: PtlLine,
}

impl PtlHop {
    /// Creates a hop with the default Hypres micro-strip geometry.
    ///
    /// # Panics
    ///
    /// Panics if `length` is not positive.
    #[must_use]
    pub fn new(length: Length) -> Self {
        Self::with_geometry(PtlGeometry::hypres_microstrip(), length)
    }

    /// Creates a hop with a custom PTL geometry.
    ///
    /// # Panics
    ///
    /// Panics if `length` is not positive.
    #[must_use]
    pub fn with_geometry(geometry: PtlGeometry, length: Length) -> Self {
        Self {
            unit: SplitterUnit::new(),
            line: geometry.line(length),
        }
    }

    /// The PTL segment.
    #[must_use]
    pub fn line(&self) -> &PtlLine {
        &self.line
    }

    /// The splitter unit.
    #[must_use]
    pub fn unit(&self) -> &SplitterUnit {
        &self.unit
    }

    /// Latency of a pulse from the unit's input receiver to the far end of
    /// the PTL (the measurement of Fig. 13a: "from the top driver to the
    /// bottom right receiver").
    #[must_use]
    pub fn latency(&self) -> Time {
        self.unit.latency() + self.line.delay()
    }

    /// Maximum pipelined operating frequency, limited by the PTL resonance
    /// rule (90% of `1 / (2T + t0)`).
    #[must_use]
    pub fn max_operating_frequency(&self) -> Frequency {
        self.line.max_operating_frequency()
    }

    /// Per-pulse energy when the hop runs at its maximum operating
    /// frequency: component switching energy, line termination loss, and the
    /// bias (static) power of the unit integrated over one clock period.
    ///
    /// The static share is what gives Fig. 13b its length dependence: longer
    /// PTLs force a lower clock, so each pulse absorbs more bias energy.
    #[must_use]
    pub fn energy_per_pulse(&self, jj: &JosephsonJunction) -> Energy {
        self.energy_per_pulse_at(jj, self.max_operating_frequency())
    }

    /// Per-pulse energy at an explicit operating frequency.
    ///
    /// # Panics
    ///
    /// Panics if `clock` is zero.
    #[must_use]
    pub fn energy_per_pulse_at(&self, jj: &JosephsonJunction, clock: Frequency) -> Energy {
        let dynamic = self.unit.energy_per_pulse(jj) + self.line.energy_per_pulse();
        let static_share = self.unit.leakage() * clock.period();
        dynamic + static_share
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_length() {
        let short = PtlHop::new(Length::from_mm(0.05));
        let long = PtlHop::new(Length::from_mm(1.0));
        assert!(long.latency().as_si() > short.latency().as_si());
        // Unit latency floor: 15.75 ps.
        assert!(short.latency().as_ps() > 15.75);
    }

    #[test]
    fn fig13a_frequency_band() {
        // Paper Fig. 13a: ~90-100 GHz at 0.01 mm falling toward ~30 GHz by
        // ~0.8 mm.
        let f_short = PtlHop::new(Length::from_mm(0.01)).max_operating_frequency();
        let f_long = PtlHop::new(Length::from_mm(0.8)).max_operating_frequency();
        assert!(
            f_short.as_ghz() > 75.0 && f_short.as_ghz() < 110.0,
            "short: {}",
            f_short.as_ghz()
        );
        assert!(
            f_long.as_ghz() > 25.0 && f_long.as_ghz() < 50.0,
            "long: {}",
            f_long.as_ghz()
        );
    }

    #[test]
    fn fig13b_energy_band() {
        // Paper Fig. 13b: ~2.4e-5 nJ (24 aJ) at 0.01 mm rising to
        // ~4.4e-5 nJ (44 aJ) by 1 mm.
        let jj = JosephsonJunction::hypres_ersfq();
        let e_short = PtlHop::new(Length::from_mm(0.01)).energy_per_pulse(&jj);
        let e_long = PtlHop::new(Length::from_mm(1.0)).energy_per_pulse(&jj);
        assert!(
            e_short.as_aj() > 10.0 && e_short.as_aj() < 40.0,
            "short: {} aJ",
            e_short.as_aj()
        );
        assert!(
            e_long.as_aj() > 30.0 && e_long.as_aj() < 80.0,
            "long: {} aJ",
            e_long.as_aj()
        );
        assert!(e_long.as_si() > e_short.as_si());
    }

    #[test]
    fn slower_clock_costs_more_energy_per_pulse() {
        let jj = JosephsonJunction::hypres_ersfq();
        let hop = PtlHop::new(Length::from_mm(0.2));
        let fast = hop.energy_per_pulse_at(&jj, Frequency::from_ghz(50.0));
        let slow = hop.energy_per_pulse_at(&jj, Frequency::from_ghz(10.0));
        assert!(slow.as_si() > fast.as_si());
    }
}
