//! CMOS wire model and the PTL/JTL/CMOS interconnect comparison of Fig. 2.
//!
//! The CMOS wire is an unrepeated distributed-RC line evaluated with the
//! Elmore delay `0.5 * r * c * len^2` and the switching energy
//! `0.5 * c_total * Vdd^2`. At a 28 nm-class metal layer this reproduces the
//! paper's observations: SFQ lines enjoy roughly two orders of magnitude
//! shorter latency (no DC resistance) and a CMOS wire dissipates ~six orders
//! of magnitude more energy than a PTL.

use crate::jj::JosephsonJunction;
use crate::jtl::Jtl;
use crate::ptl::PtlGeometry;
use smart_units::{Energy, Length, Time};

/// Distributed-RC parameters of a CMOS wire.
///
/// Defaults model a 28 nm intermediate metal layer at 4 K-agnostic nominal
/// corner: 15 ohm/um, 0.25 fF/um, 0.9 V swing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmosWire {
    /// Resistance per meter (ohm/m).
    pub resistance_per_meter: f64,
    /// Capacitance per meter (F/m).
    pub capacitance_per_meter: f64,
    /// Supply voltage (V).
    pub vdd: f64,
}

impl CmosWire {
    /// A 28 nm-class intermediate metal wire.
    #[must_use]
    pub fn metal_28nm() -> Self {
        Self {
            resistance_per_meter: 15.0e6,   // 15 ohm/um
            capacitance_per_meter: 0.25e-9, // 0.25 fF/um
            vdd: 0.9,
        }
    }

    /// Elmore delay of an unrepeated wire of the given length.
    ///
    /// # Panics
    ///
    /// Panics if `length` is not positive.
    #[must_use]
    pub fn latency(&self, length: Length) -> Time {
        assert!(length.as_si() > 0.0, "wire length must be positive");
        let len = length.as_m();
        Time::from_s(0.5 * self.resistance_per_meter * self.capacitance_per_meter * len * len)
    }

    /// Switching energy of one full-swing transition.
    ///
    /// # Panics
    ///
    /// Panics if `length` is not positive.
    #[must_use]
    pub fn energy_per_transition(&self, length: Length) -> Energy {
        assert!(length.as_si() > 0.0, "wire length must be positive");
        let c = self.capacitance_per_meter * length.as_m();
        Energy::from_j(0.5 * c * self.vdd * self.vdd)
    }
}

impl Default for CmosWire {
    fn default() -> Self {
        Self::metal_28nm()
    }
}

/// The three interconnect technologies compared in Fig. 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WireTechnology {
    /// SFQ passive transmission line.
    Ptl,
    /// SFQ Josephson transmission line.
    Jtl,
    /// Conventional CMOS RC wire.
    Cmos,
}

impl WireTechnology {
    /// All technologies in Fig. 2 legend order.
    pub const ALL: [Self; 3] = [Self::Ptl, Self::Jtl, Self::Cmos];

    /// Legend label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Ptl => "PTL",
            Self::Jtl => "JTL",
            Self::Cmos => "CMOS",
        }
    }
}

/// One point of the Fig. 2 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WireDataPoint {
    /// Interconnect technology.
    pub technology: WireTechnology,
    /// Line length.
    pub length: Length,
    /// One-way latency.
    pub latency: Time,
    /// Per-pulse / per-transition energy.
    pub energy: Energy,
}

/// Computes the latency and energy of one wire technology at one length
/// (Fig. 2 kernel).
///
/// # Panics
///
/// Panics if `length` is not positive.
#[must_use]
pub fn wire_point(technology: WireTechnology, length: Length) -> WireDataPoint {
    let jj = JosephsonJunction::hypres_ersfq();
    let (latency, energy) = match technology {
        WireTechnology::Ptl => {
            let line = PtlGeometry::hypres_microstrip().line(length);
            (line.delay(), line.energy_per_pulse())
        }
        WireTechnology::Jtl => {
            let jtl = Jtl::new(length);
            (jtl.latency(), jtl.energy_per_pulse(&jj))
        }
        WireTechnology::Cmos => {
            let wire = CmosWire::metal_28nm();
            (wire.latency(length), wire.energy_per_transition(length))
        }
    };
    WireDataPoint {
        technology,
        length,
        latency,
        energy,
    }
}

/// Sweeps all three technologies over the Fig. 2 length range
/// (`lengths_um`, typically 10..=200 um).
#[must_use]
pub fn wire_comparison(lengths_um: &[f64]) -> Vec<WireDataPoint> {
    let mut out = Vec::with_capacity(lengths_um.len() * WireTechnology::ALL.len());
    for tech in WireTechnology::ALL {
        for &um in lengths_um {
            out.push(wire_point(tech, Length::from_um(um)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmos_latency_quadratic() {
        let w = CmosWire::metal_28nm();
        let t1 = w.latency(Length::from_um(100.0));
        let t2 = w.latency(Length::from_um(200.0));
        assert!((t2.as_si() / t1.as_si() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fig2a_cmos_200um_is_about_100ps() {
        let t = CmosWire::metal_28nm().latency(Length::from_um(200.0));
        assert!(
            t.as_ps() > 40.0 && t.as_ps() < 200.0,
            "got {} ps",
            t.as_ps()
        );
    }

    #[test]
    fn fig2a_sfq_two_orders_faster_at_200um() {
        let len = Length::from_um(200.0);
        let cmos = wire_point(WireTechnology::Cmos, len).latency;
        let ptl = wire_point(WireTechnology::Ptl, len).latency;
        assert!(
            cmos.as_si() / ptl.as_si() > 30.0,
            "PTL should be orders faster: {}x",
            cmos.as_si() / ptl.as_si()
        );
    }

    #[test]
    fn fig2a_ptl_faster_than_jtl_at_length() {
        let len = Length::from_um(200.0);
        let jtl = wire_point(WireTechnology::Jtl, len).latency;
        let ptl = wire_point(WireTechnology::Ptl, len).latency;
        assert!(jtl.as_si() > ptl.as_si() * 5.0);
    }

    #[test]
    fn fig2b_cmos_orders_of_magnitude_above_ptl() {
        // The paper quotes ~six orders for its process corner; our nominal
        // 28 nm wire and aJ-class PTL give >= four orders — same story:
        // CMOS >> JTL >> PTL.
        let len = Length::from_um(200.0);
        let cmos = wire_point(WireTechnology::Cmos, len).energy;
        let jtl = wire_point(WireTechnology::Jtl, len).energy;
        let ptl = wire_point(WireTechnology::Ptl, len).energy;
        let ratio = cmos.as_si() / ptl.as_si();
        assert!(ratio > 1e4, "expected >= 4 orders, got {ratio:e}");
        assert!(cmos.as_si() > jtl.as_si());
        assert!(jtl.as_si() > ptl.as_si());
    }

    #[test]
    fn sweep_has_all_technologies() {
        let pts = wire_comparison(&[50.0, 100.0, 200.0]);
        assert_eq!(pts.len(), 9);
        for tech in WireTechnology::ALL {
            assert_eq!(pts.iter().filter(|p| p.technology == tech).count(), 3);
        }
    }

    #[test]
    fn names_match_legend() {
        assert_eq!(WireTechnology::Ptl.name(), "PTL");
        assert_eq!(WireTechnology::Jtl.name(), "JTL");
        assert_eq!(WireTechnology::Cmos.name(), "CMOS");
    }

    #[test]
    #[should_panic(expected = "wire length must be positive")]
    fn zero_length_latency_panics() {
        let _ = CmosWire::metal_28nm().latency(Length::from_um(0.0));
    }
}
