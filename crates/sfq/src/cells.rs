//! Parameterized SFQ cell specifications for circuit-level
//! characterization.
//!
//! These are the *inputs* of the `smart-josim` characterization suite:
//! typed, hashable descriptions of JTL chains, splitter fan-out trees, and
//! PTL links. Each spec derives its analog circuit parameters from the
//! same device models the analytic layer uses — [`crate::jj`] for the
//! junction (characteristic voltage, Stewart-McCumber damping),
//! [`crate::jtl::Jtl`] and [`crate::fanout::SplitterTree`] for the
//! closed-form latency the simulation is validated against, and
//! [`crate::ptl::PtlGeometry`] for line constants.
//!
//! Fields are integer-encoded (nA, per-mille, nm) so that specs implement
//! `Hash`/`Eq` and can key a memoized characterization cache, exactly like
//! the evaluator's cache keys on `(Scheme, ModelId, batch)`.

use crate::fanout::SplitterTree;
use crate::jj::FLUX_QUANTUM;
use crate::jtl::Jtl;
use crate::ptl::PtlGeometry;
use smart_units::{Length, Time};

/// Characteristic voltage `Ic * R` of the shunted junctions used by the
/// characterization circuits (V). With the `beta_c = 1` capacitance below
/// and the `beta_L = 3 pi / 4` coupling, 0.5 mV is the calibrated
/// operating point at which the simulated chain reproduces the closed-form
/// 2 ps/stage JTL delay at the standard 0.75 Ic bias.
pub const CHARACTERISTIC_VOLTAGE: f64 = 0.5e-3;

/// A bias-fed chain of `stages` Josephson junctions coupled by inductors —
/// the circuit-level counterpart of the analytic [`Jtl`] model.
///
/// # Examples
///
/// ```
/// use smart_sfq::cells::JtlChainSpec;
///
/// let spec = JtlChainSpec::standard(8);
/// assert_eq!(spec.stages, 8);
/// assert!((spec.ic() - 100e-6).abs() < 1e-12);
/// assert!((spec.closed_form_stage_delay().as_ps() - 2.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JtlChainSpec {
    /// Number of junction stages (>= 2: delay is measured across hops).
    pub stages: u32,
    /// Junction critical current in nanoamperes.
    pub ic_na: u64,
    /// DC bias per junction, in per-mille of `Ic` (700 = 0.7 Ic).
    pub bias_pm: u32,
    /// Coupling inductance in femtohenries.
    pub inductance_fh: u64,
}

impl JtlChainSpec {
    /// The standard chain: 100 uA junctions biased at 0.75 Ic with
    /// `L = 3 Phi0 / (8 Ic)` coupling (`beta_L = 3 pi / 4`), the
    /// calibrated operating point that reproduces the ~2 ps/stage
    /// closed-form delay.
    ///
    /// # Panics
    ///
    /// Panics if `stages < 2`.
    #[must_use]
    pub fn standard(stages: u32) -> Self {
        Self::new(stages, 100_000, 750)
    }

    /// A chain with explicit junction size and bias; the coupling
    /// inductance keeps `beta_L = 3 pi / 4` (i.e. `L = 3 Phi0 / (8 Ic)`).
    ///
    /// # Panics
    ///
    /// Panics if `stages < 2`, `ic_na` is zero, or `bias_pm` is not in
    /// `(0, 1000)` (biasing at or beyond `Ic` never settles).
    #[must_use]
    pub fn new(stages: u32, ic_na: u64, bias_pm: u32) -> Self {
        assert!(stages >= 2, "need at least 2 stages to measure a hop");
        assert!(ic_na > 0, "critical current must be positive");
        assert!(
            bias_pm > 0 && bias_pm < 1000,
            "bias must be a fraction of Ic in (0, 1000) per-mille"
        );
        let ic = ic_na as f64 * 1e-9;
        let l = 3.0 * FLUX_QUANTUM / (8.0 * ic);
        Self {
            stages,
            ic_na,
            bias_pm,
            inductance_fh: (l * 1e15).round() as u64,
        }
    }

    /// Junction critical current (A).
    #[must_use]
    pub fn ic(&self) -> f64 {
        self.ic_na as f64 * 1e-9
    }

    /// Per-junction DC bias current (A).
    #[must_use]
    pub fn bias_current(&self) -> f64 {
        self.ic() * f64::from(self.bias_pm) * 1e-3
    }

    /// Shunt resistance (ohms) fixing the characteristic voltage.
    #[must_use]
    pub fn shunt_resistance(&self) -> f64 {
        CHARACTERISTIC_VOLTAGE / self.ic()
    }

    /// Junction capacitance (F) at critical damping (`beta_c = 1`).
    #[must_use]
    pub fn junction_capacitance(&self) -> f64 {
        let r = self.shunt_resistance();
        FLUX_QUANTUM / (2.0 * std::f64::consts::PI * self.ic() * r * r)
    }

    /// Coupling inductance between stages (H).
    #[must_use]
    pub fn coupling_inductance(&self) -> f64 {
        self.inductance_fh as f64 * 1e-15
    }

    /// The analytic model of this chain: one [`Jtl`] whose stage count
    /// matches, at the default Hypres stage pitch.
    #[must_use]
    pub fn closed_form(&self) -> Jtl {
        Jtl::new(Length::from_um(
            f64::from(self.stages) * Jtl::DEFAULT_STAGE_PITCH_UM,
        ))
    }

    /// The closed-form per-stage delay the simulation is validated
    /// against.
    #[must_use]
    pub fn closed_form_stage_delay(&self) -> Time {
        Time::from_ps(Jtl::DEFAULT_STAGE_DELAY_PS)
    }
}

/// A binary splitter tree that broadcasts one SFQ pulse to `leaves`
/// outputs — the circuit-level counterpart of [`SplitterTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitterFanoutSpec {
    /// Number of leaf outputs (a power of two, >= 2).
    pub leaves: u32,
    /// Junction critical current in nanoamperes (leaf junctions; interior
    /// junctions are scaled up to drive two branches).
    pub ic_na: u64,
    /// DC bias per junction, in per-mille of `Ic`.
    pub bias_pm: u32,
}

impl SplitterFanoutSpec {
    /// The standard tree: 100 uA junctions biased at 0.75 Ic (splitting a
    /// pulse halves the kick each branch receives, so splitter junctions
    /// run hotter than JTL stages).
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is not a power of two or is less than 2.
    #[must_use]
    pub fn standard(leaves: u32) -> Self {
        assert!(
            leaves >= 2 && leaves.is_power_of_two(),
            "fan-out must be a power of two >= 2"
        );
        Self {
            leaves,
            ic_na: 100_000,
            bias_pm: 750,
        }
    }

    /// Tree depth (`log2(leaves)`).
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.leaves.trailing_zeros()
    }

    /// Junction critical current (A).
    #[must_use]
    pub fn ic(&self) -> f64 {
        self.ic_na as f64 * 1e-9
    }

    /// Per-junction DC bias current (A).
    #[must_use]
    pub fn bias_current(&self) -> f64 {
        self.ic() * f64::from(self.bias_pm) * 1e-3
    }

    /// Shunt resistance (ohms) fixing the characteristic voltage.
    #[must_use]
    pub fn shunt_resistance(&self) -> f64 {
        CHARACTERISTIC_VOLTAGE / self.ic()
    }

    /// Junction capacitance (F) at critical damping.
    #[must_use]
    pub fn junction_capacitance(&self) -> f64 {
        let r = self.shunt_resistance();
        FLUX_QUANTUM / (2.0 * std::f64::consts::PI * self.ic() * r * r)
    }

    /// Branch coupling inductance (H), `beta_L = 3 pi / 4` like the JTL.
    #[must_use]
    pub fn coupling_inductance(&self) -> f64 {
        3.0 * FLUX_QUANTUM / (8.0 * self.ic())
    }

    /// The analytic model of this tree.
    #[must_use]
    pub fn closed_form(&self) -> SplitterTree {
        SplitterTree::for_fanout(u64::from(self.leaves))
    }
}

/// A passive-transmission-line link of a given length in the Hypres
/// micro-strip geometry — the circuit-level counterpart of
/// [`PtlGeometry::line`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PtlLinkSpec {
    /// Line length in nanometers.
    pub length_nm: u64,
}

impl PtlLinkSpec {
    /// A link of the given length in millimeters.
    ///
    /// # Panics
    ///
    /// Panics if `mm` is not positive and finite.
    #[must_use]
    pub fn from_mm(mm: f64) -> Self {
        assert!(mm > 0.0 && mm.is_finite(), "PTL length must be positive");
        Self {
            length_nm: (mm * 1e6).round() as u64,
        }
    }

    /// Line length.
    #[must_use]
    pub fn length(&self) -> Length {
        Length::from_nm(self.length_nm as f64)
    }

    /// The line geometry (Hypres Nb/SiO2 micro-strip).
    #[must_use]
    pub fn geometry(&self) -> PtlGeometry {
        PtlGeometry::hypres_microstrip()
    }

    /// Closed-form one-way delay (s), Eq. 4.
    #[must_use]
    pub fn closed_form_delay(&self) -> f64 {
        self.geometry().delay_per_meter() * self.length().as_m()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_chain_parameters() {
        let s = JtlChainSpec::standard(8);
        assert!((s.ic() - 100e-6).abs() < 1e-15);
        assert!((s.bias_current() - 75e-6).abs() < 1e-15);
        assert!((s.shunt_resistance() - 5.0).abs() < 1e-12);
        // beta_L = 2 pi L Ic / Phi0 = 3 pi / 4.
        let beta_l = 2.0 * std::f64::consts::PI * s.coupling_inductance() * s.ic() / FLUX_QUANTUM;
        assert!(
            (beta_l - 0.75 * std::f64::consts::PI).abs() < 1e-3,
            "{beta_l}"
        );
        assert_eq!(s.closed_form().stages(), 8);
    }

    #[test]
    fn chain_is_hashable_and_comparable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        assert!(set.insert(JtlChainSpec::standard(4)));
        assert!(!set.insert(JtlChainSpec::standard(4)));
        assert!(set.insert(JtlChainSpec::new(4, 100_000, 650)));
    }

    #[test]
    fn fanout_depth_and_closed_form() {
        let s = SplitterFanoutSpec::standard(8);
        assert_eq!(s.depth(), 3);
        assert_eq!(s.closed_form().splitter_count(), 7);
    }

    #[test]
    fn ptl_lengths_round_trip() {
        let s = PtlLinkSpec::from_mm(0.4);
        assert!((s.length().as_mm() - 0.4).abs() < 1e-9);
        assert!(s.closed_form_delay() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least 2 stages")]
    fn one_stage_chain_rejected() {
        let _ = JtlChainSpec::standard(1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_fanout_rejected() {
        let _ = SplitterFanoutSpec::standard(3);
    }

    #[test]
    #[should_panic(expected = "bias must be a fraction")]
    fn overbias_rejected() {
        let _ = JtlChainSpec::new(4, 100_000, 1000);
    }
}
