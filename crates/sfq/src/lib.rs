//! Superconductor single-flux-quantum (SFQ) device and interconnect models.
//!
//! This crate is the bottom layer of the SMART reproduction (MICRO 2021,
//! Zokaee & Jiang): it models the Josephson junction, the SFQ component
//! library of the paper's Table 2 (splitter, PTL driver/receiver, nTron,
//! DFF, DC/SFQ converter), micro-strip passive transmission lines with the
//! paper's Equations 1-4, Josephson transmission lines, fan-out splitter
//! trees, and the SFQ-vs-CMOS wire comparison of Fig. 2.
//!
//! # Quick start
//!
//! ```
//! use smart_sfq::jj::JosephsonJunction;
//! use smart_sfq::ptl::PtlGeometry;
//! use smart_units::Length;
//!
//! // Price a 1 mm PTL hop in the Hypres ERSFQ process.
//! let line = PtlGeometry::hypres_microstrip().line(Length::from_mm(1.0));
//! println!("delay = {:.2} ps", line.delay().as_ps());
//! println!("f_max = {:.1} GHz", line.max_operating_frequency().as_ghz());
//!
//! // Energy scale of the technology: ~1e-19 J per JJ switching.
//! let jj = JosephsonJunction::hypres_ersfq();
//! assert!(jj.switching_energy().as_j() < 1e-18);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cells;
pub mod components;
pub mod fanout;
pub mod hop;
pub mod jj;
pub mod jtl;
pub mod ptl;
pub mod wire;

pub use cells::{JtlChainSpec, PtlLinkSpec, SplitterFanoutSpec};
pub use components::{Component, ComponentKind, Repeater, SplitterUnit};
pub use fanout::{SfqDecoder, SplitterTree};
pub use hop::PtlHop;
pub use jj::JosephsonJunction;
pub use jtl::Jtl;
pub use ptl::{PtlGeometry, PtlLine, SegmentedPtl};
pub use smart_units::{Area, Energy, Frequency, Length, Power, Time};
pub use wire::{CmosWire, WireDataPoint, WireTechnology};
