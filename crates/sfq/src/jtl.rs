//! Josephson transmission line (JTL) model.
//!
//! A JTL is an *active* interconnect: a chain of bias-fed JJs that regenerate
//! the SFQ pulse stage by stage. It is convenient for short hops (no
//! driver/receiver needed) but, compared to a PTL, its delay grows with a
//! much larger slope and it burns ~100x more energy on long lines
//! (paper Fig. 2 and Sec. 2.1).

use crate::jj::JosephsonJunction;
use smart_units::{Area, Energy, Length, Power, Time};

/// A JTL segment of a given length.
///
/// # Examples
///
/// ```
/// use smart_sfq::jtl::Jtl;
/// use smart_units::Length;
///
/// let jtl = Jtl::new(Length::from_um(100.0));
/// assert!(jtl.stages() >= 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jtl {
    length: Length,
    stage_pitch: Length,
    stage_delay: Time,
}

impl Jtl {
    /// Stage pitch of the Hypres ERSFQ process: one JJ stage per ~10 um.
    pub const DEFAULT_STAGE_PITCH_UM: f64 = 10.0;
    /// Per-stage delay: ~2 ps per JJ stage.
    pub const DEFAULT_STAGE_DELAY_PS: f64 = 2.0;

    /// Creates a JTL with default Hypres ERSFQ stage parameters.
    ///
    /// # Panics
    ///
    /// Panics if `length` is not positive.
    #[must_use]
    pub fn new(length: Length) -> Self {
        Self::with_stages(
            length,
            Length::from_um(Self::DEFAULT_STAGE_PITCH_UM),
            Time::from_ps(Self::DEFAULT_STAGE_DELAY_PS),
        )
    }

    /// Creates a JTL with custom stage pitch and per-stage delay.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive.
    #[must_use]
    pub fn with_stages(length: Length, stage_pitch: Length, stage_delay: Time) -> Self {
        assert!(length.as_si() > 0.0, "JTL length must be positive");
        assert!(stage_pitch.as_si() > 0.0, "stage pitch must be positive");
        assert!(stage_delay.as_si() > 0.0, "stage delay must be positive");
        Self {
            length,
            stage_pitch,
            stage_delay,
        }
    }

    /// Physical length.
    #[must_use]
    pub fn length(&self) -> Length {
        self.length
    }

    /// Number of JJ stages (at least one).
    #[must_use]
    pub fn stages(&self) -> u32 {
        (self.length.as_si() / self.stage_pitch.as_si())
            .ceil()
            .max(1.0) as u32
    }

    /// End-to-end propagation latency.
    #[must_use]
    pub fn latency(&self) -> Time {
        self.stage_delay * f64::from(self.stages())
    }

    /// Energy of forwarding one pulse: every stage JJ switches once, and the
    /// resistive bias-feeding network of each stage dissipates ~9x the bare
    /// switching energy while the pulse transits (this is what makes a long
    /// JTL ~100x more expensive than a PTL, paper Sec. 2.1).
    #[must_use]
    pub fn energy_per_pulse(&self, jj: &JosephsonJunction) -> Energy {
        jj.switching_energy() * (10.0 * f64::from(self.stages()))
    }

    /// Static bias power (ERSFQ biasing still burns a small per-stage static
    /// current through the feeding network: ~0.4 uW per stage).
    #[must_use]
    pub fn leakage(&self) -> Power {
        Power::from_uw(0.4) * f64::from(self.stages())
    }

    /// Layout footprint: each stage is a JJ plus bias inductor, ~26 F^2.
    #[must_use]
    pub fn area(&self, jj: &JosephsonJunction) -> Area {
        jj.area() * (26.0 * f64::from(self.stages()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_count_rounds_up() {
        let jtl = Jtl::new(Length::from_um(95.0));
        assert_eq!(jtl.stages(), 10);
        let jtl = Jtl::new(Length::from_um(1.0));
        assert_eq!(jtl.stages(), 1);
    }

    #[test]
    fn latency_linear_in_stage_count() {
        let jtl = Jtl::new(Length::from_um(200.0));
        assert!((jtl.latency().as_ps() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn jtl_energy_exceeds_ptl_energy_on_long_lines() {
        use crate::ptl::PtlGeometry;
        let jj = JosephsonJunction::hypres_ersfq();
        let length = Length::from_mm(1.0);
        let jtl_e = Jtl::new(length).energy_per_pulse(&jj);
        let ptl_e = PtlGeometry::hypres_microstrip()
            .line(length)
            .energy_per_pulse();
        // Paper: "To implement a long line, a JTL consumes 100x more energy
        // than a PTL."
        let ratio = jtl_e.as_si() / ptl_e.as_si();
        assert!(ratio > 50.0, "got ratio {ratio}");
    }

    #[test]
    fn jtl_slower_than_ptl_per_length() {
        use crate::ptl::PtlGeometry;
        let length = Length::from_mm(1.0);
        let jtl_t = Jtl::new(length).latency();
        let ptl_t = PtlGeometry::hypres_microstrip().line(length).delay();
        assert!(jtl_t.as_si() > ptl_t.as_si() * 5.0);
    }

    #[test]
    #[should_panic(expected = "JTL length must be positive")]
    fn zero_length_panics() {
        let _ = Jtl::new(Length::from_um(0.0));
    }
}
