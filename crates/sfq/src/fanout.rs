//! Fan-out trees and the SFQ decoder cost model.
//!
//! SFQ gates can drive only one successor; a fan-out of `n` requires a binary
//! tree of `n - 1` splitters (Sec. 2.1). This module prices those trees and
//! builds the paper's SFQ decoder model: an `N`-to-`2^N` decoder needs
//! `O(2^N)` splitters to distribute clock and address pulses, which is why an
//! SFQ 4-to-16 decoder occupies 77K F^2 while a 28 nm CMOS equivalent needs
//! only 23K F^2 (Sec. 2.1).

use crate::components::{Component, ComponentKind};
use crate::jj::JosephsonJunction;
use smart_units::{Area, Energy, Power, Time};

/// A binary tree of splitters that raises fan-out from 1 to `fanout`.
///
/// # Examples
///
/// ```
/// use smart_sfq::fanout::SplitterTree;
///
/// let tree = SplitterTree::for_fanout(16);
/// assert_eq!(tree.splitter_count(), 15);
/// assert_eq!(tree.depth(), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitterTree {
    fanout: u64,
}

impl SplitterTree {
    /// Builds the minimal splitter tree for the requested fan-out.
    ///
    /// # Panics
    ///
    /// Panics if `fanout` is zero.
    #[must_use]
    pub fn for_fanout(fanout: u64) -> Self {
        assert!(fanout > 0, "fan-out must be positive");
        Self { fanout }
    }

    /// Requested fan-out.
    #[must_use]
    pub fn fanout(&self) -> u64 {
        self.fanout
    }

    /// Number of splitters: a binary tree with `fanout` leaves has
    /// `fanout - 1` internal nodes.
    #[must_use]
    pub fn splitter_count(&self) -> u64 {
        self.fanout - 1
    }

    /// Tree depth: `ceil(log2(fanout))`.
    #[must_use]
    pub fn depth(&self) -> u32 {
        if self.fanout <= 1 {
            0
        } else {
            64 - (self.fanout - 1).leading_zeros()
        }
    }

    /// Latency from root to any leaf (depth x splitter latency).
    #[must_use]
    pub fn latency(&self) -> Time {
        Component::of(ComponentKind::Splitter).latency() * f64::from(self.depth())
    }

    /// Energy of broadcasting one pulse to all leaves: every splitter fires.
    #[must_use]
    pub fn energy_per_broadcast(&self, jj: &JosephsonJunction) -> Energy {
        Component::of(ComponentKind::Splitter).energy_per_pulse(jj) * self.splitter_count() as f64
    }

    /// Layout footprint of all splitters.
    #[must_use]
    pub fn area(&self, jj: &JosephsonJunction) -> Area {
        Component::of(ComponentKind::Splitter).area(jj) * self.splitter_count() as f64
    }

    /// Total leakage (splitters have none in Table 2, so this is zero; kept
    /// for interface symmetry with CMOS fan-out structures).
    #[must_use]
    pub fn leakage(&self) -> Power {
        Component::of(ComponentKind::Splitter).leakage() * self.splitter_count() as f64
    }
}

/// Cost model of an SFQ `address_bits`-to-`2^address_bits` decoder.
///
/// Structure (paper Fig. 3d): a clock-distribution splitter tree driving
/// `2^N` NOR-based match lines, plus a per-input splitter tree that fans each
/// address bit (and its complement) to half of the outputs. The dominant
/// cost is `O(2^N)` splitters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SfqDecoder {
    address_bits: u32,
}

impl SfqDecoder {
    /// Creates a decoder for the given address width.
    ///
    /// # Panics
    ///
    /// Panics if `address_bits` is zero or greater than 32.
    #[must_use]
    pub fn new(address_bits: u32) -> Self {
        assert!(
            (1..=32).contains(&address_bits),
            "address width must be in 1..=32"
        );
        Self { address_bits }
    }

    /// Address width `N`.
    #[must_use]
    pub fn address_bits(&self) -> u32 {
        self.address_bits
    }

    /// Number of decoded outputs, `2^N`.
    #[must_use]
    pub fn outputs(&self) -> u64 {
        1u64 << self.address_bits
    }

    /// Total splitter count: one clock tree over all outputs plus one tree
    /// per address bit pair spanning half the outputs each.
    #[must_use]
    pub fn splitter_count(&self) -> u64 {
        let outputs = self.outputs();
        let clock_tree = SplitterTree::for_fanout(outputs).splitter_count();
        let per_bit = SplitterTree::for_fanout((outputs / 2).max(1)).splitter_count();
        clock_tree + 2 * u64::from(self.address_bits) * per_bit
    }

    /// Decode latency: clock tree depth plus one NOR stage (~2 splitter
    /// latencies of margin, matching ~50 ps for a 4-to-16).
    #[must_use]
    pub fn latency(&self) -> Time {
        let tree = SplitterTree::for_fanout(self.outputs());
        tree.latency() + Component::of(ComponentKind::Splitter).latency() * 2.0
    }

    /// Layout footprint. Each splitter occupies ~450 F^2 including its JTL
    /// stubs and bias rails, and each output costs ~2800 F^2 for the NOR
    /// latch, clock distribution and row wiring; calibrated so a 4-to-16
    /// decoder lands at the NEC-measured 77K F^2 (Sec. 2.1).
    #[must_use]
    pub fn area(&self, jj: &JosephsonJunction) -> Area {
        let f2 = jj.area();
        let splitters = self.splitter_count() as f64 * 450.0;
        let per_output = self.outputs() as f64 * 2_800.0;
        f2 * (splitters + per_output)
    }

    /// Energy of one decode: address + clock pulses traverse every splitter
    /// on one root-to-leaf path of each tree, plus one latch fires.
    #[must_use]
    pub fn energy_per_decode(&self, jj: &JosephsonJunction) -> Energy {
        let splitter = Component::of(ComponentKind::Splitter);
        let path_splitters = f64::from(SplitterTree::for_fanout(self.outputs()).depth())
            * (1.0 + f64::from(self.address_bits));
        // The clock tree broadcasts to all outputs each decode.
        let clock_broadcast = splitter.energy_per_pulse(jj)
            * SplitterTree::for_fanout(self.outputs()).splitter_count() as f64;
        splitter.energy_per_pulse(jj) * path_splitters
            + clock_broadcast
            + jj.switching_energy() * 4.0
    }
}

/// Area of a synthesized 28 nm CMOS `N`-to-`2^N` decoder in F^2 (the paper
/// synthesized a 4-to-16 at 18.7 um^2 = 23K F^2 at F = 28 nm). Scales with
/// output count.
#[must_use]
pub fn cmos_decoder_area_f2(address_bits: u32) -> f64 {
    assert!(
        (1..=32).contains(&address_bits),
        "address width must be in 1..=32"
    );
    // 23_000 F^2 at N = 4 (16 outputs) => ~1_437 F^2 per output.
    let per_output = 23_000.0 / 16.0;
    per_output * (1u64 << address_bits) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitter_tree_counts() {
        assert_eq!(SplitterTree::for_fanout(1).splitter_count(), 0);
        assert_eq!(SplitterTree::for_fanout(2).splitter_count(), 1);
        assert_eq!(SplitterTree::for_fanout(16).splitter_count(), 15);
        assert_eq!(SplitterTree::for_fanout(5).splitter_count(), 4);
    }

    #[test]
    fn splitter_tree_depths() {
        assert_eq!(SplitterTree::for_fanout(1).depth(), 0);
        assert_eq!(SplitterTree::for_fanout(2).depth(), 1);
        assert_eq!(SplitterTree::for_fanout(3).depth(), 2);
        assert_eq!(SplitterTree::for_fanout(16).depth(), 4);
        assert_eq!(SplitterTree::for_fanout(17).depth(), 5);
    }

    #[test]
    fn tree_latency_is_depth_times_7ps() {
        let t = SplitterTree::for_fanout(256);
        assert!((t.latency().as_ps() - 8.0 * 7.0).abs() < 1e-9);
    }

    #[test]
    fn decoder_splitter_count_is_order_2n() {
        let d = SfqDecoder::new(4);
        let outputs = d.outputs() as f64;
        let count = d.splitter_count() as f64;
        assert!(count > outputs, "O(2^N) splitters expected");
        assert!(count < outputs * 10.0);
    }

    #[test]
    fn sfq_4to16_decoder_near_77k_f2() {
        let jj = JosephsonJunction::hypres_ersfq();
        let d = SfqDecoder::new(4);
        let f2 = d.area(&jj).as_si() / jj.area().as_si();
        assert!(
            (60_000.0..=95_000.0).contains(&f2),
            "expected ~77K F^2, got {f2}"
        );
    }

    #[test]
    fn sfq_decoder_larger_than_cmos() {
        // Sec. 2.1: "A SFQ decoder is larger than its CMOS counterpart by
        // multiple times, even if JJ can be scaled to the same size of a
        // transistor."
        let jj = JosephsonJunction::hypres_ersfq();
        let d = SfqDecoder::new(4);
        let sfq_f2 = d.area(&jj).as_si() / jj.area().as_si();
        let cmos_f2 = cmos_decoder_area_f2(4);
        assert!(sfq_f2 > 2.0 * cmos_f2);
    }

    #[test]
    fn decoder_energy_positive_and_grows() {
        let jj = JosephsonJunction::hypres_ersfq();
        let e4 = SfqDecoder::new(4).energy_per_decode(&jj);
        let e8 = SfqDecoder::new(8).energy_per_decode(&jj);
        assert!(e4.as_si() > 0.0);
        assert!(e8.as_si() > e4.as_si());
    }

    #[test]
    #[should_panic(expected = "fan-out must be positive")]
    fn zero_fanout_panics() {
        let _ = SplitterTree::for_fanout(0);
    }

    #[test]
    #[should_panic(expected = "address width must be in 1..=32")]
    fn zero_address_bits_panics() {
        let _ = SfqDecoder::new(0);
    }
}
