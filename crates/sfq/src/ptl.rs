//! Micro-strip passive transmission line (PTL) model.
//!
//! Implements Equations 1-4 of the paper:
//!
//! * Eq. 1 — inductance per unit length, including the kinetic-inductance
//!   correction from the penetration depths of the strip and ground plane:
//!   `L = (mu0 * h / (K * w)) * (1 + (l1/h) coth(t1/l1) + (l2/h) coth(t2/l2))`
//! * Eq. 2 — capacitance per unit length: `C = eps_r * eps0 * w / h`
//! * Eq. 3 — impedance: `Z = sqrt(L / C)`
//! * Eq. 4 — delay: `T = N * sqrt(L_sec * C_sec)` for `N` LC sections
//!
//! plus the resonance-frequency rule of Sec. 4.2.3: a PTL with a driver and a
//! receiver resonates at `f = 1 / (2T + t0)` and may be operated at up to 90%
//! of `f`; inserting repeaters shortens each segment and raises the usable
//! frequency at the cost of power and area.

use crate::components::Repeater;
use crate::jj::JosephsonJunction;
use smart_units::{Energy, Frequency, Length, Time};

/// Permeability of free space (H/m).
const MU0: f64 = 1.256_637_062e-6;
/// Permittivity of free space (F/m).
const EPS0: f64 = 8.854_187_812e-12;

/// Geometry and material parameters of a superconducting micro-strip PTL.
///
/// The defaults describe a Nb micro-strip in the Hypres ERSFQ 1.0 um process
/// (paper Sec. 4.2.3 / [Yohannes 2015]): 2 um wide strip over a 0.2 um SiO2
/// dielectric, 0.2 um thick strip and ground plane, 90 nm Nb penetration
/// depth.
///
/// # Examples
///
/// ```
/// use smart_sfq::ptl::PtlGeometry;
/// use smart_units::Length;
///
/// let geom = PtlGeometry::hypres_microstrip();
/// let line = geom.line(Length::from_mm(1.0));
/// // Propagation is a handful of ps/mm — two orders faster than CMOS RC.
/// assert!(line.delay().as_ps() > 3.0 && line.delay().as_ps() < 15.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtlGeometry {
    /// Line width `w`.
    pub width: Length,
    /// Dielectric thickness `h`.
    pub dielectric_thickness: Length,
    /// Strip thickness `t1`.
    pub strip_thickness: Length,
    /// Ground-plane thickness `t2`.
    pub ground_thickness: Length,
    /// Penetration depth of the strip `lambda1`.
    pub strip_penetration: Length,
    /// Penetration depth of the ground plane `lambda2`.
    pub ground_penetration: Length,
    /// Relative dielectric constant `eps_r` of the insulator.
    pub dielectric_constant: f64,
    /// Fringing-field factor `K` (>= 1).
    pub fringing_factor: f64,
}

impl PtlGeometry {
    /// Nb/SiO2 micro-strip of the Hypres ERSFQ process.
    #[must_use]
    pub fn hypres_microstrip() -> Self {
        Self {
            width: Length::from_um(2.0),
            dielectric_thickness: Length::from_um(0.2),
            strip_thickness: Length::from_um(0.2),
            ground_thickness: Length::from_um(0.2),
            strip_penetration: Length::from_nm(90.0),
            ground_penetration: Length::from_nm(90.0),
            dielectric_constant: 3.9,
            fringing_factor: 1.0,
        }
    }

    /// Inductance per unit length (H/m), Eq. 1.
    ///
    /// # Panics
    ///
    /// Panics if any geometric parameter is non-positive.
    #[must_use]
    pub fn inductance_per_meter(&self) -> f64 {
        self.validate();
        let h = self.dielectric_thickness.as_m();
        let w = self.width.as_m();
        let l1 = self.strip_penetration.as_m();
        let l2 = self.ground_penetration.as_m();
        let t1 = self.strip_thickness.as_m();
        let t2 = self.ground_thickness.as_m();
        let kinetic = 1.0 + (l1 / h) * coth(t1 / l1) + (l2 / h) * coth(t2 / l2);
        MU0 * h / (self.fringing_factor * w) * kinetic
    }

    /// Capacitance per unit length (F/m), Eq. 2.
    #[must_use]
    pub fn capacitance_per_meter(&self) -> f64 {
        self.validate();
        self.dielectric_constant * EPS0 * self.width.as_m() / self.dielectric_thickness.as_m()
    }

    /// Characteristic impedance (ohms), Eq. 3.
    #[must_use]
    pub fn impedance(&self) -> f64 {
        (self.inductance_per_meter() / self.capacitance_per_meter()).sqrt()
    }

    /// Propagation delay per unit length (s/m): `sqrt(L*C)` in the
    /// distributed limit of Eq. 4.
    #[must_use]
    pub fn delay_per_meter(&self) -> f64 {
        (self.inductance_per_meter() * self.capacitance_per_meter()).sqrt()
    }

    /// A concrete line of the given length in this geometry.
    ///
    /// # Panics
    ///
    /// Panics if `length` is not positive.
    #[must_use]
    pub fn line(&self, length: Length) -> PtlLine {
        PtlLine::new(*self, length)
    }

    fn validate(&self) {
        assert!(self.width.as_si() > 0.0, "PTL width must be positive");
        assert!(
            self.dielectric_thickness.as_si() > 0.0,
            "dielectric thickness must be positive"
        );
        assert!(
            self.strip_thickness.as_si() > 0.0 && self.ground_thickness.as_si() > 0.0,
            "conductor thickness must be positive"
        );
        assert!(
            self.strip_penetration.as_si() > 0.0 && self.ground_penetration.as_si() > 0.0,
            "penetration depth must be positive"
        );
        assert!(
            self.dielectric_constant >= 1.0,
            "relative permittivity must be >= 1"
        );
        assert!(self.fringing_factor >= 1.0, "fringing factor must be >= 1");
    }
}

impl Default for PtlGeometry {
    fn default() -> Self {
        Self::hypres_microstrip()
    }
}

fn coth(x: f64) -> f64 {
    1.0 / x.tanh()
}

/// A PTL of a specific length, with the Sec. 4.2.3 driver/receiver timing
/// rules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PtlLine {
    geometry: PtlGeometry,
    length: Length,
}

/// Per-pulse PTL dissipation per meter of line (J/m).
///
/// A lossless PTL itself dissipates nothing; the small per-length energy is
/// the dielectric/termination loss of the pulse tail, ~2 aJ/mm. The
/// length-dependent energy the paper measures in Fig. 13b is dominated by
/// the driver/receiver bias energy per clock period instead (see
/// [`PtlHop::energy_per_pulse`](crate::hop::PtlHop::energy_per_pulse)).
const PTL_ENERGY_PER_METER: f64 = 2.0e-15;

impl PtlLine {
    /// Creates a line with the given geometry and length.
    ///
    /// # Panics
    ///
    /// Panics if `length` is not positive.
    #[must_use]
    pub fn new(geometry: PtlGeometry, length: Length) -> Self {
        assert!(length.as_si() > 0.0, "PTL length must be positive");
        Self { geometry, length }
    }

    /// Geometry of the line.
    #[must_use]
    pub fn geometry(&self) -> &PtlGeometry {
        &self.geometry
    }

    /// Physical length of the line.
    #[must_use]
    pub fn length(&self) -> Length {
        self.length
    }

    /// One-way propagation delay `T`, Eq. 4.
    #[must_use]
    pub fn delay(&self) -> Time {
        Time::from_s(self.geometry.delay_per_meter() * self.length.as_m())
    }

    /// Resonance frequency with a driver and receiver attached:
    /// `f = 1 / (2T + t0)` where `t0` is the driver + receiver delay
    /// (Sec. 4.2.3).
    #[must_use]
    pub fn resonance_frequency(&self) -> Frequency {
        let t0 = Repeater::new().latency();
        let t = self.delay();
        Frequency::from_si(1.0 / (2.0 * t.as_s() + t0.as_s()))
    }

    /// Maximum safe operating frequency: 90% of the resonance frequency
    /// ("the operating frequency of a PTL can be set to at most 90% of f").
    #[must_use]
    pub fn max_operating_frequency(&self) -> Frequency {
        self.resonance_frequency() * 0.9
    }

    /// Energy dissipated by one pulse traversing the bare line (termination
    /// loss; the line itself is lossless).
    #[must_use]
    pub fn energy_per_pulse(&self) -> Energy {
        Energy::from_j(PTL_ENERGY_PER_METER * self.length.as_m())
    }

    /// Number of repeaters needed to operate this line at `target`:
    /// each segment (with its driver/receiver) must individually satisfy the
    /// 90%-of-resonance rule. Returns the minimal repeater count.
    ///
    /// Returns `None` if even an arbitrarily short segment cannot reach
    /// `target` (i.e. the repeater delay floor `t0` already exceeds the
    /// budget).
    #[must_use]
    pub fn repeaters_for_frequency(&self, target: Frequency) -> Option<u32> {
        let t0 = Repeater::new().latency().as_s();
        // Segment must satisfy 0.9 / (2*T_seg + t0) >= target
        // => T_seg <= (0.9 / target - t0) / 2
        let budget = (0.9 / target.as_si() - t0) / 2.0;
        if budget <= 0.0 {
            return None;
        }
        let seg_len_max = budget / self.geometry.delay_per_meter();
        let segments = (self.length.as_m() / seg_len_max).ceil() as u32;
        Some(segments.saturating_sub(1))
    }

    /// Splits the line into `segments` equal pieces (repeater insertion).
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero.
    #[must_use]
    pub fn segmented(&self, segments: u32) -> SegmentedPtl {
        assert!(segments > 0, "segment count must be positive");
        SegmentedPtl {
            segment: PtlLine::new(self.geometry, self.length / f64::from(segments)),
            segments,
        }
    }
}

/// A PTL broken into equal segments by repeater insertion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentedPtl {
    segment: PtlLine,
    segments: u32,
}

impl SegmentedPtl {
    /// The per-segment line.
    #[must_use]
    pub fn segment(&self) -> &PtlLine {
        &self.segment
    }

    /// Number of segments (repeater count is `segments - 1`).
    #[must_use]
    pub fn segments(&self) -> u32 {
        self.segments
    }

    /// Number of inserted repeaters.
    #[must_use]
    pub fn repeaters(&self) -> u32 {
        self.segments - 1
    }

    /// End-to-end latency: wire flight time plus repeater delays.
    #[must_use]
    pub fn latency(&self) -> Time {
        self.segment.delay() * f64::from(self.segments)
            + Repeater::new().latency() * f64::from(self.repeaters())
    }

    /// Maximum operating frequency, limited by the slowest (equal) segment.
    #[must_use]
    pub fn max_operating_frequency(&self) -> Frequency {
        self.segment.max_operating_frequency()
    }

    /// Per-pulse energy: line termination loss plus repeater switching.
    #[must_use]
    pub fn energy_per_pulse(&self, jj: &JosephsonJunction) -> Energy {
        self.segment.energy_per_pulse() * f64::from(self.segments)
            + Repeater::new().energy_per_pulse(jj) * f64::from(self.repeaters())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> PtlGeometry {
        PtlGeometry::hypres_microstrip()
    }

    #[test]
    fn inductance_includes_kinetic_term() {
        let g = geom();
        let with = g.inductance_per_meter();
        // Strip the kinetic correction by making penetration depths tiny.
        let mut bare = g;
        bare.strip_penetration = Length::from_nm(0.001);
        bare.ground_penetration = Length::from_nm(0.001);
        let without = bare.inductance_per_meter();
        assert!(with > without * 1.5, "kinetic inductance should dominate");
    }

    #[test]
    fn impedance_in_microstrip_range() {
        // Superconducting micro-strips are typically a few to tens of ohms.
        let z = geom().impedance();
        assert!(z > 1.0 && z < 100.0, "got {z} ohm");
    }

    #[test]
    fn delay_scales_linearly_with_length() {
        let g = geom();
        let d1 = g.line(Length::from_mm(0.5)).delay();
        let d2 = g.line(Length::from_mm(1.0)).delay();
        assert!((d2.as_s() / d1.as_s() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn propagation_slower_than_light_faster_than_tenth() {
        let v = 1.0 / geom().delay_per_meter();
        let c = 299_792_458.0;
        assert!(v < c);
        assert!(v > 0.05 * c);
    }

    #[test]
    fn resonance_frequency_matches_fig13_range() {
        // Fig. 13a: ~90-100 GHz at very short lengths, falling to ~30-40 GHz
        // near 0.8 mm.
        let g = geom();
        let short = g.line(Length::from_mm(0.01)).resonance_frequency();
        let long = g.line(Length::from_mm(0.8)).resonance_frequency();
        assert!(
            short.as_ghz() > 80.0 && short.as_ghz() < 130.0,
            "short: {} GHz",
            short.as_ghz()
        );
        assert!(
            long.as_ghz() > 25.0 && long.as_ghz() < 60.0,
            "long: {} GHz",
            long.as_ghz()
        );
        assert!(short.as_si() > long.as_si());
    }

    #[test]
    fn max_operating_is_90_percent_of_resonance() {
        let line = geom().line(Length::from_mm(0.3));
        let f = line.resonance_frequency();
        let m = line.max_operating_frequency();
        assert!((m.as_si() / f.as_si() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn repeater_insertion_raises_frequency() {
        let line = geom().line(Length::from_mm(2.0));
        let base = line.max_operating_frequency();
        let seg = line.segmented(4);
        assert!(seg.max_operating_frequency().as_si() > base.as_si());
        assert_eq!(seg.repeaters(), 3);
    }

    #[test]
    fn repeater_insertion_costs_latency_and_energy() {
        let jj = JosephsonJunction::hypres_ersfq();
        let line = geom().line(Length::from_mm(2.0));
        let few = line.segmented(1);
        let many = line.segmented(8);
        assert!(many.latency().as_s() > few.latency().as_s());
        assert!(many.energy_per_pulse(&jj).as_si() > few.energy_per_pulse(&jj).as_si());
    }

    #[test]
    fn repeaters_for_frequency_achieves_target() {
        let line = geom().line(Length::from_mm(3.0));
        let target = Frequency::from_ghz(9.6);
        let n = line.repeaters_for_frequency(target).expect("achievable");
        let seg = line.segmented(n + 1);
        assert!(seg.max_operating_frequency().as_si() >= target.as_si() * 0.999);
        // Minimality: one fewer segment must not be enough (when n > 0).
        if n > 0 {
            let fewer = line.segmented(n);
            assert!(fewer.max_operating_frequency().as_si() < target.as_si());
        }
    }

    #[test]
    fn impossible_frequency_returns_none() {
        let line = geom().line(Length::from_mm(1.0));
        // Repeater floor is 8.75 ps => ~102 GHz absolute ceiling even for
        // zero-length segments.
        assert!(line
            .repeaters_for_frequency(Frequency::from_ghz(200.0))
            .is_none());
    }

    #[test]
    fn energy_scales_with_length() {
        let g = geom();
        let e1 = g.line(Length::from_mm(0.5)).energy_per_pulse();
        let e2 = g.line(Length::from_mm(1.0)).energy_per_pulse();
        assert!((e2.as_si() / e1.as_si() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "PTL length must be positive")]
    fn zero_length_panics() {
        let _ = geom().line(Length::from_mm(0.0));
    }

    #[test]
    #[should_panic(expected = "segment count must be positive")]
    fn zero_segments_panics() {
        let _ = geom().line(Length::from_mm(1.0)).segmented(0);
    }
}
