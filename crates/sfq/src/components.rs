//! SFQ logic/interconnect component library.
//!
//! Encodes the per-component latency, leakage power, and dynamic power of the
//! paper's Table 2, plus the DFF and DC/SFQ converter characteristics from
//! Sections 2 and 4. These are the atoms from which SHIFT arrays, SFQ
//! H-Trees, and the pipelined CMOS-SFQ array are assembled.
//!
//! | Component | Latency (ps) | Leakage (uW) | Dynamic (nW) |
//! |-----------|--------------|--------------|--------------|
//! | Splitter  | 7            | 0            | 0.15         |
//! | Driver    | 3.5          | 0.874        | 0.181        |
//! | Receiver  | 5.25         | 0            | 0.275        |
//! | nTron     | 103.02       | 8.8          | 13           |

use crate::jj::JosephsonJunction;
use smart_units::{Area, Energy, Power, Time};

/// Kinds of SFQ peripheral components used by the memory models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// Fan-out splitter: one input pulse becomes two output pulses.
    Splitter,
    /// PTL driver: a 2-stage JTL cascaded with a matching resistor.
    Driver,
    /// PTL receiver: a 3-stage JTL.
    Receiver,
    /// Nanocryotron: converts SFQ pulses to CMOS-drivable signals.
    NTron,
    /// Delay flip-flop: one superconductor ring plus a clock line.
    Dff,
    /// Level-driven DC/SFQ converter: CMOS levels back to SFQ pulses.
    DcSfqConverter,
}

impl ComponentKind {
    /// All component kinds, in Table 2 order followed by the Sec. 2/4 extras.
    pub const ALL: [Self; 6] = [
        Self::Splitter,
        Self::Driver,
        Self::Receiver,
        Self::NTron,
        Self::Dff,
        Self::DcSfqConverter,
    ];

    /// Human-readable name as printed in the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Splitter => "Splitter",
            Self::Driver => "Driver",
            Self::Receiver => "Receiver",
            Self::NTron => "nTron",
            Self::Dff => "DFF",
            Self::DcSfqConverter => "DC/SFQ",
        }
    }
}

/// Latency/power/area characterization of one SFQ component.
///
/// # Examples
///
/// ```
/// use smart_sfq::components::{Component, ComponentKind};
///
/// let ntron = Component::of(ComponentKind::NTron);
/// assert!((ntron.latency().as_ps() - 103.02).abs() < 1e-9);
/// assert!((ntron.leakage().as_uw() - 8.8).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Component {
    kind: ComponentKind,
    latency: Time,
    leakage: Power,
    dynamic: Power,
    jj_count: u32,
}

impl Component {
    /// Looks up the Table 2 (and Sec. 2/4) characterization of a component.
    #[must_use]
    pub fn of(kind: ComponentKind) -> Self {
        // Latency / leakage / dynamic straight from Table 2; JJ counts from
        // the schematics in Fig. 11 (splitter: 3 JJs; driver: 2-stage JTL;
        // receiver: 3-stage JTL) and Fig. 1 (DFF: 2 JJs).
        let (latency_ps, leak_uw, dyn_nw, jj_count) = match kind {
            ComponentKind::Splitter => (7.0, 0.0, 0.15, 3),
            ComponentKind::Driver => (3.5, 0.874, 0.181, 2),
            ComponentKind::Receiver => (5.25, 0.0, 0.275, 3),
            ComponentKind::NTron => (103.02, 8.8, 13.0, 0),
            // SHIFT access latency is 0.02 ns/cell (Table 1): the DFF is the
            // SHIFT cell, so its clock-to-q is 20 ps.
            ComponentKind::Dff => (20.0, 0.0, 0.005, 2),
            // "Both a nTron and a level-driven DC/SFQ converter can complete
            // a conversion around 0.1 ns" (Sec. 4.2.2).
            ComponentKind::DcSfqConverter => (100.0, 1.2, 2.0, 4),
        };
        Self {
            kind,
            latency: Time::from_ps(latency_ps),
            leakage: Power::from_uw(leak_uw),
            dynamic: Power::from_nw(dyn_nw),
            jj_count,
        }
    }

    /// Which component this characterizes.
    #[must_use]
    pub fn kind(&self) -> ComponentKind {
        self.kind
    }

    /// Propagation latency of one pulse through the component.
    #[must_use]
    pub fn latency(&self) -> Time {
        self.latency
    }

    /// Static (bias-network) power drawn even when idle.
    #[must_use]
    pub fn leakage(&self) -> Power {
        self.leakage
    }

    /// Dynamic power at the reference activity (one pulse per clock at the
    /// Table 2 characterization frequency of 10 GHz).
    #[must_use]
    pub fn dynamic_power(&self) -> Power {
        self.dynamic
    }

    /// Number of Josephson junctions in the component (drives area).
    #[must_use]
    pub fn jj_count(&self) -> u32 {
        self.jj_count
    }

    /// Dynamic energy of passing a single pulse: the JJ switching energy of
    /// every junction in the component, plus the characterized dynamic power
    /// integrated over the component latency (bias-network dissipation).
    #[must_use]
    pub fn energy_per_pulse(&self, jj: &JosephsonJunction) -> Energy {
        let switching = jj.switching_energy() * f64::from(self.jj_count);
        let bias = self.dynamic * self.latency;
        switching + bias
    }

    /// Layout footprint, assuming each JJ plus its bias/inductor overhead
    /// occupies ~13 F^2 (the SHIFT cell of Table 1 is 39 F^2 for a ~3-JJ
    /// cell with clock entry). nTron is a nanowire device of ~25 F^2.
    #[must_use]
    pub fn area(&self, jj: &JosephsonJunction) -> Area {
        let f2 = jj.area();
        match self.kind {
            ComponentKind::NTron => f2 * 25.0,
            _ => f2 * (13.0 * f64::from(self.jj_count)),
        }
    }
}

/// A repeater: one driver plus one receiver, inserted to break a PTL into
/// pipeline segments (Sec. 4.2.2: "inserting SFQ repeaters, each of which is
/// composed of a driver and a receiver").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Repeater {
    driver: Component,
    receiver: Component,
}

impl Repeater {
    /// Creates a repeater from the standard driver and receiver.
    #[must_use]
    pub fn new() -> Self {
        Self {
            driver: Component::of(ComponentKind::Driver),
            receiver: Component::of(ComponentKind::Receiver),
        }
    }

    /// Combined propagation latency.
    #[must_use]
    pub fn latency(&self) -> Time {
        self.driver.latency() + self.receiver.latency()
    }

    /// Combined leakage power.
    #[must_use]
    pub fn leakage(&self) -> Power {
        self.driver.leakage() + self.receiver.leakage()
    }

    /// Energy of forwarding one pulse.
    #[must_use]
    pub fn energy_per_pulse(&self, jj: &JosephsonJunction) -> Energy {
        self.driver.energy_per_pulse(jj) + self.receiver.energy_per_pulse(jj)
    }

    /// Layout footprint.
    #[must_use]
    pub fn area(&self, jj: &JosephsonJunction) -> Area {
        self.driver.area(jj) + self.receiver.area(jj)
    }
}

impl Default for Repeater {
    fn default() -> Self {
        Self::new()
    }
}

/// A splitter unit (Fig. 11b): receiver at the input end, a splitter, and two
/// drivers at the output ends. This is the H-Tree branching element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitterUnit {
    receiver: Component,
    splitter: Component,
    driver: Component,
}

impl SplitterUnit {
    /// Creates a splitter unit from the standard components.
    #[must_use]
    pub fn new() -> Self {
        Self {
            receiver: Component::of(ComponentKind::Receiver),
            splitter: Component::of(ComponentKind::Splitter),
            driver: Component::of(ComponentKind::Driver),
        }
    }

    /// Latency from the input receiver to either output driver.
    #[must_use]
    pub fn latency(&self) -> Time {
        self.receiver.latency() + self.splitter.latency() + self.driver.latency()
    }

    /// Total leakage: one receiver, one splitter, two drivers.
    #[must_use]
    pub fn leakage(&self) -> Power {
        self.receiver.leakage() + self.splitter.leakage() + self.driver.leakage() * 2.0
    }

    /// Energy of one pulse traversing the unit (fan-out of two: both drivers
    /// fire).
    #[must_use]
    pub fn energy_per_pulse(&self, jj: &JosephsonJunction) -> Energy {
        self.receiver.energy_per_pulse(jj)
            + self.splitter.energy_per_pulse(jj)
            + self.driver.energy_per_pulse(jj) * 2.0
    }

    /// Layout footprint.
    #[must_use]
    pub fn area(&self, jj: &JosephsonJunction) -> Area {
        self.receiver.area(jj) + self.splitter.area(jj) + self.driver.area(jj) * 2.0
    }
}

impl Default for SplitterUnit {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_encoded() {
        let s = Component::of(ComponentKind::Splitter);
        assert!((s.latency().as_ps() - 7.0).abs() < 1e-12);
        assert!(s.leakage().is_zero());
        assert!((s.dynamic_power().as_nw() - 0.15).abs() < 1e-12);

        let d = Component::of(ComponentKind::Driver);
        assert!((d.latency().as_ps() - 3.5).abs() < 1e-12);
        assert!((d.leakage().as_uw() - 0.874).abs() < 1e-12);

        let r = Component::of(ComponentKind::Receiver);
        assert!((r.latency().as_ps() - 5.25).abs() < 1e-12);

        let n = Component::of(ComponentKind::NTron);
        assert!((n.latency().as_ps() - 103.02).abs() < 1e-12);
        assert!((n.dynamic_power().as_nw() - 13.0).abs() < 1e-12);
    }

    #[test]
    fn dff_matches_shift_cell_latency() {
        // Table 1: SHIFT access latency 0.02 ns.
        let dff = Component::of(ComponentKind::Dff);
        assert!((dff.latency().as_ns() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn conversion_stages_are_100ps_class() {
        let ntron = Component::of(ComponentKind::NTron);
        let dcsfq = Component::of(ComponentKind::DcSfqConverter);
        assert!(ntron.latency().as_ns() > 0.09 && ntron.latency().as_ns() < 0.11);
        assert!(dcsfq.latency().as_ns() > 0.09 && dcsfq.latency().as_ns() < 0.11);
    }

    #[test]
    fn splitter_unit_latency_is_sum_of_path() {
        let u = SplitterUnit::new();
        // receiver 5.25 + splitter 7 + driver 3.5 = 15.75 ps
        assert!((u.latency().as_ps() - 15.75).abs() < 1e-9);
    }

    #[test]
    fn splitter_unit_leakage_counts_two_drivers() {
        let u = SplitterUnit::new();
        assert!((u.leakage().as_uw() - 2.0 * 0.874).abs() < 1e-9);
    }

    #[test]
    fn repeater_combines_driver_receiver() {
        let r = Repeater::new();
        assert!((r.latency().as_ps() - 8.75).abs() < 1e-9);
        assert!((r.leakage().as_uw() - 0.874).abs() < 1e-9);
    }

    #[test]
    fn pulse_energy_is_atto_joule_scale() {
        let jj = JosephsonJunction::hypres_ersfq();
        let u = SplitterUnit::new();
        let e = u.energy_per_pulse(&jj).as_aj();
        // ~10 JJ switchings at ~0.2 aJ each plus bias dissipation.
        assert!(e > 1.0 && e < 50.0, "got {e} aJ");
    }

    #[test]
    fn areas_are_positive_and_ordered() {
        let jj = JosephsonJunction::hypres_ersfq();
        for kind in ComponentKind::ALL {
            let c = Component::of(kind);
            assert!(c.area(&jj).as_si() > 0.0, "{kind:?} has zero area");
        }
        let su = SplitterUnit::new();
        let rep = Repeater::new();
        assert!(su.area(&jj).as_si() > rep.area(&jj).as_si());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(ComponentKind::NTron.name(), "nTron");
        assert_eq!(ComponentKind::DcSfqConverter.name(), "DC/SFQ");
    }
}
