//! Grid enumeration of the heterogeneous design space, in neighbor order.

use smart_core::geometry::{GeometryParams, SpmGeometry};
use smart_cryomem::array::RandomArrayKind;

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// A grid over the heterogeneous (SHIFT staging + RANDOM) design space.
///
/// [`SearchSpace::points`] enumerates the cartesian product with the
/// capacity axes **innermost**: consecutive points differ only in SHIFT /
/// RANDOM capacities, which enter the allocation ILP purely as constraint
/// right-hand sides, so a shared
/// [`SolverContext`](smart_core::SolverContext) warm-starts each point's
/// solve from its neighbor's basis. The technology axis sits *outside* the
/// capacity axes: the memory kind never enters the ILP formulation, so a
/// second technology revisits byte-identical problems and is answered
/// verbatim from the context's exact-match solution memo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchSpace {
    /// Prefetch windows; `None` is static allocation (the `Pipe` family).
    /// Outermost axis — the window changes the ILP's constraint structure.
    pub windows: Vec<Option<u32>>,
    /// RANDOM bank (port) counts. Changes the formulation's saving
    /// coefficients, so it also sits outside the capacity axes.
    pub random_banks: Vec<u32>,
    /// RANDOM memory technologies (no ILP impact; outside the capacity
    /// axes so each technology replays the previous one's exact problems).
    pub kinds: Vec<RandomArrayKind>,
    /// Per-class SHIFT staging capacities in KB.
    pub shift_kb: Vec<u64>,
    /// RANDOM array capacities in MB. Innermost axis.
    pub random_mb: Vec<u64>,
    /// SHIFT bank (lane) count, fixed across the grid.
    pub shift_banks: u32,
}

impl SearchSpace {
    /// The 1000-point grid the headline configs/second number is measured
    /// on: 5 windows x 4 bank counts x 2 technologies x 5 SHIFT x 5 RANDOM
    /// capacities.
    #[must_use]
    pub fn default_grid() -> Self {
        Self {
            windows: vec![None, Some(1), Some(2), Some(3), Some(5)],
            random_banks: vec![64, 128, 256, 512],
            kinds: vec![
                RandomArrayKind::PipelinedCmosSfq,
                RandomArrayKind::JosephsonCmosSram,
            ],
            shift_kb: vec![8, 16, 32, 48, 64],
            random_mb: vec![7, 14, 28, 42, 56],
            shift_banks: 256,
        }
    }

    /// A small deterministic 18-point space for experiments, golden
    /// snapshots, and debug-mode tests.
    #[must_use]
    pub fn small() -> Self {
        Self {
            windows: vec![None, Some(3)],
            random_banks: vec![256],
            kinds: vec![RandomArrayKind::PipelinedCmosSfq],
            shift_kb: vec![16, 32, 64],
            random_mb: vec![14, 28, 42],
            shift_banks: 256,
        }
    }

    /// Number of grid points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.windows.len()
            * self.random_banks.len()
            * self.kinds.len()
            * self.shift_kb.len()
            * self.random_mb.len()
    }

    /// Whether any axis is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All grid points in canonical (neighbor) order.
    #[must_use]
    pub fn points(&self) -> Vec<GeometryParams> {
        let mut pts = Vec::with_capacity(self.len());
        for &window in &self.windows {
            for &random_banks in &self.random_banks {
                for &kind in &self.kinds {
                    for &shift_kb in &self.shift_kb {
                        for &random_mb in &self.random_mb {
                            pts.push(self.point(window, random_banks, kind, shift_kb, random_mb));
                        }
                    }
                }
            }
        }
        pts
    }

    /// One grid point: the SMART matrix unit over the given SPM geometry.
    /// Prefetching points are of the `SMART` family, static ones of `Pipe`.
    #[must_use]
    pub fn point(
        &self,
        window: Option<u32>,
        random_banks: u32,
        kind: RandomArrayKind,
        shift_kb: u64,
        random_mb: u64,
    ) -> GeometryParams {
        let shift_bytes = shift_kb * KB;
        let random_bytes = random_mb * MB;
        GeometryParams {
            name: if window.is_some() { "SMART" } else { "Pipe" },
            config_name: "SMART",
            rows: 64,
            cols: 256,
            clock_ghz: 52.6,
            cryogenic: true,
            mac_energy_j: 1.35e-15,
            average_power_w: None,
            spm: SpmGeometry::Heterogeneous {
                capacity_bytes: 3 * shift_bytes + random_bytes,
                shift_bytes,
                shift_banks: self.shift_banks,
                random_banks,
                kind,
            },
            prefetch_window: window,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_is_1000_points() {
        let space = SearchSpace::default_grid();
        assert_eq!(space.len(), 1000);
        assert_eq!(space.points().len(), 1000);
    }

    #[test]
    fn every_grid_point_builds() {
        for space in [SearchSpace::default_grid(), SearchSpace::small()] {
            for p in space.points() {
                p.build().expect("grid points are valid by construction");
            }
        }
    }

    #[test]
    fn capacity_axes_are_innermost() {
        // Consecutive points share window/banks/kind (rhs-only deltas)
        // within each innermost block.
        let space = SearchSpace::small();
        let pts = space.points();
        let block = space.shift_kb.len() * space.random_mb.len();
        for (i, p) in pts.iter().enumerate() {
            let first = &pts[i / block * block];
            assert_eq!(p.prefetch_window, first.prefetch_window, "point {i}");
        }
    }

    #[test]
    fn families_are_named_by_policy() {
        let space = SearchSpace::small();
        for p in space.points() {
            let expected = if p.prefetch_window.is_some() {
                "SMART"
            } else {
                "Pipe"
            };
            assert_eq!(p.name, expected);
        }
    }
}
