//! Pareto dominance over (latency, energy, area), all minimized.

// lint:allow-file(index, frontier indices come from enumerate() over the same vec)

use smart_units::{Area, Energy, Time};

/// The three minimized objectives of one design point, all from the
/// analytic model: single-batch latency and per-image energy from the
/// evaluator, chip area exactly from the geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// End-to-end model latency.
    pub latency: Time,
    /// Energy per image (cooling included for cryogenic parts).
    pub energy: Energy,
    /// Chip area (matrix unit + SPM).
    pub area: Area,
}

impl Objectives {
    fn key(&self) -> [f64; 3] {
        [self.latency.as_s(), self.energy.as_j(), self.area.as_mm2()]
    }

    /// All three objectives are finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.key().iter().all(|v| v.is_finite())
    }
}

/// Standard Pareto dominance: `a` is no worse than `b` in every objective
/// and strictly better in at least one.
#[must_use]
pub fn dominates(a: &Objectives, b: &Objectives) -> bool {
    let (a, b) = (a.key(), b.key());
    let no_worse = a.iter().zip(&b).all(|(x, y)| x <= y);
    let better = a.iter().zip(&b).any(|(x, y)| x < y);
    no_worse && better
}

/// `a` ε-dominates `b`: better than `b` by at least the relative margin
/// `eps` in *every* objective (and strictly better somewhere, so ties and
/// duplicates never prune each other). This implies [`dominates`] for any
/// `eps >= 0`, so the ε-survivor set always contains the exact Pareto
/// frontier — pruning on it can never discard a frontier point. At
/// `eps = 0` it degenerates to exact dominance.
#[must_use]
pub fn eps_dominates(a: &Objectives, b: &Objectives, eps: f64) -> bool {
    let (a, b) = (a.key(), b.key());
    let margin = a.iter().zip(&b).all(|(x, y)| *x <= y * (1.0 - eps));
    let better = a.iter().zip(&b).any(|(x, y)| x < y);
    margin && better
}

/// Indices of the Pareto-optimal points, in input (enumeration) order.
/// Duplicate objective vectors are all kept — equal points do not dominate
/// each other — so the result is deterministic whatever produced the list.
#[must_use]
pub fn pareto_frontier(objs: &[Objectives]) -> Vec<usize> {
    (0..objs.len())
        .filter(|&i| !objs.iter().any(|o| dominates(o, &objs[i])))
        .collect()
}

/// Indices of the points *not* ε-dominated by any other point — the
/// near-frontier band that survives dominance pruning and moves on to the
/// expensive ILP stage. A superset of [`pareto_frontier`] for any
/// `eps >= 0`.
#[must_use]
pub fn epsilon_survivors(objs: &[Objectives], eps: f64) -> Vec<usize> {
    (0..objs.len())
        .filter(|&i| !objs.iter().any(|o| eps_dominates(o, &objs[i], eps)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(l: f64, e: f64, a: f64) -> Objectives {
        Objectives {
            latency: Time::from_s(l),
            energy: Energy::from_j(e),
            area: Area::from_mm2(a),
        }
    }

    #[test]
    fn dominance_basics() {
        assert!(dominates(&o(1.0, 1.0, 1.0), &o(2.0, 1.0, 1.0)));
        assert!(!dominates(&o(1.0, 1.0, 1.0), &o(1.0, 1.0, 1.0)), "equal");
        assert!(!dominates(&o(1.0, 2.0, 1.0), &o(2.0, 1.0, 1.0)), "trade");
    }

    #[test]
    fn frontier_keeps_tradeoffs_and_ties() {
        let objs = [
            o(1.0, 3.0, 1.0),
            o(3.0, 1.0, 1.0),
            o(2.0, 2.0, 1.0),
            o(4.0, 4.0, 1.0), // dominated by everything
            o(1.0, 3.0, 1.0), // exact tie with 0
        ];
        assert_eq!(pareto_frontier(&objs), vec![0, 1, 2, 4]);
    }

    #[test]
    fn survivors_contain_frontier() {
        let objs: Vec<Objectives> = (0..40)
            .map(|i| {
                let x = f64::from(i);
                o(
                    1.0 + (x * 0.37).sin().abs(),
                    1.0 + (x * 0.61).cos().abs(),
                    1.0 + x * 0.01,
                )
            })
            .collect();
        for eps in [0.0, 0.01, 0.05, 0.2] {
            let survivors = epsilon_survivors(&objs, eps);
            for i in pareto_frontier(&objs) {
                assert!(
                    survivors.contains(&i),
                    "eps {eps}: frontier point {i} pruned"
                );
            }
        }
    }

    #[test]
    fn zero_eps_matches_exact_dominance() {
        let objs = [
            o(1.0, 1.0, 1.0),
            o(2.0, 2.0, 2.0), // strictly worse everywhere
            o(1.0, 2.0, 2.0), // dominated (ties on latency)
            o(1.0, 1.0, 1.0), // exact duplicate of 0: survives
            o(0.5, 9.0, 9.0), // trade-off: survives
        ];
        assert_eq!(epsilon_survivors(&objs, 0.0), pareto_frontier(&objs));
        assert_eq!(epsilon_survivors(&objs, 0.0), vec![0, 3, 4]);
    }
}
