//! The search engine: staged evaluation of a [`SearchSpace`] with
//! dominance pruning and warm-started solves, plus the naive per-config
//! baseline it is measured against.
//!
//! Three stages of increasing cost, each fed only what the previous stage
//! could not rule out:
//!
//! 1. **Analytic** (every point): latency / energy / area from the
//!    closed-form evaluator, fanned out with
//!    [`parallel_map`] through a shared
//!    [`EvalCache`]. These are the objectives of record — the frontier is
//!    exact, not an approximation.
//! 2. **ILP enrichment** (ε-survivors only): the allocation compiler runs
//!    sequentially in enumeration order through the timing cache's shared
//!    [`SolverContext`], so each config
//!    warm-starts from its grid neighbor.
//! 3. **Replay confirmation** (frontier only): the cycle-level
//!    `smart-timing` simulator cross-checks each frontier point's latency.
//!
//! Determinism: stage 1 computes pure values (safe under any `jobs`),
//! stages 2-3 run in canonical order, so the outcome is identical across
//! `--jobs` values and cold-vs-warm cache runs.

// lint:allow-file(index, grid points are indexed by the axis lengths that generated them)

use crate::pareto::{epsilon_survivors, pareto_frontier, Objectives};
use crate::space::SearchSpace;
use smart_core::area::ChipArea;
use smart_core::cache::EvalCache;
use smart_core::eval::evaluate;
use smart_core::geometry::GeometryParams;
use smart_core::scheme::Scheme;
use smart_core::SolverContext;
use smart_report::pool::parallel_map;
use smart_systolic::models::ModelId;
use smart_timing::{compile_scheme_layer, simulate_scheme, TimingCache, TimingConfig};
use smart_units::{Result, SmartError, Time};

/// What to evaluate and how hard to prune.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// CNN model the objectives are measured on.
    pub model: ModelId,
    /// Inference batch size.
    pub batch: u32,
    /// Replay scenario for the frontier confirmation stage (its
    /// `max_iterations` also caps the enrichment ILPs' DAG coarsening).
    pub timing: TimingConfig,
    /// ε-dominance pruning margin: a point must be beaten by at least this
    /// relative margin in *all three* objectives before it is pruned, so
    /// the exact frontier always survives. `0.0` prunes only strictly
    /// worse-everywhere points.
    pub epsilon: f64,
    /// Worker threads for the analytic fan-out (stages 2-3 are
    /// sequential by design).
    pub jobs: usize,
}

impl SearchConfig {
    /// The default search: AlexNet, batch 1, nominal replay scenario,
    /// ε = 0.05.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self {
            model: ModelId::AlexNet,
            batch: 1,
            timing: TimingConfig::nominal(),
            epsilon: 0.05,
            jobs,
        }
    }
}

/// ILP allocation metrics of one design point, summed over the model's
/// layers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IlpMetrics {
    /// Summed schedule objective (bytes-weighted access cost).
    pub objective: f64,
    /// Summed branch & bound nodes (0 = every layer's seeded incumbent was
    /// provably optimal).
    pub nodes: usize,
    /// Bytes the schedules place in SHIFT staging.
    pub shift_bytes: u64,
    /// Bytes placed in the RANDOM array.
    pub random_bytes: u64,
    /// Bytes spilled to DRAM.
    pub dram_bytes: u64,
}

impl IlpMetrics {
    /// Fraction of scheduled bytes resident in the SPM (SHIFT + RANDOM).
    #[must_use]
    pub fn resident_fraction(&self) -> f64 {
        let total = self.shift_bytes + self.random_bytes + self.dram_bytes;
        if total == 0 {
            0.0
        } else {
            (self.shift_bytes + self.random_bytes) as f64 / total as f64
        }
    }
}

/// Cycle-level confirmation of one frontier point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayCheck {
    /// Replayed end-to-end latency.
    pub latency: Time,
    /// Replayed / analytic latency ratio (≥ 1 up to rounding: the replay
    /// sees arbitration and late prefetches the analytic model cannot).
    pub vs_analytic: f64,
}

/// Work and reuse counters of one search run. Cache and solver counters
/// are **deltas** over the run (after minus before), so a shared cache's
/// prior history does not leak in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SearchStats {
    /// Points in the space.
    pub space: usize,
    /// Points ε-dominated on the analytic objectives (skipped stages 2-3).
    pub pruned: usize,
    /// Points that reached the ILP stage.
    pub survivors: usize,
    /// Pareto-optimal points.
    pub frontier: usize,
    /// Layer ILP compilations stage 2 ran.
    pub ilp_compiles: u64,
    /// Analytic evaluations served from the [`EvalCache`].
    pub eval_hits: u64,
    /// Analytic evaluations that ran the evaluator.
    pub eval_misses: u64,
    /// Replay confirmations served from the [`TimingCache`].
    pub timing_hits: u64,
    /// Replay confirmations that ran the simulator.
    pub timing_misses: u64,
    /// ILP solves that found a stored basis for their structure.
    pub warm_attempts: u64,
    /// Warm attempts that reoptimized from the stored basis.
    pub warm_hits: u64,
    /// ILP solves that started cold.
    pub cold_solves: u64,
    /// ILP solves answered verbatim from the exact-match solution memo.
    pub solution_hits: u64,
}

/// One evaluated design point.
#[derive(Debug, Clone)]
pub struct EvaluatedPoint {
    /// The generating geometry.
    pub params: GeometryParams,
    /// The elaborated scheme.
    pub scheme: Scheme,
    /// Analytic latency / energy / area (the objectives of record).
    pub objectives: Objectives,
    /// ILP allocation metrics; `None` for pruned points.
    pub ilp: Option<IlpMetrics>,
    /// Cycle-level confirmation; `None` off the frontier.
    pub replay: Option<ReplayCheck>,
}

/// The result of a search: every point with its evaluation depth, plus the
/// survivor and frontier index sets (into `points`, in enumeration order).
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// All points, in the space's canonical enumeration order.
    pub points: Vec<EvaluatedPoint>,
    /// Indices that survived ε-dominance pruning.
    pub survivors: Vec<usize>,
    /// Indices of the Pareto frontier (always a subset of `survivors`).
    pub frontier: Vec<usize>,
    /// Work and reuse counters.
    pub stats: SearchStats,
}

impl SearchOutcome {
    /// The frontier's points, in enumeration order.
    pub fn frontier_points(&self) -> impl Iterator<Item = &EvaluatedPoint> {
        self.frontier.iter().map(|&i| &self.points[i])
    }
}

/// Builds every point's scheme, with the failing point named on error.
fn build_schemes(params: &[GeometryParams]) -> Result<Vec<Scheme>> {
    params
        .iter()
        .enumerate()
        .map(|(i, p)| {
            p.build().map_err(|e| {
                SmartError::invalid_input(format!("search point {i} ({}): {e}", p.name))
            })
        })
        .collect()
}

/// The analytic objectives of one scheme (latency and energy from the
/// evaluator report, area exactly from the geometry).
fn objectives_of(scheme: &Scheme, latency: Time, energy: smart_units::Energy) -> Objectives {
    Objectives {
        latency,
        energy,
        area: ChipArea::of(&scheme.spm, scheme.config.shape).total(),
    }
}

/// Sums the ILP allocation metrics of every layer of `model` on `scheme`,
/// compiled through `solver` (warm-started when the caller shares it
/// across neighboring points).
fn ilp_metrics(
    scheme: &Scheme,
    model: &smart_systolic::layer::CnnModel,
    max_iterations: u32,
    solver: &SolverContext,
) -> Result<IlpMetrics> {
    let mut m = IlpMetrics {
        objective: 0.0,
        nodes: 0,
        shift_bytes: 0,
        random_bytes: 0,
        dram_bytes: 0,
    };
    for layer in &model.layers {
        let c = compile_scheme_layer(scheme, layer, max_iterations, solver)?;
        let (shift, random, dram) = c.schedule.bytes_by_location(&c.dag);
        m.objective += c.schedule.objective;
        m.nodes += c.schedule.nodes;
        m.shift_bytes += shift;
        m.random_bytes += random;
        m.dram_bytes += dram;
    }
    Ok(m)
}

/// Searches `space` through the staged engine: parallel analytic
/// objectives for every point, ε-dominance pruning, warm-started ILP
/// enrichment of the survivors, and cycle-level replay confirmation of the
/// frontier. The frontier is identical to [`search_naive`]'s on the same
/// space and config.
///
/// # Errors
///
/// [`SmartError::InvalidInput`] when a grid point fails geometry
/// validation or elaborates a non-heterogeneous SPM (the replay stages
/// need SHIFT + RANDOM).
pub fn search(
    space: &SearchSpace,
    cfg: &SearchConfig,
    eval: &EvalCache,
    timing: &TimingCache,
) -> Result<SearchOutcome> {
    let params = space.points();
    let schemes = build_schemes(&params)?;
    let eval_before = eval.stats();
    let timing_before = timing.stats();
    let solver_before = timing.solver().stats();

    // Stage 1: analytic objectives for every point, in parallel. Pure
    // values through a single-flight cache — safe and deterministic under
    // any jobs count.
    let objectives: Vec<Objectives> = parallel_map(cfg.jobs.max(1), &schemes, |scheme| {
        let report = eval.report(scheme, cfg.model, cfg.batch);
        objectives_of(scheme, report.total_time, report.energy_per_image())
    });
    for (i, o) in objectives.iter().enumerate() {
        if !o.is_finite() {
            return Err(SmartError::invalid_input(format!(
                "search point {i} ({}) has non-finite objectives: {o:?}",
                params[i].name
            )));
        }
    }

    let survivors = epsilon_survivors(&objectives, cfg.epsilon);
    let frontier = pareto_frontier(&objectives);

    // Stage 2: ILP enrichment of the survivors, sequentially in
    // enumeration order through the cache's shared solver context so each
    // point warm-starts from its grid neighbor.
    let model = cfg.model.build();
    let mut ilp: Vec<Option<IlpMetrics>> = vec![None; schemes.len()];
    let mut ilp_compiles = 0u64;
    for &i in &survivors {
        ilp[i] = Some(ilp_metrics(
            &schemes[i],
            &model,
            cfg.timing.max_iterations,
            timing.solver(),
        )?);
        ilp_compiles += model.layers.len() as u64;
    }

    // Stage 3: cycle-level confirmation of the frontier only.
    let mut replay: Vec<Option<ReplayCheck>> = vec![None; schemes.len()];
    for &i in &frontier {
        let report = timing.report(&schemes[i], cfg.model, &cfg.timing)?;
        let latency = report.total_time();
        replay[i] = Some(ReplayCheck {
            latency,
            vs_analytic: latency.as_s() / objectives[i].latency.as_s(),
        });
    }

    let eval_after = eval.stats();
    let timing_after = timing.stats();
    let solver_after = timing.solver().stats();
    let stats = SearchStats {
        space: params.len(),
        pruned: params.len() - survivors.len(),
        survivors: survivors.len(),
        frontier: frontier.len(),
        ilp_compiles,
        // Hits include coalesced waits on in-flight work: the split
        // between the two depends on worker timing, but their sum is
        // deterministic.
        eval_hits: (eval_after.hits + eval_after.coalesced)
            - (eval_before.hits + eval_before.coalesced),
        eval_misses: eval_after.misses - eval_before.misses,
        timing_hits: (timing_after.hits + timing_after.coalesced)
            - (timing_before.hits + timing_before.coalesced),
        timing_misses: timing_after.misses - timing_before.misses,
        warm_attempts: solver_after.warm_attempts - solver_before.warm_attempts,
        warm_hits: solver_after.warm_hits - solver_before.warm_hits,
        cold_solves: solver_after.cold_solves - solver_before.cold_solves,
        solution_hits: solver_after.solution_hits - solver_before.solution_hits,
    };

    let points = params
        .into_iter()
        .zip(schemes)
        .zip(objectives)
        .zip(ilp.into_iter().zip(replay))
        .map(
            |(((params, scheme), objectives), (ilp, replay))| EvaluatedPoint {
                params,
                scheme,
                objectives,
                ilp,
                replay,
            },
        )
        .collect();
    Ok(SearchOutcome {
        points,
        survivors,
        frontier,
        stats,
    })
}

/// The baseline the engine's speedup is measured against: every point of
/// the space pays the full cost — a direct (uncached) analytic evaluation,
/// a cold per-config ILP compile of every layer, and a cold replay for
/// each frontier point. No pruning, no sharing; `cfg.jobs` is ignored (the
/// baseline is sequential). Produces the exact same frontier as
/// [`search`].
///
/// # Errors
///
/// As for [`search`].
pub fn search_naive(space: &SearchSpace, cfg: &SearchConfig) -> Result<SearchOutcome> {
    let params = space.points();
    let schemes = build_schemes(&params)?;
    let model = cfg.model.build();

    let mut objectives = Vec::with_capacity(schemes.len());
    let mut ilp = Vec::with_capacity(schemes.len());
    let mut solver_totals = SearchStats::default();
    for scheme in &schemes {
        let report = evaluate(scheme, &model, cfg.batch);
        objectives.push(objectives_of(
            scheme,
            report.total_time,
            report.energy_per_image(),
        ));
        // A fresh context per config: nothing warm-starts, by construction.
        let solver = SolverContext::new();
        ilp.push(Some(ilp_metrics(
            scheme,
            &model,
            cfg.timing.max_iterations,
            &solver,
        )?));
        let s = solver.stats();
        solver_totals.warm_attempts += s.warm_attempts;
        solver_totals.warm_hits += s.warm_hits;
        solver_totals.cold_solves += s.cold_solves;
        solver_totals.solution_hits += s.solution_hits;
    }

    let survivors: Vec<usize> = (0..schemes.len()).collect();
    let frontier = pareto_frontier(&objectives);

    let mut replay: Vec<Option<ReplayCheck>> = vec![None; schemes.len()];
    for &i in &frontier {
        let report = simulate_scheme(&schemes[i], &model, &cfg.timing)?;
        let latency = report.total_time();
        replay[i] = Some(ReplayCheck {
            latency,
            vs_analytic: latency.as_s() / objectives[i].latency.as_s(),
        });
    }

    let stats = SearchStats {
        space: params.len(),
        pruned: 0,
        survivors: survivors.len(),
        frontier: frontier.len(),
        ilp_compiles: schemes.len() as u64 * model.layers.len() as u64,
        eval_hits: 0,
        eval_misses: schemes.len() as u64,
        timing_hits: 0,
        timing_misses: frontier.len() as u64,
        ..solver_totals
    };

    let points = params
        .into_iter()
        .zip(schemes)
        .zip(objectives)
        .zip(ilp.into_iter().zip(replay))
        .map(
            |(((params, scheme), objectives), (ilp, replay))| EvaluatedPoint {
                params,
                scheme,
                objectives,
                ilp,
                replay,
            },
        )
        .collect();
    Ok(SearchOutcome {
        points,
        survivors,
        frontier,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SearchSpace {
        SearchSpace {
            windows: vec![None, Some(3)],
            random_banks: vec![256],
            kinds: vec![smart_cryomem::array::RandomArrayKind::PipelinedCmosSfq],
            shift_kb: vec![32, 64],
            random_mb: vec![14, 28],
            shift_banks: 256,
        }
    }

    #[test]
    fn engine_and_naive_agree_on_the_frontier() {
        let space = tiny();
        let cfg = SearchConfig::new(2);
        let eval = EvalCache::new();
        let timing = TimingCache::new();
        let fast = search(&space, &cfg, &eval, &timing).expect("searches");
        let naive = search_naive(&space, &cfg).expect("searches");
        assert_eq!(fast.frontier, naive.frontier);
        for (a, b) in fast.points.iter().zip(&naive.points) {
            assert_eq!(a.objectives, b.objectives);
        }
        // Pruned points carry no ILP metrics; survivors' schedules match
        // the naive run's exactly — warm starts are solution-transparent —
        // though the branch & bound may take a different number of nodes
        // to prove the same optimum.
        for &i in &fast.survivors {
            let (a, b) = (
                fast.points[i].ilp.expect("survivor"),
                naive.points[i].ilp.expect("all naive points"),
            );
            assert_eq!(a.objective, b.objective, "point {i}");
            assert_eq!(
                (a.shift_bytes, a.random_bytes, a.dram_bytes),
                (b.shift_bytes, b.random_bytes, b.dram_bytes),
                "point {i}"
            );
        }
        for (i, p) in fast.points.iter().enumerate() {
            assert_eq!(p.ilp.is_some(), fast.survivors.contains(&i));
            assert_eq!(p.replay.is_some(), fast.frontier.contains(&i));
        }
    }

    #[test]
    fn frontier_is_a_subset_of_survivors() {
        let space = tiny();
        let cfg = SearchConfig::new(1);
        let out = search(&space, &cfg, &EvalCache::new(), &TimingCache::new()).expect("searches");
        for i in &out.frontier {
            assert!(out.survivors.contains(i));
        }
        assert!(out.stats.frontier <= out.stats.survivors);
        assert_eq!(out.stats.space, space.len());
        assert_eq!(out.stats.pruned + out.stats.survivors, out.stats.space);
    }

    #[test]
    fn outcome_is_identical_across_jobs() {
        let space = tiny();
        let runs: Vec<SearchOutcome> = [1usize, 2, 4]
            .iter()
            .map(|&jobs| {
                let cfg = SearchConfig::new(jobs);
                search(&space, &cfg, &EvalCache::new(), &TimingCache::new()).expect("searches")
            })
            .collect();
        for run in &runs[1..] {
            assert_eq!(run.frontier, runs[0].frontier);
            assert_eq!(run.survivors, runs[0].survivors);
            for (a, b) in run.points.iter().zip(&runs[0].points) {
                assert_eq!(a.objectives, b.objectives);
                assert_eq!(a.ilp, b.ilp);
                assert_eq!(a.replay, b.replay);
            }
        }
    }

    #[test]
    fn warm_engine_reuses_where_naive_cannot() {
        let space = tiny();
        let cfg = SearchConfig::new(1);
        let fast = search(&space, &cfg, &EvalCache::new(), &TimingCache::new()).expect("ok");
        let naive = search_naive(&space, &cfg).expect("ok");
        assert!(
            fast.stats.ilp_compiles <= naive.stats.ilp_compiles,
            "pruning must not add compiles"
        );
        assert_eq!(naive.stats.warm_attempts, 0, "naive never warm-starts");
        assert!(
            fast.stats.warm_attempts + fast.stats.solution_hits > 0,
            "engine reuses bases or memoized solutions: {:?}",
            fast.stats
        );
        assert_eq!(naive.stats.pruned, 0);
    }

    #[test]
    fn replay_confirms_analytic_latency() {
        let out = search(
            &tiny(),
            &SearchConfig::new(2),
            &EvalCache::new(),
            &TimingCache::new(),
        )
        .expect("searches");
        for p in out.frontier_points() {
            let check = p.replay.expect("frontier points are replayed");
            assert!(check.latency.as_s() > 0.0);
            assert!(
                check.vs_analytic > 0.5 && check.vs_analytic < 3.0,
                "replay/analytic = {} for {}",
                check.vs_analytic,
                p.params.name
            );
            let m = p.ilp.expect("frontier points carry ILP metrics");
            assert!(m.resident_fraction() > 0.0);
        }
    }
}
