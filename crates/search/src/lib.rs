//! Design-space search over generated accelerator geometries.
//!
//! The paper evaluates one hand-picked SMART geometry; this crate turns the
//! [`smart_core::geometry::GeometryParams`] generator into a search engine
//! that sweeps *thousands* of geometries and returns the latency × energy ×
//! area Pareto frontier, as fast as the substrate allows:
//!
//! * [`SearchSpace`] enumerates a geometry grid in **neighbor order** —
//!   capacity axes innermost — so consecutive design points differ only in
//!   the right-hand sides of their allocation ILPs and the shared
//!   [`SolverContext`](smart_core::SolverContext) warm-starts each config
//!   from an adjacent basis (technology axes outermost reuse solutions
//!   verbatim through the exact-match memo: the memory *kind* never enters
//!   the formulation).
//! * [`search`] batch-evaluates every point's analytic objectives through
//!   the shared [`EvalCache`](smart_core::cache::EvalCache) with a
//!   [`parallel_map`](smart_report::pool::parallel_map) fan-out, then
//!   **prunes**: points ε-dominated on those cheap analytic objectives
//!   never reach the expensive stage. Only the surviving near-frontier
//!   band is compiled by the ILP (warm-started, in traversal order), and
//!   only the frontier itself is confirmed by the `smart-timing`
//!   cycle-level replay.
//! * [`search_naive`] is the baseline the speedup is measured against:
//!   per-config cold solves for every point of the space, no caches, no
//!   pruning. It must — and the tests assert it does — produce the exact
//!   same frontier.
//!
//! Everything is deterministic: objectives are pure values, pruning is a
//! pure function of them, and the ILP/replay stages run in canonical
//! enumeration order, so the frontier is identical across `--jobs` values
//! and cold-vs-warm cache runs.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod engine;
pub mod pareto;
pub mod space;

pub use engine::{
    search, search_naive, EvaluatedPoint, IlpMetrics, ReplayCheck, SearchConfig, SearchOutcome,
    SearchStats,
};
pub use pareto::{dominates, epsilon_survivors, pareto_frontier, Objectives};
pub use space::SearchSpace;
