//! The queueing/dispatch simulator: time-multiplexing tenant replays on
//! one systolic array.
//!
//! [`simulate`] runs a deterministic event loop over an arrival trace.
//! One array serves all tenants; at every decision point the dispatcher
//! picks the *oldest waiting work* (the parked job or queue head whose
//! oldest request arrived first — FCFS across tenants, tenant index
//! breaking ties). Three policy knobs shape the schedule:
//!
//! * **batch formation** ([`ServingConfig::batch_window`],
//!   [`ServingConfig::max_batch`]): a queue head matures when
//!   `max_batch` same-tenant requests are waiting or the head has waited
//!   `batch_window` cycles, whichever first. A mature head launches as
//!   one batch — compute replays per request, staging amortized (see
//!   [`TenantProfile::batched_layer_cycles`]);
//! * **preemption at layer boundaries** ([`ServingConfig::quantum_layers`]):
//!   with a quantum set, the dispatcher serves tenants round-robin
//!   (least recently served first, oldest request breaking ties) and
//!   parks the running job at the next layer boundary whenever another
//!   tenant has work waiting — short-model tenants stop queueing behind
//!   whole long-model jobs, at the price of extra re-staging. `0`
//!   disables preemption (run-to-completion, pure FCFS);
//! * **SPM context-switch cost**: whenever the array turns to a tenant
//!   other than the one whose data is resident, the layers still to run
//!   re-stage their SPM-resident bytes through the RANDOM channel first
//!   ([`TenantProfile::restage_cycles`]). An empty array (start of the
//!   simulation) is warm by the replay's own convention — the per-layer
//!   cycles already include first-use staging — so a zero-load request
//!   finishes in exactly its stand-alone replay latency.
//!
//! Determinism: the loop consumes the trace in order, draws no
//! randomness of its own, and never looks at wall-clock time, so one
//! `(workload, config)` pair yields one byte-identical [`ServingReport`]
//! regardless of machine or worker count.

// lint:allow-file(index, queue and tenant indices are bounded by the profile vectors built at admission)

use std::collections::VecDeque;

use crate::profile::TenantProfile;
use crate::report::{ServingReport, TenantServingStats};
use crate::workload::Workload;
use smart_trace::{Lane, Tracer};

/// Dispatch-policy knobs of one serving run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServingConfig {
    /// Cycles a queue head waits for co-batching before it launches
    /// alone (`0` = launch immediately).
    pub batch_window: u64,
    /// Most requests of one tenant in a batch (`>= 1`).
    pub max_batch: u32,
    /// Layers run before the dispatcher reconsiders (`0` =
    /// run-to-completion, no preemption).
    pub quantum_layers: u32,
    /// Per-tenant SLO deadline (arrival to completion) in cycles, in
    /// workload tenant order. Empty = no SLO (every completion counts as
    /// goodput).
    pub slo_cycles: Vec<u64>,
}

impl ServingConfig {
    /// Plain FCFS: no batching, no preemption, no SLO.
    #[must_use]
    pub fn fcfs() -> Self {
        Self {
            batch_window: 0,
            max_batch: 1,
            quantum_layers: 0,
            slo_cycles: Vec::new(),
        }
    }

    /// This config with batching up to `max_batch` at `window` cycles.
    #[must_use]
    pub fn with_batching(mut self, max_batch: u32, window: u64) -> Self {
        self.max_batch = max_batch;
        self.batch_window = window;
        self
    }

    /// This config with layer-boundary preemption every `quantum` layers.
    #[must_use]
    pub fn with_quantum(mut self, quantum: u32) -> Self {
        self.quantum_layers = quantum;
        self
    }

    /// This config with per-tenant SLO deadlines in cycles.
    #[must_use]
    pub fn with_slo(mut self, slo_cycles: Vec<u64>) -> Self {
        self.slo_cycles = slo_cycles;
        self
    }
}

impl Default for ServingConfig {
    fn default() -> Self {
        Self::fcfs()
    }
}

/// An in-flight batch: requests of one tenant moving through the model's
/// layers together.
#[derive(Debug)]
struct Job {
    tenant: usize,
    /// Arrival cycles of the batched requests (head first).
    arrivals: Vec<u64>,
    /// Next layer to run.
    next_layer: usize,
}

impl Job {
    fn oldest(&self) -> u64 {
        self.arrivals[0]
    }
}

/// Runs `workload`'s first `n` requests through the dispatch simulator
/// on the given per-tenant profiles (one per workload tenant, same
/// order, all replayed on the same scheme). The simulator drains: every
/// injected request completes and its latency is sampled.
///
/// # Panics
///
/// Panics when `profiles` and the workload's tenants disagree in length
/// or model, when profiles mix schemes or clocks, when
/// `cfg.max_batch == 0`, or when `cfg.slo_cycles` is non-empty with the
/// wrong length.
#[must_use]
pub fn simulate(
    profiles: &[TenantProfile],
    workload: &Workload,
    n: usize,
    cfg: &ServingConfig,
) -> ServingReport {
    simulate_traced(profiles, workload, n, cfg, &Tracer::disabled(), "")
}

/// [`simulate`], recording each request's lifecycle onto `tracer` —
/// one lane per tenant (named `"<lane_prefix>tenant <index> <name>"`),
/// carrying `arrive` instants, a `dispatch` instant per formed batch,
/// `restage` spans for cold switches, `run L<a>..L<b>` spans per
/// executed quantum, and `preempt` / `complete` instants. Timestamps
/// are simulated accelerator cycles, so the trace is as deterministic
/// as the report; a disabled tracer makes this exactly [`simulate`].
///
/// # Panics
///
/// As [`simulate`].
#[must_use]
pub fn simulate_traced(
    profiles: &[TenantProfile],
    workload: &Workload,
    n: usize,
    cfg: &ServingConfig,
    tracer: &Tracer,
    lane_prefix: &str,
) -> ServingReport {
    assert_eq!(
        profiles.len(),
        workload.tenants.len(),
        "one profile per tenant"
    );
    assert!(!profiles.is_empty(), "serving needs at least one tenant");
    assert!(cfg.max_batch >= 1, "a batch holds at least one request");
    assert!(
        cfg.slo_cycles.is_empty() || cfg.slo_cycles.len() == profiles.len(),
        "slo_cycles must be empty or one deadline per tenant"
    );
    for (p, t) in profiles.iter().zip(&workload.tenants) {
        assert_eq!(p.model, t.model, "profile/tenant model mismatch");
        assert_eq!(p.scheme, profiles[0].scheme, "profiles must share a scheme");
        assert_eq!(p.clock, profiles[0].clock, "profiles must share a clock");
    }
    let clock = profiles[0].clock;
    let trace = workload.trace(n, clock);

    // One trace lane per tenant. Lanes are no-ops on a disabled tracer;
    // the exporter re-sorts each lane by timestamp, so emitting `arrive`
    // instants at admission time (after later events) is fine.
    let lanes: Vec<Lane> = profiles
        .iter()
        .enumerate()
        .map(|(t, p)| tracer.lane(&format!("{lane_prefix}tenant {t} {}", p.name)))
        .collect();

    // Suffix sums of the per-layer re-staging cost: switching to a job at
    // layer l re-stages the resident bytes of layers l.. .
    let restage_tail: Vec<Vec<u64>> = profiles
        .iter()
        .map(|p| {
            let mut tail = vec![0u64; p.layers() + 1];
            for l in (0..p.layers()).rev() {
                tail[l] = tail[l + 1] + p.restage_cycles[l];
            }
            tail
        })
        .collect();

    // Round-robin bookkeeping (only consulted when a quantum is set):
    // the dispatch sequence number at which each tenant last ran.
    let mut last_served = vec![0u64; profiles.len()];
    let mut seq = 0u64;

    let mut queues: Vec<VecDeque<u64>> = vec![VecDeque::new(); profiles.len()];
    let mut injected = vec![0u64; profiles.len()];
    let mut samples: Vec<Vec<u64>> = vec![Vec::new(); profiles.len()];
    let mut parked: Vec<Job> = Vec::new();
    let mut next_req = 0usize;
    let mut now = 0u64;
    let mut resident: Option<usize> = None;
    let mut service_cycles = 0u64;
    let mut switch_cycles = 0u64;
    let mut switches = 0u64;
    let mut last_completion = 0u64;

    // Admits every request that has arrived by `now`.
    macro_rules! admit {
        () => {
            while next_req < trace.len() && trace[next_req].arrival <= now {
                let r = trace[next_req];
                queues[usize::from(r.tenant)].push_back(r.arrival);
                injected[usize::from(r.tenant)] += 1;
                lanes[usize::from(r.tenant)].instant("arrive", r.arrival);
                next_req += 1;
            }
        };
    }

    loop {
        admit!();

        // Candidate selection. Pure FCFS (quantum 0): the parked job or
        // queue head with the oldest request, parked jobs winning ties
        // (resuming beats launching at equal age). With a quantum set:
        // round-robin — least recently served tenant first, request age
        // breaking ties — so a preempted long job cannot immediately
        // reclaim the array from the tenants it was parked for.
        let rank = |t: usize, arrival: u64| {
            if cfg.quantum_layers == 0 {
                (0, arrival, t)
            } else {
                (last_served[t], arrival, t)
            }
        };
        let best_parked = parked
            .iter()
            .enumerate()
            .min_by_key(|(_, j)| rank(j.tenant, j.oldest()))
            .map(|(i, j)| (rank(j.tenant, j.oldest()), i));
        let best_head = queues
            .iter()
            .enumerate()
            .filter_map(|(t, q)| q.front().map(|&a| (rank(t, a), (a, t))))
            .min();

        let job = match (best_parked, best_head) {
            (None, None) => {
                // Idle: jump to the next arrival or finish.
                if next_req == trace.len() {
                    break;
                }
                now = now.max(trace[next_req].arrival);
                continue;
            }
            (Some((pr, pi)), head) if head.is_none_or(|(hr, _)| pr <= hr) => parked.swap_remove(pi),
            (Some((_, pi)), None) => parked.swap_remove(pi),
            (_, Some((_, (head_arrival, t)))) => {
                // Batch maturity: full, or the head has waited out the
                // window (with the trace exhausted nothing more can
                // join, so launch what is queued).
                let deadline = head_arrival.saturating_add(cfg.batch_window);
                let full = queues[t].len() >= cfg.max_batch as usize;
                if !full && now < deadline && next_req < trace.len() {
                    // Wait for more co-batchable arrivals or the window.
                    now = deadline.min(trace[next_req].arrival);
                    continue;
                }
                let b = queues[t].len().min(cfg.max_batch as usize);
                let arrivals: Vec<u64> = queues[t].drain(..b).collect();
                if lanes[t].is_enabled() {
                    lanes[t].instant(&format!("dispatch batch={b}"), now);
                }
                Job {
                    tenant: t,
                    arrivals,
                    next_layer: 0,
                }
            }
        };

        // Cold switch: another tenant's data is resident, so the layers
        // still to run re-stage their resident bytes first. An empty
        // array (None) is warm by the replay convention.
        let t = job.tenant;
        if resident.is_some_and(|r| r != t) {
            let cost = restage_tail[t][job.next_layer];
            lanes[t].span("restage", now, now + cost);
            now += cost;
            switch_cycles += cost;
            switches += 1;
        }
        resident = Some(t);

        // Run the job quantum by quantum, parking it when an older
        // request of another tenant is waiting at a layer boundary.
        let mut job = job;
        let profile = &profiles[t];
        // lint:allow(panic_freedom, arrivals per batch are bounded by the admission quantum, far below u32::MAX)
        let batch = u32::try_from(job.arrivals.len()).expect("batch fits u32");
        loop {
            let remaining = profile.layers() - job.next_layer;
            let run = if cfg.quantum_layers == 0 {
                remaining
            } else {
                remaining.min(cfg.quantum_layers as usize)
            };
            let segment_start = now;
            for l in job.next_layer..job.next_layer + run {
                let c = profile.batched_layer_cycles(l, batch);
                now += c;
                service_cycles += c;
            }
            job.next_layer += run;
            seq += 1;
            last_served[t] = seq;
            if lanes[t].is_enabled() && run > 0 {
                lanes[t].span(
                    &format!("run L{}..L{}", job.next_layer - run, job.next_layer),
                    segment_start,
                    now,
                );
            }

            if job.next_layer == profile.layers() {
                for &arrival in &job.arrivals {
                    samples[t].push(now - arrival);
                }
                lanes[t].instant("complete", now);
                last_completion = last_completion.max(now);
                break;
            }

            admit!();
            // Park at the layer boundary when any other tenant has work
            // waiting; the round-robin rank hands the array to the least
            // recently served of them.
            let other_waiting = parked.iter().any(|j| j.tenant != t)
                || queues
                    .iter()
                    .enumerate()
                    .any(|(qt, q)| qt != t && !q.is_empty());
            if other_waiting {
                lanes[t].instant("preempt", now);
                parked.push(job);
                break;
            }
        }
    }

    // Assemble the report.
    let mut per_tenant = Vec::with_capacity(profiles.len());
    let mut all = Vec::new();
    let mut completed = 0u64;
    let mut slo_met = 0u64;
    for (t, mut lat) in samples.into_iter().enumerate() {
        lat.sort_unstable();
        let slo = cfg.slo_cycles.get(t).copied().unwrap_or(u64::MAX);
        let met = lat.iter().filter(|&&l| l <= slo).count() as u64;
        completed += lat.len() as u64;
        slo_met += met;
        all.extend_from_slice(&lat);
        per_tenant.push(TenantServingStats {
            name: profiles[t].name.clone(),
            injected: injected[t],
            completed: lat.len() as u64,
            slo_met: met,
            latencies: lat,
        });
    }
    all.sort_unstable();

    let first_arrival = trace.first().map_or(0, |r| r.arrival);
    ServingReport {
        scheme: profiles[0].scheme,
        clock,
        offered_rps: workload.rate_rps,
        injected: trace.len() as u64,
        completed,
        slo_met,
        makespan_cycles: last_completion.saturating_sub(first_arrival),
        service_cycles,
        switch_cycles,
        switches,
        latencies: all,
        per_tenant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Tenant;
    use smart_systolic::models::ModelId;
    use smart_units::Frequency;

    /// A synthetic profile: `layers` uniform layers of `total` cycles
    /// (`compute` of them batch-scaling) with `restage` switch cycles
    /// each. The simulator only reads the public fields, so tests need
    /// no ILP compile.
    fn prof(total: u64, compute: u64, restage: u64, layers: usize) -> TenantProfile {
        TenantProfile {
            name: "synthetic".to_owned(),
            model: ModelId::AlexNet,
            scheme: "TEST",
            clock: Frequency::from_ghz(1.0),
            layer_cycles: vec![total; layers],
            layer_compute: vec![compute; layers],
            restage_cycles: vec![restage; layers],
            resident_fraction: 0.5,
        }
    }

    fn two_tenant_workload(rate: f64, seed: u64) -> Workload {
        Workload::poisson(
            vec![
                Tenant::of(ModelId::AlexNet, 1.0),
                Tenant::of(ModelId::AlexNet, 1.0),
            ],
            rate,
            seed,
        )
    }

    #[test]
    fn zero_load_latency_is_the_standalone_replay() {
        let p = prof(1_000, 600, 50, 10);
        let w = Workload::poisson(vec![Tenant::of(ModelId::AlexNet, 1.0)], 10.0, 7);
        let r = simulate(std::slice::from_ref(&p), &w, 1, &ServingConfig::fcfs());
        assert_eq!(r.completed, 1);
        assert_eq!(r.latencies, vec![p.standalone_cycles()]);
        assert_eq!(r.switch_cycles, 0, "an empty array is warm");
    }

    #[test]
    fn requests_are_conserved_and_switches_paid() {
        let profiles = [prof(1_000, 600, 50, 10), prof(2_000, 1_200, 80, 10)];
        // 50% load on the slower tenant mix keeps queues finite but
        // forces plenty of interleaving.
        let w = two_tenant_workload(3e4, 11);
        let r = simulate(&profiles, &w, 300, &ServingConfig::fcfs());
        assert_eq!(r.injected, 300);
        assert_eq!(r.completed, 300);
        assert_eq!(
            r.per_tenant.iter().map(|t| t.completed).sum::<u64>(),
            r.completed
        );
        assert_eq!(
            r.per_tenant.iter().map(|t| t.injected).sum::<u64>(),
            r.injected
        );
        assert!(r.switches > 0, "alternating tenants must cold-switch");
        // Run-to-completion never parks mid-model, so every switch
        // re-stages a full model: 500 cycles into tenant 0, 800 into 1.
        assert!(r.switch_cycles >= r.switches * 500);
        assert!(r.switch_cycles <= r.switches * 800);
        assert!(r.quantile_cycles(0.5) <= r.quantile_cycles(0.99));
        assert!(r.quantile_cycles(0.99) <= r.quantile_cycles(0.999));
    }

    #[test]
    fn simulation_is_deterministic() {
        let profiles = [prof(1_000, 600, 50, 10), prof(2_000, 1_200, 80, 10)];
        let w = two_tenant_workload(5e4, 3);
        let cfg = ServingConfig::fcfs()
            .with_batching(4, 20_000)
            .with_quantum(2);
        let a = simulate(&profiles, &w, 200, &cfg);
        let b = simulate(&profiles, &w, 200, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn p99_is_monotone_in_offered_load_under_fcfs() {
        let profiles = [prof(1_000, 600, 50, 10), prof(2_000, 1_200, 80, 10)];
        let mut last = 0;
        for rate in [1e4, 2e4, 4e4, 6e4, 8e4] {
            let r = simulate(
                &profiles,
                &two_tenant_workload(rate, 17),
                400,
                &ServingConfig::fcfs(),
            );
            let p99 = r.quantile_cycles(0.99);
            assert!(p99 >= last, "p99 regressed at rate {rate}: {p99} < {last}");
            last = p99;
        }
    }

    #[test]
    fn batching_amortizes_service_cycles() {
        let profiles = [prof(1_000, 400, 50, 10), prof(1_000, 400, 50, 10)];
        let w = two_tenant_workload(8e4, 23);
        let solo = simulate(&profiles, &w, 300, &ServingConfig::fcfs());
        let batched = simulate(
            &profiles,
            &w,
            300,
            &ServingConfig::fcfs().with_batching(8, 50_000),
        );
        assert_eq!(batched.completed, solo.completed);
        assert!(
            batched.service_cycles < solo.service_cycles,
            "batch {} vs solo {}",
            batched.service_cycles,
            solo.service_cycles
        );
    }

    #[test]
    fn preemption_cuts_the_short_tenant_tail() {
        // Tenant 0 runs 100x longer per request than tenant 1; without
        // preemption the short tenant queues behind whole long jobs.
        let profiles = [prof(100_000, 60_000, 500, 10), prof(1_000, 600, 50, 10)];
        let w = two_tenant_workload(1.5e3, 29);
        let rtc = simulate(&profiles, &w, 200, &ServingConfig::fcfs());
        let preempt = simulate(&profiles, &w, 200, &ServingConfig::fcfs().with_quantum(1));
        assert_eq!(preempt.completed, rtc.completed);
        let short_p99 = |r: &ServingReport| r.per_tenant[1].quantile_cycles(0.99);
        assert!(
            short_p99(&preempt) < short_p99(&rtc),
            "preempt {} vs run-to-completion {}",
            short_p99(&preempt),
            short_p99(&rtc)
        );
        assert!(
            preempt.switch_cycles > rtc.switch_cycles,
            "preemption must pay more re-staging"
        );
    }

    #[test]
    fn traced_run_matches_untraced_and_emits_lifecycle_lanes() {
        let profiles = [prof(1_000, 600, 50, 10), prof(2_000, 1_200, 80, 10)];
        let w = two_tenant_workload(3e4, 11);
        let cfg = ServingConfig::fcfs().with_quantum(2);
        let plain = simulate(&profiles, &w, 100, &cfg);
        let tracer = Tracer::enabled();
        let traced = simulate_traced(&profiles, &w, 100, &cfg, &tracer, "serving/");
        assert_eq!(plain, traced, "tracing must not perturb the simulation");
        let lanes = tracer.lanes();
        let names: Vec<&str> = lanes.keys().map(String::as_str).collect();
        assert_eq!(
            names,
            ["serving/tenant 0 synthetic", "serving/tenant 1 synthetic"]
        );
        for (name, events) in &lanes {
            let has = |n: &str| events.iter().any(|e| e.name.starts_with(n));
            assert!(has("arrive"), "{name} has arrivals");
            assert!(has("dispatch batch="), "{name} has dispatches");
            assert!(has("run L"), "{name} has run segments");
            assert!(has("complete"), "{name} has completions");
        }
        // The lifecycle lanes are a valid, deterministic Chrome trace.
        let a = smart_trace::chrome::export(&tracer).expect("valid trace");
        let retracer = Tracer::enabled();
        let _ = simulate_traced(&profiles, &w, 100, &cfg, &retracer, "serving/");
        let b = smart_trace::chrome::export(&retracer).expect("valid trace");
        assert_eq!(a, b, "same seed, byte-identical trace");
    }

    #[test]
    fn slo_deadlines_gate_goodput() {
        let profiles = [prof(1_000, 600, 50, 10), prof(2_000, 1_200, 80, 10)];
        let w = two_tenant_workload(6e4, 31);
        let loose = simulate(
            &profiles,
            &w,
            300,
            &ServingConfig::fcfs().with_slo(vec![u64::MAX, u64::MAX]),
        );
        let tight = simulate(
            &profiles,
            &w,
            300,
            &ServingConfig::fcfs().with_slo(vec![10_000, 20_000]),
        );
        assert_eq!(loose.slo_met, loose.completed);
        assert!(tight.slo_met < tight.completed);
        assert!(tight.goodput_rps() < loose.goodput_rps());
        assert!(tight.slo_attainment() < 1.0);
    }
}
