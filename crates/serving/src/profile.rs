//! [`TenantProfile`]: the per-tenant cost model the dispatch simulator
//! schedules with, distilled from one cycle-level replay.
//!
//! A profile is built once per `(scheme, model)` through the shared
//! [`TimingCache`] — the replay pays one [`smart_timing::ModelPrepass`]
//! (ILP compile + config-independent prepass) and every serving sweep
//! point reuses it. Three things are distilled:
//!
//! * **per-layer cycles** from the replayed [`TimingReport`]s (total and
//!   compute), which price layer execution and batching;
//! * **per-layer cold-switch re-staging cost**: when the tenant resumes
//!   after another tenant used the array, the bytes its schedule keeps
//!   SPM-resident ([`Schedule::spm_resident_fraction`]'s numerator) must
//!   be re-staged through the RANDOM channel, priced by the same
//!   bandwidth-scaled [`RandomCosts`] table the replay itself uses (so a
//!   `TimingConfig` bandwidth scenario slows context switches by exactly
//!   the factor it slows prefetches). DRAM-placed objects re-stream on
//!   use anyway and carry no switch cost;
//! * the byte-weighted **resident fraction** across layers, reported as
//!   the thrash exposure of the tenant.
//!
//! Batching model: a batch of `b` requests of one tenant replays each
//! layer's compute `b` times while the layer's staging, stall, and
//! realignment cycles are paid once — weights are shared across the
//! batch, which is precisely the amortization the paper's batch figures
//! (Figs. 19/21) exploit.
//!
//! [`Schedule::spm_resident_fraction`]: smart_compiler::schedule::Schedule::spm_resident_fraction
//! [`TimingReport`]: smart_timing::TimingReport

// lint:allow-file(index, batch buckets are indexed by positions found in the same slice)

use smart_core::scheme::Scheme;
use smart_systolic::models::ModelId;
use smart_timing::{compile_scheme_layer, hetero_spm, RandomCosts, TimingCache, TimingConfig};
use smart_units::{Frequency, Result};

/// The serving-level cost model of one tenant on one scheme: per-layer
/// replay cycles plus the SPM context-switch economics.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantProfile {
    /// Tenant display name.
    pub name: String,
    /// The tenant's model.
    pub model: ModelId,
    /// Name of the scheme the profile was replayed on.
    pub scheme: &'static str,
    /// Accelerator clock (cycle counts convert to time with this).
    pub clock: Frequency,
    /// Replayed end-to-end cycles per layer (compute + streaming +
    /// exposed stalls), in model order.
    pub layer_cycles: Vec<u64>,
    /// Matrix-unit compute cycles per layer (the part that scales with
    /// batch size).
    pub layer_compute: Vec<u64>,
    /// Cold-switch cost before each layer: cycles to re-stage the
    /// layer schedule's SPM-resident bytes through the RANDOM channel.
    pub restage_cycles: Vec<u64>,
    /// Byte-weighted fraction of the model's working set the schedules
    /// keep SPM-resident (the tenant's thrash exposure).
    pub resident_fraction: f64,
}

impl TenantProfile {
    /// Builds the profile of `model` on `scheme` under `cfg`, replaying
    /// through `cache` — one `ModelPrepass` per `(scheme, model)` is paid
    /// on the first build and every later build (any config-equal sweep
    /// point, any experiment) is a cache hit. The per-layer schedules are
    /// recompiled for the placement bytes through the cache's shared
    /// [`smart_compiler::SolverContext`], whose exact-match solution memo
    /// replays the ILP search instead of re-solving it.
    ///
    /// # Errors
    ///
    /// [`smart_units::SmartError::InvalidInput`] when the scheme's SPM is
    /// not heterogeneous (the replay simulator cannot model it).
    pub fn build(
        scheme: &Scheme,
        model: ModelId,
        cfg: &TimingConfig,
        cache: &TimingCache,
    ) -> Result<Self> {
        let report = cache.report(scheme, model, cfg)?;
        let spm = hetero_spm(scheme)?;
        let costs = RandomCosts::new(spm, scheme.config.frequency, cfg);

        let built = model.build();
        assert_eq!(
            built.layers.len(),
            report.layers.len(),
            "replay must cover every layer"
        );
        let mut restage_cycles = Vec::with_capacity(built.layers.len());
        let mut resident_bytes = 0u64;
        let mut total_bytes = 0u64;
        for layer in &built.layers {
            let compiled = compile_scheme_layer(scheme, layer, cfg.max_iterations, cache.solver())?;
            let (shift, random, dram) = compiled.schedule.bytes_by_location(&compiled.dag);
            // The replay prices loads in words == bytes (see
            // `LayerPrepass::build`), so the re-staging burst does too.
            restage_cycles.push(costs.read(shift + random));
            resident_bytes += shift + random;
            total_bytes += shift + random + dram;
        }

        Ok(Self {
            name: model.name().to_owned(),
            model,
            scheme: scheme.name,
            clock: scheme.config.frequency,
            layer_cycles: report.layers.iter().map(|l| l.total_cycles).collect(),
            layer_compute: report.layers.iter().map(|l| l.compute_cycles).collect(),
            restage_cycles,
            resident_fraction: if total_bytes == 0 {
                0.0
            } else {
                resident_bytes as f64 / total_bytes as f64
            },
        })
    }

    /// Number of layers (preemption points are layer boundaries).
    #[must_use]
    pub fn layers(&self) -> usize {
        self.layer_cycles.len()
    }

    /// Stand-alone (uncontended, warm) request latency in cycles: the
    /// replayed model total.
    #[must_use]
    pub fn standalone_cycles(&self) -> u64 {
        self.layer_cycles.iter().sum()
    }

    /// Cycles to run layer `layer` for a batch of `b` requests: compute
    /// scales with `b`, the layer's staging/stall remainder is paid once
    /// (weights and schedule state are shared across the batch).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range or `b` is zero.
    #[must_use]
    pub fn batched_layer_cycles(&self, layer: usize, b: u32) -> u64 {
        assert!(b > 0, "a batch holds at least one request");
        let total = self.layer_cycles[layer];
        let compute = self.layer_compute[layer];
        compute * u64::from(b) + (total - compute)
    }

    /// Mean service rate of this tenant alone on the array, in requests
    /// per second.
    #[must_use]
    pub fn standalone_rps(&self) -> f64 {
        self.clock.as_si() / self.standalone_cycles().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_matches_replay_totals() {
        let cache = TimingCache::new();
        let cfg = TimingConfig::nominal();
        let scheme = Scheme::smart();
        let p = TenantProfile::build(&scheme, ModelId::AlexNet, &cfg, &cache).expect("hetero");
        let report = cache.report(&scheme, ModelId::AlexNet, &cfg).expect("ok");
        assert_eq!(p.standalone_cycles(), report.total_cycles());
        assert_eq!(p.layers(), report.layers.len());
        assert!(p.resident_fraction > 0.0 && p.resident_fraction <= 1.0);
        // Restage costs are positive wherever bytes are resident.
        assert!(p.restage_cycles.iter().any(|&r| r > 0));
        // Batch 1 equals the plain layer cost; batch 4 amortizes.
        for l in 0..p.layers() {
            assert_eq!(p.batched_layer_cycles(l, 1), p.layer_cycles[l]);
            assert!(p.batched_layer_cycles(l, 4) < 4 * p.layer_cycles[l].max(1));
        }
    }

    #[test]
    fn second_build_reuses_the_prepass() {
        let cache = TimingCache::new();
        let cfg = TimingConfig::nominal();
        let scheme = Scheme::smart();
        let a = TenantProfile::build(&scheme, ModelId::AlexNet, &cfg, &cache).expect("hetero");
        let before = cache.stats();
        let b = TenantProfile::build(&scheme, ModelId::AlexNet, &cfg, &cache).expect("hetero");
        let after = cache.stats();
        assert_eq!(a, b);
        assert_eq!(after.misses, before.misses, "no new replay");
        assert!(after.hits > before.hits);
    }

    #[test]
    fn non_heterogeneous_schemes_are_rejected() {
        let cache = TimingCache::new();
        let err = TenantProfile::build(
            &Scheme::supernpu(),
            ModelId::AlexNet,
            &TimingConfig::nominal(),
            &cache,
        )
        .unwrap_err();
        assert!(matches!(err, smart_units::SmartError::InvalidInput { .. }));
    }
}
