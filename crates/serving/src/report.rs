//! [`ServingReport`]: what one serving simulation says about tail
//! latency, goodput, utilization, and SPM thrash.
//!
//! The report keeps the full sorted per-request latency sample (cycles)
//! rather than pre-baked quantiles, so callers can ask for any quantile
//! — the canonical ones, [`p50`]/[`p99`]/[`p999`], use the nearest-rank
//! definition (the smallest sample with at least a `q` fraction of the
//! mass at or below it), which is exact on discrete samples and never
//! interpolates latencies that no request experienced.
//!
//! Rate-style metrics are defined over the *makespan* (first arrival to
//! last completion): [`goodput_rps`] counts SLO-met completions per
//! second of makespan, so past the saturation knee it converges to the
//! server's sustainable service rate rather than echoing the offered
//! load back.
//!
//! [`p50`]: ServingReport::p50
//! [`p99`]: ServingReport::p99
//! [`p999`]: ServingReport::p999
//! [`goodput_rps`]: ServingReport::goodput_rps

// lint:allow-file(index, percentile ranks are clamped to the sorted sample length)

use smart_units::{Frequency, Time};

/// Per-tenant slice of a serving run.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantServingStats {
    /// Tenant display name.
    pub name: String,
    /// Requests of this tenant injected by the trace.
    pub injected: u64,
    /// Requests completed.
    pub completed: u64,
    /// Completions that met the tenant's SLO deadline.
    pub slo_met: u64,
    /// Sorted per-request latencies of this tenant, in cycles.
    pub latencies: Vec<u64>,
}

impl TenantServingStats {
    /// Nearest-rank quantile of this tenant's latency sample, in cycles
    /// (`0` when the tenant completed nothing).
    #[must_use]
    pub fn quantile_cycles(&self, q: f64) -> u64 {
        quantile(&self.latencies, q)
    }

    /// Mean latency in cycles (`0.0` when empty).
    #[must_use]
    pub fn mean_cycles(&self) -> f64 {
        if self.latencies.is_empty() {
            0.0
        } else {
            self.latencies.iter().sum::<u64>() as f64 / self.latencies.len() as f64
        }
    }
}

/// Result of one serving simulation: a workload replayed through the
/// dispatch simulator on one scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Scheme the tenants were profiled on.
    pub scheme: &'static str,
    /// Accelerator clock (cycle counts convert to time with this).
    pub clock: Frequency,
    /// Offered aggregate load in requests per second.
    pub offered_rps: f64,
    /// Requests injected by the trace.
    pub injected: u64,
    /// Requests completed (the simulator drains, so this equals
    /// [`Self::injected`]; the conservation property test asserts it).
    pub completed: u64,
    /// Completions that met their tenant's SLO deadline.
    pub slo_met: u64,
    /// First arrival to last completion, in cycles.
    pub makespan_cycles: u64,
    /// Cycles the array spent executing layers.
    pub service_cycles: u64,
    /// Cycles spent re-staging SPM-resident data across tenant switches
    /// (the thrash the paper's warm/cold distinction prices).
    pub switch_cycles: u64,
    /// Number of cold tenant switches paid.
    pub switches: u64,
    /// Sorted per-request latencies across all tenants, in cycles.
    pub latencies: Vec<u64>,
    /// Per-tenant breakdown, in workload tenant order.
    pub per_tenant: Vec<TenantServingStats>,
}

impl ServingReport {
    /// Nearest-rank quantile of the aggregate latency sample, in cycles.
    #[must_use]
    pub fn quantile_cycles(&self, q: f64) -> u64 {
        quantile(&self.latencies, q)
    }

    /// Nearest-rank quantile as wall-clock time.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Time {
        self.clock.period() * self.quantile_cycles(q) as f64
    }

    /// Median latency.
    #[must_use]
    pub fn p50(&self) -> Time {
        self.quantile(0.50)
    }

    /// 99th-percentile latency.
    #[must_use]
    pub fn p99(&self) -> Time {
        self.quantile(0.99)
    }

    /// 99.9th-percentile latency.
    #[must_use]
    pub fn p999(&self) -> Time {
        self.quantile(0.999)
    }

    /// Mean latency in cycles (`0.0` when empty).
    #[must_use]
    pub fn mean_cycles(&self) -> f64 {
        if self.latencies.is_empty() {
            0.0
        } else {
            self.latencies.iter().sum::<u64>() as f64 / self.latencies.len() as f64
        }
    }

    /// Makespan as wall-clock time.
    #[must_use]
    pub fn makespan(&self) -> Time {
        self.clock.period() * self.makespan_cycles as f64
    }

    /// SLO-met completions per second of makespan. Below saturation this
    /// tracks the offered load; past the knee it converges to the
    /// sustainable service rate and then *falls* as queueing pushes
    /// completions over their deadlines.
    #[must_use]
    pub fn goodput_rps(&self) -> f64 {
        let span_s = self.makespan().as_s();
        if span_s <= 0.0 {
            0.0
        } else {
            self.slo_met as f64 / span_s
        }
    }

    /// Completions (SLO-blind) per second of makespan.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        let span_s = self.makespan().as_s();
        if span_s <= 0.0 {
            0.0
        } else {
            self.completed as f64 / span_s
        }
    }

    /// Fraction of the makespan the array spent doing useful layer work.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.makespan_cycles == 0 {
            0.0
        } else {
            self.service_cycles as f64 / self.makespan_cycles as f64
        }
    }

    /// SPM-thrash overhead: re-staging cycles as a fraction of all busy
    /// cycles (service + re-staging). `0.0` when nothing ran.
    #[must_use]
    pub fn thrash_overhead(&self) -> f64 {
        let busy = self.service_cycles + self.switch_cycles;
        if busy == 0 {
            0.0
        } else {
            self.switch_cycles as f64 / busy as f64
        }
    }

    /// Fraction of completions that met their SLO (`1.0` when nothing
    /// completed, vacuously).
    #[must_use]
    pub fn slo_attainment(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            self.slo_met as f64 / self.completed as f64
        }
    }
}

/// Nearest-rank quantile of a **sorted** sample: the smallest element
/// with at least `ceil(q * n)` elements at or below it. `0` on an empty
/// sample; `q` is clamped to `(0, 1]`.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let q = q.clamp(f64::MIN_POSITIVE, 1.0);
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_matches_hand_computation() {
        let s = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(quantile(&s, 0.50), 50);
        assert_eq!(quantile(&s, 0.99), 100);
        assert_eq!(quantile(&s, 0.10), 10);
        assert_eq!(quantile(&s, 1.0), 100);
        assert_eq!(quantile(&[], 0.5), 0);
        assert_eq!(quantile(&[7], 0.999), 7);
    }

    #[test]
    fn report_metrics_are_consistent() {
        let clock = Frequency::from_ghz(52.6);
        let r = ServingReport {
            scheme: "SMART",
            clock,
            offered_rps: 1e5,
            injected: 4,
            completed: 4,
            slo_met: 3,
            makespan_cycles: 1_000_000,
            service_cycles: 600_000,
            switch_cycles: 200_000,
            switches: 2,
            latencies: vec![100, 200, 300, 400],
            per_tenant: vec![],
        };
        assert_eq!(r.quantile_cycles(0.5), 200);
        assert_eq!(r.quantile_cycles(0.99), 400);
        assert!(r.p50() < r.p99());
        assert!((r.utilization() - 0.6).abs() < 1e-12);
        assert!((r.thrash_overhead() - 0.25).abs() < 1e-12);
        assert!((r.slo_attainment() - 0.75).abs() < 1e-12);
        let span_s = r.makespan().as_s();
        assert!((r.goodput_rps() - 3.0 / span_s).abs() < 1e-6);
        assert!(r.throughput_rps() > r.goodput_rps());
        assert!((r.mean_cycles() - 250.0).abs() < 1e-12);
    }
}
