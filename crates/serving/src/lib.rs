//! Layer 6: the multi-tenant serving simulator.
//!
//! The paper evaluates SMART on single-model runs; this crate asks the
//! datacenter question on top of the same cycle-level machinery: what
//! happens when several CNN tenants share one superconducting systolic
//! array under an open-loop request stream? Three pieces answer it:
//!
//! * [`workload`] — seeded deterministic request generation: tenant
//!   mixes over [`smart_systolic::models::ModelId`]s, Poisson or bursty
//!   (on/off modulated) arrivals, synthesized through the hand-rolled
//!   [`smart_units::rng`] generators so a `(workload, seed)` pair
//!   replays byte-identically everywhere;
//! * [`profile`] — [`TenantProfile`]: the per-tenant cost model
//!   distilled from one [`smart_timing::ModelPrepass`] replay per
//!   `(scheme, model)` (shared through the [`smart_timing::TimingCache`]),
//!   including the SPM context-switch economics derived from each layer
//!   schedule's resident bytes;
//! * [`sim`] / [`report`] — the dispatch simulator (batch formation at a
//!   configurable window, preemption at layer boundaries, cold-switch
//!   re-staging priced at the replay's own RANDOM-channel bandwidth) and
//!   its [`ServingReport`] (p50/p99/p999 tails, goodput vs SLO,
//!   utilization, SPM-thrash overhead).
//!
//! # Example
//!
//! ```no_run
//! use smart_core::scheme::Scheme;
//! use smart_serving::{simulate, ServingConfig, Tenant, TenantProfile, Workload};
//! use smart_systolic::models::ModelId;
//! use smart_timing::{TimingCache, TimingConfig};
//!
//! let cache = TimingCache::new();
//! let cfg = TimingConfig::nominal();
//! let scheme = Scheme::smart();
//! let tenants = vec![
//!     Tenant::of(ModelId::AlexNet, 3.0),
//!     Tenant::of(ModelId::ResNet50, 1.0),
//! ];
//! let profiles: Vec<TenantProfile> = tenants
//!     .iter()
//!     .map(|t| TenantProfile::build(&scheme, t.model, &cfg, &cache))
//!     .collect::<Result<_, _>>()?;
//! let workload = Workload::poisson(tenants, 2.0e5, 42);
//! let report = simulate(&profiles, &workload, 2000, &ServingConfig::fcfs());
//! println!("p99 = {:?}, goodput = {:.0} rps", report.p99(), report.goodput_rps());
//! # Ok::<(), smart_units::SmartError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod profile;
pub mod report;
pub mod sim;
pub mod workload;

pub use profile::TenantProfile;
pub use report::{ServingReport, TenantServingStats};
pub use sim::{simulate, simulate_traced, ServingConfig};
pub use workload::{ArrivalModel, Request, Tenant, Workload};
