//! The evaluated schemes (Sec. 5 "Schemes") and their SPM organizations.
//!
//! * `TPU` — the CMOS baseline with an idealized unified buffer;
//! * `SuperNPU` — SHIFT-only SPMs (24 MB / 64-bank input, 24 MB / 256-bank
//!   output/PSum, 128 KB weights);
//! * `SRAM` — SuperNPU with all SHIFT arrays replaced by Josephson-CMOS
//!   SRAM arrays;
//! * `Heter` — SRAM plus three 32 KB SHIFT staging arrays with ideal static
//!   allocation;
//! * `Pipe` — Heter with the 28 MB pipelined CMOS-SFQ array;
//! * `SMART` — Pipe plus the ILP compiler with prefetch window `a = 3`.

use crate::config::AcceleratorConfig;
use crate::geometry::GeometryParams;
use smart_cryomem::array::{RandomArray, RandomArrayKind};
use smart_spm::hetero::HeterogeneousSpm;
use smart_spm::shift::ShiftArray;

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// SHIFT-only SPM set (SuperNPU's organization).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PureShiftSpm {
    /// Input buffer.
    pub input: ShiftArray,
    /// Output/PSum buffer.
    pub output: ShiftArray,
    /// Weight buffer.
    pub weight: ShiftArray,
}

impl PureShiftSpm {
    /// SuperNPU's Table 4 configuration.
    #[must_use]
    pub fn supernpu() -> Self {
        Self {
            input: ShiftArray::new(24 * MB, 64),
            output: ShiftArray::new(24 * MB, 256),
            weight: ShiftArray::new(128 * KB, 64),
        }
    }
}

/// How data is allocated and prefetched onto the SPM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocationPolicy {
    /// Ideal static allocation, no prefetch: loads overlap compute only via
    /// natural double buffering (~half hidden).
    Static,
    /// The ILP compiler's allocation with a prefetch window of `a`
    /// iterations (Sec. 4.3). `a = 1` disables prefetching.
    Prefetch {
        /// Prefetch iteration count (the paper's `a`, default 3).
        window: u32,
    },
}

impl AllocationPolicy {
    /// Fraction of SPM/DRAM load time hidden behind compute.
    ///
    /// Static double buffering hides about a third; prefetching one
    /// iteration ahead hides half; `a >= 3` hides (almost) everything —
    /// matching the saturation of Fig. 24.
    #[must_use]
    pub fn overlap_fraction(self) -> f64 {
        match self {
            Self::Static => 0.3,
            Self::Prefetch { window } => {
                let a = f64::from(window.max(1));
                (0.95 * (a - 1.0) / 2.0).min(0.95)
            }
        }
    }
}

/// An SPM organization under evaluation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SpmOrganization {
    /// Idealized SPM (the TPU baseline): never stalls the array.
    Ideal,
    /// SHIFT-only arrays (SuperNPU).
    PureShift(PureShiftSpm),
    /// One shared random-access array for everything (`SRAM` scheme,
    /// Fig. 5 homogeneous comparisons).
    PureRandom(RandomArray),
    /// SHIFT staging + shared RANDOM array (`Heter`/`Pipe`/`SMART`,
    /// Fig. 7).
    Heterogeneous(HeterogeneousSpm),
}

/// A named evaluation scheme: accelerator config + SPM + policy.
///
/// A `Scheme` is a pure value: two schemes that compare equal evaluate
/// identically, which is what lets [`crate::cache::EvalCache`] key its
/// memoization on `(Scheme, ModelId, batch)` rather than on display names
/// (sweeps reuse the name "SMART" across physically different SPMs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Scheme {
    /// Display name used in the figures.
    pub name: &'static str,
    /// Accelerator configuration.
    pub config: AcceleratorConfig,
    /// SPM organization.
    pub spm: SpmOrganization,
    /// Allocation/prefetch policy.
    pub policy: AllocationPolicy,
}

impl Scheme {
    /// Elaborates a named generator; every named geometry is valid by
    /// construction (pinned by the round-trip tests in
    /// [`crate::geometry`]).
    fn of(params: &GeometryParams) -> Self {
        // lint:allow(panic_freedom, the named geometries are fixed constants validated by unit tests, so of() is infallible)
        params.build().expect("named geometries are valid")
    }

    /// The TPU baseline.
    #[must_use]
    pub fn tpu() -> Self {
        Self::of(&GeometryParams::tpu())
    }

    /// SuperNPU (the `SHIFT` bars of Figs. 18-21).
    #[must_use]
    pub fn supernpu() -> Self {
        Self::of(&GeometryParams::supernpu())
    }

    /// SuperNPU with Josephson-CMOS SRAM SPMs at TPU capacity.
    #[must_use]
    pub fn sram() -> Self {
        Self::of(&GeometryParams::sram())
    }

    /// `Heter`: SRAM plus 32 KB SHIFT staging arrays, ideal static
    /// allocation.
    #[must_use]
    pub fn heter() -> Self {
        Self::of(&GeometryParams::heter())
    }

    /// `Pipe`: Heter with the pipelined CMOS-SFQ RANDOM array.
    #[must_use]
    pub fn pipe() -> Self {
        Self::of(&GeometryParams::pipe())
    }

    /// `SMART`: Pipe plus the ILP compiler with `a = 3`.
    #[must_use]
    pub fn smart() -> Self {
        Self::of(&GeometryParams::smart())
    }

    /// All five SFQ schemes of Figs. 18-21, in figure order.
    #[must_use]
    pub fn figure18_set() -> Vec<Self> {
        vec![
            Self::supernpu(),
            Self::sram(),
            Self::heter(),
            Self::pipe(),
            Self::smart(),
        ]
    }

    /// Fig. 5 homogeneous-SPM variants: SuperNPU with its SHIFT SPMs
    /// replaced by one technology's random arrays (64-bank 12 MB input +
    /// 256-bank 16 MB output + 64 KB weights, combined here into one
    /// 256-bank array of the summed capacity).
    #[must_use]
    pub fn fig5_homogeneous(kind: RandomArrayKind) -> Self {
        Self::of(&GeometryParams::fig5_homogeneous(kind))
    }

    /// Fig. 7 heterogeneous-SPM variants: 32 KB SHIFT staging + a 28 MB
    /// RANDOM array of the given technology, optionally with prefetching
    /// (the `hVTM+p` bar).
    #[must_use]
    pub fn fig7_hetero(kind: RandomArrayKind, prefetch: bool) -> Self {
        Self::of(&GeometryParams::fig7_hetero(kind, prefetch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure18_set_order() {
        let names: Vec<_> = Scheme::figure18_set().iter().map(|s| s.name).collect();
        assert_eq!(names, ["SHIFT", "SRAM", "Heter", "Pipe", "SMART"]);
    }

    #[test]
    fn supernpu_spm_capacities() {
        let PureShiftSpm {
            input,
            output,
            weight,
        } = PureShiftSpm::supernpu();
        assert_eq!(input.capacity_bytes(), 24 * MB);
        assert_eq!(input.banks(), 64);
        assert_eq!(output.banks(), 256);
        assert_eq!(weight.capacity_bytes(), 128 * KB);
    }

    #[test]
    fn smart_uses_prefetch_3() {
        let s = Scheme::smart();
        assert_eq!(s.policy, AllocationPolicy::Prefetch { window: 3 });
    }

    #[test]
    fn overlap_fractions_saturate() {
        assert!(AllocationPolicy::Prefetch { window: 1 }.overlap_fraction() < 1e-9);
        let a2 = AllocationPolicy::Prefetch { window: 2 }.overlap_fraction();
        let a3 = AllocationPolicy::Prefetch { window: 3 }.overlap_fraction();
        let a4 = AllocationPolicy::Prefetch { window: 4 }.overlap_fraction();
        assert!(a2 > 0.3 && a2 < 0.6);
        assert!(a3 > a2);
        assert!((a4 - a3).abs() < 1e-9, "a >= 3 saturates (Fig. 24)");
        assert!(AllocationPolicy::Static.overlap_fraction() < a2);
    }

    #[test]
    fn fig7_names() {
        assert_eq!(
            Scheme::fig7_hetero(RandomArrayKind::Vtm, true).name,
            "hVTM+p"
        );
        assert_eq!(
            Scheme::fig7_hetero(RandomArrayKind::SheMram, false).name,
            "hMRAM"
        );
    }

    #[test]
    fn pipe_and_smart_share_hardware() {
        assert_eq!(Scheme::pipe().spm, Scheme::smart().spm);
        assert_ne!(Scheme::pipe().policy, Scheme::smart().policy);
    }
}
