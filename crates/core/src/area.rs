//! Chip area accounting: the Fig. 17 SuperNPU-vs-SMART breakdown.
//!
//! Categories follow the figure's stack: matrix unit, SHIFT arrays, array
//! (RANDOM cells), dec (decoders), H-Tree, and other (converters, muxes,
//! peripheral logic).

use crate::scheme::{PureShiftSpm, SpmOrganization};
use smart_cryomem::array::RandomArray;
use smart_sfq::jj::JosephsonJunction;
use smart_spm::hetero::HeterogeneousSpm;
use smart_systolic::mapping::ArrayShape;
use smart_units::Area;

/// JJs per bit-serial SFQ processing element (MAC + accumulator + pipeline
/// DFFs), following SuperNPU's gate-level-pipelined PE design.
const JJS_PER_PE: f64 = 8_000.0;

/// Area of the SFQ systolic matrix unit.
#[must_use]
pub fn matrix_unit_area(shape: ArrayShape) -> Area {
    let jj = JosephsonJunction::scaled_28nm();
    // Each JJ with bias/wiring occupies ~26 F^2 in logic.
    jj.area() * (shape.pes() as f64 * JJS_PER_PE * 26.0 / 1.0)
}

/// One bar of the Fig. 17 stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipArea {
    /// Matrix unit.
    pub matrix: Area,
    /// SHIFT arrays (SPM or staging).
    pub shift: Area,
    /// RANDOM array storage cells.
    pub array: Area,
    /// Decoders.
    pub decoder: Area,
    /// H-Tree interconnect.
    pub htree: Area,
    /// Everything else.
    pub other: Area,
}

impl ChipArea {
    /// Total chip area.
    #[must_use]
    pub fn total(&self) -> Area {
        self.matrix + self.shift + self.array + self.decoder + self.htree + self.other
    }

    /// Computes the breakdown for an SPM organization on the given array
    /// shape.
    #[must_use]
    pub fn of(spm: &SpmOrganization, shape: ArrayShape) -> Self {
        let matrix = matrix_unit_area(shape);
        match spm {
            SpmOrganization::Ideal => Self {
                matrix,
                shift: Area::ZERO,
                array: Area::ZERO,
                decoder: Area::ZERO,
                htree: Area::ZERO,
                other: Area::ZERO,
            },
            SpmOrganization::PureShift(s) => Self::pure_shift(matrix, s),
            SpmOrganization::PureRandom(a) => Self::with_random(matrix, Area::ZERO, a),
            SpmOrganization::Heterogeneous(h) => Self::hetero(matrix, h),
        }
    }

    fn pure_shift(matrix: Area, s: &PureShiftSpm) -> Self {
        Self {
            matrix,
            shift: s.input.area() + s.output.area() + s.weight.area(),
            array: Area::ZERO,
            decoder: Area::ZERO,
            htree: Area::ZERO,
            other: Area::ZERO,
        }
    }

    fn with_random(matrix: Area, shift: Area, a: &RandomArray) -> Self {
        Self {
            matrix,
            shift,
            array: a.area.cells,
            decoder: a.area.decoder,
            htree: a.area.htree,
            other: a.area.other,
        }
    }

    fn hetero(matrix: Area, h: &HeterogeneousSpm) -> Self {
        let shift = h.input_shift.area() + h.output_shift.area() + h.weight_shift.area();
        Self::with_random(matrix, shift, &h.random)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;

    fn supernpu_area() -> ChipArea {
        let s = Scheme::supernpu();
        ChipArea::of(&s.spm, s.config.shape)
    }

    fn smart_area() -> ChipArea {
        let s = Scheme::smart();
        ChipArea::of(&s.spm, s.config.shape)
    }

    #[test]
    fn supernpu_area_dominated_by_shift() {
        let a = supernpu_area();
        assert!(a.shift.as_si() > 0.5 * a.total().as_si());
        assert!(a.array.is_zero());
    }

    #[test]
    fn smart_total_close_to_supernpu() {
        // Fig. 17: SMART keeps roughly the same area budget (paper: +3%;
        // our component models land a little below because the SFQ H-Tree
        // and converters are cheaper than the paper's repeater-heavy
        // floorplan). We accept -30%..+15%.
        let ratio = smart_area().total().as_si() / supernpu_area().total().as_si();
        assert!(
            (0.7..=1.15).contains(&ratio),
            "SMART/SuperNPU area = {ratio:.3}"
        );
    }

    #[test]
    fn smart_has_htree_and_smaller_shift() {
        let smart = smart_area();
        let sn = supernpu_area();
        assert!(smart.htree.as_si() > 0.0);
        assert!(smart.shift.as_si() < 0.01 * sn.shift.as_si());
        assert!(smart.array.as_si() > 0.0);
    }

    #[test]
    fn matrix_unit_is_minor_share() {
        let a = supernpu_area();
        let share = a.matrix.as_si() / a.total().as_si();
        assert!(share > 0.02 && share < 0.5, "matrix share = {share:.2}");
    }

    #[test]
    fn chip_areas_are_tens_of_mm2() {
        // Sanity: a 28 nm-scaled SFQ accelerator chip is tens of mm^2.
        let t = supernpu_area().total().as_mm2();
        assert!(t > 10.0 && t < 500.0, "total = {t} mm^2");
    }
}
