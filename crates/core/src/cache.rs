//! [`EvalCache`]: a thread-safe memoization layer over [`evaluate`].
//!
//! The paper's figures re-evaluate the same points constantly — every
//! speedup figure divides by the same TPU/SuperNPU baselines, the
//! sensitivity sweeps re-price SuperNPU at every sweep point, and the
//! prefetch sweep's `a = 3` point *is* the SMART scheme of Figs. 18-21.
//! Keying on the full `(Scheme, ModelId, batch)` value (not the display
//! name: sweeps reuse the name "SMART" across physically different SPMs)
//! makes those recomputations a hash lookup, and the `Mutex`-guarded map
//! makes one cache shareable across the experiment runner's worker
//! threads.

use crate::eval::{evaluate, InferenceReport};
use crate::scheme::Scheme;
use smart_systolic::models::ModelId;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Hit/miss/size counters of an [`EvalCache`] (for reporting and tuning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the map.
    pub hits: u64,
    /// Lookups that ran the evaluator.
    pub misses: u64,
    /// Distinct `(Scheme, ModelId, batch)` points stored.
    pub entries: usize,
}

/// A memoized, thread-safe front end to [`evaluate`].
///
/// Reports are returned as [`Arc`]s so concurrent experiments share one
/// allocation per evaluated point. Under a race, two threads may evaluate
/// the same point concurrently; the first insertion wins and the results
/// are identical (the evaluator is deterministic), so the only cost is the
/// duplicated work of that one point. The lock is never held while
/// evaluating.
#[derive(Debug, Default)]
pub struct EvalCache {
    map: Mutex<HashMap<(Scheme, ModelId, u32), Arc<InferenceReport>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EvalCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The memoized equivalent of
    /// `evaluate(scheme, &model.build(), batch)`.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero (like [`evaluate`]), or if the map mutex
    /// was poisoned by a panicking evaluation on another thread.
    #[must_use]
    pub fn report(&self, scheme: &Scheme, model: ModelId, batch: u32) -> Arc<InferenceReport> {
        // One key clone per lookup, reused on the miss path. (A borrowed
        // probe would need `(Scheme, ModelId, u32)` to have a borrowed
        // form; a Scheme clone is a few dozen Copy fields, far below the
        // cost of the evaluation it saves.)
        let key = (scheme.clone(), model, batch);
        if let Some(found) = self.map.lock().expect("eval cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let report = Arc::new(evaluate(scheme, &model.build(), batch));
        Arc::clone(
            self.map
                .lock()
                .expect("eval cache poisoned")
                .entry(key)
                .or_insert(report),
        )
    }

    /// Current counters.
    ///
    /// # Panics
    ///
    /// Panics if the map mutex was poisoned.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().expect("eval cache poisoned").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_equals_uncached() {
        let cache = EvalCache::new();
        let scheme = Scheme::smart();
        let direct = evaluate(&scheme, &ModelId::AlexNet.build(), 1);
        let cached = cache.report(&scheme, ModelId::AlexNet, 1);
        assert_eq!(*cached, direct);
    }

    #[test]
    fn second_lookup_hits() {
        let cache = EvalCache::new();
        let scheme = Scheme::supernpu();
        let a = cache.report(&scheme, ModelId::AlexNet, 1);
        let b = cache.report(&scheme, ModelId::AlexNet, 1);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the Arc");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_hardware_with_same_name_does_not_collide() {
        // Sweeps reuse the display name "SMART" across different SPMs; the
        // cache must key on the full scheme value.
        let cache = EvalCache::new();
        let smart = Scheme::smart();
        let mut tweaked = smart.clone();
        tweaked.policy = crate::scheme::AllocationPolicy::Prefetch { window: 1 };
        assert_eq!(smart.name, tweaked.name);
        let a = cache.report(&smart, ModelId::AlexNet, 1);
        let b = cache.report(&tweaked, ModelId::AlexNet, 1);
        assert_ne!(a.total_time, b.total_time);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn batch_is_part_of_the_key() {
        let cache = EvalCache::new();
        let scheme = Scheme::supernpu();
        let single = cache.report(&scheme, ModelId::AlexNet, 1);
        let batch = cache.report(&scheme, ModelId::AlexNet, 30);
        assert_ne!(single.batch, batch.batch);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn shared_across_scoped_threads() {
        let cache = EvalCache::new();
        let scheme = Scheme::pipe();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let r = cache.report(&scheme, ModelId::AlexNet, 1);
                    assert!(r.total_time.as_s() > 0.0);
                });
            }
        });
        // All four threads resolved to one stored entry (a benign race may
        // cost duplicate evaluations but never duplicate entries).
        assert_eq!(cache.stats().entries, 1);
    }
}
