//! [`EvalCache`]: a thread-safe, single-flight memoization layer over
//! [`evaluate`], with a persistable warm tier.
//!
//! The paper's figures re-evaluate the same points constantly — every
//! speedup figure divides by the same TPU/SuperNPU baselines, the
//! sensitivity sweeps re-price SuperNPU at every sweep point, and the
//! prefetch sweep's `a = 3` point *is* the SMART scheme of Figs. 18-21.
//! Keying on the full `(Scheme, ModelId, batch)` value (not the display
//! name: sweeps reuse the name "SMART" across physically different SPMs)
//! makes those recomputations a hash lookup, and the `Mutex`-guarded map
//! makes one cache shareable across the experiment runner's worker
//! threads.
//!
//! Concurrent misses on one key are **single-flight**: each key maps to an
//! [`OnceLock`] cell, so the first thread to claim it runs the evaluator
//! while the rest block on the cell and share the result — the old
//! drop-the-lock-then-insert window that could evaluate a point twice is
//! gone (`concurrent_misses_evaluate_once` pins this).
//!
//! Behind the exact-key map sits a **warm store**: content-hash-keyed
//! reports persisted by a previous process ([`save`]/[`load`], through the
//! [`smart_units::codec`] container). A warm entry is consulted on a miss
//! before the evaluator runs, values round-trip bit-exactly (IEEE bit
//! patterns), and a missing/corrupt/version-mismatched file simply loads
//! zero entries — the run starts cold, never wrong.

use crate::eval::{evaluate, EnergyReport, InferenceReport, LayerReport};
use crate::scheme::Scheme;
use smart_systolic::models::ModelId;
use smart_units::codec::{content_hash, ByteReader, ByteWriter, Store};
use smart_units::sync::lock;
use smart_units::{Energy, Time};
use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

type Key = (Scheme, ModelId, u32);
type Slot = Arc<OnceLock<Arc<InferenceReport>>>;

/// Hit/miss/size counters of an [`EvalCache`] (for reporting and tuning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from a ready entry (an exact-map or warm-store
    /// result already stored when the lookup arrived).
    pub hits: u64,
    /// Lookups that ran the evaluator.
    pub misses: u64,
    /// Lookups that blocked on another thread's in-flight evaluation of
    /// the same key and shared its result. The hit/coalesced split
    /// depends on thread timing; `hits + coalesced` is the deterministic
    /// count of lookups served without running the evaluator.
    pub coalesced: u64,
    /// Distinct `(Scheme, ModelId, batch)` points stored.
    pub entries: usize,
}

/// A memoized, thread-safe, single-flight front end to [`evaluate`].
///
/// Reports are returned as [`Arc`]s so concurrent experiments share one
/// allocation per evaluated point. The lock is never held while
/// evaluating; concurrent misses of one key block on the point's
/// [`OnceLock`] cell instead of evaluating twice.
#[derive(Debug, Default)]
pub struct EvalCache {
    // lint:allow(determinism, exact-key memo map is lookup-only during a run; serialization iterates the ordered warm tier instead)
    map: Mutex<HashMap<Key, Slot>>,
    /// Content-hash-keyed reports reloaded from a previous process;
    /// consulted on a miss, never written during a run. Ordered, so
    /// serialization is deterministic without a separate sort.
    warm: Mutex<BTreeMap<u128, Arc<InferenceReport>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

impl EvalCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The memoized equivalent of
    /// `evaluate(scheme, &model.build(), batch)`.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero (like [`evaluate`]). A panicking
    /// evaluation on another thread costs at most its own memo entry —
    /// the poison-proof locks keep every other lookup alive.
    #[must_use]
    pub fn report(&self, scheme: &Scheme, model: ModelId, batch: u32) -> Arc<InferenceReport> {
        // One key clone per lookup, reused on the miss path. (A borrowed
        // probe would need `(Scheme, ModelId, u32)` to have a borrowed
        // form; a Scheme clone is a few dozen Copy fields, far below the
        // cost of the evaluation it saves.)
        let key = (scheme.clone(), model, batch);
        let cell = {
            let mut map = lock(&self.map);
            Arc::clone(map.entry(key).or_default())
        };
        // Probe before entering the single-flight cell: a ready result is
        // a plain hit; a lookup that reaches `get_or_init` without
        // running the closure waited on another thread's in-flight
        // evaluation and is counted separately as coalesced.
        if let Some(found) = cell.get() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
        let mut ran = false;
        let report = Arc::clone(cell.get_or_init(|| {
            ran = true;
            let probe = (scheme.clone(), model, batch);
            if let Some(found) = lock(&self.warm).get(&content_hash(&probe)) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(found);
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
            Arc::new(evaluate(scheme, &model.build(), batch))
        }));
        if !ran {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
        }
        report
    }

    /// Installs `entries` (content-hash keyed, from a persisted store) as
    /// the warm tier; returns how many are now loaded.
    fn load_warm_entries(&self, entries: BTreeMap<u128, Arc<InferenceReport>>) -> usize {
        let mut warm = lock(&self.warm);
        *warm = entries;
        warm.len()
    }

    /// Every persistable entry: the warm tier plus all ready cells,
    /// ordered by content hash (deterministic store bytes).
    fn snapshot_entries(&self) -> BTreeMap<u128, Arc<InferenceReport>> {
        let mut out = lock(&self.warm).clone();
        let map = lock(&self.map);
        for (key, cell) in map.iter() {
            if let Some(report) = cell.get() {
                out.insert(content_hash(key), Arc::clone(report));
            }
        }
        out
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            entries: lock(&self.map).len(),
        }
    }
}

// --- Persistence ------------------------------------------------------

/// Store tag of the eval-cache file.
const TAG: &str = "smart-eval-cache";

/// Bump when the serialized report layout changes (older files then fall
/// back to cold).
const VERSION: u32 = 1;

/// File name of the eval store inside a `--cache-dir`.
pub const FILE_NAME: &str = "eval-cache.bin";

/// Interns a scheme name loaded from a store (reports carry
/// `&'static str` names; each distinct name leaks once per process).
fn intern(name: String) -> &'static str {
    static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
    let mut names = lock(NAMES.get_or_init(|| Mutex::new(Vec::new())));
    if let Some(found) = names.iter().find(|n| **n == name) {
        return found;
    }
    let leaked: &'static str = Box::leak(name.into_boxed_str());
    names.push(leaked);
    leaked
}

fn write_report(w: &mut ByteWriter, report: &InferenceReport) {
    w.str(report.scheme);
    w.str(&report.model);
    w.u32(report.batch);
    w.u64(report.layers.len() as u64);
    for l in &report.layers {
        w.str(&l.name);
        w.f64(l.compute.as_si());
        w.f64(l.stream_stall.as_si());
        w.f64(l.exposed_mem.as_si());
        w.f64(l.total.as_si());
        w.u64(l.macs);
        w.f64(l.spm_energy.as_si());
    }
    w.f64(report.total_time.as_si());
    w.u64(report.macs);
    w.f64(report.energy.matrix.as_si());
    w.f64(report.energy.spm_dynamic.as_si());
    w.f64(report.energy.spm_static.as_si());
    w.f64(report.energy.total.as_si());
}

fn read_report(r: &mut ByteReader<'_>) -> Option<InferenceReport> {
    let scheme = intern(r.str()?);
    let model = r.str()?;
    let batch = r.u32()?;
    let n = usize::try_from(r.u64()?).ok()?;
    let mut layers = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        layers.push(LayerReport {
            name: r.str()?,
            compute: Time::from_si(r.f64()?),
            stream_stall: Time::from_si(r.f64()?),
            exposed_mem: Time::from_si(r.f64()?),
            total: Time::from_si(r.f64()?),
            macs: r.u64()?,
            spm_energy: Energy::from_si(r.f64()?),
        });
    }
    Some(InferenceReport {
        scheme,
        model,
        batch,
        layers,
        total_time: Time::from_si(r.f64()?),
        macs: r.u64()?,
        energy: EnergyReport {
            matrix: Energy::from_si(r.f64()?),
            spm_dynamic: Energy::from_si(r.f64()?),
            spm_static: Energy::from_si(r.f64()?),
            total: Energy::from_si(r.f64()?),
        },
    })
}

/// Serializes every persistable entry of `cache` into a store payload.
#[must_use]
pub fn to_bytes(cache: &EvalCache) -> Vec<u8> {
    let entries = cache.snapshot_entries();
    let mut w = ByteWriter::new();
    w.u64(entries.len() as u64);
    // BTreeMap iteration is key-ordered: deterministic file bytes.
    for (key, report) in &entries {
        w.u128(*key);
        write_report(&mut w, report);
    }
    w.into_bytes()
}

fn from_bytes(payload: &[u8]) -> Option<BTreeMap<u128, Arc<InferenceReport>>> {
    let mut r = ByteReader::new(payload);
    let n = usize::try_from(r.u64()?).ok()?;
    let mut entries = BTreeMap::new();
    for _ in 0..n {
        let key = r.u128()?;
        entries.insert(key, Arc::new(read_report(&mut r)?));
    }
    if !r.is_empty() {
        return None;
    }
    Some(entries)
}

/// Saves `cache` to `dir/`[`FILE_NAME`] (atomically).
///
/// # Errors
///
/// [`smart_units::SmartError::Store`] on any underlying filesystem
/// failure.
pub fn save(cache: &EvalCache, dir: &Path) -> smart_units::Result<()> {
    Store::write_file(&dir.join(FILE_NAME), TAG, VERSION, to_bytes(cache))?;
    Ok(())
}

/// Loads `dir/`[`FILE_NAME`] into `cache`'s warm tier; returns how many
/// entries are now warm. A missing, corrupted, truncated, or
/// version-mismatched file loads zero entries — the run starts cold.
pub fn load(cache: &EvalCache, dir: &Path) -> usize {
    let Some(payload) = Store::read_file(&dir.join(FILE_NAME), TAG, VERSION) else {
        return 0;
    };
    let Some(entries) = from_bytes(&payload) else {
        return 0;
    };
    cache.load_warm_entries(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_equals_uncached() {
        let cache = EvalCache::new();
        let scheme = Scheme::smart();
        let direct = evaluate(&scheme, &ModelId::AlexNet.build(), 1);
        let cached = cache.report(&scheme, ModelId::AlexNet, 1);
        assert_eq!(*cached, direct);
    }

    #[test]
    fn second_lookup_hits() {
        let cache = EvalCache::new();
        let scheme = Scheme::supernpu();
        let a = cache.report(&scheme, ModelId::AlexNet, 1);
        let b = cache.report(&scheme, ModelId::AlexNet, 1);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the Arc");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_hardware_with_same_name_does_not_collide() {
        // Sweeps reuse the display name "SMART" across different SPMs; the
        // cache must key on the full scheme value.
        let cache = EvalCache::new();
        let smart = Scheme::smart();
        let mut tweaked = smart.clone();
        tweaked.policy = crate::scheme::AllocationPolicy::Prefetch { window: 1 };
        assert_eq!(smart.name, tweaked.name);
        let a = cache.report(&smart, ModelId::AlexNet, 1);
        let b = cache.report(&tweaked, ModelId::AlexNet, 1);
        assert_ne!(a.total_time, b.total_time);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn batch_is_part_of_the_key() {
        let cache = EvalCache::new();
        let scheme = Scheme::supernpu();
        let single = cache.report(&scheme, ModelId::AlexNet, 1);
        let batch = cache.report(&scheme, ModelId::AlexNet, 30);
        assert_ne!(single.batch, batch.batch);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn concurrent_misses_evaluate_once() {
        // Single-flight: four threads racing on one cold key run the
        // evaluator exactly once and share the stored Arc.
        let cache = EvalCache::new();
        let scheme = Scheme::pipe();
        let reports: Vec<Arc<InferenceReport>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| cache.report(&scheme, ModelId::AlexNet, 1)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("joins"))
                .collect()
        });
        for r in &reports {
            assert!(r.total_time.as_s() > 0.0);
            assert!(Arc::ptr_eq(&reports[0], r));
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "exactly one evaluation ran: {stats:?}");
        assert_eq!(
            stats.hits + stats.coalesced,
            3,
            "the other three lookups were served either from the ready \
             cell or by waiting on the in-flight one: {stats:?}"
        );
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn waiter_on_an_in_flight_evaluation_counts_as_coalesced() {
        // Pin the hit/coalesced distinction: a lookup that arrives while
        // another thread is *inside* the evaluator must count as
        // coalesced, not as a plain hit. The barrier guarantees the owner
        // is inside `get_or_init` before the waiter starts, and the sleep
        // keeps it there while the waiter's probe misses.
        let cache = EvalCache::new();
        let scheme = Scheme::smart();
        let key = (scheme.clone(), ModelId::AlexNet, 1u32);
        let cell = {
            let mut map = lock(&cache.map);
            Arc::clone(map.entry(key).or_default())
        };
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|s| {
            s.spawn(|| {
                cell.get_or_init(|| {
                    barrier.wait();
                    std::thread::sleep(std::time::Duration::from_millis(100));
                    Arc::new(evaluate(&scheme, &ModelId::AlexNet.build(), 1))
                });
            });
            barrier.wait();
            let report = cache.report(&scheme, ModelId::AlexNet, 1);
            assert!(report.total_time.as_s() > 0.0);
        });
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.coalesced),
            (0, 0, 1),
            "{stats:?}"
        );
    }

    #[test]
    fn persisted_cache_round_trips_bit_exactly() {
        let dir = std::env::temp_dir().join(format!("smart-eval-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let cold = EvalCache::new();
        let scheme = Scheme::smart();
        let direct = cold.report(&scheme, ModelId::AlexNet, 1);
        save(&cold, &dir).expect("saves");

        let warm = EvalCache::new();
        assert_eq!(load(&warm, &dir), 1);
        let reloaded = warm.report(&scheme, ModelId::AlexNet, 1);
        assert_eq!(*reloaded, *direct, "warm result identical to cold");
        assert_eq!(warm.stats().misses, 0, "served without evaluating");

        // Corruption falls back to cold.
        let path = dir.join(FILE_NAME);
        let mut bad = std::fs::read(&path).expect("reads");
        let mid = bad.len() / 2;
        bad[mid] ^= 0x08;
        std::fs::write(&path, &bad).expect("writes");
        assert_eq!(load(&EvalCache::new(), &dir), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_store_never_panics_and_loads_cold() {
        // The PR 6 contract, pinned byte-by-byte: truncations at every
        // prefix length and a bit flip at every eighth offset load zero
        // entries — no panic, no partial state.
        let dir = std::env::temp_dir().join(format!("smart-eval-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let cold = EvalCache::new();
        let _ = cold.report(&Scheme::smart(), ModelId::AlexNet, 1);
        save(&cold, &dir).expect("saves");
        let path = dir.join(FILE_NAME);
        let good = std::fs::read(&path).expect("reads");
        for cut in [0, 1, good.len() / 3, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).expect("writes");
            assert_eq!(load(&EvalCache::new(), &dir), 0, "truncated at {cut}");
        }
        for i in (0..good.len()).step_by(8) {
            let mut bad = good.clone();
            bad[i] ^= 0x20;
            std::fs::write(&path, &bad).expect("writes");
            assert_eq!(load(&EvalCache::new(), &dir), 0, "corrupted at {i}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_to_unwritable_dir_is_a_typed_error() {
        let err = save(
            &EvalCache::new(),
            Path::new("/proc/definitely/not/writable"),
        )
        .expect_err("must fail");
        assert!(
            matches!(err, smart_units::SmartError::Store { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn panicking_evaluation_poisons_nothing_else() {
        // A worker that panics mid-evaluation (simulated by panicking
        // while the map lock is held) must not take the cache down with
        // it: later lookups on other keys still work.
        let cache = EvalCache::new();
        let poisoned = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = cache.map.lock();
                panic!("die holding the cache lock");
            })
            .join()
        });
        assert!(poisoned.is_err());
        let report = cache.report(&Scheme::smart(), ModelId::AlexNet, 1);
        assert!(report.total_time.as_s() > 0.0);
        assert_eq!(cache.stats().entries, 1);
    }
}
