//! Accelerator configurations (the paper's Table 4).
//!
//! | Name     | Clock    | Peak        | PE array  | SPM                            |
//! |----------|----------|-------------|-----------|--------------------------------|
//! | TPU      | 0.7 GHz  | 45 TMAC/s   | 256 x 256 | 24 MB in/w/out, 4 MB PSum      |
//! | SuperNPU | 52.6 GHz | 842 TMAC/s  | 64 x 256  | 24 MB in (64b), 24 MB out/PSum (256b), 128 KB w |
//! | SMART    | 52.6 GHz | 842 TMAC/s  | 64 x 256  | 3 x 32 KB SHIFT (256b) + 28 MB CMOS-SFQ (256b)  |
//!
//! All three share 300 GB/s of DRAM bandwidth; the 4 K parts pay a 400x
//! cooling overhead on every joule ([Holmes 2013], paper Sec. 5).

use smart_systolic::mapping::ArrayShape;
use smart_units::{Frequency, Power};

/// Cooling overhead at 4 K: 400 W of wall power per watt dissipated.
pub const COOLING_FACTOR: f64 = 400.0;

/// Shared DRAM bandwidth (bytes/s).
pub const DRAM_BANDWIDTH: f64 = 300.0e9;

/// An accelerator configuration row of Table 4.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorConfig {
    // NOTE: `Eq`/`Hash` are implemented manually below because of the raw
    // `mac_energy_j: f64` field; keep them in sync when adding fields.
    /// Display name.
    pub name: &'static str,
    /// Clock frequency.
    pub frequency: Frequency,
    /// PE array shape.
    pub shape: ArrayShape,
    /// Whether the accelerator operates at 4 K (pays cooling).
    pub cryogenic: bool,
    /// Matrix-unit energy per MAC (joules). For the room-temperature TPU
    /// this is folded into [`AcceleratorConfig::average_power`] instead.
    pub mac_energy_j: f64,
    /// Average chip power for fixed-power accelerators (the TPU's 40 W).
    pub average_power: Option<Power>,
}

impl AcceleratorConfig {
    /// The CMOS TPU baseline: 0.7 GHz, 256x256, 40 W average power.
    #[must_use]
    pub fn tpu() -> Self {
        Self {
            name: "TPU",
            frequency: Frequency::from_ghz(0.7),
            shape: ArrayShape::new(256, 256),
            cryogenic: false,
            mac_energy_j: 0.0,
            average_power: Some(Power::from_w(40.0)),
        }
    }

    /// SuperNPU: 52.6 GHz, 64x256, ERSFQ matrix unit.
    ///
    /// The per-MAC energy is calibrated so the matrix unit accounts for
    /// ~60% of SuperNPU's published 1.9 W at peak throughput:
    /// `0.6 * 1.9 W / 842 TMAC/s ~= 1.35 fJ/MAC`.
    #[must_use]
    pub fn supernpu() -> Self {
        Self {
            name: "SuperNPU",
            frequency: Frequency::from_ghz(52.6),
            shape: ArrayShape::new(64, 256),
            cryogenic: true,
            mac_energy_j: 1.35e-15,
            average_power: None,
        }
    }

    /// SMART: same matrix unit and clock as SuperNPU, different SPM.
    #[must_use]
    pub fn smart() -> Self {
        Self {
            name: "SMART",
            ..Self::supernpu()
        }
    }

    /// Peak throughput in TMAC/s (`rows * cols * f`).
    #[must_use]
    pub fn peak_tmacs(&self) -> f64 {
        self.shape.pes() as f64 * self.frequency.as_si() / 1e12
    }
}

/// Configurations are evaluation-cache key components (see
/// [`crate::cache::EvalCache`]). A NaN `mac_energy_j` would break
/// reflexivity; NaN is never a meaningful calibration value here.
impl Eq for AcceleratorConfig {}

impl std::hash::Hash for AcceleratorConfig {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.name.hash(state);
        self.frequency.hash(state);
        self.shape.hash(state);
        self.cryogenic.hash(state);
        // Normalize -0.0 so Hash agrees with the derived PartialEq.
        (self.mac_energy_j + 0.0).to_bits().hash(state);
        self.average_power.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tpu_peak_45_tmacs() {
        // Table 4: "45 TMAC/s peak perf."
        let t = AcceleratorConfig::tpu();
        assert!((t.peak_tmacs() - 45.9).abs() < 1.0, "{}", t.peak_tmacs());
    }

    #[test]
    fn supernpu_peak_842_tmacs() {
        let s = AcceleratorConfig::supernpu();
        assert!((s.peak_tmacs() - 862.0).abs() < 25.0, "{}", s.peak_tmacs());
    }

    #[test]
    fn frequency_ratio_is_75x() {
        // Sec. 6.1: "the operating frequency of SuperNPU is 75x higher than
        // that of TPU".
        let ratio = AcceleratorConfig::supernpu().frequency.as_si()
            / AcceleratorConfig::tpu().frequency.as_si();
        assert!((ratio - 75.1).abs() < 0.5);
    }

    #[test]
    fn smart_shares_supernpu_matrix() {
        let a = AcceleratorConfig::smart();
        let b = AcceleratorConfig::supernpu();
        assert_eq!(a.frequency, b.frequency);
        assert_eq!(a.shape, b.shape);
        assert_eq!(a.mac_energy_j, b.mac_energy_j);
    }

    #[test]
    fn only_tpu_has_fixed_power() {
        assert!(AcceleratorConfig::tpu().average_power.is_some());
        assert!(AcceleratorConfig::supernpu().average_power.is_none());
        assert!(AcceleratorConfig::tpu().average_power.unwrap().as_w() > 39.0);
    }

    #[test]
    fn cryogenic_flags() {
        assert!(!AcceleratorConfig::tpu().cryogenic);
        assert!(AcceleratorConfig::supernpu().cryogenic);
        assert!(AcceleratorConfig::smart().cryogenic);
    }
}
