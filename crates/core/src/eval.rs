//! End-to-end inference evaluation: per-layer latency and energy of a
//! scheme running a CNN model (the engine behind Figs. 5, 7, 18-21).
//!
//! The performance model (see DESIGN.md Sec. 3):
//!
//! * compute time comes from the weight-stationary fold mapping;
//! * streaming demands are served by the SPM arrays at their bank
//!   parallelism — a stall appears when an array cannot keep pace;
//! * SHIFT arrays additionally pay *rotation* at every fold boundary
//!   (scaled by [`SHIFT_SCAN_FACTOR`], the im2col re-scan multiplier);
//! * heterogeneous SPMs move loads and PSum spills through the RANDOM
//!   array, hidden behind compute according to the allocation policy
//!   (static double-buffering vs ILP prefetch);
//! * weights are assumed SPM-resident per layer (the paper sizes SPMs "to
//!   avoid thrashing traffic to DRAM"), so DRAM never appears on the
//!   critical path.

use crate::config::{AcceleratorConfig, COOLING_FACTOR};
use crate::scheme::{Scheme, SpmOrganization};
use smart_spm::service::{AccessCost, SpmService};
use smart_systolic::layer::CnnModel;
use smart_systolic::mapping::LayerMapping;
use smart_systolic::trace::{DataClass, LayerDemand};
use smart_units::{Energy, SmartError, Time};

/// Multiplier on SHIFT realignment distance: each fold boundary re-scans
/// the live region several times because overlapping im2col windows revisit
/// the same rows (calibrated so SuperNPU lands near its published 16% / 40%
/// single/batch utilization).
pub const SHIFT_SCAN_FACTOR: f64 = 6.0;

/// Fraction of PSum spill traffic that actually leaves the accelerator's
/// accumulator registers for the SPM (the rest accumulates in place).
pub const PSUM_SPILL_FACTOR: f64 = 0.25;

/// Per-layer evaluation result.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Layer name.
    pub name: String,
    /// Matrix-unit busy time.
    pub compute: Time,
    /// Stall waiting for SPM streaming bandwidth.
    pub stream_stall: Time,
    /// Exposed memory time (realignments, loads, spills) after overlap.
    pub exposed_mem: Time,
    /// Total layer latency.
    pub total: Time,
    /// MAC operations.
    pub macs: u64,
    /// SPM dynamic energy.
    pub spm_energy: Energy,
}

/// Whole-inference energy decomposition (Figs. 20-21 stacks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Matrix-unit dynamic energy.
    pub matrix: Energy,
    /// SPM dynamic energy.
    pub spm_dynamic: Energy,
    /// SPM static (leakage) energy.
    pub spm_static: Energy,
    /// Total including the 400x cooling overhead where applicable.
    pub total: Energy,
}

/// Whole-inference evaluation result.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceReport {
    /// Scheme name.
    pub scheme: &'static str,
    /// Model name.
    pub model: String,
    /// Batch size evaluated.
    pub batch: u32,
    /// Per-layer breakdown.
    pub layers: Vec<LayerReport>,
    /// End-to-end latency for the whole batch.
    pub total_time: Time,
    /// Total MACs for the whole batch.
    pub macs: u64,
    /// Energy decomposition.
    pub energy: EnergyReport,
}

impl InferenceReport {
    /// Achieved throughput in TMAC/s.
    #[must_use]
    pub fn throughput_tmacs(&self) -> f64 {
        self.macs as f64 / self.total_time.as_s() / 1e12
    }

    /// Throughput normalized to a reference report (the figures' "norm.
    /// perf."), or a typed error when the ratio is not a finite positive
    /// number (zero-time reference, zero-MAC reference, non-finite
    /// inputs).
    ///
    /// # Errors
    ///
    /// [`SmartError::InvalidInput`] when the reference throughput is zero
    /// or non-finite, or the resulting ratio is non-finite.
    pub fn try_speedup_over(&self, reference: &Self) -> Result<f64, SmartError> {
        let denominator = reference.throughput_tmacs();
        if !denominator.is_finite() || denominator <= 0.0 {
            return Err(SmartError::invalid_input(format!(
                "reference report {}/{} has zero or non-finite throughput ({denominator} TMAC/s)",
                reference.scheme, reference.model
            )));
        }
        let ratio = self.throughput_tmacs() / denominator;
        if !ratio.is_finite() {
            return Err(SmartError::invalid_input(format!(
                "speedup of {}/{} over {}/{} is non-finite",
                self.scheme, self.model, reference.scheme, reference.model
            )));
        }
        Ok(ratio)
    }

    /// Throughput normalized to a reference report (the figures' "norm.
    /// perf.").
    ///
    /// Never returns NaN: a degenerate comparison (zero-time or zero-MAC
    /// reference) saturates to [`f64::INFINITY`] — deliberately *not* a
    /// finite stand-in, so the experiment runner's non-finite check
    /// (`all_experiments --check`) still flags the broken baseline instead
    /// of letting a huge finite number pass as a plausible speedup. Use
    /// [`InferenceReport::try_speedup_over`] for a typed error instead.
    #[must_use]
    pub fn speedup_over(&self, reference: &Self) -> f64 {
        self.try_speedup_over(reference).unwrap_or(f64::INFINITY)
    }

    /// Energy per inferred image, or a typed error for a degenerate
    /// report.
    ///
    /// # Errors
    ///
    /// [`SmartError::InvalidInput`] when the report's batch is zero (only
    /// possible for hand-constructed reports; [`evaluate`] rejects a zero
    /// batch) or its total energy is non-finite.
    pub fn try_energy_per_image(&self) -> Result<Energy, SmartError> {
        if self.batch == 0 {
            return Err(SmartError::invalid_input(format!(
                "report {}/{} has batch 0",
                self.scheme, self.model
            )));
        }
        let per_image = self.energy.total / f64::from(self.batch);
        if !per_image.is_finite() {
            return Err(SmartError::invalid_input(format!(
                "energy per image of {}/{} is non-finite",
                self.scheme, self.model
            )));
        }
        Ok(per_image)
    }

    /// Energy per inferred image.
    ///
    /// Never divides by zero: a (hand-constructed) zero batch is treated
    /// as one image. Use [`InferenceReport::try_energy_per_image`] to
    /// detect that case instead.
    #[must_use]
    pub fn energy_per_image(&self) -> Energy {
        self.energy.total / f64::from(self.batch.max(1))
    }
}

/// Evaluates one scheme on one model at one batch size.
///
/// # Panics
///
/// Panics if `batch` is zero.
#[must_use]
pub fn evaluate(scheme: &Scheme, model: &CnnModel, batch: u32) -> InferenceReport {
    assert!(batch > 0, "batch must be positive");
    let config = &scheme.config;
    let overlap = scheme.policy.overlap_fraction();

    let mut layers = Vec::with_capacity(model.layers.len());
    let mut total_time = Time::ZERO;
    let mut total_macs = 0u64;
    let mut spm_dynamic = Energy::ZERO;

    for layer in &model.layers {
        let mapping = LayerMapping::map(layer, config.shape, batch);
        let demand = LayerDemand::derive(layer, &mapping);
        // Realignment distances are per-image (the data alignment unit
        // restarts each image's window), so derive them at batch 1.
        let single = LayerMapping::map(layer, config.shape, 1);
        let single_demand = LayerDemand::derive(layer, &single);

        let compute = mapping.compute_time(config.frequency);
        let (stream_stall, mem_serial, energy) = match &scheme.spm {
            SpmOrganization::Ideal => (Time::ZERO, Time::ZERO, Energy::ZERO),
            SpmOrganization::PureShift(spm) => {
                serve_pure_shift(spm, &demand, &single_demand, compute, batch)
            }
            SpmOrganization::PureRandom(array) => serve_pure_random(array, &demand, compute),
            SpmOrganization::Heterogeneous(spm) => serve_hetero(spm, &mapping, &demand, compute),
        };

        let hidden = compute * overlap;
        let exposed_mem = (mem_serial - hidden).max(Time::ZERO);
        let total = compute + stream_stall + exposed_mem;

        total_time += total;
        total_macs += mapping.macs;
        spm_dynamic += energy;
        layers.push(LayerReport {
            name: layer.name.clone(),
            compute,
            stream_stall,
            exposed_mem,
            total,
            macs: mapping.macs,
            spm_energy: energy,
        });
    }

    let energy = energy_report(config, &scheme.spm, total_time, total_macs, spm_dynamic);

    InferenceReport {
        scheme: scheme.name,
        model: model.name.clone(),
        batch,
        layers,
        total_time,
        macs: total_macs,
        energy,
    }
}

/// SuperNPU service: streams run at lane parallelism; every fold boundary
/// rotates each class's lane across its (per-image) live region.
fn serve_pure_shift(
    spm: &crate::scheme::PureShiftSpm,
    demand: &LayerDemand,
    single_demand: &LayerDemand,
    compute: Time,
    batch: u32,
) -> (Time, Time, Energy) {
    let t_in = spm
        .input
        .serve_stream(demand.reads_of(DataClass::Input), false);
    let t_out = spm.output.serve_stream(
        demand.reads_of(DataClass::Psum)
            + demand.writes_of(DataClass::Psum)
            + demand.writes_of(DataClass::Output),
        true,
    );
    let t_w = spm
        .weight
        .serve_stream(demand.reads_of(DataClass::Weight), false);
    let stream_max = t_in.time.max(t_out.time).max(t_w.time);
    let stream_stall = (stream_max - compute).max(Time::ZERO);

    let mut realign = AccessCost::ZERO;
    for r in &single_demand.realignments {
        let array = match r.class {
            DataClass::Input => &spm.input,
            DataClass::Psum | DataClass::Output => &spm.output,
            DataClass::Weight => &spm.weight,
        };
        let distance = (r.distance_bytes as f64 * SHIFT_SCAN_FACTOR) as u64;
        // One realignment per fold boundary: consecutive images of a batch
        // sit adjacently in the lane, so only the first image of each fold
        // pays the rewind (this is what makes batching effective on
        // SHIFT-based SPMs).
        let _ = batch;
        let one = array.serve_realignment(distance);
        realign.time += one.time * r.count as f64;
        realign.energy += one.energy * r.count as f64;
    }

    let energy = t_in.energy + t_out.energy + t_w.energy + realign.energy;
    (stream_stall, realign.time, energy)
}

/// Homogeneous random-array service: every word goes through one array.
fn serve_pure_random(
    array: &smart_cryomem::array::RandomArray,
    demand: &LayerDemand,
    compute: Time,
) -> (Time, Time, Energy) {
    let reads: u64 = demand.stream_reads.iter().map(|(_, w)| w).sum();
    let writes: u64 = demand.stream_writes.iter().map(|(_, w)| w).sum();
    let r = array.serve_stream(reads, false);
    let w = array.serve_stream(writes, true);
    let stream_time = r.time + w.time;
    let stream_stall = (stream_time - compute).max(Time::ZERO);

    let mut realign = AccessCost::ZERO;
    for ev in &demand.realignments {
        let one = array.serve_realignment(ev.distance_bytes);
        realign.time += one.time * ev.count as f64;
    }

    (stream_stall, realign.time, r.energy + w.energy)
}

/// Heterogeneous service: staging SHIFT arrays feed the matrix unit at full
/// rate; the RANDOM array carries loads (inputs + weights into staging) and
/// the PSum spill traffic whose working set exceeds the staging arrays.
fn serve_hetero(
    spm: &smart_spm::hetero::HeterogeneousSpm,
    mapping: &LayerMapping,
    demand: &LayerDemand,
    compute: Time,
) -> (Time, Time, Energy) {
    // Staging streams.
    let t_in = spm
        .input_shift
        .serve_stream(demand.reads_of(DataClass::Input), false);
    let t_out = spm
        .output_shift
        .serve_stream(demand.writes_of(DataClass::Output), true);
    let t_w = spm
        .weight_shift
        .serve_stream(demand.reads_of(DataClass::Weight), false);
    let stream_max = t_in.time.max(t_out.time).max(t_w.time);
    let stream_stall = (stream_max - compute).max(Time::ZERO);

    // RANDOM array: unique loads (inputs + weights) into staging.
    let load_words = mapping.live_input_bytes + mapping.weight_bytes;
    let loads = spm.random.serve_stream(load_words, false);

    // PSum spill: round trips for the part of the accumulation block that
    // does not fit the staging array or the matrix unit's accumulators.
    let psum_ws = mapping.live_output_bytes / mapping.m_folds.max(1);
    let psum_words = demand.reads_of(DataClass::Psum) + demand.writes_of(DataClass::Psum);
    let spill_words = if psum_ws > spm.output_shift.capacity_bytes() {
        (psum_words as f64 * PSUM_SPILL_FACTOR) as u64
    } else {
        0
    };
    let spill_r = spm.random.serve_stream(spill_words / 2, false);
    let spill_w = spm.random.serve_stream(spill_words - spill_words / 2, true);

    // Realignments become direct RANDOM accesses.
    let mut realign = AccessCost::ZERO;
    for ev in &demand.realignments {
        let one = spm.random.serve_realignment(ev.distance_bytes);
        realign.time += one.time * ev.count as f64;
    }

    // Capacity pressure: if the layer's activation working set exceeds the
    // RANDOM array, the overflow thrashes to DRAM (Fig. 23: a 14 MB array
    // hurts batches). Weights stream through their own staging path and are
    // sized per layer (the paper's no-thrashing assumption).
    let working_set = mapping.live_input_bytes + mapping.live_output_bytes;
    let dram_bytes = working_set.saturating_sub(spm.random.capacity_bytes);
    let dram_time = Time::from_s(dram_bytes as f64 / crate::config::DRAM_BANDWIDTH);

    // DRAM transfers use a separate channel and overlap the RANDOM-side
    // work; the serial memory demand is whichever is longer.
    let random_side = loads.time + spill_r.time + spill_w.time + realign.time;
    let mem_serial = random_side.max(dram_time);
    let energy =
        t_in.energy + t_out.energy + t_w.energy + loads.energy + spill_r.energy + spill_w.energy;
    (stream_stall, mem_serial, energy)
}

fn energy_report(
    config: &AcceleratorConfig,
    spm: &SpmOrganization,
    total_time: Time,
    macs: u64,
    spm_dynamic: Energy,
) -> EnergyReport {
    if let Some(power) = config.average_power {
        // Fixed-power baseline (TPU): all energy lumped, no cooling.
        let total = power * total_time;
        return EnergyReport {
            matrix: total * 0.6,
            spm_dynamic: total * 0.4,
            spm_static: Energy::ZERO,
            total,
        };
    }
    let matrix = Energy::from_j(config.mac_energy_j * macs as f64);
    let leak_power = match spm {
        SpmOrganization::Ideal | SpmOrganization::PureShift(_) => smart_units::Power::ZERO,
        SpmOrganization::PureRandom(a) => a.leakage,
        SpmOrganization::Heterogeneous(h) => h.leakage(),
    };
    let spm_static = leak_power * total_time;
    let chip = matrix + spm_dynamic + spm_static;
    let total = if config.cryogenic {
        chip * COOLING_FACTOR
    } else {
        chip
    };
    EnergyReport {
        matrix,
        spm_dynamic,
        spm_static,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Scheme;
    use smart_systolic::models::ModelId;

    fn alexnet_single(scheme: &Scheme) -> InferenceReport {
        evaluate(scheme, &ModelId::AlexNet.build(), 1)
    }

    #[test]
    fn supernpu_beats_tpu_single_image() {
        // Fig. 18: SuperNPU improves single-image throughput over TPU by
        // ~8.6x (we accept 3x-20x).
        let tpu = alexnet_single(&Scheme::tpu());
        let sn = alexnet_single(&Scheme::supernpu());
        let speedup = sn.speedup_over(&tpu);
        assert!((3.0..=25.0).contains(&speedup), "speedup = {speedup:.1}");
    }

    #[test]
    fn sram_slower_than_supernpu() {
        // Fig. 18: "Josephson-CMOS SRAM arrays actually decrease the
        // inference throughput" vs SuperNPU.
        let sn = alexnet_single(&Scheme::supernpu());
        let sram = alexnet_single(&Scheme::sram());
        assert!(sram.speedup_over(&sn) < 1.0);
    }

    #[test]
    fn heter_between_sram_and_supernpu() {
        // Fig. 18: "Heter still obtains lower inference throughput than
        // SuperNPU" but beats plain SRAM.
        let sn = alexnet_single(&Scheme::supernpu());
        let sram = alexnet_single(&Scheme::sram());
        let heter = alexnet_single(&Scheme::heter());
        assert!(heter.speedup_over(&sram) > 1.0, "Heter should beat SRAM");
        assert!(
            heter.speedup_over(&sn) < 1.0,
            "Heter should lose to SuperNPU"
        );
    }

    #[test]
    fn pipe_beats_supernpu_by_about_2_4x() {
        let sn = alexnet_single(&Scheme::supernpu());
        let pipe = alexnet_single(&Scheme::pipe());
        let x = pipe.speedup_over(&sn);
        assert!((1.5..=4.0).contains(&x), "Pipe/SuperNPU = {x:.2}");
    }

    #[test]
    fn smart_beats_supernpu_by_about_3_9x() {
        let sn = alexnet_single(&Scheme::supernpu());
        let smart = alexnet_single(&Scheme::smart());
        let x = smart.speedup_over(&sn);
        assert!((2.5..=6.0).contains(&x), "SMART/SuperNPU = {x:.2}");
    }

    #[test]
    fn smart_beats_pipe() {
        // The ILP compiler's prefetching is worth ~1.6x on top of Pipe.
        let pipe = alexnet_single(&Scheme::pipe());
        let smart = alexnet_single(&Scheme::smart());
        assert!(smart.speedup_over(&pipe) > 1.1);
    }

    #[test]
    fn batch_improves_supernpu_throughput() {
        // Sec. 6.2: SuperNPU batch throughput ~2.5x its single-image
        // throughput.
        let model = ModelId::AlexNet.build();
        let sn = Scheme::supernpu();
        let single = evaluate(&sn, &model, 1);
        let batch = evaluate(&sn, &model, ModelId::AlexNet.supernpu_batch());
        let gain = batch.throughput_tmacs() / single.throughput_tmacs();
        assert!(gain > 1.5, "batch gain = {gain:.2}");
    }

    #[test]
    fn smart_batch_gain_smaller_than_supernpu_gain() {
        // SMART is already fast at batch 1; its batch gain is smaller
        // (Sec. 6.2: 34.5% vs 2.5x).
        let model = ModelId::AlexNet.build();
        let sn_gain = {
            let s = Scheme::supernpu();
            evaluate(&s, &model, 30).throughput_tmacs() / evaluate(&s, &model, 1).throughput_tmacs()
        };
        let smart_gain = {
            let s = Scheme::smart();
            evaluate(&s, &model, 22).throughput_tmacs() / evaluate(&s, &model, 1).throughput_tmacs()
        };
        assert!(
            smart_gain < sn_gain,
            "smart {smart_gain:.2} vs sn {sn_gain:.2}"
        );
    }

    #[test]
    fn smart_reduces_energy_vs_supernpu() {
        // Fig. 20: SMART reduces single-image inference energy by ~86%
        // (we accept >= 50%).
        let sn = alexnet_single(&Scheme::supernpu());
        let smart = alexnet_single(&Scheme::smart());
        let ratio = smart.energy.total.as_si() / sn.energy.total.as_si();
        assert!(ratio < 0.5, "energy ratio = {ratio:.2}");
    }

    #[test]
    fn cooling_dominates_sfq_energy() {
        let sn = alexnet_single(&Scheme::supernpu());
        let chip = sn.energy.matrix + sn.energy.spm_dynamic + sn.energy.spm_static;
        assert!((sn.energy.total.as_si() / chip.as_si() - 400.0).abs() < 1.0);
    }

    #[test]
    fn tpu_energy_is_power_times_time() {
        let tpu = alexnet_single(&Scheme::tpu());
        let expected = 40.0 * tpu.total_time.as_s();
        assert!((tpu.energy.total.as_j() - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn throughput_below_peak() {
        for scheme in Scheme::figure18_set() {
            let r = alexnet_single(&scheme);
            assert!(
                r.throughput_tmacs() <= scheme.config.peak_tmacs() * 1.001,
                "{} exceeds peak",
                scheme.name
            );
        }
    }

    /// A degenerate hand-constructed report (no layers, zero time, zero
    /// batch) for the guard tests.
    fn degenerate() -> InferenceReport {
        InferenceReport {
            scheme: "degenerate",
            model: "none".to_owned(),
            batch: 0,
            layers: Vec::new(),
            total_time: Time::ZERO,
            macs: 0,
            energy: EnergyReport {
                matrix: Energy::ZERO,
                spm_dynamic: Energy::ZERO,
                spm_static: Energy::ZERO,
                total: Energy::from_j(1.0),
            },
        }
    }

    #[test]
    fn speedup_over_degenerate_reference_is_a_typed_error() {
        let good = alexnet_single(&Scheme::smart());
        let bad = degenerate();
        let err = good.try_speedup_over(&bad).unwrap_err();
        assert!(matches!(err, SmartError::InvalidInput { .. }), "{err}");
        // The infallible form saturates to +inf (never NaN), so the
        // runner's non-finite check still catches the degenerate baseline.
        let saturated = good.speedup_over(&bad);
        assert!(!saturated.is_nan());
        assert_eq!(saturated, f64::INFINITY);
    }

    #[test]
    fn speedup_between_real_reports_matches_try_variant() {
        let sn = alexnet_single(&Scheme::supernpu());
        let smart = alexnet_single(&Scheme::smart());
        let fallible = smart.try_speedup_over(&sn).expect("finite");
        assert!((smart.speedup_over(&sn) - fallible).abs() < 1e-12);
    }

    #[test]
    fn energy_per_image_zero_batch_is_guarded() {
        let bad = degenerate();
        let err = bad.try_energy_per_image().unwrap_err();
        assert!(matches!(err, SmartError::InvalidInput { .. }), "{err}");
        // Documented saturation: batch 0 is priced as one image.
        let e = bad.energy_per_image();
        assert!(e.is_finite());
        assert!((e.as_j() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_per_image_real_report_is_finite_and_divides_batch() {
        let model = ModelId::AlexNet.build();
        let s = Scheme::supernpu();
        let r = evaluate(&s, &model, 30);
        let per_image = r.try_energy_per_image().expect("finite");
        assert!((per_image.as_si() - r.energy.total.as_si() / 30.0).abs() < 1e-18);
        assert_eq!(per_image, r.energy_per_image());
    }

    #[test]
    fn report_totals_consistent() {
        let r = alexnet_single(&Scheme::smart());
        let sum: Time = r.layers.iter().map(|l| l.total).sum();
        assert!((sum.as_si() - r.total_time.as_si()).abs() < 1e-12);
        let mac_sum: u64 = r.layers.iter().map(|l| l.macs).sum();
        assert_eq!(mac_sum, r.macs);
    }
}
