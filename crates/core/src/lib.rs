//! SMART end-to-end evaluation: configurations, schemes, and the
//! latency/energy evaluator.
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod area;
pub mod cache;
pub mod config;
pub mod eval;
pub mod geometry;
pub mod scheme;
pub mod sensitivity;

pub use area::{matrix_unit_area, ChipArea};
pub use cache::{CacheStats, EvalCache};
pub use config::{AcceleratorConfig, COOLING_FACTOR, DRAM_BANDWIDTH};
pub use eval::{evaluate, EnergyReport, InferenceReport, LayerReport};
pub use geometry::{GeometryParams, ShiftGeometry, SpmGeometry};
pub use scheme::{AllocationPolicy, PureShiftSpm, Scheme, SpmOrganization};
pub use sensitivity::{
    allocation_capacity_sweep, prefetch_sweep, random_capacity_sweep, shift_capacity_sweep,
    write_latency_sweep, AllocationPoint, SweepPoint,
};
pub use smart_compiler::{SolverContext, SolverContextStats};
