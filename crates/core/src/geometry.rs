//! Parameterized hardware geometry generator.
//!
//! The fixed Table-4 constructors of [`Scheme`] describe *one* hand-picked
//! design point each. [`GeometryParams`] turns them into a generator in the
//! `sram22` idiom: a plain-data parameter struct with build-time validation
//! that elaborates a full [`Scheme`] (accelerator config + SPM hierarchy +
//! allocation policy) from free parameters, so a design-space search can
//! enumerate thousands of candidate geometries without ever constructing an
//! invalid one.
//!
//! Every named constructor (`tpu`, `supernpu`, `sram`, `heter`, `pipe`,
//! `smart`, the Fig. 5/7 variants) is re-expressed here and pinned by
//! round-trip tests against the handwritten schemes, so the generator and
//! the paper's fixed design points can never drift apart.
//!
//! Invalid parameters — zero array dims, a SHIFT/RANDOM split larger than
//! the SPM budget, a zero-port RANDOM array — are rejected by
//! [`GeometryParams::build`] with a typed [`SmartError`] *before* any
//! subcomponent constructor (which would panic) runs.

use crate::config::AcceleratorConfig;
use crate::scheme::{AllocationPolicy, PureShiftSpm, Scheme, SpmOrganization};
use smart_cryomem::array::{RandomArray, RandomArrayKind};
use smart_spm::hetero::HeterogeneousSpm;
use smart_spm::shift::ShiftArray;
use smart_systolic::mapping::ArrayShape;
use smart_units::{Frequency, Power, Result, SmartError};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// Free parameters of one SHIFT staging array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShiftGeometry {
    /// Total capacity in bytes (must divide evenly across the banks).
    pub capacity_bytes: u64,
    /// Bank (lane) count.
    pub banks: u32,
}

impl ShiftGeometry {
    /// A `capacity`/`banks` pair.
    #[must_use]
    pub fn new(capacity_bytes: u64, banks: u32) -> Self {
        Self {
            capacity_bytes,
            banks,
        }
    }

    fn validate(&self, what: &str) -> Result<()> {
        if self.capacity_bytes == 0 {
            return Err(SmartError::invalid_input(format!(
                "{what}: SHIFT capacity must be positive"
            )));
        }
        if self.banks == 0 {
            return Err(SmartError::invalid_input(format!(
                "{what}: SHIFT bank count must be positive"
            )));
        }
        if !self.capacity_bytes.is_multiple_of(u64::from(self.banks)) {
            return Err(SmartError::invalid_input(format!(
                "{what}: SHIFT capacity {} B does not divide evenly across {} banks",
                self.capacity_bytes, self.banks
            )));
        }
        Ok(())
    }
}

/// Validates a RANDOM array's port/capacity parameters against
/// [`RandomArray::build`]'s preconditions.
fn validate_random(capacity_bytes: u64, banks: u32, what: &str) -> Result<()> {
    if capacity_bytes == 0 {
        return Err(SmartError::invalid_input(format!(
            "{what}: RANDOM capacity must be positive"
        )));
    }
    if banks == 0 {
        return Err(SmartError::invalid_input(format!(
            "{what}: RANDOM array has zero ports (banks)"
        )));
    }
    if banks == 1 || !banks.is_power_of_two() {
        return Err(SmartError::invalid_input(format!(
            "{what}: RANDOM bank count {banks} must be a power of two > 1"
        )));
    }
    Ok(())
}

/// Free parameters of the on-chip SPM organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpmGeometry {
    /// Idealized SPM (the TPU baseline): never stalls the array.
    Ideal,
    /// SHIFT-only arrays, one per data class (the SuperNPU organization).
    PureShift {
        /// Input buffer geometry.
        input: ShiftGeometry,
        /// Output/PSum buffer geometry.
        output: ShiftGeometry,
        /// Weight buffer geometry.
        weight: ShiftGeometry,
    },
    /// One shared random-access array for everything.
    PureRandom {
        /// Memory technology.
        kind: RandomArrayKind,
        /// Total capacity in bytes.
        capacity_bytes: u64,
        /// Bank (port) count — must be a power of two > 1.
        banks: u32,
    },
    /// SHIFT staging + shared RANDOM array (the SMART organization). The
    /// RANDOM capacity is what remains of `capacity_bytes` after the three
    /// per-class SHIFT staging arrays take `shift_bytes` each, so the split
    /// is validated against the total budget at build time.
    Heterogeneous {
        /// Total SPM budget in bytes (3 SHIFT arrays + RANDOM array).
        capacity_bytes: u64,
        /// Per-class SHIFT staging capacity in bytes (three arrays total).
        shift_bytes: u64,
        /// SHIFT bank (lane) count.
        shift_banks: u32,
        /// RANDOM bank (port) count — must be a power of two > 1.
        random_banks: u32,
        /// RANDOM memory technology.
        kind: RandomArrayKind,
    },
}

impl SpmGeometry {
    /// The heterogeneous split used by `Heter`/`Pipe`/`SMART` and the
    /// Fig. 7 variants: three 32 KB SHIFT staging arrays + 28 MB RANDOM,
    /// both 256-banked.
    #[must_use]
    pub fn smart_split(kind: RandomArrayKind) -> Self {
        Self::Heterogeneous {
            capacity_bytes: 3 * 32 * KB + 28 * MB,
            shift_bytes: 32 * KB,
            shift_banks: 256,
            random_banks: 256,
            kind,
        }
    }

    fn validate(&self) -> Result<()> {
        match *self {
            Self::Ideal => Ok(()),
            Self::PureShift {
                input,
                output,
                weight,
            } => {
                input.validate("input")?;
                output.validate("output")?;
                weight.validate("weight")
            }
            Self::PureRandom {
                capacity_bytes,
                banks,
                ..
            } => validate_random(capacity_bytes, banks, "SPM"),
            Self::Heterogeneous {
                capacity_bytes,
                shift_bytes,
                shift_banks,
                random_banks,
                ..
            } => {
                ShiftGeometry::new(shift_bytes, shift_banks).validate("staging")?;
                let staged = 3 * shift_bytes;
                if staged >= capacity_bytes {
                    return Err(SmartError::invalid_input(format!(
                        "SPM split exceeds capacity: 3 x {shift_bytes} B of SHIFT staging \
                         leaves no RANDOM capacity in a {capacity_bytes} B budget"
                    )));
                }
                validate_random(capacity_bytes - staged, random_banks, "RANDOM")
            }
        }
    }

    fn elaborate(&self) -> SpmOrganization {
        match *self {
            Self::Ideal => SpmOrganization::Ideal,
            Self::PureShift {
                input,
                output,
                weight,
            } => SpmOrganization::PureShift(PureShiftSpm {
                input: ShiftArray::new(input.capacity_bytes, input.banks),
                output: ShiftArray::new(output.capacity_bytes, output.banks),
                weight: ShiftArray::new(weight.capacity_bytes, weight.banks),
            }),
            Self::PureRandom {
                kind,
                capacity_bytes,
                banks,
            } => SpmOrganization::PureRandom(RandomArray::build(kind, capacity_bytes, banks)),
            Self::Heterogeneous {
                capacity_bytes,
                shift_bytes,
                shift_banks,
                random_banks,
                kind,
            } => SpmOrganization::Heterogeneous(HeterogeneousSpm::new(
                shift_bytes,
                shift_banks,
                capacity_bytes - 3 * shift_bytes,
                random_banks,
                kind,
            )),
        }
    }
}

/// Free parameters of a complete accelerator design point.
///
/// [`GeometryParams::build`] validates everything a downstream constructor
/// would panic on and elaborates a [`Scheme`]; the named constructors
/// reproduce the paper's fixed design points exactly (pinned by the
/// round-trip tests below).
#[derive(Debug, Clone, PartialEq)]
pub struct GeometryParams {
    /// Display name of the elaborated scheme.
    pub name: &'static str,
    /// Display name of the accelerator configuration (Table 4 row). Named
    /// schemes share config rows under different scheme names ("SHIFT",
    /// "SRAM" and "Heter" all run the "SuperNPU" matrix unit).
    pub config_name: &'static str,
    /// Systolic array rows.
    pub rows: u32,
    /// Systolic array columns.
    pub cols: u32,
    /// Clock frequency in GHz.
    pub clock_ghz: f64,
    /// Whether the accelerator operates at 4 K (pays cooling).
    pub cryogenic: bool,
    /// Matrix-unit energy per MAC in joules.
    pub mac_energy_j: f64,
    /// Average chip power in watts for fixed-power accelerators.
    pub average_power_w: Option<f64>,
    /// On-chip SPM organization.
    pub spm: SpmGeometry,
    /// `None` elaborates [`AllocationPolicy::Static`]; `Some(a)` the ILP
    /// compiler's prefetch policy with window `a >= 1`.
    pub prefetch_window: Option<u32>,
}

impl GeometryParams {
    /// Validates the parameters and elaborates the full [`Scheme`].
    ///
    /// # Errors
    ///
    /// Returns [`SmartError::InvalidInput`] on any parameter a downstream
    /// constructor would reject: zero array dims, a non-positive or
    /// non-finite clock, SHIFT capacities that do not divide across their
    /// banks, a SHIFT/RANDOM split exceeding the SPM budget, or a RANDOM
    /// array whose port count is zero / not a power of two > 1.
    pub fn build(&self) -> Result<Scheme> {
        if self.rows == 0 || self.cols == 0 {
            return Err(SmartError::invalid_input(format!(
                "PE array must be non-empty, got {}x{}",
                self.rows, self.cols
            )));
        }
        if !self.clock_ghz.is_finite() || self.clock_ghz <= 0.0 {
            return Err(SmartError::invalid_input(format!(
                "clock must be finite and positive, got {} GHz",
                self.clock_ghz
            )));
        }
        if !self.mac_energy_j.is_finite() || self.mac_energy_j < 0.0 {
            return Err(SmartError::invalid_input(format!(
                "per-MAC energy must be finite and non-negative, got {} J",
                self.mac_energy_j
            )));
        }
        if let Some(w) = self.average_power_w {
            if !w.is_finite() || w <= 0.0 {
                return Err(SmartError::invalid_input(format!(
                    "average power must be finite and positive, got {w} W"
                )));
            }
        }
        if self.prefetch_window == Some(0) {
            return Err(SmartError::invalid_input(
                "prefetch window 0 is meaningless; use None for static allocation",
            ));
        }
        self.spm.validate()?;

        Ok(Scheme {
            name: self.name,
            config: AcceleratorConfig {
                name: self.config_name,
                frequency: Frequency::from_ghz(self.clock_ghz),
                shape: ArrayShape::new(self.rows, self.cols),
                cryogenic: self.cryogenic,
                mac_energy_j: self.mac_energy_j,
                average_power: self.average_power_w.map(Power::from_w),
            },
            spm: self.spm.elaborate(),
            policy: match self.prefetch_window {
                None => AllocationPolicy::Static,
                Some(window) => AllocationPolicy::Prefetch { window },
            },
        })
    }

    /// The SuperNPU matrix unit shared by every SFQ design point: 52.6 GHz,
    /// 64x256, 1.35 fJ/MAC at 4 K.
    #[must_use]
    fn sfq_base(name: &'static str, spm: SpmGeometry, prefetch_window: Option<u32>) -> Self {
        Self {
            name,
            config_name: "SuperNPU",
            rows: 64,
            cols: 256,
            clock_ghz: 52.6,
            cryogenic: true,
            mac_energy_j: 1.35e-15,
            average_power_w: None,
            spm,
            prefetch_window,
        }
    }

    /// The TPU baseline ([`Scheme::tpu`]).
    #[must_use]
    pub fn tpu() -> Self {
        Self {
            name: "TPU",
            config_name: "TPU",
            rows: 256,
            cols: 256,
            clock_ghz: 0.7,
            cryogenic: false,
            mac_energy_j: 0.0,
            average_power_w: Some(40.0),
            spm: SpmGeometry::Ideal,
            prefetch_window: None,
        }
    }

    /// SuperNPU ([`Scheme::supernpu`]): SHIFT-only SPMs.
    #[must_use]
    pub fn supernpu() -> Self {
        Self::sfq_base(
            "SHIFT",
            SpmGeometry::PureShift {
                input: ShiftGeometry::new(24 * MB, 64),
                output: ShiftGeometry::new(24 * MB, 256),
                weight: ShiftGeometry::new(128 * KB, 64),
            },
            None,
        )
    }

    /// SuperNPU with Josephson-CMOS SRAM SPMs ([`Scheme::sram`]).
    #[must_use]
    pub fn sram() -> Self {
        Self::sfq_base(
            "SRAM",
            SpmGeometry::PureRandom {
                kind: RandomArrayKind::JosephsonCmosSram,
                capacity_bytes: 28 * MB,
                banks: 256,
            },
            None,
        )
    }

    /// `Heter` ([`Scheme::heter`]): SRAM plus SHIFT staging.
    #[must_use]
    pub fn heter() -> Self {
        Self::sfq_base(
            "Heter",
            SpmGeometry::smart_split(RandomArrayKind::JosephsonCmosSram),
            None,
        )
    }

    /// `Pipe` ([`Scheme::pipe`]): Heter with the pipelined CMOS-SFQ array.
    #[must_use]
    pub fn pipe() -> Self {
        let mut p = Self::sfq_base(
            "Pipe",
            SpmGeometry::smart_split(RandomArrayKind::PipelinedCmosSfq),
            None,
        );
        p.config_name = "SMART";
        p
    }

    /// `SMART` ([`Scheme::smart`]): Pipe plus the ILP compiler, `a = 3`.
    #[must_use]
    pub fn smart() -> Self {
        let mut p = Self::sfq_base(
            "SMART",
            SpmGeometry::smart_split(RandomArrayKind::PipelinedCmosSfq),
            Some(3),
        );
        p.config_name = "SMART";
        p
    }

    /// Fig. 5 homogeneous-SPM variants ([`Scheme::fig5_homogeneous`]).
    #[must_use]
    pub fn fig5_homogeneous(kind: RandomArrayKind) -> Self {
        let name = match kind {
            RandomArrayKind::JosephsonCmosSram => "SRAM",
            RandomArrayKind::SheMram => "MRAM",
            RandomArrayKind::Snm => "SNM",
            RandomArrayKind::Vtm => "VTM",
            RandomArrayKind::PipelinedCmosSfq => "CMOS-SFQ",
        };
        Self::sfq_base(
            name,
            SpmGeometry::PureRandom {
                kind,
                capacity_bytes: 28 * MB + 64 * KB,
                banks: 256,
            },
            None,
        )
    }

    /// Fig. 7 heterogeneous-SPM variants ([`Scheme::fig7_hetero`]).
    #[must_use]
    pub fn fig7_hetero(kind: RandomArrayKind, prefetch: bool) -> Self {
        let name = match (kind, prefetch) {
            (RandomArrayKind::JosephsonCmosSram, _) => "hSRAM",
            (RandomArrayKind::SheMram, _) => "hMRAM",
            (RandomArrayKind::Snm, _) => "hSNM",
            (RandomArrayKind::Vtm, false) => "hVTM",
            (RandomArrayKind::Vtm, true) => "hVTM+p",
            (RandomArrayKind::PipelinedCmosSfq, _) => "hCMOS-SFQ",
        };
        Self::sfq_base(name, SpmGeometry::smart_split(kind), prefetch.then_some(3))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-generator constructor bodies, kept verbatim as golden
    /// literals: [`Scheme`]'s named constructors now elaborate through
    /// [`GeometryParams`], and these pins are what keep the generator from
    /// drifting away from the paper's fixed design points.
    mod handwritten {
        use super::*;

        pub fn tpu() -> Scheme {
            Scheme {
                name: "TPU",
                config: AcceleratorConfig::tpu(),
                spm: SpmOrganization::Ideal,
                policy: AllocationPolicy::Static,
            }
        }

        pub fn supernpu() -> Scheme {
            Scheme {
                name: "SHIFT",
                config: AcceleratorConfig::supernpu(),
                spm: SpmOrganization::PureShift(PureShiftSpm::supernpu()),
                policy: AllocationPolicy::Static,
            }
        }

        pub fn sram() -> Scheme {
            Scheme {
                name: "SRAM",
                config: AcceleratorConfig::supernpu(),
                spm: SpmOrganization::PureRandom(RandomArray::build(
                    RandomArrayKind::JosephsonCmosSram,
                    28 * MB,
                    256,
                )),
                policy: AllocationPolicy::Static,
            }
        }

        pub fn heter() -> Scheme {
            Scheme {
                name: "Heter",
                config: AcceleratorConfig::supernpu(),
                spm: SpmOrganization::Heterogeneous(HeterogeneousSpm::new(
                    32 * KB,
                    256,
                    28 * MB,
                    256,
                    RandomArrayKind::JosephsonCmosSram,
                )),
                policy: AllocationPolicy::Static,
            }
        }

        pub fn pipe() -> Scheme {
            Scheme {
                name: "Pipe",
                config: AcceleratorConfig::smart(),
                spm: SpmOrganization::Heterogeneous(HeterogeneousSpm::smart_default()),
                policy: AllocationPolicy::Static,
            }
        }

        pub fn smart() -> Scheme {
            Scheme {
                name: "SMART",
                config: AcceleratorConfig::smart(),
                spm: SpmOrganization::Heterogeneous(HeterogeneousSpm::smart_default()),
                policy: AllocationPolicy::Prefetch { window: 3 },
            }
        }

        pub fn fig5_homogeneous(kind: RandomArrayKind) -> Scheme {
            let name = match kind {
                RandomArrayKind::JosephsonCmosSram => "SRAM",
                RandomArrayKind::SheMram => "MRAM",
                RandomArrayKind::Snm => "SNM",
                RandomArrayKind::Vtm => "VTM",
                RandomArrayKind::PipelinedCmosSfq => "CMOS-SFQ",
            };
            Scheme {
                name,
                config: AcceleratorConfig::supernpu(),
                spm: SpmOrganization::PureRandom(RandomArray::build(kind, 28 * MB + 64 * KB, 256)),
                policy: AllocationPolicy::Static,
            }
        }

        pub fn fig7_hetero(kind: RandomArrayKind, prefetch: bool) -> Scheme {
            let name = match (kind, prefetch) {
                (RandomArrayKind::JosephsonCmosSram, _) => "hSRAM",
                (RandomArrayKind::SheMram, _) => "hMRAM",
                (RandomArrayKind::Snm, _) => "hSNM",
                (RandomArrayKind::Vtm, false) => "hVTM",
                (RandomArrayKind::Vtm, true) => "hVTM+p",
                (RandomArrayKind::PipelinedCmosSfq, _) => "hCMOS-SFQ",
            };
            Scheme {
                name,
                config: AcceleratorConfig::supernpu(),
                spm: SpmOrganization::Heterogeneous(HeterogeneousSpm::new(
                    32 * KB,
                    256,
                    28 * MB,
                    256,
                    kind,
                )),
                policy: if prefetch {
                    AllocationPolicy::Prefetch { window: 3 }
                } else {
                    AllocationPolicy::Static
                },
            }
        }
    }

    /// Every named generator elaborates *exactly* the handwritten scheme —
    /// same config, SPM subcomponents, and policy (`Scheme` is `Eq`).
    #[test]
    fn golden_round_trips() {
        let pairs: Vec<(Scheme, Scheme)> = vec![
            (GeometryParams::tpu().build().unwrap(), handwritten::tpu()),
            (
                GeometryParams::supernpu().build().unwrap(),
                handwritten::supernpu(),
            ),
            (GeometryParams::sram().build().unwrap(), handwritten::sram()),
            (
                GeometryParams::heter().build().unwrap(),
                handwritten::heter(),
            ),
            (GeometryParams::pipe().build().unwrap(), handwritten::pipe()),
            (
                GeometryParams::smart().build().unwrap(),
                handwritten::smart(),
            ),
        ];
        for (generated, golden) in &pairs {
            assert_eq!(generated, golden, "{}", golden.name);
        }
        // The public constructors are the same elaboration.
        let public = [
            Scheme::tpu(),
            Scheme::supernpu(),
            Scheme::sram(),
            Scheme::heter(),
            Scheme::pipe(),
            Scheme::smart(),
        ];
        for (s, (_, golden)) in public.iter().zip(&pairs) {
            assert_eq!(s, golden, "public {}", golden.name);
        }
    }

    #[test]
    fn golden_round_trips_fig5_fig7() {
        for kind in RandomArrayKind::ALL {
            assert_eq!(
                GeometryParams::fig5_homogeneous(kind).build().unwrap(),
                handwritten::fig5_homogeneous(kind),
                "fig5 {kind:?}"
            );
            for prefetch in [false, true] {
                assert_eq!(
                    GeometryParams::fig7_hetero(kind, prefetch).build().unwrap(),
                    handwritten::fig7_hetero(kind, prefetch),
                    "fig7 {kind:?} prefetch={prefetch}"
                );
            }
        }
    }

    #[test]
    fn zero_dims_rejected() {
        let mut p = GeometryParams::smart();
        p.rows = 0;
        assert!(p.build().is_err());
        let mut p = GeometryParams::smart();
        p.cols = 0;
        assert!(p.build().is_err());
    }

    #[test]
    fn split_exceeding_capacity_rejected() {
        let mut p = GeometryParams::smart();
        p.spm = SpmGeometry::Heterogeneous {
            capacity_bytes: 64 * KB,
            shift_bytes: 32 * KB,
            shift_banks: 256,
            random_banks: 256,
            kind: RandomArrayKind::PipelinedCmosSfq,
        };
        let err = p.build().unwrap_err().to_string();
        assert!(err.contains("split exceeds capacity"), "{err}");
    }

    #[test]
    fn zero_port_random_rejected() {
        let mut p = GeometryParams::sram();
        p.spm = SpmGeometry::PureRandom {
            kind: RandomArrayKind::JosephsonCmosSram,
            capacity_bytes: 28 * MB,
            banks: 0,
        };
        let err = p.build().unwrap_err().to_string();
        assert!(err.contains("zero ports"), "{err}");
    }

    #[test]
    fn non_power_of_two_random_rejected() {
        let mut p = GeometryParams::sram();
        p.spm = SpmGeometry::PureRandom {
            kind: RandomArrayKind::JosephsonCmosSram,
            capacity_bytes: 28 * MB,
            banks: 3,
        };
        assert!(p.build().is_err());
    }

    #[test]
    fn uneven_shift_banks_rejected() {
        let mut p = GeometryParams::smart();
        p.spm = SpmGeometry::Heterogeneous {
            capacity_bytes: 28 * MB,
            shift_bytes: 1000, // not a multiple of 256
            shift_banks: 256,
            random_banks: 256,
            kind: RandomArrayKind::PipelinedCmosSfq,
        };
        assert!(p.build().is_err());
    }

    #[test]
    fn zero_window_rejected() {
        let mut p = GeometryParams::smart();
        p.prefetch_window = Some(0);
        assert!(p.build().is_err());
        p.prefetch_window = None;
        assert_eq!(p.build().unwrap().policy, AllocationPolicy::Static);
    }

    #[test]
    fn bad_clock_rejected() {
        for clock in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let mut p = GeometryParams::smart();
            p.clock_ghz = clock;
            assert!(p.build().is_err(), "clock {clock}");
        }
    }
}
