//! Sensitivity studies (Sec. 6.3): SHIFT capacity (Fig. 22), RANDOM
//! capacity (Fig. 23), prefetch iteration count (Fig. 24), and RANDOM write
//! latency (Fig. 25). All results are gmean speedups over SuperNPU across
//! the six CNN models, for single-image and batch inference.
//!
//! Every sweep evaluates through a shared [`EvalCache`], so the SuperNPU
//! baselines (one single-image and one batch evaluation per model) are
//! computed once per cache rather than once per sweep point, and sweep
//! points run concurrently on up to `jobs` worker threads. The
//! compiler-side sweep ([`allocation_capacity_sweep`]) threads a shared
//! [`SolverContext`] the same way: adjacent capacity points share a
//! constraint structure and differ only in right-hand sides, so each ILP
//! after the first warm-starts from a stored basis.

use crate::cache::EvalCache;
use crate::scheme::{AllocationPolicy, Scheme, SpmOrganization};
use smart_compiler::formulation::{compile_layer_ctx, FormulationParams};
use smart_compiler::SolverContext;
use smart_cryomem::array::RandomArrayKind;
use smart_report::parallel_map;
use smart_spm::hetero::HeterogeneousSpm;
use smart_systolic::dag::LayerDag;
use smart_systolic::mapping::{ArrayShape, LayerMapping};
use smart_systolic::models::ModelId;
use smart_units::Time;

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// One sweep point: gmean speedups over SuperNPU.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Human-readable parameter label (e.g. "32KB", "a=3").
    pub label: String,
    /// Gmean single-image speedup over SuperNPU.
    pub single: f64,
    /// Gmean batch speedup over SuperNPU.
    pub batch: f64,
}

/// Geometric mean of per-model speedups of `scheme` over SuperNPU.
fn gmean_speedup(cache: &EvalCache, scheme: &Scheme, batch_mode: bool) -> f64 {
    let baseline = Scheme::supernpu();
    let mut log_sum = 0.0;
    for id in ModelId::ALL {
        let (b_scheme, b_base) = if batch_mode {
            (id.smart_batch(), id.supernpu_batch())
        } else {
            (1, 1)
        };
        let r = cache.report(scheme, id, b_scheme);
        let base = cache.report(&baseline, id, b_base);
        log_sum += (r.throughput_tmacs() / base.throughput_tmacs()).ln();
    }
    (log_sum / ModelId::ALL.len() as f64).exp()
}

fn smart_with_spm(spm: HeterogeneousSpm, policy: AllocationPolicy) -> Scheme {
    Scheme {
        name: "SMART",
        config: crate::config::AcceleratorConfig::smart(),
        spm: SpmOrganization::Heterogeneous(spm),
        policy,
    }
}

/// Prices one labelled scheme variant at both batch modes.
fn sweep_point(cache: &EvalCache, label: String, scheme: &Scheme) -> SweepPoint {
    SweepPoint {
        label,
        single: gmean_speedup(cache, scheme, false),
        batch: gmean_speedup(cache, scheme, true),
    }
}

/// Fig. 22: sweep the per-class SHIFT staging capacity.
#[must_use]
pub fn shift_capacity_sweep(
    cache: &EvalCache,
    capacities_kb: &[u64],
    jobs: usize,
) -> Vec<SweepPoint> {
    parallel_map(jobs, capacities_kb, |&kb| {
        let spm = HeterogeneousSpm::new(
            kb * KB,
            256,
            28 * MB,
            256,
            RandomArrayKind::PipelinedCmosSfq,
        );
        let scheme = smart_with_spm(spm, AllocationPolicy::Prefetch { window: 3 });
        sweep_point(cache, format!("{kb}KB"), &scheme)
    })
}

/// Fig. 23: sweep the shared RANDOM array capacity.
#[must_use]
pub fn random_capacity_sweep(
    cache: &EvalCache,
    capacities_mb: &[u64],
    jobs: usize,
) -> Vec<SweepPoint> {
    parallel_map(jobs, capacities_mb, |&mb| {
        let spm = HeterogeneousSpm::new(
            32 * KB,
            256,
            mb * MB,
            256,
            RandomArrayKind::PipelinedCmosSfq,
        );
        let scheme = smart_with_spm(spm, AllocationPolicy::Prefetch { window: 3 });
        sweep_point(cache, format!("{mb}MB"), &scheme)
    })
}

/// Fig. 24: sweep the prefetch iteration count `a` (1 = no prefetch).
#[must_use]
pub fn prefetch_sweep(cache: &EvalCache, windows: &[u32], jobs: usize) -> Vec<SweepPoint> {
    parallel_map(jobs, windows, |&a| {
        let scheme = smart_with_spm(
            HeterogeneousSpm::smart_default(),
            AllocationPolicy::Prefetch { window: a },
        );
        sweep_point(cache, format!("a={a}"), &scheme)
    })
}

/// Fig. 25: sweep the RANDOM array write latency (0.11 ns pipelined CMOS-SFQ
/// vs the 2 ns / 3 ns of dense MRAM/SNM cells).
#[must_use]
pub fn write_latency_sweep(
    cache: &EvalCache,
    latencies_ns: &[f64],
    jobs: usize,
) -> Vec<SweepPoint> {
    parallel_map(jobs, latencies_ns, |&ns| {
        let mut spm = HeterogeneousSpm::smart_default();
        spm.random.write_latency = Time::from_ns(ns);
        // A slower write also throttles the per-bank issue rate for
        // writes.
        spm.random.issue_interval = spm.random.issue_interval.max(Time::from_ns(ns / 8.0));
        let scheme = smart_with_spm(spm, AllocationPolicy::Prefetch { window: 3 });
        sweep_point(cache, format!("{ns}ns"), &scheme)
    })
}

/// One point of the compiler-side capacity sweep: the summed ILP
/// allocation objective (model-time saved) across a model's layers.
#[derive(Debug, Clone, PartialEq)]
pub struct AllocationPoint {
    /// Human-readable capacity label (e.g. "32KB").
    pub label: String,
    /// Sum of per-layer ILP objectives (higher = more streaming time
    /// saved by SPM residency).
    pub objective: f64,
    /// Branch & bound nodes explored across all layers of this point.
    pub nodes: usize,
}

/// Compiler-side SHIFT-capacity sensitivity: compiles every layer of
/// `model` at each staging capacity and reports the total allocation
/// objective — the Fig. 22 sweep as the ILP sees it, before the evaluator.
///
/// All points thread the one `solver` context: the per-layer ILPs of
/// adjacent capacities differ only in right-hand sides, so every solve
/// after a structure's first warm-starts from its stored basis
/// (`solver.stats()` shows the reuse). Points fan out over up to `jobs`
/// threads; the context is `Sync` and shared.
#[must_use]
pub fn allocation_capacity_sweep(
    solver: &SolverContext,
    model: ModelId,
    capacities_kb: &[u64],
    jobs: usize,
) -> Vec<AllocationPoint> {
    let model = model.build();
    let dags: Vec<LayerDag> = model
        .layers
        .iter()
        .map(|layer| {
            let mapping = LayerMapping::map(layer, ArrayShape::new(64, 256), 1);
            LayerDag::build(&mapping, 6)
        })
        .collect();
    parallel_map(jobs, capacities_kb, |&kb| {
        let mut params = FormulationParams::smart_default();
        params.shift_capacity = kb * KB;
        let mut objective = 0.0;
        let mut nodes = 0;
        for dag in &dags {
            let s = compile_layer_ctx(dag, &params, solver);
            objective += s.objective;
            nodes += s.nodes;
        }
        AllocationPoint {
            label: format!("{kb}KB"),
            objective,
            nodes,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig22_small_shift_hurts() {
        let cache = EvalCache::new();
        let pts = shift_capacity_sweep(&cache, &[16, 32], 2);
        assert!(
            pts[0].single < pts[1].single,
            "16KB {} should trail 32KB {}",
            pts[0].single,
            pts[1].single
        );
        assert!(pts[0].batch <= pts[1].batch * 1.01);
    }

    #[test]
    fn fig23_larger_random_helps_batch_more() {
        let cache = EvalCache::new();
        let pts = random_capacity_sweep(&cache, &[14, 28, 112], 2);
        // 14 MB hurts relative to 28 MB.
        assert!(pts[0].batch <= pts[1].batch);
        // 112 MB helps batches (or at least never hurts).
        assert!(pts[2].batch >= pts[1].batch * 0.999);
        // Single-image inference is insensitive beyond 28 MB.
        let rel = (pts[2].single - pts[1].single).abs() / pts[1].single;
        assert!(rel < 0.05, "single-image sensitivity {rel:.2}");
    }

    #[test]
    fn fig24_prefetch_saturates_at_3() {
        let cache = EvalCache::new();
        let pts = prefetch_sweep(&cache, &[1, 2, 3, 4], 2);
        assert!(pts[0].single < pts[2].single, "a=1 must trail a=3");
        assert!(pts[1].single <= pts[2].single * 1.001);
        let rel = (pts[3].single - pts[2].single).abs() / pts[2].single;
        assert!(rel < 0.02, "a=4 ~= a=3, rel {rel:.3}");
    }

    #[test]
    fn fig25_slow_writes_hurt() {
        let cache = EvalCache::new();
        let pts = write_latency_sweep(&cache, &[0.11, 2.0, 3.0], 2);
        assert!(pts[1].single < pts[0].single);
        assert!(pts[2].single <= pts[1].single * 1.001);
        assert!(pts[2].batch < pts[0].batch);
    }

    #[test]
    fn allocation_sweep_is_monotone_and_warm_starts() {
        let ctx = SolverContext::new();
        let pts = allocation_capacity_sweep(&ctx, ModelId::AlexNet, &[8, 16, 32], 2);
        assert_eq!(pts.len(), 3);
        // More staging capacity can only help the allocation objective.
        assert!(pts[0].objective <= pts[1].objective + 1e-6);
        assert!(pts[1].objective <= pts[2].objective + 1e-6);
        let stats = ctx.stats();
        assert!(
            stats.warm_attempts > 0,
            "adjacent points must warm-start: {stats:?}"
        );
    }

    #[test]
    fn allocation_sweep_shared_context_matches_fresh_contexts() {
        // Warm-start reuse must never change a result, only wall-clock.
        let shared = SolverContext::new();
        let with_shared = allocation_capacity_sweep(&shared, ModelId::AlexNet, &[16, 32], 2);
        let fresh: Vec<AllocationPoint> = [16u64, 32]
            .iter()
            .flat_map(|&kb| {
                allocation_capacity_sweep(&SolverContext::new(), ModelId::AlexNet, &[kb], 1)
            })
            .collect();
        for (a, b) in with_shared.iter().zip(&fresh) {
            assert_eq!(a.label, b.label);
            assert!(
                (a.objective - b.objective).abs() < 1e-6,
                "{}: {} vs {}",
                a.label,
                a.objective,
                b.objective
            );
        }
    }

    #[test]
    fn parallel_sweep_matches_sequential_sweep() {
        // The pool must not change results, only wall-clock.
        let cache = EvalCache::new();
        let seq = prefetch_sweep(&cache, &[1, 3, 5], 1);
        let par = prefetch_sweep(&cache, &[1, 3, 5], 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn sweeps_share_the_baseline_through_the_cache() {
        let cache = EvalCache::new();
        let _ = shift_capacity_sweep(&cache, &[32, 64], 2);
        let before = cache.stats();
        // The random sweep's 28 MB point *is* the shift sweep's 32 KB point
        // (the paper's default SMART SPM), so only the 56 MB scheme
        // evaluates: 1 new scheme x 6 models x 2 modes = 12 evaluations.
        let _ = random_capacity_sweep(&cache, &[28, 56], 2);
        let after = cache.stats();
        assert_eq!(after.misses - before.misses, 12);
        assert!(after.hits > before.hits, "baseline lookups must hit");
    }
}
