//! Rule `registry`: every view of the experiment catalogue agrees.
//!
//! The `ExperimentDescriptor` table in `smart-bench` is the single
//! source of truth, but three other artifacts mirror it and can drift
//! silently: the per-figure binaries under `crates/bench/src/bin/`, the
//! `==== name ====` section headers of the golden snapshot, and the
//! README's experiment catalogue. This rule cross-checks all three:
//!
//! * every non-driver binary resolves to exactly one descriptor (stem
//!   equals the name, or extends it with `_…`; the longest matching
//!   name wins so `fig18_sweep` cannot accidentally claim `fig1`), and
//!   every descriptor has at least one binary;
//! * the snapshot sections are exactly the registry names, in registry
//!   order (the snapshot is regenerated in that order, so any deviation
//!   means a stale or hand-edited golden file);
//! * the README catalogue lists exactly the registry entries, in order,
//!   with matching group tags and figure labels.

use crate::rules::Finding;

/// Front-end driver binaries that intentionally have no descriptor of
/// their own (they iterate or wrap the registry instead).
pub const DRIVER_BINS: &[&str] = &[
    "all_experiments",
    "bench_check",
    "pareto_search",
    "serving_sim",
];

/// One registry descriptor, as seen by the lint (name, tag, figure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryEntry {
    /// Dispatch name (`fig18`, `serving_saturation`, …).
    pub name: String,
    /// Group tag (`paper`, `timing`, …).
    pub tag: String,
    /// Paper artifact label (`Figure 18`, `-`, …).
    pub figure: String,
}

/// One line of the README experiment catalogue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogueEntry {
    /// Experiment name.
    pub name: String,
    /// Group tag.
    pub tag: String,
    /// Figure label (rest of the line).
    pub figure: String,
    /// 1-based README line.
    pub line: u32,
}

/// The non-registry artifact paths, for findings.
#[derive(Debug, Clone)]
pub struct Paths {
    /// Directory holding the experiment binaries.
    pub bin_dir: String,
    /// The golden snapshot file.
    pub snapshot: String,
    /// The README.
    pub readme: String,
}

/// The descriptor a binary stem resolves to: the *longest* registry
/// name the stem equals or extends with `_…`.
#[must_use]
pub fn bin_owner<'a>(stem: &str, registry: &'a [RegistryEntry]) -> Option<&'a RegistryEntry> {
    registry
        .iter()
        .filter(|e| {
            stem == e.name
                || stem
                    .strip_prefix(e.name.as_str())
                    .is_some_and(|r| r.starts_with('_'))
        })
        .max_by_key(|e| e.name.len())
}

/// Runs the registry rule over the four catalogue views.
#[must_use]
pub fn check(
    registry: &[RegistryEntry],
    bins: &[String],
    snapshot_sections: &[String],
    catalogue: &[CatalogueEntry],
    paths: &Paths,
) -> Vec<Finding> {
    let mut findings = Vec::new();

    // Binaries <-> descriptors.
    let mut owned: Vec<&str> = Vec::new();
    for stem in bins {
        if DRIVER_BINS.contains(&stem.as_str()) {
            continue;
        }
        match bin_owner(stem, registry) {
            Some(e) => owned.push(e.name.as_str()),
            None => findings.push(Finding {
                file: format!("{}/{stem}.rs", paths.bin_dir),
                line: 0,
                rule: "registry",
                message: format!(
                    "binary `{stem}` matches no ExperimentDescriptor (and is not a known driver)"
                ),
            }),
        }
    }
    for e in registry {
        if !owned.contains(&e.name.as_str()) {
            findings.push(Finding {
                file: paths.bin_dir.clone(),
                line: 0,
                rule: "registry",
                message: format!("experiment `{}` has no binary under src/bin/", e.name),
            });
        }
    }

    // Snapshot sections: exactly the registry names, in order.
    let names: Vec<&str> = registry.iter().map(|e| e.name.as_str()).collect();
    let sections: Vec<&str> = snapshot_sections.iter().map(String::as_str).collect();
    findings.extend(ordered_diff(
        &names,
        &sections,
        &paths.snapshot,
        "snapshot section",
    ));

    // README catalogue: same names in order, then per-entry fields.
    let listed: Vec<&str> = catalogue.iter().map(|c| c.name.as_str()).collect();
    findings.extend(ordered_diff(
        &names,
        &listed,
        &paths.readme,
        "README catalogue entry",
    ));
    for c in catalogue {
        let Some(e) = registry.iter().find(|e| e.name == c.name) else {
            continue; // already reported by the ordered diff
        };
        if c.tag != e.tag {
            findings.push(Finding {
                file: paths.readme.clone(),
                line: c.line,
                rule: "registry",
                message: format!(
                    "catalogue tags `{}` as `{}` but the registry says `{}`",
                    c.name, c.tag, e.tag
                ),
            });
        }
        if c.figure != e.figure {
            findings.push(Finding {
                file: paths.readme.clone(),
                line: c.line,
                rule: "registry",
                message: format!(
                    "catalogue labels `{}` as `{}` but the registry says `{}`",
                    c.name, c.figure, e.figure
                ),
            });
        }
    }
    findings
}

/// Compares `actual` against the `expected` registry order: reports
/// missing entries, unknown entries, and (when the sets agree) the
/// first out-of-order position.
fn ordered_diff(expected: &[&str], actual: &[&str], file: &str, what: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    for name in expected {
        if !actual.contains(name) {
            findings.push(Finding {
                file: file.to_owned(),
                line: 0,
                rule: "registry",
                message: format!("missing {what} for experiment `{name}`"),
            });
        }
    }
    for name in actual {
        if !expected.contains(name) {
            findings.push(Finding {
                file: file.to_owned(),
                line: 0,
                rule: "registry",
                message: format!("{what} `{name}` does not exist in the registry"),
            });
        }
    }
    if findings.is_empty() {
        if let Some(pos) = expected.iter().zip(actual).position(|(e, a)| e != a) {
            // lint:allow(index, pos comes from position() over zip of these same slices)
            let (got, want) = (&actual[pos], &expected[pos]);
            findings.push(Finding {
                file: file.to_owned(),
                line: 0,
                rule: "registry",
                message: format!(
                    "{what}s are out of registry order: position {pos} holds `{got}`, \
                     expected `{want}`"
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(name: &str, tag: &str, figure: &str) -> RegistryEntry {
        RegistryEntry {
            name: name.to_owned(),
            tag: tag.to_owned(),
            figure: figure.to_owned(),
        }
    }

    fn paths() -> Paths {
        Paths {
            bin_dir: "crates/bench/src/bin".to_owned(),
            snapshot: "crates/bench/tests/snapshots/all_experiments.txt".to_owned(),
            readme: "README.md".to_owned(),
        }
    }

    fn world() -> (
        Vec<RegistryEntry>,
        Vec<String>,
        Vec<String>,
        Vec<CatalogueEntry>,
    ) {
        let registry = vec![
            entry("fig18", "paper", "Figure 18"),
            entry("timing_stall_breakdown", "timing", "-"),
        ];
        let bins = vec![
            "all_experiments".to_owned(),
            "fig18".to_owned(),
            "timing_stall_breakdown".to_owned(),
        ];
        let sections = vec!["fig18".to_owned(), "timing_stall_breakdown".to_owned()];
        let catalogue = registry
            .iter()
            .enumerate()
            .map(|(i, e)| CatalogueEntry {
                name: e.name.clone(),
                tag: e.tag.clone(),
                figure: e.figure.clone(),
                line: 100 + u32::try_from(i).unwrap_or(0),
            })
            .collect();
        (registry, bins, sections, catalogue)
    }

    #[test]
    fn a_coherent_catalogue_is_clean() {
        let (registry, bins, sections, catalogue) = world();
        let f = check(&registry, &bins, &sections, &catalogue, &paths());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn longest_name_wins_bin_matching() {
        let registry = vec![
            entry("fig1", "paper", "Figure 1"),
            entry("fig18", "paper", "Figure 18"),
        ];
        let owner = bin_owner("fig18_sweep", &registry);
        assert_eq!(owner.map(|e| e.name.as_str()), Some("fig18"));
        // `fig18x` extends neither name (no underscore separator).
        assert!(bin_owner("fig18x", &registry).is_none());
    }

    #[test]
    fn stray_bins_and_missing_bins_are_flagged() {
        let (registry, mut bins, sections, catalogue) = world();
        bins.push("fig99".to_owned()); // stray
        bins.retain(|b| b != "fig18"); // fig18 loses its binary
        let f = check(&registry, &bins, &sections, &catalogue, &paths());
        assert!(
            f.iter()
                .any(|x| x.message.contains("matches no ExperimentDescriptor")),
            "{f:?}"
        );
        assert!(
            f.iter().any(|x| x.message.contains("has no binary")),
            "{f:?}"
        );
    }

    #[test]
    fn driver_bins_are_exempt() {
        let (registry, mut bins, sections, catalogue) = world();
        bins.extend(DRIVER_BINS.iter().map(|b| (*b).to_owned()));
        let f = check(&registry, &bins, &sections, &catalogue, &paths());
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn snapshot_drift_is_flagged() {
        let (registry, bins, mut sections, catalogue) = world();
        sections.swap(0, 1);
        let f = check(&registry, &bins, &sections, &catalogue, &paths());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("out of registry order"),
            "{}",
            f[0].message
        );

        let (registry, bins, mut sections, catalogue) = world();
        sections.pop();
        let f = check(&registry, &bins, &sections, &catalogue, &paths());
        assert!(
            f.iter()
                .any(|x| x.message.contains("missing snapshot section")),
            "{f:?}"
        );
    }

    #[test]
    fn catalogue_field_drift_is_flagged() {
        let (registry, bins, sections, mut catalogue) = world();
        catalogue[0].tag = "circuit".to_owned();
        catalogue[1].figure = "Figure 7".to_owned();
        let f = check(&registry, &bins, &sections, &catalogue, &paths());
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].message.contains("tags"), "{}", f[0].message);
        assert!(f[1].message.contains("labels"), "{}", f[1].message);
    }
}
