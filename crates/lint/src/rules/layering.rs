//! Rule `layering`: the crate DAG matches the documented layer map.
//!
//! The README's "Workspace layout" block is the architecture contract:
//! each crate sits on a numbered layer and may depend only on crates of
//! *strictly lower* layers (so the graph is acyclic by construction and
//! a reader can learn the system bottom-up). This rule rebuilds the
//! real dependency graph from every `Cargo.toml` and checks:
//!
//! * the graph is acyclic (defence in depth — cargo would also refuse,
//!   but a cycle through the README map alone should not go unnoticed);
//! * every workspace crate appears in the README map and vice versa;
//! * the documented dependency list of each crate equals the real one
//!   (`smart-units` is implicit for every crate except itself, per the
//!   README's own convention);
//! * every dependency sits on a strictly lower layer than its dependent;
//! * `dev`-layer crates (tooling like `smart-lint`) may depend on
//!   anything but nothing may depend on them — they must stay outside
//!   the product graph.

use crate::rules::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// One workspace crate as read from its `Cargo.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrateInfo {
    /// Package name (e.g. `smart-spm`).
    pub name: String,
    /// Repo-relative manifest path, for findings.
    pub manifest: String,
    /// Workspace (`smart-*`) dependencies, normal + dev, sorted.
    pub deps: Vec<String>,
}

/// One line of the README layer map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerEntry {
    /// Crate name (e.g. `smart-spm`).
    pub name: String,
    /// Numbered layer, or `None` for the `dev` layer.
    pub layer: Option<u32>,
    /// Documented dependencies (`smart-units` left implicit).
    pub deps: Vec<String>,
    /// 1-based README line of the entry.
    pub line: u32,
}

/// The crate every other crate implicitly depends on.
const IMPLICIT_DEP: &str = "smart-units";

/// Runs the layering rule: `crates` from the manifests, `map` from the
/// README at `readme` (repo-relative path, for findings).
#[must_use]
pub fn check(crates: &[CrateInfo], map: &[LayerEntry], readme: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let by_name: BTreeMap<&str, &CrateInfo> = crates.iter().map(|c| (c.name.as_str(), c)).collect();
    let entries: BTreeMap<&str, &LayerEntry> = map.iter().map(|e| (e.name.as_str(), e)).collect();

    for cycle in cycles(crates) {
        findings.push(Finding {
            file: crates
                .iter()
                .find(|c| Some(&c.name) == cycle.first())
                .map_or_else(|| readme.to_owned(), |c| c.manifest.clone()),
            line: 0,
            rule: "layering",
            message: format!("dependency cycle: {}", cycle.join(" -> ")),
        });
    }

    for c in crates {
        let Some(entry) = entries.get(c.name.as_str()) else {
            findings.push(Finding {
                file: readme.to_owned(),
                line: 0,
                rule: "layering",
                message: format!("crate `{}` is missing from the README layer map", c.name),
            });
            continue;
        };
        // Documented deps + the implicit smart-units edge.
        let mut documented: BTreeSet<&str> = entry.deps.iter().map(String::as_str).collect();
        if c.name != IMPLICIT_DEP {
            documented.insert(IMPLICIT_DEP);
        }
        let real: BTreeSet<&str> = c.deps.iter().map(String::as_str).collect();
        for missing in real.difference(&documented) {
            findings.push(Finding {
                file: readme.to_owned(),
                line: entry.line,
                rule: "layering",
                message: format!(
                    "README omits the real dependency `{}` -> `{missing}`",
                    c.name
                ),
            });
        }
        for phantom in documented.difference(&real) {
            if *phantom == IMPLICIT_DEP {
                continue; // a crate may genuinely not use units yet
            }
            findings.push(Finding {
                file: readme.to_owned(),
                line: entry.line,
                rule: "layering",
                message: format!(
                    "README documents `{}` -> `{phantom}` but Cargo.toml has no such dependency",
                    c.name
                ),
            });
        }
        // Layer discipline.
        for dep in &c.deps {
            let Some(dep_entry) = entries.get(dep.as_str()) else {
                continue; // missing-from-map finding already emitted for dep
            };
            match (entry.layer, dep_entry.layer) {
                (_, None) => findings.push(Finding {
                    file: c.manifest.clone(),
                    line: 0,
                    rule: "layering",
                    message: format!(
                        "`{}` depends on dev-layer crate `{dep}`; dev tooling must stay \
                         outside the product graph",
                        c.name
                    ),
                }),
                (Some(mine), Some(theirs)) if theirs >= mine => findings.push(Finding {
                    file: readme.to_owned(),
                    line: entry.line,
                    rule: "layering",
                    message: format!(
                        "`{}` (layer {mine}) depends on `{dep}` (layer {theirs}); \
                         dependencies must sit on strictly lower layers",
                        c.name
                    ),
                }),
                _ => {}
            }
        }
    }

    for e in map {
        if !by_name.contains_key(e.name.as_str()) {
            findings.push(Finding {
                file: readme.to_owned(),
                line: e.line,
                rule: "layering",
                message: format!(
                    "README layer map lists `{}` but no such crate exists in the workspace",
                    e.name
                ),
            });
        }
    }
    findings
}

/// Every dependency cycle found by DFS, as `a -> b -> … -> a` paths.
fn cycles(crates: &[CrateInfo]) -> Vec<Vec<String>> {
    let graph: BTreeMap<&str, &[String]> = crates
        .iter()
        .map(|c| (c.name.as_str(), c.deps.as_slice()))
        .collect();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    let mut found = Vec::new();
    for c in crates {
        let mut path: Vec<&str> = Vec::new();
        dfs(c.name.as_str(), &graph, &mut path, &mut done, &mut found);
    }
    found
}

fn dfs<'a>(
    node: &'a str,
    graph: &BTreeMap<&'a str, &'a [String]>,
    path: &mut Vec<&'a str>,
    done: &mut BTreeSet<&'a str>,
    found: &mut Vec<Vec<String>>,
) {
    if let Some(start) = path.iter().position(|n| *n == node) {
        // lint:allow(index, start comes from position() over this same path vec)
        let mut cycle: Vec<String> = path[start..].iter().map(|s| (*s).to_owned()).collect();
        cycle.push(node.to_owned());
        found.push(cycle);
        return;
    }
    if done.contains(node) {
        return;
    }
    path.push(node);
    for dep in graph.get(node).copied().unwrap_or_default() {
        dfs(dep, graph, path, done, found);
    }
    path.pop();
    done.insert(node);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn krate(name: &str, deps: &[&str]) -> CrateInfo {
        CrateInfo {
            name: name.to_owned(),
            manifest: format!("crates/{}/Cargo.toml", name.trim_start_matches("smart-")),
            deps: deps.iter().map(|d| (*d).to_owned()).collect(),
        }
    }

    fn entry(name: &str, layer: Option<u32>, deps: &[&str], line: u32) -> LayerEntry {
        LayerEntry {
            name: name.to_owned(),
            layer,
            deps: deps.iter().map(|d| (*d).to_owned()).collect(),
            line,
        }
    }

    fn clean_world() -> (Vec<CrateInfo>, Vec<LayerEntry>) {
        (
            vec![
                krate("smart-units", &[]),
                krate("smart-sfq", &["smart-units"]),
                krate("smart-spm", &["smart-sfq", "smart-units"]),
                krate("smart-lint", &["smart-spm"]),
            ],
            vec![
                entry("smart-units", Some(0), &[], 10),
                entry("smart-sfq", Some(1), &[], 11),
                entry("smart-spm", Some(2), &["smart-sfq"], 12),
                entry("smart-lint", None, &["smart-spm"], 13),
            ],
        )
    }

    #[test]
    fn a_consistent_workspace_is_clean() {
        let (crates, map) = clean_world();
        let f = check(&crates, &map, "README.md");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cycles_are_reported_with_their_path() {
        let crates = vec![
            krate("smart-a", &["smart-b"]),
            krate("smart-b", &["smart-a"]),
        ];
        let map = vec![
            entry("smart-a", Some(1), &["smart-b"], 1),
            entry("smart-b", Some(1), &["smart-a"], 2),
        ];
        let f = check(&crates, &map, "README.md");
        assert!(
            f.iter().any(|x| x.message.contains("dependency cycle")),
            "{f:?}"
        );
    }

    #[test]
    fn same_layer_deps_are_flagged() {
        let (mut crates, mut map) = clean_world();
        // A second layer-1 crate; sfq grows a sideways dep on it.
        crates.push(krate("smart-ptl", &["smart-units"]));
        map.push(entry("smart-ptl", Some(1), &[], 14));
        crates[1].deps.push("smart-ptl".to_owned());
        map[1].deps.push("smart-ptl".to_owned());
        let f = check(&crates, &map, "README.md");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("strictly lower"), "{}", f[0].message);
    }

    #[test]
    fn undocumented_and_phantom_edges_are_flagged() {
        let (crates, mut map) = clean_world();
        map[2].deps.clear(); // README forgets spm -> sfq
        map[1].deps.push("smart-spm".to_owned()); // …and invents sfq -> spm
        let f = check(&crates, &map, "README.md");
        assert!(f.iter().any(|x| x.message.contains("omits")), "{f:?}");
        assert!(
            f.iter().any(|x| x.message.contains("no such dependency")),
            "{f:?}"
        );
    }

    #[test]
    fn crates_missing_from_either_side_are_flagged() {
        let (crates, mut map) = clean_world();
        map.remove(1); // sfq undocumented
        map.push(entry("smart-ghost", Some(3), &[], 40)); // documented, nonexistent
        let f = check(&crates, &map, "README.md");
        assert!(
            f.iter()
                .any(|x| x.message.contains("missing from the README")),
            "{f:?}"
        );
        assert!(
            f.iter().any(|x| x.message.contains("no such crate")),
            "{f:?}"
        );
    }

    #[test]
    fn depending_on_a_dev_layer_crate_is_flagged() {
        let (mut crates, mut map) = clean_world();
        // A dependency-free dev crate, so the seeded edge cannot also
        // form a cycle through smart-lint's own deps.
        crates.push(krate("smart-xtask", &[]));
        map.push(entry("smart-xtask", None, &[], 14));
        crates[2].deps.push("smart-xtask".to_owned());
        map[2].deps.push("smart-xtask".to_owned());
        let f = check(&crates, &map, "README.md");
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("outside the product graph"),
            "{}",
            f[0].message
        );
    }
}
