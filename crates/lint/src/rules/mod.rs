//! The rule engine: one module per rule class, one [`Finding`] type.
//!
//! Every rule function is **pure over injectable inputs** (lexed source,
//! dependency lists, registry names, snapshot text) so seeded violations
//! can be tested without touching the real workspace; the filesystem
//! walk that feeds them the real workspace lives in
//! [`crate::workspace`].

pub mod determinism;
pub mod layering;
pub mod panic_freedom;
pub mod registry;

/// Every rule id, in reporting order. `allow` covers malformed
/// `lint:allow` comments; the rest are the four rule classes (with
/// `index` the per-file slice-index sub-rule of the panic-freedom
/// class).
pub const RULES: &[&str] = &[
    "layering",
    "determinism",
    "panic_freedom",
    "index",
    "registry",
    "allow",
];

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative file the finding is in.
    pub file: String,
    /// 1-based line (0 when the finding is about a file as a whole).
    pub line: u32,
    /// The violated rule (one of [`RULES`]).
    pub rule: &'static str,
    /// What is wrong and what to do about it.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}",
            self.rule, self.file, self.line, self.message
        )
    }
}
