//! Rule `determinism`: no nondeterminism sources in result-feeding code.
//!
//! Golden snapshots, `bench_check`, and the persisted warm-start stores
//! all assume byte-identical output across runs, machines, and
//! `--jobs` values. Three constructs break that silently:
//!
//! * **wall-clock reads** — `Instant` / `SystemTime` values differ every
//!   run; elapsed-time reporting is welcome on *stderr* but must never
//!   reach stdout, `--json`, or store bytes (justify the stderr-only
//!   usage with `lint:allow(determinism, …)`);
//! * **environment reads** — `std::env` makes output depend on ambient
//!   state (the one legitimate reader, the shared CLI parser, carries a
//!   justification);
//! * **`HashMap` in snapshot-feeding modules** — iteration order is
//!   randomized across builds, so any map whose contents reach rendered
//!   tables or store bytes must be a `BTreeMap` or carry a justification
//!   explaining why its iteration order is never observed.
//!
//! Imports are exempt (a `use` line observes nothing); the usage sites
//! they enable are what gets flagged.
//!
//! A module is *snapshot-feeding* when it mentions any of the
//! [`FEEDING_MARKERS`] identifiers outside test code — the types and
//! methods through which bytes reach a `ResultTable`, the golden
//! snapshot, or a persisted store.

// lint:allow-file(index, token-stream scanning is positional; every index is guarded by the bounds check beside it)

use crate::allow::{allowed, Allow};
use crate::lexer::{Lexed, TokenKind};
use crate::rules::Finding;

/// Identifiers marking a module as snapshot-feeding: serialization
/// writers and result-table builders.
pub const FEEDING_MARKERS: &[&str] = &[
    "ByteWriter",
    "ResultTable",
    "push_row",
    "snapshot_entries",
    "to_bytes",
];

/// Whether `lx` is a snapshot-feeding module (sees [`FEEDING_MARKERS`]).
#[must_use]
pub fn is_snapshot_feeding(lx: &Lexed) -> bool {
    FEEDING_MARKERS.iter().any(|m| lx.has_ident(m))
}

/// Runs the determinism rule over one lexed file.
#[must_use]
pub fn check(file: &str, lx: &Lexed, allows: &[Allow], snapshot_feeding: bool) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut push = |line: u32, message: String| {
        if !allowed(allows, "determinism", line) {
            findings.push(Finding {
                file: file.to_owned(),
                line,
                rule: "determinism",
                message,
            });
        }
    };
    let tokens = &lx.tokens;
    // Inside a `use …;` item: an import alone observes nothing, so only
    // usage sites are findings (`use` is a keyword, so a bare `use`
    // ident can only open an import).
    let mut in_use = false;
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test {
            continue;
        }
        if t.kind == TokenKind::Punct(';') {
            in_use = false;
            continue;
        }
        let TokenKind::Ident(name) = &t.kind else {
            continue;
        };
        if name == "use" {
            in_use = true;
            continue;
        }
        if in_use {
            continue;
        }
        match name.as_str() {
            "Instant" | "SystemTime" => push(
                t.line,
                format!(
                    "wall-clock read `{name}` in non-test code; keep timing on stderr and \
                     justify with lint:allow(determinism, …)"
                ),
            ),
            "env" => {
                // The path `std::env` (tokens: std : : env).
                let is_std = i >= 3
                    && matches!(&tokens[i - 3].kind, TokenKind::Ident(s) if s == "std")
                    && tokens[i - 2].kind == TokenKind::Punct(':')
                    && tokens[i - 1].kind == TokenKind::Punct(':');
                if is_std {
                    push(
                        t.line,
                        "environment read `std::env` in non-test code makes output depend on \
                         ambient state"
                            .to_owned(),
                    );
                }
            }
            "HashMap" if snapshot_feeding => push(
                t.line,
                "`HashMap` in a snapshot-feeding module: iteration order is nondeterministic; \
                 use BTreeMap or justify that its order is never observed"
                    .to_owned(),
            ),
            _ => {}
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allow::parse_allows;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let lx = lex(src);
        let (allows, _) = parse_allows(&lx.comments);
        let feeding = is_snapshot_feeding(&lx);
        check("x.rs", &lx, &allows, feeding)
    }

    #[test]
    fn instant_in_result_code_is_flagged() {
        let f = run("fn f() { let t = Instant::now(); }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("Instant"), "{}", f[0].message);
    }

    #[test]
    fn justified_stderr_timing_passes() {
        let f = run(
            "// lint:allow(determinism, stderr-only timing, never in stdout bytes)\n\
             fn f() { let t = Instant::now(); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn std_env_reads_are_flagged_but_other_envs_are_not() {
        assert_eq!(run("fn f() { std::env::args(); }").len(), 1);
        // An `env!` macro or a local named env is not std::env.
        assert!(run("fn f() { let dir = env!(\"CARGO_MANIFEST_DIR\"); }").is_empty());
        assert!(run("fn f(env: u32) { use_it(env); }").is_empty());
    }

    #[test]
    fn hashmap_is_only_flagged_in_snapshot_feeding_modules() {
        // No feeding marker: HashMap is fine.
        assert!(run("fn f() { let m: HashMap<u32, u32> = HashMap::new(); }").is_empty());
        // With a marker in the module, every HashMap mention needs a reason.
        let f = run(
            "fn g(w: &mut ByteWriter) {} fn f() { let m: HashMap<u32, u32> = HashMap::new(); }",
        );
        assert_eq!(f.len(), 2, "{f:?}");
        // BTreeMap never is.
        assert!(run(
            "fn g(w: &mut ByteWriter) {} fn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }"
        )
        .is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let f = run("fn g(t: &ResultTable) {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn t() { let d = std::env::temp_dir(); let i = Instant::now(); }\n\
             }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn imports_are_exempt_but_usage_is_not() {
        let f = run("use std::time::Instant;\nuse std::collections::HashMap;\nfn f() {}");
        assert!(f.is_empty(), "{f:?}");
        let f = run("use std::time::Instant;\nfn f() { let t = Instant::now(); }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn instant_inside_strings_is_invisible() {
        assert!(run(r#"fn f() { let s = "Instant::now and std::env"; }"#).is_empty());
    }
}
