//! Rules `panic_freedom` and `index`: no unjustified panic sites in
//! library code.
//!
//! The persisted-store contract (PR 6) is "corruption costs a warm
//! start, never a crash", and the experiment engine promises a failed
//! experiment surfaces as an `Err` row, not an abort. Both die by a
//! stray `unwrap()`. In non-test *library* code (binaries own their
//! process and may exit however they like; test code panics by design):
//!
//! * `.unwrap()` / `.expect(…)` and `panic!` / `unreachable!` / `todo!` /
//!   `unimplemented!` each require an inline
//!   `// lint:allow(panic_freedom, <reason>)` on the same or previous
//!   line — the reason is the proof obligation ("the map was populated
//!   two lines up");
//! * slice/array indexing (`xs[i]`) is reported **per file** under the
//!   separate `index` rule: numeric kernels index in hundreds of places
//!   and a per-site justification would be noise, so a file either
//!   justifies its indexing discipline once with
//!   `// lint:allow-file(index, <reason>)` or annotates individual
//!   sites.
//!
//! `assert!`-family macros are deliberately exempt: an assert states an
//! invariant and is the *recommended* replacement for silent indexing.

// lint:allow-file(index, token-stream scanning is positional; every index is guarded by the bounds check beside it)

use crate::allow::{allowed, Allow};
use crate::lexer::{Lexed, TokenKind};
use crate::rules::Finding;

const PANIC_METHODS: &[&str] = &["unwrap", "expect"];
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that may directly precede a `[` opening an array literal or
/// type (`for x in [..]`, `return [..]`); a keyword is never a value, so
/// `keyword[` is not an index expression. `self` is deliberately absent
/// — `self[i]` indexes via an `Index` impl.
const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "else", "in", "let", "loop", "match", "move", "mut", "ref",
    "return", "static", "while", "yield",
];

/// Runs the panic-freedom and index rules over one lexed library file.
#[must_use]
pub fn check(file: &str, lx: &Lexed, allows: &[Allow]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let tokens = &lx.tokens;
    let mut index_sites: Vec<u32> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test {
            continue;
        }
        match &t.kind {
            TokenKind::Ident(name) => {
                let method = PANIC_METHODS.contains(&name.as_str())
                    && i > 0
                    && tokens[i - 1].kind == TokenKind::Punct('.')
                    && i + 1 < tokens.len()
                    && tokens[i + 1].kind == TokenKind::Punct('(');
                let mac = PANIC_MACROS.contains(&name.as_str())
                    && i + 1 < tokens.len()
                    && tokens[i + 1].kind == TokenKind::Punct('!');
                if (method || mac) && !allowed(allows, "panic_freedom", t.line) {
                    let what = if method {
                        format!(".{name}()")
                    } else {
                        format!("{name}!")
                    };
                    findings.push(Finding {
                        file: file.to_owned(),
                        line: t.line,
                        rule: "panic_freedom",
                        message: format!(
                            "`{what}` in non-test library code; return a SmartError or justify \
                             with lint:allow(panic_freedom, …)"
                        ),
                    });
                }
            }
            TokenKind::Punct('[') => {
                // An index expression: `[` directly after a value (ident,
                // `]`, or `)`), as opposed to a type, attribute, or array
                // literal position.
                let indexes = i > 0
                    && match &tokens[i - 1].kind {
                        TokenKind::Ident(name) => !KEYWORDS.contains(&name.as_str()),
                        TokenKind::Punct(p) => *p == ']' || *p == ')',
                        _ => false,
                    };
                if indexes && !allowed(allows, "index", t.line) {
                    index_sites.push(t.line);
                }
            }
            _ => {}
        }
    }
    if let Some(first) = index_sites.first() {
        findings.push(Finding {
            file: file.to_owned(),
            line: *first,
            rule: "index",
            message: format!(
                "{} unchecked slice/array index expression(s) (first here) in non-test library \
                 code; use get()/asserts or justify once with lint:allow-file(index, …)",
                index_sites.len()
            ),
        });
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allow::parse_allows;
    use crate::lexer::lex;

    fn run(src: &str) -> Vec<Finding> {
        let lx = lex(src);
        let (allows, _) = parse_allows(&lx.comments);
        check("x.rs", &lx, &allows)
    }

    #[test]
    fn unwrap_and_expect_calls_are_flagged() {
        let f = run("fn f() { x.unwrap(); y.expect(\"msg\"); }");
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "panic_freedom"));
    }

    #[test]
    fn panic_family_macros_are_flagged() {
        let f = run("fn f() { panic!(\"boom\"); unreachable!(); todo!(); unimplemented!(); }");
        assert_eq!(f.len(), 4, "{f:?}");
    }

    #[test]
    fn justified_sites_pass() {
        let f = run("fn f() {\n\
             // lint:allow(panic_freedom, the cell was initialized on the line above)\n\
             x.unwrap();\n\
             }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        assert!(run("fn f() { x.unwrap_or_else(|| 0); y.unwrap_or_default(); }").is_empty());
    }

    #[test]
    fn unwrap_in_a_raw_string_or_comment_is_invisible() {
        assert!(
            run(r###"fn f() { let s = r#".unwrap() and panic!"#; } // .unwrap()"###).is_empty()
        );
    }

    #[test]
    fn test_code_panics_freely() {
        let f = run("#[cfg(test)]\n\
             mod tests {\n\
                 #[test] fn t() { x.unwrap(); panic!(); let v = xs[0]; }\n\
             }");
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn indexing_is_one_finding_per_file() {
        let f = run("fn f(xs: &[u32], i: usize) -> u32 { xs[i] + xs[i + 1] + xs[0] }");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "index");
        assert!(f[0].message.starts_with("3 unchecked"), "{}", f[0].message);
    }

    #[test]
    fn allow_file_clears_indexing() {
        let f = run(
            "// lint:allow-file(index, every access is bounds-asserted at entry)\n\
             fn f(xs: &[u32], i: usize) -> u32 { xs[i] }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn array_literals_after_keywords_are_not_index_sites() {
        assert!(run(
            "fn f() -> [f64; 3] { for dk in [-1.0, 0.0, 1.0] { use_it(dk); } return [0.0; 3]; }"
        )
        .is_empty());
    }

    #[test]
    fn types_attributes_and_literals_are_not_index_sites() {
        assert!(run("#[derive(Debug)]\n\
             struct S { a: [u64; 4] }\n\
             fn f() -> Vec<[u8; 2]> { vec![[1, 2], [3, 4]] }")
        .is_empty());
    }

    #[test]
    fn asserts_are_exempt() {
        assert!(
            run("fn f(x: u32) { assert!(x > 0); assert_eq!(x, 1); debug_assert!(true); }")
                .is_empty()
        );
    }
}
