//! Reading the real workspace: manifests, source files, README blocks,
//! snapshot sections.
//!
//! Everything here produces the plain data structures the rule modules
//! consume, so the rules stay testable on seeded inputs. The parsers
//! are deliberately narrow: they understand exactly the conventions
//! this repository uses (section-per-line `Cargo.toml`s, the fenced
//! `## Workspace layout` map, the fenced `### Experiment catalogue`)
//! and nothing more.

use crate::rules::layering::{CrateInfo, LayerEntry};
use crate::rules::registry::CatalogueEntry;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// How a source file is linted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code: all rules apply.
    Lib,
    /// A binary under `src/bin/`: determinism applies (its stdout may
    /// be snapshot bytes) but panic-freedom does not (a binary owns its
    /// process).
    Bin,
}

/// One source file of the workspace.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Repo-relative path with `/` separators.
    pub rel: String,
    /// Absolute path to read.
    pub path: PathBuf,
    /// Lib or bin.
    pub kind: FileKind,
}

/// Parses every workspace crate manifest: the root package plus each
/// `crates/*` member (the `vendor/` shims are third-party API stands-in
/// and exempt).
pub fn scan_crates(root: &Path) -> io::Result<Vec<CrateInfo>> {
    let mut out = Vec::new();
    let text = fs::read_to_string(root.join("Cargo.toml"))?;
    if let Some(info) = parse_manifest(&text, "Cargo.toml") {
        out.push(info);
    }
    for dir in sorted_dirs(&root.join("crates"))? {
        let manifest = dir.join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        let rel = format!(
            "crates/{}/Cargo.toml",
            dir.file_name().unwrap_or_default().to_string_lossy()
        );
        let text = fs::read_to_string(&manifest)?;
        if let Some(info) = parse_manifest(&text, &rel) {
            out.push(info);
        }
    }
    Ok(out)
}

/// Parses one `Cargo.toml`: package name plus every `smart-*` key under
/// `[dependencies]` / `[dev-dependencies]`. Returns `None` for
/// manifests with no `[package]` section.
#[must_use]
pub fn parse_manifest(text: &str, rel: &str) -> Option<CrateInfo> {
    let mut section = String::new();
    let mut name: Option<String> = None;
    let mut deps = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if let Some(head) = line.strip_prefix('[') {
            section = head.trim_end_matches(']').to_owned();
            continue;
        }
        if section == "package" {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(v) = rest.strip_prefix('=') {
                    name = Some(v.trim().trim_matches('"').to_owned());
                }
            }
        }
        if section == "dependencies" || section == "dev-dependencies" {
            let key: String = line
                .chars()
                .take_while(|c| !c.is_whitespace() && *c != '.' && *c != '=')
                .collect();
            if key.starts_with("smart-") && !deps.contains(&key) {
                deps.push(key);
            }
        }
    }
    deps.sort();
    Some(CrateInfo {
        name: name?,
        manifest: rel.to_owned(),
        deps,
    })
}

/// Every lintable `.rs` file: `src/` trees of the root package and each
/// `crates/*` member, sorted by path. Integration tests (`tests/`),
/// benches, and the vendored shims are out of scope by construction.
pub fn source_files(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    walk_src(&root.join("src"), "src", &mut out)?;
    for dir in sorted_dirs(&root.join("crates"))? {
        let src = dir.join("src");
        if src.is_dir() {
            let rel = format!(
                "crates/{}/src",
                dir.file_name().unwrap_or_default().to_string_lossy()
            );
            walk_src(&src, &rel, &mut out)?;
        }
    }
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn walk_src(dir: &Path, rel: &str, out: &mut Vec<SourceFile>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        let child_rel = format!("{rel}/{name}");
        if path.is_dir() {
            walk_src(&path, &child_rel, out)?;
        } else if name.ends_with(".rs") {
            let kind = if child_rel.contains("/bin/") {
                FileKind::Bin
            } else {
                FileKind::Lib
            };
            out.push(SourceFile {
                rel: child_rel,
                path,
                kind,
            });
        }
    }
    Ok(())
}

/// The binary stems under `crates/bench/src/bin/`, sorted.
pub fn bin_stems(root: &Path) -> io::Result<Vec<String>> {
    let dir = root.join("crates/bench/src/bin");
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name().to_string_lossy().into_owned();
        if let Some(stem) = name.strip_suffix(".rs") {
            out.push(stem.to_owned());
        }
    }
    out.sort();
    Ok(out)
}

fn sorted_dirs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    out.sort();
    Ok(out)
}

/// The fenced ```text block following `heading`, with the 1-based line
/// number of each content line.
fn fenced_block<'a>(text: &'a str, heading: &str) -> Vec<(u32, &'a str)> {
    let mut out = Vec::new();
    let mut seen_heading = false;
    let mut in_block = false;
    for (i, line) in text.lines().enumerate() {
        let lineno = u32::try_from(i).unwrap_or(u32::MAX).saturating_add(1);
        if !seen_heading {
            seen_heading = line.trim() == heading;
            continue;
        }
        if !in_block {
            if line.trim_start().starts_with("```") {
                in_block = true;
            }
            continue;
        }
        if line.trim_start().starts_with("```") {
            break;
        }
        out.push((lineno, line));
    }
    out
}

/// Parses the README's `## Workspace layout` fenced map into
/// [`LayerEntry`] values. Lines look like
///
/// ```text
/// layer 2   smart-josim    ← sfq            (transient circuit simulator)
///           smart-cryomem  ← sfq            (cryogenic memory models)
/// dev       smart-lint     ← bench          (workspace lints)
/// ```
///
/// — a `layer N` / `dev` prefix opens a layer, indented lines continue
/// it, `←` introduces the dependency list (cut at `(` or `—`), and bare
/// dependency names get the `smart-` prefix.
#[must_use]
pub fn parse_layer_map(readme: &str) -> Vec<LayerEntry> {
    let mut out = Vec::new();
    let mut layer: Option<Option<u32>> = None;
    for (lineno, raw) in fenced_block(readme, "## Workspace layout") {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let rest = if let Some(r) = line.strip_prefix("layer") {
            let r = r.trim_start();
            let digits: String = r.chars().take_while(char::is_ascii_digit).collect();
            let Ok(n) = digits.parse::<u32>() else {
                continue;
            };
            layer = Some(Some(n));
            r.trim_start_matches(|c: char| c.is_ascii_digit())
                .trim_start()
        } else if let Some(r) = line.strip_prefix("dev") {
            layer = Some(None);
            r.trim_start()
        } else {
            line
        };
        let Some(current) = layer else {
            continue;
        };
        let Some(name) = rest.split_whitespace().next() else {
            continue;
        };
        if name != "smart" && !name.starts_with("smart-") {
            continue;
        }
        let mut deps = Vec::new();
        if let Some((_, tail)) = rest.split_once('←') {
            let tail = tail.split('(').next().unwrap_or(tail);
            let tail = tail.split('—').next().unwrap_or(tail);
            for dep in tail.split(',') {
                let dep = dep.trim();
                if dep.is_empty() {
                    continue;
                }
                if dep == "smart" || dep.starts_with("smart-") {
                    deps.push(dep.to_owned());
                } else {
                    deps.push(format!("smart-{dep}"));
                }
            }
        }
        deps.sort();
        out.push(LayerEntry {
            name: name.to_owned(),
            layer: current,
            deps,
            line: lineno,
        });
    }
    out
}

/// Parses the README's `### Experiment catalogue` fenced block: the
/// `--list` columns `name  tag  figure`.
#[must_use]
pub fn parse_catalogue(readme: &str) -> Vec<CatalogueEntry> {
    let mut out = Vec::new();
    for (lineno, raw) in fenced_block(readme, "### Experiment catalogue") {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        let Some((name, rest)) = line.split_once(char::is_whitespace) else {
            continue;
        };
        let rest = rest.trim_start();
        let (tag, figure) = match rest.split_once(char::is_whitespace) {
            Some((t, f)) => (t, f.trim_start()),
            None => (rest, ""),
        };
        out.push(CatalogueEntry {
            name: name.to_owned(),
            tag: tag.to_owned(),
            figure: figure.to_owned(),
            line: lineno,
        });
    }
    out
}

/// The `==== name ====` section headers of a golden snapshot, in file
/// order.
#[must_use]
pub fn snapshot_sections(snapshot: &str) -> Vec<String> {
    snapshot
        .lines()
        .filter_map(|l| {
            l.strip_prefix("==== ")
                .and_then(|r| r.strip_suffix(" ===="))
                .map(str::to_owned)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifests_parse_name_and_smart_deps() {
        let toml = "[package]\nname = \"smart-spm\"\n\n[dependencies]\n\
                    smart-sfq.workspace = true\nsmart-units.workspace = true\n\
                    proptest.workspace = true\n\n[dev-dependencies]\n\
                    smart-cryomem = { workspace = true }\n";
        let info = parse_manifest(toml, "crates/spm/Cargo.toml").expect("package section");
        assert_eq!(info.name, "smart-spm");
        assert_eq!(info.deps, ["smart-cryomem", "smart-sfq", "smart-units"]);
    }

    #[test]
    fn workspace_dependency_tables_are_not_package_deps() {
        let toml = "[workspace.dependencies]\nsmart-sfq = { path = \"x\" }\n\n\
                    [package]\nname = \"smart\"\n";
        let info = parse_manifest(toml, "Cargo.toml").expect("package section");
        assert!(info.deps.is_empty(), "{:?}", info.deps);
    }

    #[test]
    fn layer_map_lines_parse_layers_continuations_and_deps() {
        let readme = "intro\n\n## Workspace layout\n\nblah\n\n```text\n\
                      layer 0   smart-units    — depends on nothing\n\
                      layer 2   smart-josim    ← sfq            (transient sim)\n\
                                smart-cryomem  ← sfq — memory models\n\
                      dev       smart-lint     ← bench\n\
                      ```\n";
        let map = parse_layer_map(readme);
        assert_eq!(map.len(), 4, "{map:?}");
        assert_eq!(map[0].name, "smart-units");
        assert_eq!(map[0].layer, Some(0));
        assert!(map[0].deps.is_empty());
        assert_eq!(map[1].deps, ["smart-sfq"]);
        assert_eq!(map[2].layer, Some(2), "continuation keeps the layer");
        assert_eq!(map[2].deps, ["smart-sfq"], "deps cut at the em dash");
        assert_eq!(map[3].layer, None, "dev layer has no number");
        assert_eq!(map[3].deps, ["smart-bench"]);
        assert_eq!(map[1].line, 9, "1-based README lines");
    }

    #[test]
    fn catalogue_lines_split_into_three_columns() {
        let readme = "## X\n\n### Experiment catalogue\n\n```text\n\
                      fig18                    paper     Figure 18\n\
                      timing_stall_breakdown   timing    -\n\
                      ```\n";
        let cat = parse_catalogue(readme);
        assert_eq!(cat.len(), 2);
        assert_eq!(
            (
                cat[0].name.as_str(),
                cat[0].tag.as_str(),
                cat[0].figure.as_str()
            ),
            ("fig18", "paper", "Figure 18")
        );
        assert_eq!(cat[1].figure, "-");
    }

    #[test]
    fn snapshot_headers_parse_in_order() {
        let s = "==== fig02 ====\nrows\n==== table1 ====\nmore\n";
        assert_eq!(snapshot_sections(s), ["fig02", "table1"]);
    }
}
