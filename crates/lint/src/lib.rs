//! `smart-lint`: workspace static analysis for the SMART reproduction.
//!
//! A dev-layer tool (nothing in the product graph may depend on it)
//! that enforces the four repository-wide contracts the compiler
//! cannot:
//!
//! * **layering** ([`rules::layering`]) — the crate DAG rebuilt from
//!   every `Cargo.toml` must be acyclic, match the README layer map
//!   edge for edge, and respect strictly-downward layer numbering;
//! * **determinism** ([`rules::determinism`]) — no wall-clock or
//!   environment reads, and no `HashMap` iteration, in code feeding
//!   `ResultTable`s, golden snapshots, or persisted-store bytes;
//! * **panic-freedom** ([`rules::panic_freedom`]) — no unjustified
//!   `unwrap`/`expect`/`panic!` family calls or unchecked indexing in
//!   non-test library code;
//! * **registry coherence** ([`rules::registry`]) — binaries, golden
//!   snapshot sections, and the README catalogue all agree with the
//!   `ExperimentDescriptor` table.
//!
//! Findings are suppressed only by a written justification
//! (`// lint:allow(rule, reason)`, see [`allow`]); a malformed or
//! reason-less justification is itself a finding. The scanner is a
//! hand-rolled lexer ([`lexer`]) rather than regexes so that raw
//! strings, nested block comments, lifetimes, and `#[cfg(test)]`
//! regions are classified correctly — see the adversarial tests there.

pub mod allow;
pub mod lexer;
pub mod rules;
pub mod workspace;

pub use rules::{Finding, RULES};

use rules::registry::{Paths, RegistryEntry};
use std::fs;
use std::io;
use std::path::Path;

/// The experiment registry as the lint sees it, straight from
/// `smart_bench`'s descriptor table (so the lint can never drift from
/// the thing it checks others against).
#[must_use]
pub fn registry_entries() -> Vec<RegistryEntry> {
    smart_bench::registry::REGISTRY
        .iter()
        .map(|d| RegistryEntry {
            name: d.name.to_owned(),
            tag: d.group.tag().to_owned(),
            figure: d.figure.to_owned(),
        })
        .collect()
}

/// Repo-relative path of the golden snapshot the registry rule checks.
pub const SNAPSHOT_PATH: &str = "tests/snapshots/all_experiments.txt";

/// Lints the workspace rooted at `root` and returns every finding,
/// sorted by file, line, and rule.
///
/// # Errors
///
/// Returns the underlying [`io::Error`] when a manifest, source file,
/// the README, or the golden snapshot cannot be read — a lint that
/// cannot see the workspace must fail loudly, not report a clean run.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();

    // Layering: real crate graph vs the README layer map.
    let crates = workspace::scan_crates(root)?;
    let readme = fs::read_to_string(root.join("README.md"))?;
    let map = workspace::parse_layer_map(&readme);
    findings.extend(rules::layering::check(&crates, &map, "README.md"));

    // Per-file rules.
    for file in workspace::source_files(root)? {
        let src = fs::read_to_string(&file.path)?;
        let lx = lexer::lex(&src);
        let (allows, bad) = allow::parse_allows(&lx.comments);
        for b in bad {
            findings.push(Finding {
                file: file.rel.clone(),
                line: b.line,
                rule: "allow",
                message: b.message,
            });
        }
        let feeding = rules::determinism::is_snapshot_feeding(&lx);
        findings.extend(rules::determinism::check(&file.rel, &lx, &allows, feeding));
        if file.kind == workspace::FileKind::Lib {
            findings.extend(rules::panic_freedom::check(&file.rel, &lx, &allows));
        }
    }

    // Registry coherence across binaries, snapshot, and README.
    let registry = registry_entries();
    let bins = workspace::bin_stems(root)?;
    let snapshot = fs::read_to_string(root.join(SNAPSHOT_PATH))?;
    let sections = workspace::snapshot_sections(&snapshot);
    let catalogue = workspace::parse_catalogue(&readme);
    let paths = Paths {
        bin_dir: "crates/bench/src/bin".to_owned(),
        snapshot: SNAPSHOT_PATH.to_owned(),
        readme: "README.md".to_owned(),
    };
    findings.extend(rules::registry::check(
        &registry, &bins, &sections, &catalogue, &paths,
    ));

    findings.sort();
    Ok(findings)
}
