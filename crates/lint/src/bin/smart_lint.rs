//! `smart_lint` — run the workspace lints and report findings.
//!
//! ```text
//! smart_lint                 lint the workspace, text findings
//! smart_lint --check         same; CI spelling of "fail on findings"
//! smart_lint --json          machine-readable findings
//! smart_lint --filter RULE   only findings whose rule contains RULE
//! smart_lint --list          the rules and what they enforce
//! smart_lint --root DIR      lint a different workspace root
//! ```
//!
//! Exits `0` when every rule passes (or every finding is justified with
//! a written `lint:allow`), `1` when findings remain, `2` on usage
//! errors — the same contract as the other `smart-bench`-style
//! binaries.

use smart_bench::cli::{CliSpec, ExtraFlag, Format};
use smart_lint::{lint_workspace, Finding, RULES};
use std::path::Path;
use std::process::ExitCode;

const SPEC: CliSpec = CliSpec {
    bin: "smart_lint",
    about: "workspace static analysis: layering, determinism, panic-freedom, registry coherence",
    extras: &[ExtraFlag {
        flag: "--root",
        value: Some("DIR"),
        help: "workspace root to lint (default: this checkout)",
    }],
    positional: None,
};

/// One-line description per rule, for `--list`.
const RULE_HELP: &[(&str, &str)] = &[
    (
        "layering",
        "crate DAG is acyclic and matches the README layer map",
    ),
    (
        "determinism",
        "no clock/env reads or HashMap order in result-feeding code",
    ),
    (
        "panic_freedom",
        "no unjustified unwrap/expect/panic! in library code",
    ),
    (
        "index",
        "no unjustified slice indexing in library code (per file)",
    ),
    (
        "registry",
        "bins, snapshot sections, README catalogue match the registry",
    ),
    (
        "allow",
        "every lint:allow names a real rule and carries a reason",
    ),
];

fn main() -> ExitCode {
    let args = SPEC.parse_env_or_exit();
    if args.list {
        for (rule, help) in RULE_HELP {
            println!("{rule:<16} {help}");
        }
        return ExitCode::SUCCESS;
    }
    let default_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let root = args.value_of("--root").unwrap_or(default_root).to_owned();
    let findings = match lint_workspace(Path::new(&root)) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("smart_lint: cannot read workspace at {root}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let findings: Vec<Finding> = findings
        .into_iter()
        .filter(|f| {
            args.filters.is_empty() || args.filters.iter().any(|p| f.rule.contains(p.as_str()))
        })
        .collect();

    match args.format {
        Format::Text => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!(
                "smart_lint: {} finding(s) across {} rule(s)",
                findings.len(),
                RULES.len()
            );
        }
        Format::Json => println!("{}", to_json(&findings)),
        Format::Csv => {
            println!("rule,file,line,message");
            for f in &findings {
                println!(
                    "{},{},{},\"{}\"",
                    f.rule,
                    f.file,
                    f.line,
                    f.message.replace('"', "\"\"")
                );
            }
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            escape(f.rule),
            escape(&f.file),
            f.line,
            escape(&f.message)
        ));
    }
    out.push_str(&format!("],\"count\":{}}}", findings.len()));
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
