//! A small hand-rolled Rust lexer — just enough token structure for the
//! lint rules, with zero dependencies (the workspace's offline vendoring
//! policy applies to dev tooling too).
//!
//! The rules need four things a regex over raw source cannot deliver:
//!
//! * **string-literal opacity** — `"call .unwrap() here"` and
//!   `r#"// unwrap()"#` must not look like a panic site, so raw strings
//!   (any `#` depth), byte strings, and escapes are consumed as single
//!   [`TokenKind::StrLit`] tokens;
//! * **comment extraction** — `// lint:allow(...)` justifications live in
//!   comments, so comments are collected (with line numbers) instead of
//!   discarded, and nested `/* /* */ */` block comments are balanced;
//! * **lifetimes vs. char literals** — `'a` in `&'a str` is a
//!   [`TokenKind::Lifetime`], `'a'` is a [`TokenKind::CharLit`]; naive
//!   quote matching would swallow the rest of the file;
//! * **test-region tracking** — tokens inside `#[cfg(test)]` / `#[test]`
//!   items and `mod tests { ... }` blocks are flagged `in_test`, because
//!   every rule exempts test code.
//!
//! The lexer is loss-tolerant by design: anything it does not recognize
//! becomes a one-character [`TokenKind::Punct`], and malformed source
//! (which `rustc` would reject anyway) degrades to harmless tokens rather
//! than an error.

// lint:allow-file(index, a lexer is positional by nature; every index below is bounded by the length checks directly beside it)

/// What a token is, as coarsely as the rules need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `fn`, `HashMap`).
    Ident(String),
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A character or byte literal (`'x'`, `b'\n'`).
    CharLit,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    StrLit,
    /// A numeric literal.
    NumLit,
    /// Any single punctuation character.
    Punct(char),
}

/// One lexed token with its location and test-region flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub kind: TokenKind,
    /// 1-based source line the token starts on.
    pub line: u32,
    /// Whether the token sits inside a test region (`#[cfg(test)]` /
    /// `#[test]` item or `mod tests { … }` block).
    pub in_test: bool,
}

/// One comment (line or block), with delimiters stripped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// The comment text without `//` / `/* */` delimiters.
    pub text: String,
    /// 1-based source line the comment starts on.
    pub line: u32,
}

/// The output of [`lex`]: the token stream plus the comments beside it.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order (doc comments included).
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// Whether any non-test token is the identifier `name`.
    #[must_use]
    pub fn has_ident(&self, name: &str) -> bool {
        self.tokens
            .iter()
            .any(|t| !t.in_test && matches!(&t.kind, TokenKind::Ident(s) if s == name))
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Consumes a `"…"` string with escapes, starting at the opening quote;
/// returns (index past the closing quote, newlines crossed).
fn scan_string(chars: &[char], mut j: usize) -> (usize, u32) {
    let n = chars.len();
    let mut nl = 0;
    j += 1;
    while j < n {
        match chars[j] {
            // A line-continuation escape (`\` at end of line) still
            // crosses a newline; miscounting here silently shifts every
            // finding below the string.
            '\\' => {
                if chars.get(j + 1) == Some(&'\n') {
                    nl += 1;
                }
                j += 2;
            }
            '"' => {
                j += 1;
                break;
            }
            '\n' => {
                nl += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (j.min(n), nl)
}

/// Consumes a raw string starting at the first `#` or `"` after the `r`;
/// `None` if this is not a raw string head (e.g. a raw identifier
/// `r#match`).
fn scan_raw_string(chars: &[char], mut j: usize) -> Option<(usize, u32)> {
    let n = chars.len();
    let mut hashes = 0usize;
    while j < n && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || chars[j] != '"' {
        return None;
    }
    j += 1;
    let mut nl = 0;
    while j < n {
        if chars[j] == '\n' {
            nl += 1;
            j += 1;
        } else if chars[j] == '"' {
            let mut k = j + 1;
            let mut h = 0usize;
            while k < n && h < hashes && chars[k] == '#' {
                h += 1;
                k += 1;
            }
            if h == hashes {
                return Some((k, nl));
            }
            j += 1;
        } else {
            j += 1;
        }
    }
    Some((j, nl))
}

/// Consumes a char/byte literal starting at the opening `'` (the caller
/// has already decided this is not a lifetime); returns the index past
/// the closing quote.
fn scan_char(chars: &[char], mut j: usize) -> usize {
    let n = chars.len();
    j += 1;
    while j < n {
        match chars[j] {
            '\\' => j += 2,
            '\'' => return j + 1,
            _ => j += 1,
        }
    }
    n
}

/// Lexes `src` into tokens and comments, then marks test regions.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let push = |out: &mut Lexed, kind: TokenKind, line: u32| {
        out.tokens.push(Token {
            kind,
            line,
            in_test: false,
        });
    };
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (doc comments included: they still carry allows).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && chars[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                text: chars[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }
        // Block comment, nesting balanced.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start_line = line;
            let text_start = i + 2;
            let mut depth = 1usize;
            let mut j = text_start;
            while j < n && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if chars[j] == '/' && j + 1 < n && chars[j + 1] == '*' {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && j + 1 < n && chars[j + 1] == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let text_end = j.saturating_sub(2).max(text_start).min(n);
            out.comments.push(Comment {
                text: chars[text_start..text_end].iter().collect(),
                line: start_line,
            });
            i = j;
            continue;
        }
        // Raw strings: r"…", r#"…"# (any depth). A raw identifier
        // (`r#match`) fails the scan and falls through to the ident arm.
        if c == 'r' && i + 1 < n && (chars[i + 1] == '"' || chars[i + 1] == '#') {
            if let Some((end, nl)) = scan_raw_string(&chars, i + 1) {
                push(&mut out, TokenKind::StrLit, line);
                line += nl;
                i = end;
                continue;
            }
        }
        // Byte literals: b"…", b'…', br"…", br#"…"#.
        if c == 'b' && i + 1 < n {
            if chars[i + 1] == '"' {
                let (end, nl) = scan_string(&chars, i + 1);
                push(&mut out, TokenKind::StrLit, line);
                line += nl;
                i = end;
                continue;
            }
            if chars[i + 1] == '\'' {
                let end = scan_char(&chars, i + 1);
                push(&mut out, TokenKind::CharLit, line);
                i = end;
                continue;
            }
            if chars[i + 1] == 'r' && i + 2 < n && (chars[i + 2] == '"' || chars[i + 2] == '#') {
                if let Some((end, nl)) = scan_raw_string(&chars, i + 2) {
                    push(&mut out, TokenKind::StrLit, line);
                    line += nl;
                    i = end;
                    continue;
                }
            }
        }
        if c == '"' {
            let (end, nl) = scan_string(&chars, i);
            push(&mut out, TokenKind::StrLit, line);
            line += nl;
            i = end;
            continue;
        }
        // Lifetime vs. char literal.
        if c == '\'' {
            if i + 1 < n && chars[i + 1] == '\\' {
                let end = scan_char(&chars, i);
                push(&mut out, TokenKind::CharLit, line);
                i = end;
                continue;
            }
            if i + 1 < n && is_ident_start(chars[i + 1]) {
                let mut j = i + 2;
                while j < n && is_ident_continue(chars[j]) {
                    j += 1;
                }
                if j == i + 2 && j < n && chars[j] == '\'' {
                    // Exactly one ident char then a quote: 'x'.
                    push(&mut out, TokenKind::CharLit, line);
                    i = j + 1;
                } else {
                    // 'a, 'static, '_ — a lifetime.
                    push(&mut out, TokenKind::Lifetime, line);
                    i = j;
                }
                continue;
            }
            if i + 2 < n && chars[i + 2] == '\'' {
                // Non-ident char literal: '*', ' '.
                push(&mut out, TokenKind::CharLit, line);
                i += 3;
                continue;
            }
            push(&mut out, TokenKind::Punct('\''), line);
            i += 1;
            continue;
        }
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            if j + 1 < n && chars[j] == '.' && chars[j + 1].is_ascii_digit() {
                j += 1;
                while j < n && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
            }
            push(&mut out, TokenKind::NumLit, line);
            i = j;
            continue;
        }
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < n && is_ident_continue(chars[j]) {
                j += 1;
            }
            push(
                &mut out,
                TokenKind::Ident(chars[i..j].iter().collect()),
                line,
            );
            i = j;
            continue;
        }
        push(&mut out, TokenKind::Punct(c), line);
        i += 1;
    }
    mark_test_regions(&mut out.tokens);
    out
}

fn is_punct(t: &Token, c: char) -> bool {
    t.kind == TokenKind::Punct(c)
}

fn is_ident(t: &Token, s: &str) -> bool {
    matches!(&t.kind, TokenKind::Ident(i) if i == s)
}

/// Index of the `]` matching the `[` at `open` (nesting balanced); the
/// last token if unbalanced.
fn match_square(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if is_punct(t, '[') {
            depth += 1;
        } else if is_punct(t, ']') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// Index of the `}` matching the `{` at `open`; the last token if
/// unbalanced.
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if is_punct(t, '{') {
            depth += 1;
        } else if is_punct(t, '}') {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    tokens.len().saturating_sub(1)
}

/// End index of the item starting at `from`: the `}` closing its first
/// top-level brace, or the first `;` outside any parens/brackets (a
/// braceless item like `use …;` or a tuple struct).
fn item_end(tokens: &[Token], from: usize) -> usize {
    let mut paren = 0i32;
    let mut square = 0i32;
    for (j, t) in tokens.iter().enumerate().skip(from) {
        match t.kind {
            TokenKind::Punct('(') => paren += 1,
            TokenKind::Punct(')') => paren -= 1,
            TokenKind::Punct('[') => square += 1,
            TokenKind::Punct(']') => square -= 1,
            TokenKind::Punct('{') => return match_brace(tokens, j),
            TokenKind::Punct(';') if paren == 0 && square == 0 => return j,
            _ => {}
        }
    }
    tokens.len().saturating_sub(1)
}

/// Flags every token inside a test region: an item annotated
/// `#[cfg(test)]` / `#[test]` (but not `#[cfg(not(test))]`), or a
/// `mod tests { … }` block.
fn mark_test_regions(tokens: &mut [Token]) {
    let n = tokens.len();
    let mut i = 0usize;
    while i < n {
        if i + 1 < n && is_punct(&tokens[i], '#') && is_punct(&tokens[i + 1], '[') {
            let close = match_square(tokens, i + 1);
            let mut has_test = false;
            let mut has_not = false;
            for t in tokens.iter().take(close + 1).skip(i) {
                if is_ident(t, "test") {
                    has_test = true;
                }
                if is_ident(t, "not") {
                    has_not = true;
                }
            }
            if has_test && !has_not {
                // Skip any further attributes between this one and the item.
                let mut j = close + 1;
                while j + 1 < n && is_punct(&tokens[j], '#') && is_punct(&tokens[j + 1], '[') {
                    j = match_square(tokens, j + 1) + 1;
                }
                let end = item_end(tokens, j).min(n.saturating_sub(1));
                for t in tokens.iter_mut().take(end + 1).skip(i) {
                    t.in_test = true;
                }
                i = end + 1;
                continue;
            }
            i = close + 1;
            continue;
        }
        if i + 2 < n
            && is_ident(&tokens[i], "mod")
            && is_ident(&tokens[i + 1], "tests")
            && is_punct(&tokens[i + 2], '{')
        {
            let end = match_brace(tokens, i + 2);
            for t in tokens.iter_mut().take(end + 1).skip(i) {
                t.in_test = true;
            }
            i = end + 1;
            continue;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(lx: &Lexed) -> Vec<&str> {
        lx.tokens
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn raw_strings_hide_their_contents() {
        // The satellite-4 adversarial case: panic-looking text inside a
        // raw string must not surface as tokens.
        let lx = lex(r####"let s = r#"// unwrap() .expect("x") panic!()"#;"####);
        assert_eq!(idents(&lx), ["let", "s"]);
        assert_eq!(
            lx.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::StrLit)
                .count(),
            1
        );
        assert!(lx.comments.is_empty(), "{:?}", lx.comments);
    }

    #[test]
    fn raw_string_hash_depth_is_respected() {
        let lx = lex(r###"let s = r##"inner "# quote"##; after()"###);
        assert_eq!(idents(&lx), ["let", "s", "after"]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let lx = lex(r##"let a = b"unwrap()"; let c = b'\n'; let r = br#"x"#;"##);
        assert_eq!(idents(&lx), ["let", "a", "let", "c", "let", "r"]);
        assert!(lx.tokens.iter().any(|t| t.kind == TokenKind::CharLit));
    }

    #[test]
    fn nested_block_comments_balance() {
        let lx = lex("before /* outer /* inner */ still outer */ after");
        assert_eq!(idents(&lx), ["before", "after"]);
        assert_eq!(lx.comments.len(), 1);
        assert!(lx.comments[0].text.contains("inner"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lx =
            lex("fn f<'a>(x: &'a str, c: char) -> &'static str { if c == 'x' { x } else { x } }");
        let lifetimes = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        let chars = lx
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::CharLit)
            .count();
        assert_eq!((lifetimes, chars), (3, 1));
        // The rest of the file was not swallowed by a bad quote match.
        assert!(idents(&lx).contains(&"else"));
    }

    #[test]
    fn escaped_and_special_char_literals() {
        let lx = lex(r"let a = '\''; let b = '\\'; let c = '*'; let d = ' ';");
        assert_eq!(
            lx.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::CharLit)
                .count(),
            4
        );
        assert_eq!(
            idents(&lx),
            ["let", "a", "let", "b", "let", "c", "let", "d"]
        );
    }

    #[test]
    fn string_escapes_do_not_end_early() {
        let lx = lex(r#"let s = "quote \" then unwrap()"; done()"#);
        assert_eq!(idents(&lx), ["let", "s", "done"]);
    }

    #[test]
    fn escaped_newlines_in_strings_still_count_as_lines() {
        // A `\`-continued string crosses a line; every finding below it
        // would be off by one if the escape arm swallowed the newline.
        let lx = lex("let s = \"first \\\n    second\";\nmarker();");
        let marker = lx
            .tokens
            .iter()
            .find(|t| matches!(&t.kind, TokenKind::Ident(s) if s == "marker"))
            .expect("lexed");
        assert_eq!(marker.line, 3);
    }

    #[test]
    fn comments_carry_text_and_lines() {
        let lx = lex("line1();\n// lint:allow(index, reason here)\nline3();");
        assert_eq!(lx.comments.len(), 1);
        assert_eq!(lx.comments[0].line, 2);
        assert!(lx.comments[0]
            .text
            .contains("lint:allow(index, reason here)"));
    }

    #[test]
    fn cfg_test_region_covers_the_following_item_only() {
        let src = "
fn prod() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn helper() { y.unwrap(); }
}
fn prod2() { z.unwrap(); }
";
        let lx = lex(src);
        let unwraps: Vec<bool> = lx
            .tokens
            .iter()
            .filter(|t| matches!(&t.kind, TokenKind::Ident(s) if s == "unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, [false, true, false]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let lx = lex("#[cfg(not(test))]\nfn prod() { x.unwrap(); }");
        assert!(lx.tokens.iter().all(|t| !t.in_test), "{:?}", lx.tokens);
    }

    #[test]
    fn test_attr_with_stacked_attributes() {
        let lx = lex("#[test]\n#[ignore]\nfn t() { x.unwrap(); }\nfn p() { y.unwrap(); }");
        let unwraps: Vec<bool> = lx
            .tokens
            .iter()
            .filter(|t| matches!(&t.kind, TokenKind::Ident(s) if s == "unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, [true, false]);
    }

    #[test]
    fn mod_tests_without_attr_is_a_test_region() {
        let lx = lex("mod tests { fn t() { x.unwrap(); } }\nfn p() { y.unwrap(); }");
        let unwraps: Vec<bool> = lx
            .tokens
            .iter()
            .filter(|t| matches!(&t.kind, TokenKind::Ident(s) if s == "unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, [true, false]);
    }

    #[test]
    fn braceless_cfg_test_item_ends_at_semicolon() {
        let lx = lex("#[cfg(test)]\nuse std::collections::HashMap;\nfn p() { q(); }");
        let hm = lx
            .tokens
            .iter()
            .find(|t| matches!(&t.kind, TokenKind::Ident(s) if s == "HashMap"))
            .expect("lexed");
        assert!(hm.in_test);
        let q = lx
            .tokens
            .iter()
            .find(|t| matches!(&t.kind, TokenKind::Ident(s) if s == "q"))
            .expect("lexed");
        assert!(!q.in_test);
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let lx = lex("let a = \"one\ntwo\";\nmarker();");
        let marker = lx
            .tokens
            .iter()
            .find(|t| matches!(&t.kind, TokenKind::Ident(s) if s == "marker"))
            .expect("lexed");
        assert_eq!(marker.line, 3);
    }

    #[test]
    fn raw_identifiers_do_not_start_raw_strings() {
        let lx = lex("let r#type = 1; next()");
        assert!(idents(&lx).contains(&"next"));
    }
}
