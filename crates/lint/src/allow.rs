//! The `lint:allow` justification grammar.
//!
//! A finding is suppressed only by an *explicit, written* justification
//! in a comment:
//!
//! ```text
//! // lint:allow(<rule>, <reason>)        same line or the line above
//! // lint:allow-file(<rule>, <reason>)   anywhere in the file, file-wide
//! ```
//!
//! The reason is mandatory — an allow without one is itself a finding
//! (rule `allow`), as is an allow naming a rule that does not exist
//! (which would otherwise silently suppress nothing forever).
//!
//! Only comments that *start* with `lint:allow` are attempts: a doc
//! comment or prose comment merely mentioning the grammar (like this
//! module's) is not parsed, so justifications must be plain `//`
//! comments of their own.

use crate::rules::RULES;

/// One parsed justification comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule being suppressed (one of [`RULES`]).
    pub rule: String,
    /// The written reason (non-empty by construction).
    pub reason: String,
    /// 1-based line of the comment.
    pub line: u32,
    /// Whether this is a `lint:allow-file` (whole-file) suppression.
    pub file_wide: bool,
}

/// A malformed `lint:allow` comment (reported as a finding by the
/// engine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadAllow {
    /// 1-based line of the comment.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

/// Extracts every `lint:allow` justification from `comments`; malformed
/// ones come back separately so the engine can flag them.
#[must_use]
pub fn parse_allows(comments: &[crate::lexer::Comment]) -> (Vec<Allow>, Vec<BadAllow>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let Some(rest) = c.text.trim_start().strip_prefix("lint:allow") else {
            continue;
        };
        let (file_wide, rest) = match rest.strip_prefix("-file") {
            Some(r) => (true, r),
            None => (false, rest),
        };
        let Some(rest) = rest.trim_start().strip_prefix('(') else {
            bad.push(BadAllow {
                line: c.line,
                message: "lint:allow needs the form lint:allow(rule, reason)".to_owned(),
            });
            continue;
        };
        let Some(end) = rest.rfind(')') else {
            bad.push(BadAllow {
                line: c.line,
                message: "lint:allow comment is missing its closing parenthesis".to_owned(),
            });
            continue;
        };
        // lint:allow(index, end comes from rfind on this same string)
        let Some((rule, reason)) = rest[..end].split_once(',') else {
            bad.push(BadAllow {
                line: c.line,
                message: "lint:allow needs a reason: lint:allow(rule, reason)".to_owned(),
            });
            continue;
        };
        let rule = rule.trim();
        let reason = reason.trim();
        if reason.is_empty() {
            bad.push(BadAllow {
                line: c.line,
                message: format!("lint:allow({rule}, …) has an empty reason"),
            });
            continue;
        }
        if !RULES.contains(&rule) {
            bad.push(BadAllow {
                line: c.line,
                message: format!(
                    "lint:allow names unknown rule `{rule}` (rules: {})",
                    RULES.join(", ")
                ),
            });
            continue;
        }
        allows.push(Allow {
            rule: rule.to_owned(),
            reason: reason.to_owned(),
            line: c.line,
            file_wide,
        });
    }
    (allows, bad)
}

/// Whether a finding of `rule` at `line` is justified by `allows`: a
/// file-wide allow for the rule, or a same-line / previous-line allow.
#[must_use]
pub fn allowed(allows: &[Allow], rule: &str, line: u32) -> bool {
    allows
        .iter()
        .any(|a| a.rule == rule && (a.file_wide || a.line == line || a.line + 1 == line))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> (Vec<Allow>, Vec<BadAllow>) {
        parse_allows(&lex(src).comments)
    }

    #[test]
    fn well_formed_allows_parse() {
        let (allows, bad) = parse(
            "// lint:allow(panic_freedom, the map was populated two lines up)\n\
             x.unwrap();\n\
             // lint:allow-file(index, bounded numeric kernel)\n",
        );
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(allows.len(), 2);
        assert_eq!(allows[0].rule, "panic_freedom");
        assert!(!allows[0].file_wide);
        assert_eq!(allows[1].rule, "index");
        assert!(allows[1].file_wide);
        assert_eq!(allows[1].reason, "bounded numeric kernel");
    }

    #[test]
    fn reasons_are_mandatory() {
        let (allows, bad) = parse("// lint:allow(panic_freedom)\n// lint:allow(index, )\n");
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 2, "{bad:?}");
    }

    #[test]
    fn unknown_rules_are_rejected() {
        let (allows, bad) = parse("// lint:allow(panics, reason)\n");
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 1);
        assert!(
            bad[0].message.contains("unknown rule"),
            "{}",
            bad[0].message
        );
    }

    #[test]
    fn suppression_reaches_same_and_next_line_only() {
        let (allows, _) = parse("// lint:allow(determinism, stderr-only timing)\n");
        assert!(allowed(&allows, "determinism", 1));
        assert!(allowed(&allows, "determinism", 2));
        assert!(!allowed(&allows, "determinism", 3));
        assert!(!allowed(&allows, "panic_freedom", 1));
    }

    #[test]
    fn file_wide_suppression_reaches_everywhere() {
        let (allows, _) = parse("// lint:allow-file(index, bounded kernel)\n");
        assert!(allowed(&allows, "index", 4000));
    }

    #[test]
    fn prose_mentions_of_the_grammar_are_not_attempts() {
        let (allows, bad) = parse(
            "/// explained as `lint:allow(<rule>, <reason>)` in docs\n\
             //! see the lint:allow section\n\
             // the lint:allow(typo grammar, mid-comment) is prose too\n",
        );
        assert!(allows.is_empty(), "{allows:?}");
        assert!(bad.is_empty(), "{bad:?}");
    }

    #[test]
    fn allows_inside_raw_strings_are_invisible() {
        let (allows, bad) = parse(r###"let s = r#"// lint:allow(index, fake)"#; real();"###);
        assert!(allows.is_empty());
        assert!(bad.is_empty());
    }
}
