//! The lint gate: the real workspace must be clean, and seeded drift
//! must be caught.
//!
//! `workspace_is_lint_clean` is the same check CI runs via
//! `smart_lint --check`, so plain `cargo test` already fails on
//! layering, determinism, panic-freedom, or registry drift — including
//! a new experiment added to the registry without a binary, snapshot
//! section, or README catalogue row.

use smart_lint::rules::registry::{self, Paths};
use smart_lint::{lint_workspace, registry_entries, workspace};
use std::path::Path;

fn root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_is_lint_clean() {
    let findings = lint_workspace(root()).expect("workspace must be readable");
    assert!(
        findings.is_empty(),
        "{} lint finding(s):\n{}",
        findings.len(),
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn the_registry_rule_would_catch_a_stray_binary() {
    let registry = registry_entries();
    let mut bins = workspace::bin_stems(root()).expect("bin dir");
    bins.push("fig99_not_in_registry".to_owned());
    let snapshot =
        std::fs::read_to_string(root().join(smart_lint::SNAPSHOT_PATH)).expect("snapshot");
    let sections = workspace::snapshot_sections(&snapshot);
    let readme = std::fs::read_to_string(root().join("README.md")).expect("README");
    let catalogue = workspace::parse_catalogue(&readme);
    let paths = Paths {
        bin_dir: "crates/bench/src/bin".to_owned(),
        snapshot: smart_lint::SNAPSHOT_PATH.to_owned(),
        readme: "README.md".to_owned(),
    };
    let findings = registry::check(&registry, &bins, &sections, &catalogue, &paths);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(
        findings[0].message.contains("fig99_not_in_registry"),
        "{}",
        findings[0].message
    );
}

#[test]
fn the_layering_rule_would_catch_an_undocumented_edge() {
    let crates = workspace::scan_crates(root()).expect("manifests");
    let readme = std::fs::read_to_string(root().join("README.md")).expect("README");
    let mut map = workspace::parse_layer_map(&readme);
    for entry in &mut map {
        if entry.name == "smart-core" {
            // Pretend the README forgot core's compiler edge again (the
            // drift this rule was built to catch).
            entry.deps.retain(|d| d != "smart-compiler");
        }
    }
    let findings = smart_lint::rules::layering::check(&crates, &map, "README.md");
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("omits the real dependency `smart-core`")),
        "{findings:?}"
    );
}
