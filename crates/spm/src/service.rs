//! Access-cost service model: how long (and how much energy) it takes an
//! SPM organization to serve streaming and realignment demands.
//!
//! The accelerator layer reduces every layer's memory behaviour to
//! streaming volumes plus realignment events
//! ([`smart_systolic::trace::LayerDemand`]); this module prices them on a
//! SHIFT array or a RANDOM array so schemes can be compared.

use crate::shift::ShiftArray;
use smart_cryomem::array::RandomArray;
use smart_units::{Energy, Time};

/// Cost of serving a demand: wall-clock service time plus dynamic energy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AccessCost {
    /// Service time.
    pub time: Time,
    /// Dynamic energy.
    pub energy: Energy,
}

impl AccessCost {
    /// The zero cost.
    pub const ZERO: Self = Self {
        time: Time::ZERO,
        energy: Energy::ZERO,
    };

    /// Component-wise sum.
    #[must_use]
    pub fn plus(self, other: Self) -> Self {
        Self {
            time: self.time + other.time,
            energy: self.energy + other.energy,
        }
    }
}

/// Anything that can serve SPM traffic.
pub trait SpmService {
    /// Cost of streaming `words` sequential words (reads or writes — the
    /// technologies here are read/write symmetric except where noted).
    fn serve_stream(&self, words: u64, write: bool) -> AccessCost;

    /// Cost of one realignment: repositioning to data `distance_bytes`
    /// away.
    fn serve_realignment(&self, distance_bytes: u64) -> AccessCost;
}

impl SpmService for ShiftArray {
    fn serve_stream(&self, words: u64, _write: bool) -> AccessCost {
        AccessCost {
            time: self.stream_time(words),
            energy: self.stream_energy(words),
        }
    }

    fn serve_realignment(&self, distance_bytes: u64) -> AccessCost {
        AccessCost {
            time: self.rotate_time(distance_bytes),
            energy: self.rotate_energy(distance_bytes),
        }
    }
}

impl SpmService for RandomArray {
    fn serve_stream(&self, words: u64, write: bool) -> AccessCost {
        if words == 0 {
            return AccessCost::ZERO;
        }
        let (latency, energy_per) = if write {
            (self.write_latency, self.write_energy)
        } else {
            (self.effective_read_latency(), self.effective_read_energy())
        };
        // Banks pipeline independent accesses: first access pays the full
        // latency, the rest stream at the per-bank initiation interval
        // divided across banks.
        let follow_on = (words - 1) as f64 * self.issue_interval.as_s() / f64::from(self.banks);
        AccessCost {
            time: latency + Time::from_s(follow_on),
            energy: energy_per * words as f64,
        }
    }

    fn serve_realignment(&self, _distance_bytes: u64) -> AccessCost {
        // Random access: one access latency, no rotation. The data access
        // itself is billed by `serve_stream`.
        AccessCost {
            time: self.effective_read_latency(),
            energy: Energy::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smart_cryomem::array::{RandomArray, RandomArrayKind};

    const MB: u64 = 1024 * 1024;

    #[test]
    fn shift_realignment_scales_with_distance() {
        let a = ShiftArray::new(24 * MB, 64);
        let near = a.serve_realignment(1024);
        let far = a.serve_realignment(1024 * 1024);
        assert!(far.time.as_si() > near.time.as_si());
        assert!(far.energy.as_si() > near.energy.as_si());
    }

    #[test]
    fn random_realignment_is_constant() {
        let r = RandomArray::build(RandomArrayKind::PipelinedCmosSfq, 28 * MB, 256);
        let near = r.serve_realignment(1024);
        let far = r.serve_realignment(1024 * 1024 * 16);
        assert_eq!(near.time, far.time);
    }

    #[test]
    fn pipelined_random_streams_much_faster_than_plain_sram() {
        let pipe = RandomArray::build(RandomArrayKind::PipelinedCmosSfq, 28 * MB, 256);
        let sram = RandomArray::build(RandomArrayKind::JosephsonCmosSram, 28 * MB, 256);
        let words = 1_000_000;
        let tp = pipe.serve_stream(words, false).time;
        let ts = sram.serve_stream(words, false).time;
        assert!(
            ts.as_si() / tp.as_si() > 10.0,
            "pipe {} us vs sram {} us",
            tp.as_us(),
            ts.as_us()
        );
    }

    #[test]
    fn shift_streaming_beats_random_streaming() {
        // For purely sequential traffic, SHIFT lanes (one word per lane per
        // 0.02 ns) outrun even the pipelined RANDOM array — this is why the
        // heterogeneous architecture keeps SHIFT for sequential data.
        let shift = ShiftArray::new(32 * 1024, 256);
        let rand = RandomArray::build(RandomArrayKind::PipelinedCmosSfq, 28 * MB, 256);
        let words = 100_000;
        let t_shift = shift.serve_stream(words, false).time;
        let t_rand = rand.serve_stream(words, false).time;
        assert!(t_shift.as_si() < t_rand.as_si());
    }

    #[test]
    fn snm_destructive_read_costs_more() {
        let snm = RandomArray::build(RandomArrayKind::Snm, 16 * MB, 256);
        let read = snm.serve_stream(1000, false);
        let write = snm.serve_stream(1000, true);
        // Reads include the restore write: even costlier than plain writes.
        assert!(read.time.as_si() >= write.time.as_si());
    }

    #[test]
    fn zero_words_zero_cost() {
        let r = RandomArray::build(RandomArrayKind::Vtm, 16 * MB, 64);
        assert_eq!(r.serve_stream(0, false), AccessCost::ZERO);
    }

    #[test]
    fn cost_addition() {
        let a = AccessCost {
            time: Time::from_ns(1.0),
            energy: Energy::from_pj(2.0),
        };
        let b = a.plus(a);
        assert!((b.time.as_ns() - 2.0).abs() < 1e-12);
        assert!((b.energy.as_pj() - 4.0).abs() < 1e-12);
    }
}
