//! The heterogeneous SPM of SMART (Sec. 4.1): three small SHIFT arrays for
//! sequentially accessed inputs, outputs/PSums, and weights, plus one shared
//! pipelined RANDOM array for randomly accessed data.

use crate::service::{AccessCost, SpmService};
use crate::shift::ShiftArray;
use smart_cryomem::array::{RandomArray, RandomArrayKind};
use smart_systolic::trace::DataClass;
use smart_units::{Area, Power};

/// The SMART heterogeneous SPM: per-class SHIFT staging arrays and a shared
/// RANDOM array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HeterogeneousSpm {
    /// SHIFT staging array for inputs.
    pub input_shift: ShiftArray,
    /// SHIFT staging array for outputs and PSums.
    pub output_shift: ShiftArray,
    /// SHIFT staging array for weights.
    pub weight_shift: ShiftArray,
    /// The shared random-access array.
    pub random: RandomArray,
}

impl HeterogeneousSpm {
    /// The paper's SMART configuration (Table 4): three 256-bank 32 KB
    /// SHIFT arrays plus a 256-bank 28 MB pipelined CMOS-SFQ array.
    #[must_use]
    pub fn smart_default() -> Self {
        Self::new(
            32 * 1024,
            256,
            28 * 1024 * 1024,
            256,
            RandomArrayKind::PipelinedCmosSfq,
        )
    }

    /// Builds a heterogeneous SPM with explicit sizes.
    ///
    /// # Panics
    ///
    /// Panics on invalid capacities/bank counts (see [`ShiftArray::new`] and
    /// [`RandomArray::build`]).
    #[must_use]
    pub fn new(
        shift_bytes: u64,
        shift_banks: u32,
        random_bytes: u64,
        random_banks: u32,
        random_kind: RandomArrayKind,
    ) -> Self {
        Self {
            input_shift: ShiftArray::new(shift_bytes, shift_banks),
            output_shift: ShiftArray::new(shift_bytes, shift_banks),
            weight_shift: ShiftArray::new(shift_bytes, shift_banks),
            random: RandomArray::build(random_kind, random_bytes, random_banks),
        }
    }

    /// The SHIFT staging array of a data class.
    #[must_use]
    pub fn shift_of(&self, class: DataClass) -> &ShiftArray {
        match class {
            DataClass::Input => &self.input_shift,
            DataClass::Output | DataClass::Psum => &self.output_shift,
            DataClass::Weight => &self.weight_shift,
        }
    }

    /// Total static power (the SHIFT arrays have none).
    #[must_use]
    pub fn leakage(&self) -> Power {
        self.random.leakage
    }

    /// Total SPM area.
    #[must_use]
    pub fn total_area(&self) -> Area {
        self.input_shift.area()
            + self.output_shift.area()
            + self.weight_shift.area()
            + self.random.area.total()
    }

    /// Total SPM capacity in bytes.
    #[must_use]
    pub fn total_capacity(&self) -> u64 {
        self.input_shift.capacity_bytes()
            + self.output_shift.capacity_bytes()
            + self.weight_shift.capacity_bytes()
            + self.random.capacity_bytes
    }

    /// Swap traffic cost when a class's per-iteration working set exceeds
    /// its SHIFT staging array: the overflow must shuttle between the SHIFT
    /// array and the RANDOM array (read one side, write the other), in both
    /// directions (Fig. 22: "three 16 KB SHIFT arrays greatly increase the
    /// swapping traffic").
    #[must_use]
    pub fn swap_cost(&self, class: DataClass, working_set_bytes: u64) -> AccessCost {
        let shift = self.shift_of(class);
        let overflow = working_set_bytes.saturating_sub(shift.capacity_bytes());
        if overflow == 0 {
            return AccessCost::ZERO;
        }
        // Overflow words move SHIFT->RANDOM and back once per iteration.
        let shift_side = shift
            .serve_stream(overflow, false)
            .plus(shift.serve_stream(overflow, true));
        let random_side = self
            .random
            .serve_stream(overflow, true)
            .plus(self.random.serve_stream(overflow, false));
        AccessCost {
            time: shift_side.time.max(random_side.time),
            energy: shift_side.energy + random_side.energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smart_default_matches_table4() {
        let spm = HeterogeneousSpm::smart_default();
        assert_eq!(spm.input_shift.capacity_bytes(), 32 * 1024);
        assert_eq!(spm.input_shift.banks(), 256);
        assert_eq!(spm.random.capacity_bytes, 28 * 1024 * 1024);
        assert_eq!(spm.random.banks, 256);
        assert!(spm.random.pipelined);
    }

    #[test]
    fn class_routing() {
        let spm = HeterogeneousSpm::smart_default();
        assert_eq!(
            spm.shift_of(DataClass::Psum) as *const _,
            spm.shift_of(DataClass::Output) as *const _
        );
        assert_ne!(
            spm.shift_of(DataClass::Input) as *const _,
            spm.shift_of(DataClass::Weight) as *const _
        );
    }

    #[test]
    fn no_swap_when_working_set_fits() {
        let spm = HeterogeneousSpm::smart_default();
        assert_eq!(spm.swap_cost(DataClass::Input, 16 * 1024), AccessCost::ZERO);
    }

    #[test]
    fn swap_grows_with_overflow() {
        let spm = HeterogeneousSpm::smart_default();
        let small = spm.swap_cost(DataClass::Input, 48 * 1024);
        let large = spm.swap_cost(DataClass::Input, 256 * 1024);
        assert!(small.time.as_si() > 0.0);
        assert!(large.time.as_si() > small.time.as_si());
    }

    #[test]
    fn smaller_shift_arrays_swap_more() {
        // Fig. 22: 16 KB SHIFT arrays vs 32 KB at the same working set.
        let big = HeterogeneousSpm::smart_default();
        let small = HeterogeneousSpm::new(
            16 * 1024,
            256,
            28 * 1024 * 1024,
            256,
            RandomArrayKind::PipelinedCmosSfq,
        );
        let ws = 64 * 1024;
        assert!(
            small.swap_cost(DataClass::Input, ws).time.as_si()
                > big.swap_cost(DataClass::Input, ws).time.as_si()
        );
    }

    #[test]
    fn leakage_comes_from_random_array_only() {
        let spm = HeterogeneousSpm::smart_default();
        assert_eq!(spm.leakage().as_si(), spm.random.leakage.as_si());
        assert!(spm.leakage().as_mw() > 1.0);
    }

    #[test]
    fn capacity_sums_components() {
        let spm = HeterogeneousSpm::smart_default();
        assert_eq!(spm.total_capacity(), 3 * 32 * 1024 + 28 * 1024 * 1024);
    }

    #[test]
    fn total_area_dominated_by_random_array() {
        let spm = HeterogeneousSpm::smart_default();
        assert!(spm.random.area.total().as_si() > 0.8 * spm.total_area().as_si());
    }
}
