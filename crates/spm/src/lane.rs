//! Functional SHIFT-lane simulator.
//!
//! [`ShiftArray`](crate::shift::ShiftArray) is the *analytic* cost model;
//! this module is the *functional* counterpart: a ring of word cells with a
//! feedback loop where every operation advances the ring by exactly one
//! position per cycle, and the cycle counter is authoritative. Tests check
//! that the analytic model's costs equal the functional machine's counted
//! cycles.

// lint:allow-file(index, the port only ever reads `cells[self.head]` and advance() keeps head < cells.len() by construction)

use smart_cryomem::tech::MemoryTechnology;
use smart_units::Time;

/// One functional SHIFT lane: a ring buffer with a read/write port at
/// position 0 and a feedback loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShiftLane {
    cells: Vec<u8>,
    /// Logical index of the cell currently at the port.
    head: usize,
    cycles: u64,
}

impl ShiftLane {
    /// Creates a zero-filled lane of `len` word cells.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    #[must_use]
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "lane length must be positive");
        Self {
            cells: vec![0; len],
            head: 0,
            cycles: 0,
        }
    }

    /// Creates a lane holding `data` (element 0 at the port).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty.
    #[must_use]
    pub fn with_data(data: &[u8]) -> Self {
        assert!(!data.is_empty(), "lane must hold at least one word");
        Self {
            cells: data.to_vec(),
            head: 0,
            cycles: 0,
        }
    }

    /// Lane length in words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the lane holds zero cells (never true by construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total cycles consumed so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Wall-clock time consumed at the Table 1 SHIFT cycle time.
    #[must_use]
    pub fn elapsed(&self) -> Time {
        MemoryTechnology::Shift.parameters().read_latency * self.cycles as f64
    }

    /// The logical address currently at the port.
    #[must_use]
    pub fn position(&self) -> usize {
        self.head
    }

    /// Reads the word at the port and advances one position (one cycle) —
    /// a sequential streaming read.
    pub fn read_next(&mut self) -> u8 {
        let v = self.cells[self.head];
        self.advance(1);
        v
    }

    /// Writes the word at the port and advances one position (one cycle).
    pub fn write_next(&mut self, value: u8) {
        self.cells[self.head] = value;
        self.advance(1);
    }

    /// Rotates until logical address `addr` is at the port, counting one
    /// cycle per skipped cell — the cost of a random access on a SHIFT
    /// lane.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn seek(&mut self, addr: usize) {
        assert!(addr < self.cells.len(), "address out of range");
        let len = self.cells.len();
        let distance = (addr + len - self.head) % len;
        self.advance(distance);
    }

    /// Random read: seek + read. Returns the value and the cycles the whole
    /// access took.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read_at(&mut self, addr: usize) -> (u8, u64) {
        let before = self.cycles;
        self.seek(addr);
        let v = self.read_next();
        (v, self.cycles - before)
    }

    fn advance(&mut self, positions: usize) {
        self.head = (self.head + positions) % self.cells.len();
        self.cycles += positions as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shift::ShiftArray;

    #[test]
    fn sequential_stream_costs_one_cycle_per_word() {
        let data: Vec<u8> = (0..100).collect();
        let mut lane = ShiftLane::with_data(&data);
        let mut out = Vec::new();
        for _ in 0..100 {
            out.push(lane.read_next());
        }
        assert_eq!(out, data);
        assert_eq!(lane.cycles(), 100);
    }

    #[test]
    fn ring_wraps_around() {
        let mut lane = ShiftLane::with_data(&[1, 2, 3]);
        for _ in 0..7 {
            lane.read_next();
        }
        assert_eq!(lane.read_next(), 2); // position 7 % 3 = 1
    }

    #[test]
    fn seek_counts_skipped_cells() {
        let mut lane = ShiftLane::new(1000);
        lane.seek(999);
        assert_eq!(lane.cycles(), 999);
        // Already there: free.
        lane.seek(999);
        assert_eq!(lane.cycles(), 999);
        // One forward.
        lane.seek(0);
        assert_eq!(lane.cycles(), 1000);
    }

    #[test]
    fn backwards_access_requires_full_rotation() {
        // The paper's core observation: reaching an *earlier* address means
        // rotating through almost the whole lane.
        let mut lane = ShiftLane::new(4096);
        lane.seek(10);
        let before = lane.cycles();
        lane.seek(9);
        assert_eq!(lane.cycles() - before, 4095);
    }

    #[test]
    fn writes_then_reads_round_trip() {
        let mut lane = ShiftLane::new(16);
        for i in 0..16 {
            lane.write_next(i as u8 * 3);
        }
        // Head is back at 0 after 16 writes.
        assert_eq!(lane.position(), 0);
        for i in 0..16 {
            assert_eq!(lane.read_next(), i as u8 * 3);
        }
    }

    #[test]
    fn functional_cycles_match_analytic_model() {
        // Stream 512 words then realign by 200 bytes on a single-lane
        // array: the analytic ShiftArray must predict the functional
        // machine's cycle count exactly.
        let words = 512u64;
        let distance = 200u64;
        let analytic = ShiftArray::new(1024, 1);
        let predicted = analytic.stream_time(words).as_s() + analytic.rotate_time(distance).as_s();

        let mut lane = ShiftLane::new(1024);
        for _ in 0..words {
            lane.read_next();
        }
        // Realign to an address `distance` ahead of the head.
        let target = (lane.position() + distance as usize) % lane.len();
        lane.seek(target);
        assert!(
            (lane.elapsed().as_s() - predicted).abs() < 1e-15,
            "functional {} ns vs analytic {} ns",
            lane.elapsed().as_ns(),
            predicted * 1e9
        );
    }

    #[test]
    fn random_read_cost_reported() {
        let mut lane = ShiftLane::with_data(&[9; 64]);
        let (v, cost) = lane.read_at(32);
        assert_eq!(v, 9);
        assert_eq!(cost, 33); // 32 skips + 1 read
    }

    #[test]
    #[should_panic(expected = "address out of range")]
    fn seek_oob_panics() {
        let mut lane = ShiftLane::new(8);
        lane.seek(8);
    }
}
