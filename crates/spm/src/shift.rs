//! SHIFT-register SPM arrays (Sec. 2.2).
//!
//! A SHIFT array is a set of independent lanes, each a ring of serially
//! connected DFF word-cells with a feedback loop. Every access shifts the
//! whole lane by one word position:
//!
//! * sequential streaming runs at one word per lane per cycle (0.02 ns),
//! * reaching a *different* position requires rotating through every
//!   intervening cell — the paper's "moves many unnecessary bits", and
//! * the energy of one access is the switching energy of **all** DFFs in
//!   the lane, which is why SuperNPU's 384 KB lanes burn ~300 pJ per access
//!   while SMART's 128 B lanes need ~0.1 pJ (Fig. 16).

use smart_cryomem::array::SHIFT_EFFECTIVE_F2;
use smart_cryomem::tech::MemoryTechnology;
use smart_units::{Area, Energy, Power, Time};

/// A banked SHIFT-register scratchpad.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShiftArray {
    capacity_bytes: u64,
    banks: u32,
}

impl ShiftArray {
    /// Creates a SHIFT array.
    ///
    /// # Panics
    ///
    /// Panics if capacity or bank count is zero, or capacity is not
    /// divisible by the bank count.
    #[must_use]
    pub fn new(capacity_bytes: u64, banks: u32) -> Self {
        assert!(capacity_bytes > 0, "capacity must be positive");
        assert!(banks > 0, "bank count must be positive");
        assert!(
            capacity_bytes.is_multiple_of(u64::from(banks)),
            "capacity must divide evenly into banks"
        );
        Self {
            capacity_bytes,
            banks,
        }
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Number of independent lanes.
    #[must_use]
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Words (bytes) per lane.
    #[must_use]
    pub fn lane_bytes(&self) -> u64 {
        self.capacity_bytes / u64::from(self.banks)
    }

    /// Per-shift cycle time: the Table 1 SHIFT access latency (0.02 ns).
    #[must_use]
    pub fn cycle_time(&self) -> Time {
        MemoryTechnology::Shift.parameters().read_latency
    }

    /// Streaming bandwidth: one word per lane per cycle.
    #[must_use]
    pub fn words_per_cycle(&self) -> u64 {
        u64::from(self.banks)
    }

    /// Time to stream `words` sequential words across all lanes.
    #[must_use]
    pub fn stream_time(&self, words: u64) -> Time {
        let cycles = words.div_ceil(self.words_per_cycle());
        self.cycle_time() * cycles as f64
    }

    /// Time to rotate the lanes to a position `distance_bytes` away (spread
    /// across lanes, capped at one full lane revolution).
    #[must_use]
    pub fn rotate_time(&self, distance_bytes: u64) -> Time {
        let per_lane = (distance_bytes / u64::from(self.banks)).min(self.lane_bytes());
        self.cycle_time() * per_lane as f64
    }

    /// Energy of one lane access: every bit cell in the lane shifts.
    #[must_use]
    pub fn energy_per_access(&self) -> Energy {
        let cells = self.lane_bytes() * 8;
        MemoryTechnology::Shift.parameters().read_energy * cells as f64
    }

    /// Fraction of a lane's cells that actually switch per streaming
    /// access: the data alignment unit clock-gates the inactive segments,
    /// so only ~1.5% of the lane toggles on a sequential word access.
    /// Random-position accesses pay the full lane (see
    /// [`ShiftArray::energy_per_access`] / [`ShiftArray::rotate_energy`]).
    pub const STREAM_ACTIVITY: f64 = 0.015;

    /// Energy of streaming `words` sequential words: each access shifts the
    /// active segment of one lane ([`Self::STREAM_ACTIVITY`] of
    /// [`ShiftArray::energy_per_access`]). This is why SuperNPU's long
    /// lanes are energy-hungry even on sequential traffic while SMART's
    /// 128 B staging lanes are ~99% cheaper (Fig. 16).
    #[must_use]
    pub fn stream_energy(&self, words: u64) -> Energy {
        self.energy_per_access() * (Self::STREAM_ACTIVITY * words as f64)
    }

    /// Energy of a rotation: every skipped byte's eight bit-cells shift
    /// across all lanes — the paper's "moves many unnecessary bits".
    #[must_use]
    pub fn rotate_energy(&self, distance_bytes: u64) -> Energy {
        let per_lane = (distance_bytes / u64::from(self.banks)).min(self.lane_bytes());
        let cells = per_lane * u64::from(self.banks) * 8;
        MemoryTechnology::Shift.parameters().read_energy * cells as f64
    }

    /// ERSFQ SHIFT arrays have no static power (Table 1: leakage "no").
    #[must_use]
    pub fn leakage(&self) -> Power {
        Power::ZERO
    }

    /// Layout area at the 28 nm JJ scaling assumption, including clock
    /// splitters and feedback wiring.
    #[must_use]
    pub fn area(&self) -> Area {
        let f2 = 28e-9_f64 * 28e-9;
        Area::from_si(self.capacity_bytes as f64 * 8.0 * SHIFT_EFFECTIVE_F2 * f2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB: u64 = 1024;
    const MB: u64 = 1024 * 1024;

    fn supernpu_input() -> ShiftArray {
        // SuperNPU: 24 MB input SHIFT buffer, 64 banks => 384 KB lanes.
        ShiftArray::new(24 * MB, 64)
    }

    fn smart_shift() -> ShiftArray {
        // SMART: 32 KB SHIFT arrays, 256 banks => 128 B lanes.
        ShiftArray::new(32 * KB, 256)
    }

    #[test]
    fn lane_sizes_match_paper_configs() {
        assert_eq!(supernpu_input().lane_bytes(), 384 * KB);
        assert_eq!(smart_shift().lane_bytes(), 128);
        assert_eq!(ShiftArray::new(24 * MB, 256).lane_bytes(), 96 * KB);
    }

    #[test]
    fn fig16_access_energy_scale() {
        // 384 KB lane: ~3.1 M bit cells at 0.1 fJ => ~315 pJ.
        let e384 = supernpu_input().energy_per_access();
        assert!(
            (250.0..=400.0).contains(&e384.as_pj()),
            "384KB: {} pJ",
            e384.as_pj()
        );
        // 96 KB lane: ~79 pJ.
        let e96 = ShiftArray::new(24 * MB, 256).energy_per_access();
        assert!(
            (60.0..=100.0).contains(&e96.as_pj()),
            "96KB: {} pJ",
            e96.as_pj()
        );
        // 128 B lane: ~0.1 pJ — the paper's "reducing the access energy by
        // 99%".
        let e128 = smart_shift().energy_per_access();
        assert!(
            (0.05..=0.2).contains(&e128.as_pj()),
            "128B: {} pJ",
            e128.as_pj()
        );
        assert!(e128.as_si() < 0.01 * e96.as_si());
    }

    #[test]
    fn streaming_runs_at_bank_parallelism() {
        let a = smart_shift();
        // 256 words stream in one cycle.
        assert!((a.stream_time(256).as_ns() - 0.02).abs() < 1e-12);
        assert!((a.stream_time(512).as_ns() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn rotation_costs_distance() {
        let a = supernpu_input();
        // Rotating 64 KB across 64 lanes = 1 KB per lane = 1024 cycles.
        let t = a.rotate_time(64 * KB);
        assert!((t.as_ns() - 1024.0 * 0.02).abs() < 1e-9);
    }

    #[test]
    fn rotation_capped_at_full_revolution() {
        let a = smart_shift();
        let t_full = a.rotate_time(u64::MAX);
        assert!((t_full.as_ns() - 128.0 * 0.02).abs() < 1e-9);
    }

    #[test]
    fn no_leakage() {
        assert!(supernpu_input().leakage().is_zero());
    }

    #[test]
    fn area_scales_with_capacity() {
        let small = smart_shift().area();
        let big = supernpu_input().area();
        assert!(big.as_si() > 100.0 * small.as_si());
    }

    #[test]
    #[should_panic(expected = "capacity must divide evenly")]
    fn uneven_banks_panics() {
        let _ = ShiftArray::new(100, 64);
    }
}
