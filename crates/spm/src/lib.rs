//! Scratchpad memory architectures for SFQ systolic CNN accelerators.
//!
//! Three building blocks:
//!
//! * [`shift`] — banked SHIFT-register arrays (SuperNPU's SPM and SMART's
//!   staging arrays), with rotation-based realignment costs
//! * [`service`] — the access-cost model shared by SHIFT and RANDOM arrays
//! * [`hetero`] — SMART's heterogeneous SPM: three SHIFT staging arrays
//!   plus one shared pipelined CMOS-SFQ RANDOM array
//!
//! # Quick start
//!
//! ```
//! use smart_spm::hetero::HeterogeneousSpm;
//! use smart_spm::service::SpmService;
//!
//! let spm = HeterogeneousSpm::smart_default();
//! // Sequential traffic goes to SHIFT, realignments to the RANDOM array.
//! let stream = spm.input_shift.serve_stream(4096, false);
//! let realign = spm.random.serve_realignment(1 << 20);
//! assert!(stream.time.as_ns() > 0.0);
//! assert!(realign.time.as_ns() < 1.0);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod hetero;
pub mod lane;
pub mod service;
pub mod shift;

pub use hetero::HeterogeneousSpm;
pub use lane::ShiftLane;
pub use service::{AccessCost, SpmService};
pub use shift::ShiftArray;
