//! Golden-snapshot test: the text output of every experiment must match
//! the committed `tests/snapshots/all_experiments.txt` byte for byte, so
//! *any* figure drift fails `cargo test` (and the CI `golden-snapshot`
//! job) — not just non-finite cells.
//!
//! To refresh after an intentional change:
//!
//! ```sh
//! cargo run --release -p smart-bench --bin all_experiments -- --jobs 2 \
//!     > tests/snapshots/all_experiments.txt
//! ```

use smart_bench::{all_experiments, ExperimentContext};

#[test]
fn all_experiments_text_matches_committed_snapshot() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/snapshots/all_experiments.txt"
    );
    let committed = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("missing snapshot {path}: {e} — regenerate it (see module docs)")
    });

    // Reproduce the all_experiments binary's text format exactly.
    let ctx = ExperimentContext::new(2);
    let mut produced = String::new();
    for table in all_experiments(&ctx) {
        produced.push_str(&format!("==== {} ====\n{table}\n", table.name));
    }

    if produced != committed {
        // Point at the first differing line instead of dumping ~230 lines.
        let line = produced
            .lines()
            .zip(committed.lines())
            .position(|(a, b)| a != b)
            .map_or_else(
                || produced.lines().count().min(committed.lines().count()),
                |i| i + 1,
            );
        panic!(
            "all_experiments text drifted from {path} at line {line}; \
             if the change is intentional, regenerate the snapshot (see module docs)"
        );
    }
}
