//! Round-trip of the shared CLI across every binary in the crate: each
//! one must accept the standard flag set and print the canonical error
//! strings, so no binary can drift from `smart_bench::cli`.
//!
//! Only parse-path invocations are exercised (`--help`, `--list`, bad
//! flags) — nothing here runs an experiment, so the whole suite is a few
//! hundred process spawns.

use std::process::{Command, Output};

fn run(exe: &str, args: &[&str]) -> Output {
    Command::new(exe)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("cannot spawn {exe}: {e}"))
}

/// `--help` exits 0 and documents the standard flags.
fn check_help(bin: &str, exe: &str) {
    let out = run(exe, &["--help"]);
    assert!(out.status.success(), "{bin} --help failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    for flag in [
        "--jobs N",
        "--json",
        "--csv",
        "--check",
        "--cache-dir DIR",
        "--list",
        "--filter TAG",
    ] {
        assert!(text.contains(flag), "{bin} --help is missing `{flag}`");
    }
}

/// A bad `--jobs` exits 2 with the one canonical message.
fn check_bad_jobs(bin: &str, exe: &str) {
    let out = run(exe, &["--jobs", "0"]);
    assert_eq!(out.status.code(), Some(2), "{bin} --jobs 0: {out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.starts_with("--jobs needs a positive integer"),
        "{bin}: {err}"
    );
}

/// An unknown flag exits 2 and lists the accepted flags.
fn check_unknown_flag(bin: &str, exe: &str) {
    let out = run(exe, &["--definitely-bogus"]);
    assert_eq!(out.status.code(), Some(2), "{bin} bogus flag: {out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.starts_with("unknown flag `--definitely-bogus`; flags: "),
        "{bin}: {err}"
    );
    assert!(err.contains("--jobs N"), "{bin}: {err}");
}

/// `--list` exits 0 without running anything; a filter that matches
/// nothing lists (and would run) nothing.
fn check_list(bin: &str, exe: &str) {
    let out = run(exe, &["--list"]);
    assert!(out.status.success(), "{bin} --list failed: {out:?}");
    assert!(!out.stdout.is_empty(), "{bin} --list printed nothing");
    let none = run(exe, &["--list", "--filter", "zzz_no_such_tag"]);
    assert!(none.status.success(), "{bin} filtered --list: {none:?}");
    assert!(
        none.stdout.is_empty(),
        "{bin} --list matched a nonsense filter: {:?}",
        String::from_utf8_lossy(&none.stdout)
    );
}

macro_rules! cli_round_trip {
    ($($bin:ident),* $(,)?) => {
        $(
            mod $bin {
                const EXE: &str = env!(concat!("CARGO_BIN_EXE_", stringify!($bin)));

                #[test]
                fn help_documents_the_standard_flags() {
                    super::check_help(stringify!($bin), EXE);
                }

                #[test]
                fn bad_jobs_and_unknown_flags_exit_2() {
                    super::check_bad_jobs(stringify!($bin), EXE);
                    super::check_unknown_flag(stringify!($bin), EXE);
                }

                #[test]
                fn list_runs_nothing() {
                    super::check_list(stringify!($bin), EXE);
                }
            }
        )*
    };
}

cli_round_trip![
    ablation_ilp_vs_greedy,
    ablation_lane_length,
    all_experiments,
    fig02_wires,
    fig05_homogeneous,
    fig06_trace,
    fig07_hetero,
    fig09_htree_breakdown,
    fig12_subbank_validation,
    fig13_josim_validation,
    fig14_design_space,
    fig16_access_energy,
    fig17_area,
    fig18_single_speedup,
    fig19_batch_speedup,
    fig20_single_energy,
    fig21_batch_energy,
    fig22_shift_capacity,
    fig23_random_capacity,
    fig24_prefetch,
    fig25_write_latency,
    josim_fanout_characterization,
    josim_jtl_characterization,
    josim_ptl_characterization,
    pareto_search,
    search_frontier,
    search_frontier_gap,
    search_warm_vs_cold,
    serving_batch_tail,
    serving_saturation,
    serving_sim,
    serving_tenant_mix,
    table1_memories,
    table2_components,
    table4_configs,
    timing_buffer_depth,
    timing_random_bandwidth,
    timing_stall_breakdown,
];

// `bench_check` has no `--list` mode (it gates two files, it does not
// run experiments), so it is exercised on the parse paths only.
mod bench_check {
    const EXE: &str = env!("CARGO_BIN_EXE_bench_check");

    #[test]
    fn help_documents_the_standard_flags() {
        super::check_help("bench_check", EXE);
    }

    #[test]
    fn bad_jobs_and_unknown_flags_exit_2() {
        super::check_bad_jobs("bench_check", EXE);
        super::check_unknown_flag("bench_check", EXE);
    }

    #[test]
    fn missing_baseline_fails_with_usage() {
        let out = super::run(EXE, &[]);
        assert_eq!(out.status.code(), Some(1), "{out:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("--baseline"), "{err}");
    }
}
