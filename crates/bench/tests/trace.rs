//! End-to-end observability tests: `--trace-out` wiring from the shared
//! CLI through a traced experiment run to the Chrome trace-event JSON.
//!
//! The exporter's unit tests cover validation and escaping; these tests
//! pin the integration claims: a traced run records per-tenant serving
//! lanes and ILP solver lanes, the emitted JSON has the Chrome
//! trace-event shape, two same-seed traced runs serialize byte-identically,
//! and tracing changes nothing about the tables themselves.

use smart_bench::cli::{CliSpec, Parsed};
use smart_bench::{run_experiment, ExperimentContext};
use smart_trace::{chrome, Tracer};

/// A traced single-threaded context, the way `--trace-out` builds one.
fn traced_context() -> ExperimentContext {
    let spec = CliSpec::standard("trace_test", "traced run");
    let argv = ["--jobs", "1", "--trace-out", "unused.json"];
    match spec.parse(argv.iter().map(|s| (*s).to_owned())) {
        Ok(Parsed::Run(args)) => {
            let ctx = args.context();
            assert!(ctx.tracer.is_enabled(), "--trace-out enables the tracer");
            ctx
        }
        other => panic!("expected a run, got {other:?}"),
    }
}

#[test]
fn traced_serving_run_is_byte_identical_and_chrome_shaped() {
    let run = |_: u32| {
        let ctx = traced_context();
        let table = run_experiment("serving_batch_tail", &ctx).expect("known name");
        let json = chrome::export(&ctx.tracer).expect("traced run must validate");
        (table.to_text(), json, ctx)
    };
    let (text_a, json_a, ctx) = run(0);
    let (text_b, json_b, _) = run(1);

    // Determinism: same seed, same bytes — table and trace both.
    assert_eq!(text_a, text_b);
    assert_eq!(json_a, json_b);

    // Tracing is observability only: the table matches an untraced run.
    let untraced = run_experiment("serving_batch_tail", &ExperimentContext::single_threaded())
        .expect("known name");
    assert_eq!(text_a, untraced.to_text());

    // The run recorded per-policy serving lanes with request lifecycle
    // events, and the ILP prepasses behind the tenant profiles landed in
    // solver lanes of the same trace.
    let lanes = ctx.tracer.lanes();
    assert!(
        lanes
            .keys()
            .any(|l| l.starts_with("serving_batch_tail/") && l.contains("tenant 0")),
        "missing per-tenant serving lane: {:?}",
        lanes.keys().collect::<Vec<_>>()
    );
    assert!(
        lanes.keys().any(|l| l.starts_with("ilp/")),
        "missing ILP solver lane"
    );
    for name in ["arrive", "complete", "dispatch batch=", "solve"] {
        assert!(
            lanes.values().flatten().any(|e| e.name.starts_with(name)),
            "no `{name}` event recorded"
        );
    }

    // Chrome trace-event shape, checked against the raw bytes: the
    // traceEvents envelope, one metadata record per lane, balanced
    // B/E phases, and braces that pair up.
    assert!(json_a.starts_with("{\"traceEvents\":[\n"), "{json_a}");
    assert!(json_a.ends_with("\n]}\n"), "{json_a}");
    let count = |needle: &str| json_a.matches(needle).count();
    assert_eq!(count("\"ph\":\"M\""), lanes.len());
    assert_eq!(count("\"ph\":\"B\""), count("\"ph\":\"E\""));
    assert!(count("\"ph\":\"i\"") > 0, "no instants in the trace");
    assert_eq!(count("{"), count("}"));
    // Every record carries the single process id and a positive tid.
    assert_eq!(count("\"pid\":1"), ctx.tracer.event_count() + lanes.len());
}

#[test]
fn untraced_context_records_nothing_and_exports_the_empty_envelope() {
    let ctx = ExperimentContext::single_threaded();
    assert!(!ctx.tracer.is_enabled());
    let _ = run_experiment("table2", &ctx).expect("known name");
    assert_eq!(ctx.tracer.event_count(), 0);
    assert_eq!(
        chrome::export(&ctx.tracer).expect("valid"),
        chrome::export(&Tracer::disabled()).expect("valid")
    );
}
