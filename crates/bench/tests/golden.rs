//! Golden-value regression tests over the *typed* experiment results.
//!
//! Instead of string-matching the rendered reports, these assert the key
//! numbers of the paper's headline figures straight out of the
//! [`ResultTable`] cells, with a 2% band so that benign floating-point
//! reorderings don't trip them but a real model regression does.

use smart_bench::{run_experiment, ExperimentContext};
use smart_report::{ResultTable, Value};

fn ctx() -> ExperimentContext {
    ExperimentContext::new(2)
}

fn display(t: &ResultTable, row: usize, col: usize) -> f64 {
    t.rows[row][col]
        .as_display_f64()
        .unwrap_or_else(|| panic!("{}[{row}][{col}] is not numeric", t.name))
}

fn assert_close(got: f64, golden: f64, what: &str) {
    let rel = (got - golden).abs() / golden.abs().max(1e-12);
    assert!(
        rel < 0.02,
        "{what}: got {got}, golden {golden} (rel {rel:.4})"
    );
}

/// Fig. 18 golden values: per-model single-image speedups over TPU for the
/// SHIFT (SuperNPU) and SMART columns, plus both gmeans.
#[test]
fn fig18_per_model_speedups() {
    let t = run_experiment("fig18", &ctx()).expect("fig18");
    // Columns: model, SHIFT, SRAM, Heter, Pipe, SMART.
    const SHIFT: usize = 1;
    const SMART: usize = 5;
    let golden = [
        ("AlexNet", 5.84, 18.68),
        ("FasterRCNN", 0.35, 12.90),
        ("GoogleNet", 4.46, 21.72),
        ("MobileNet", 8.39, 90.53),
        ("ResNet50", 2.36, 16.53),
        ("VGG16", 3.08, 16.26),
    ];
    assert_eq!(t.rows.len(), golden.len() + 1, "6 models + gmean");
    for (row, (model, shift, smart)) in golden.iter().enumerate() {
        assert_eq!(t.rows[row][0], Value::text(*model));
        assert_close(display(&t, row, SHIFT), *shift, &format!("{model} SHIFT"));
        assert_close(display(&t, row, SMART), *smart, &format!("{model} SMART"));
    }
    let gmean_row = golden.len();
    assert_eq!(t.rows[gmean_row][0], Value::text("gmean"));
    assert_close(display(&t, gmean_row, SHIFT), 2.86, "gmean SHIFT");
    assert_close(display(&t, gmean_row, SMART), 22.43, "gmean SMART");
}

/// Fig. 20 golden values: the paper's headline energy story — SMART's
/// gmean single-image energy lands well under TPU and under SuperNPU.
#[test]
fn fig20_gmean_energy() {
    let t = run_experiment("fig20", &ctx()).expect("fig20");
    let gmean_row = t.rows.len() - 1;
    assert_close(display(&t, gmean_row, 1), 2.687, "gmean SHIFT energy");
    assert_close(display(&t, gmean_row, 5), 0.143, "gmean SMART energy");
}

/// Table 4 golden values, asserted as typed cells rather than substrings.
#[test]
fn table4_typed_configs() {
    let t = run_experiment("table4", &ctx()).expect("table4");
    // Columns: config, clock(GHz), rows, cols, peak(TMAC/s), cryogenic.
    let golden = [
        ("TPU", 0.7, 256u64, 256u64, 45.9, false),
        ("SuperNPU", 52.6, 64, 256, 862.0, true),
        ("SMART", 52.6, 64, 256, 862.0, true),
    ];
    assert_eq!(t.rows.len(), golden.len());
    for (row, (name, ghz, rows, cols, peak, cryo)) in golden.iter().enumerate() {
        assert_eq!(t.rows[row][0], Value::text(*name));
        assert_close(display(&t, row, 1), *ghz, &format!("{name} clock"));
        assert_eq!(t.rows[row][2], Value::count(*rows));
        assert_eq!(t.rows[row][3], Value::count(*cols));
        assert_close(display(&t, row, 4), *peak, &format!("{name} peak"));
        assert_eq!(t.rows[row][5], Value::Bool(*cryo));
    }
}

/// Fig. 24 golden shape: prefetch saturates at the paper's `a = 3`.
#[test]
fn fig24_saturation_point() {
    let t = run_experiment("fig24", &ctx()).expect("fig24");
    let single: Vec<f64> = (0..t.rows.len()).map(|r| display(&t, r, 1)).collect();
    assert_close(single[2], 7.84, "a=3 single speedup");
    assert!(single[0] < single[2], "a=1 must trail a=3");
    assert_close(single[4], single[2], "a=5 saturates at a=3");
}

/// The engine is deterministic: a parallel run with a warm shared cache
/// produces exactly the tables of a sequential cold run.
#[test]
fn parallel_and_sequential_runs_agree() {
    let sequential = ExperimentContext::single_threaded();
    let parallel = ExperimentContext::new(4);
    for name in [
        "fig05",
        "fig07",
        "fig18",
        "fig25",
        "timing_random_bandwidth",
    ] {
        let a = run_experiment(name, &sequential).expect(name);
        let b = run_experiment(name, &parallel).expect(name);
        // Run fig18 twice on the parallel context: the second pass is
        // served from the cache and must be identical too.
        let c = run_experiment(name, &parallel).expect(name);
        assert_eq!(a, b, "{name}: parallel != sequential");
        assert_eq!(b, c, "{name}: cached != computed");
    }
}

/// Every experiment's table is finite and renderable in all three
/// formats. (The expensive sweeps run in CI's `all_experiments --check`
/// job; this covers the cheap majority.)
#[test]
fn tables_are_finite_and_render() {
    let ctx = ctx();
    for name in [
        "fig02",
        "table1",
        "table2",
        "fig05",
        "fig06",
        "fig07",
        "fig09",
        "fig12",
        "fig13",
        "fig14",
        "fig16",
        "fig17",
        "table4",
        "ablation_lane_length",
        "timing_random_bandwidth",
    ] {
        let t = run_experiment(name, &ctx).expect(name);
        assert!(t.non_finite_cells().is_empty(), "{name} not finite");
        assert!(!t.to_text().is_empty());
        assert!(t.to_csv().lines().count() > t.rows.len());
        assert!(t.to_json().starts_with('{') && t.to_json().ends_with('}'));
    }
}

/// Ablation golden values: the per-layer MIP objectives of the ILP
/// compiler, pinned tightly (1e-9 relative). The PR-3 solver rewrite
/// (sparse revised simplex, warm starts, incumbent seeding) must land on
/// exactly the objectives the dense-tableau solver proved optimal — any
/// drift here means the solver changed results, not just speed.
#[test]
fn ablation_ilp_objectives_pinned() {
    let t = run_experiment("ablation_ilp_vs_greedy", &ctx()).expect("ablation");
    let golden = [
        ("conv1", 1_792_657.2),
        ("conv2", 1_686_576.0),
        ("conv3", 1_254_133.8),
        ("conv4", 1_746_547.2),
        ("conv5", 1_018_204.2),
        ("fc6", 14_101.8),
        ("fc7", 8_974_558.8),
        ("fc8", 3_387_950.4),
    ];
    assert_eq!(t.rows.len(), golden.len());
    let pin = |got: f64, want: f64, what: &str| {
        let rel = (got - want).abs() / want.abs();
        assert!(rel < 1e-9, "{what}: got {got}, pinned {want} (rel {rel:e})");
    };
    for (row, (layer, objective)) in golden.iter().enumerate() {
        assert_eq!(t.rows[row][0], Value::text(*layer));
        pin(
            display(&t, row, 1),
            *objective,
            &format!("{layer} ILP objective"),
        );
        // At default capacities greedy is provably optimal too, so the ILP
        // column must equal the greedy column.
        pin(
            display(&t, row, 2),
            *objective,
            &format!("{layer} greedy objective"),
        );
    }
    let summary = |label: &str| -> f64 {
        t.summary
            .iter()
            .find(|(l, _)| l == label)
            .and_then(|(_, v)| v.as_display_f64())
            .unwrap_or_else(|| panic!("missing summary {label}"))
    };
    pin(summary("total ILP"), 19_874_729.4, "total ILP");
    pin(summary("contested greedy"), 1_723_078.2, "contested greedy");
    // The contested total contains one node-limited (near-optimal) search;
    // it is pinned like the rest — a solver change that moves it should be
    // a conscious decision, not an accident.
    pin(summary("contested ILP"), 1_768_172.6, "contested ILP");
}

/// PR-7 cache round trip: a warm `--cache-dir` search must reproduce the
/// cold run's frontier table byte for byte, with the analytic and replay
/// stages served entirely from the persisted stores.
#[test]
fn search_cache_roundtrip_is_byte_identical() {
    use smart_search::{search, SearchConfig, SearchSpace};

    let dir = std::env::temp_dir().join(format!("smart-golden-search-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let space = SearchSpace::small();

    let cold_ctx = ctx();
    let cold = search(
        &space,
        &SearchConfig::new(2),
        &cold_ctx.cache,
        &cold_ctx.timing,
    )
    .expect("cold search");
    cold_ctx.save_caches(&dir).expect("saves");
    let cold_text = smart_bench::frontier_table("golden", "golden", &cold).to_string();

    let warm_ctx = ctx();
    assert!(warm_ctx.load_caches(&dir).total() > 0, "stores must load");
    let warm = search(
        &space,
        &SearchConfig::new(2),
        &warm_ctx.cache,
        &warm_ctx.timing,
    )
    .expect("warm search");
    let warm_text = smart_bench::frontier_table("golden", "golden", &warm).to_string();

    assert_eq!(cold_text, warm_text, "warm frontier table drifted");
    assert_eq!(
        warm.stats.eval_misses, 0,
        "analytic stage must be fully warm"
    );
    assert_eq!(
        warm.stats.timing_misses, 0,
        "replay stage must be fully warm"
    );
    std::fs::remove_dir_all(&dir).ok();
}
