//! The shared command-line front end of every `smart-bench` binary.
//!
//! Before this module each binary hand-rolled its own `std::env::args`
//! loop, so flag names, error strings, and help text drifted (three
//! different "unknown flag" messages, two `--jobs` validators). Now a
//! binary declares a [`CliSpec`] — its name, a one-line description, and
//! any extra flags beyond the standard set — and gets:
//!
//! * the standard flags every binary accepts: `--jobs N`, `--json`,
//!   `--csv`, `--check`, `--cache-dir DIR`, `--list`,
//!   `--filter TAG` (repeatable), `--help`;
//! * consistent error messages (one canonical string per failure mode,
//!   exercised by `tests/cli.rs` against every binary);
//! * `--help` text generated from the spec, so it cannot go stale.
//!
//! Per-figure binaries don't even declare a spec: [`run_single`] wires
//! the standard flags to one registry entry (bare-table text output,
//! byte-identical to the pre-redesign binaries in the default
//! invocation).

use crate::registry::{self, ExperimentDescriptor};
use crate::ExperimentContext;
use smart_report::ResultTable;
use std::path::PathBuf;
use std::process::ExitCode;

/// Output encoding selected by `--json` / `--csv` (text is the default;
/// the last format flag wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// Fixed-width text, byte-stable for the golden snapshot.
    #[default]
    Text,
    /// The table's typed JSON.
    Json,
    /// One CSV block per table.
    Csv,
}

/// An extra flag a binary accepts beyond the standard set.
#[derive(Debug, Clone, Copy)]
pub struct ExtraFlag {
    /// The flag itself, with leading dashes (`"--small"`).
    pub flag: &'static str,
    /// Placeholder name of the value (`Some("R")`), or `None` for a
    /// boolean flag.
    pub value: Option<&'static str>,
    /// One-line help text.
    pub help: &'static str,
}

/// What a binary's command line looks like.
#[derive(Debug, Clone, Copy)]
pub struct CliSpec {
    /// Binary name (for usage/help).
    pub bin: &'static str,
    /// One-line description (first line of `--help`).
    pub about: &'static str,
    /// Extra flags beyond the standard set.
    pub extras: &'static [ExtraFlag],
    /// Placeholder for positional arguments (`Some("EXPERIMENT")`), or
    /// `None` to reject positionals.
    pub positional: Option<&'static str>,
}

/// Parsed command line: the standard flags plus whatever extras the spec
/// declared.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// `--jobs N` (validated positive); `None` = available parallelism.
    pub jobs: Option<usize>,
    /// `--json` / `--csv` / default text.
    pub format: Format,
    /// `--check`: verify invariants after running, exit 1 on violation.
    pub check: bool,
    /// `--cache-dir DIR`: persistent warm-start stores.
    pub cache_dir: Option<PathBuf>,
    /// `--list`: print what would run and exit.
    pub list: bool,
    /// Every `--filter` value, in order.
    pub filters: Vec<String>,
    /// `--trace-out FILE`: write a Chrome trace of the run to FILE.
    pub trace_out: Option<PathBuf>,
    /// `--metrics`: print the unified metrics snapshot to stderr.
    pub metrics: bool,
    /// Extra flags seen, in order, with their values.
    pub extras: Vec<(String, Option<String>)>,
    /// Positional arguments, in order.
    pub positional: Vec<String>,
}

impl Args {
    /// Whether an extra boolean flag was passed.
    #[must_use]
    pub fn has(&self, flag: &str) -> bool {
        self.extras.iter().any(|(f, _)| f == flag)
    }

    /// The last value of an extra valued flag.
    #[must_use]
    pub fn value_of(&self, flag: &str) -> Option<&str> {
        self.extras
            .iter()
            .rev()
            .find(|(f, _)| f == flag)
            .and_then(|(_, v)| v.as_deref())
    }

    /// An [`ExperimentContext`] honoring `--jobs` (default: available
    /// parallelism), with span recording enabled when `--trace-out` was
    /// given and wall-clock profiling when `--metrics` was.
    #[must_use]
    pub fn context(&self) -> ExperimentContext {
        let mut ctx = self
            .jobs
            .map_or_else(ExperimentContext::default, ExperimentContext::new);
        if self.trace_out.is_some() {
            ctx = ctx.with_tracer(smart_trace::Tracer::enabled());
        }
        if self.metrics {
            ctx = ctx.with_wall_profile();
        }
        ctx
    }
}

/// Validates the value of a positive-integer flag (`--jobs`). The error
/// string is the canonical one every binary prints.
///
/// # Errors
///
/// `"{flag} needs a positive integer"`.
pub fn parse_positive(flag: &str, value: Option<&str>) -> Result<usize, String> {
    value
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("{flag} needs a positive integer"))
}

/// Validates the value of a non-negative-number flag
/// (`--max-regression`).
///
/// # Errors
///
/// `"{flag} needs a non-negative number"`.
pub fn parse_non_negative(flag: &str, value: Option<&str>) -> Result<f64, String> {
    value
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|r| *r >= 0.0 && r.is_finite())
        .ok_or_else(|| format!("{flag} needs a non-negative number"))
}

/// Requires a flag's value to be present (`--cache-dir`, `--filter`, …).
///
/// # Errors
///
/// `"{flag} needs a {noun}"`.
pub fn require_value(flag: &str, noun: &str, value: Option<&str>) -> Result<String, String> {
    value
        .map(str::to_owned)
        .ok_or_else(|| format!("{flag} needs a {noun}"))
}

const STANDARD_FLAGS: &[ExtraFlag] = &[
    ExtraFlag {
        flag: "--jobs",
        value: Some("N"),
        help: "worker threads (default: available parallelism)",
    },
    ExtraFlag {
        flag: "--json",
        value: None,
        help: "typed JSON output instead of fixed-width text",
    },
    ExtraFlag {
        flag: "--csv",
        value: None,
        help: "CSV output instead of fixed-width text",
    },
    ExtraFlag {
        flag: "--check",
        value: None,
        help: "verify invariants after running; exit 1 on violation",
    },
    ExtraFlag {
        flag: "--cache-dir",
        value: Some("DIR"),
        help: "load persistent warm-start stores before, save after",
    },
    ExtraFlag {
        flag: "--list",
        value: None,
        help: "print what would run (name, group, figure) and exit",
    },
    ExtraFlag {
        flag: "--filter",
        value: Some("TAG"),
        help: "select experiments by group tag or name substring (repeatable)",
    },
    ExtraFlag {
        flag: "--trace-out",
        value: Some("FILE"),
        help: "write a deterministic Chrome trace of the run to FILE",
    },
    ExtraFlag {
        flag: "--metrics",
        value: None,
        help: "print the unified metrics snapshot to stderr after running",
    },
    ExtraFlag {
        flag: "--help",
        value: None,
        help: "print this help and exit",
    },
];

impl CliSpec {
    /// A spec with no extras and no positionals (the per-figure
    /// binaries).
    #[must_use]
    pub const fn standard(bin: &'static str, about: &'static str) -> Self {
        Self {
            bin,
            about,
            extras: &[],
            positional: None,
        }
    }

    /// The one-line usage string.
    #[must_use]
    pub fn usage(&self) -> String {
        let mut s = format!("usage: {} [FLAGS]", self.bin);
        if let Some(pos) = self.positional {
            s.push_str(&format!(" [{pos}]..."));
        }
        s
    }

    /// The full `--help` text, generated from the spec.
    #[must_use]
    pub fn help(&self) -> String {
        let mut s = format!("{}\n\n{}\n\nflags:\n", self.about, self.usage());
        let all = STANDARD_FLAGS.iter().chain(self.extras.iter());
        for f in all {
            let left = match f.value {
                Some(v) => format!("{} {v}", f.flag),
                None => f.flag.to_owned(),
            };
            s.push_str(&format!("  {left:<18} {}\n", f.help));
        }
        s
    }

    /// The flag list for the canonical unknown-flag error.
    fn flag_list(&self) -> String {
        STANDARD_FLAGS
            .iter()
            .chain(self.extras.iter())
            .map(|f| match f.value {
                Some(v) => format!("{} {v}", f.flag),
                None => f.flag.to_owned(),
            })
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Parses an argument list into either arguments to run with or the
    /// help text to print ([`Parsed`]).
    ///
    /// # Errors
    ///
    /// The canonical message for the first invalid argument.
    pub fn parse<I: IntoIterator<Item = String>>(&self, argv: I) -> Result<Parsed, String> {
        let mut args = Args::default();
        let argv: Vec<String> = argv.into_iter().collect();
        let mut it = argv.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--help" | "-h" => return Ok(Parsed::Help(self.help())),
                "--json" => args.format = Format::Json,
                "--csv" => args.format = Format::Csv,
                "--check" => args.check = true,
                "--list" => args.list = true,
                "--jobs" => {
                    args.jobs = Some(parse_positive("--jobs", it.next().map(String::as_str))?);
                }
                "--cache-dir" => {
                    args.cache_dir = Some(PathBuf::from(require_value(
                        "--cache-dir",
                        "directory",
                        it.next().map(String::as_str),
                    )?));
                }
                "--filter" => {
                    args.filters.push(require_value(
                        "--filter",
                        "group tag or name substring",
                        it.next().map(String::as_str),
                    )?);
                }
                "--trace-out" => {
                    args.trace_out = Some(PathBuf::from(require_value(
                        "--trace-out",
                        "file path",
                        it.next().map(String::as_str),
                    )?));
                }
                "--metrics" => args.metrics = true,
                other => {
                    if let Some(extra) = self.extras.iter().find(|f| f.flag == other) {
                        let value = match extra.value {
                            Some(noun) => {
                                Some(require_value(other, noun, it.next().map(String::as_str))?)
                            }
                            None => None,
                        };
                        args.extras.push((other.to_owned(), value));
                    } else if other.starts_with('-') {
                        return Err(format!(
                            "unknown flag `{other}`; flags: {}",
                            self.flag_list()
                        ));
                    } else if self.positional.is_some() {
                        args.positional.push(other.to_owned());
                    } else {
                        return Err(format!(
                            "unexpected argument `{other}` ({} takes no positional arguments)",
                            self.bin
                        ));
                    }
                }
            }
        }
        Ok(Parsed::Run(args))
    }

    /// Parses the process arguments, printing help (exit 0) or the error
    /// plus usage (exit 2) as needed.
    #[must_use]
    pub fn parse_env_or_exit(&self) -> Args {
        // lint:allow(determinism, the CLI parser is the single sanctioned ambient-state reader; parsed flags become explicit inputs downstream)
        match self.parse(std::env::args().skip(1)) {
            Ok(Parsed::Run(args)) => args,
            Ok(Parsed::Help(text)) => {
                println!("{text}");
                std::process::exit(0);
            }
            Err(msg) => {
                eprintln!("{msg}");
                eprintln!("{}", self.usage());
                std::process::exit(2);
            }
        }
    }
}

/// Outcome of [`CliSpec::parse`]: run, or print help.
#[derive(Debug)]
pub enum Parsed {
    /// Normal run with the parsed arguments.
    Run(Args),
    /// `--help`: print this text and exit 0.
    Help(String),
}

/// Prints the `--list` line of one experiment (shared between
/// `all_experiments` and the per-figure binaries so the format cannot
/// drift): `name  group  figure`.
pub fn print_listing(descriptors: &[&ExperimentDescriptor]) {
    for d in descriptors {
        println!("{:<24} {:<9} {}", d.name, d.group.tag(), d.figure);
    }
}

/// Renders one table in the selected format. Text is the bare
/// fixed-width table (the per-figure binaries' historical output);
/// `all_experiments` adds its own `==== name ====` headers.
pub fn print_table(table: &ResultTable, format: Format) {
    match format {
        Format::Text => print!("{table}"),
        Format::Json => println!("{}", table.to_json()),
        Format::Csv => {
            println!("# {}: {}", table.name, table.title);
            print!("{}", table.to_csv());
            println!();
        }
    }
}

/// Emits the observability outputs of a finished run, shared by every
/// binary: writes the Chrome trace when `--trace-out FILE` was given
/// (validated before writing, so a malformed span tree fails loudly
/// instead of producing a file Perfetto rejects) and prints the unified
/// metrics snapshot plus the wall-clock profile on stderr when
/// `--metrics` was. Returns whether everything requested succeeded.
pub fn emit_observability(args: &Args, ctx: &ExperimentContext) -> bool {
    let mut ok = true;
    if let Some(path) = &args.trace_out {
        match smart_trace::chrome::export(&ctx.tracer) {
            Ok(json) => match std::fs::write(path, json) {
                Ok(()) => eprintln!(
                    "trace-out: {} events in {} lanes -> {}",
                    ctx.tracer.event_count(),
                    ctx.tracer.lanes().len(),
                    path.display()
                ),
                Err(e) => {
                    eprintln!("trace-out: writing {} failed: {e}", path.display());
                    ok = false;
                }
            },
            Err(e) => {
                eprintln!("trace-out: invalid trace: {e}");
                ok = false;
            }
        }
    }
    if args.metrics {
        eprint!("{}", ctx.metrics_snapshot().to_text());
        eprint!("{}", ctx.wall.to_text("wall"));
    }
    ok
}

/// The non-finite-cell gate behind every binary's `--check`: reports
/// each offending cell on stderr, returns whether all cells were finite.
pub fn check_tables(tables: &[ResultTable]) -> bool {
    let mut ok = true;
    for table in tables {
        for (row, col, rendered) in table.non_finite_cells() {
            eprintln!(
                "non-finite value in {} at row {row}, column {col}: {rendered}",
                table.name
            );
            ok = false;
        }
    }
    ok
}

/// The whole main body of a per-figure binary: standard flags wired to
/// one registry experiment. The default invocation prints the bare
/// fixed-width table, byte-identical to the pre-redesign binaries.
///
/// # Panics
///
/// Panics if `name` is not in the registry (a compile-time-known name;
/// the registry test catches a typo before any binary ships).
#[must_use]
pub fn run_single(name: &str, about: &'static str) -> ExitCode {
    let descriptor = registry::find(name)
        // lint:allow(panic_freedom, a binary naming an unknown experiment is a compile-time wiring bug; dying at startup is the right surface)
        .unwrap_or_else(|| panic!("binary references unknown experiment `{name}`"));
    let spec = CliSpec {
        bin: descriptor.name,
        about,
        extras: &[],
        positional: None,
    };
    let args = spec.parse_env_or_exit();

    let selected = args.filters.is_empty() || args.filters.iter().any(|f| descriptor.matches(f));
    if args.list {
        if selected {
            print_listing(&[descriptor]);
        }
        return ExitCode::SUCCESS;
    }
    if !selected {
        // A filter that deselects the binary's only experiment runs
        // nothing — same semantics as all_experiments with no match.
        return ExitCode::SUCCESS;
    }

    let ctx = args.context();
    let table = ctx.wall.time(descriptor.name, || {
        crate::run_cached(descriptor.run, &ctx, args.cache_dir.as_deref())
    });
    print_table(&table, args.format);
    let emitted = emit_observability(&args, &ctx);
    if args.check && !check_tables(std::slice::from_ref(&table)) {
        return ExitCode::FAILURE;
    }
    if !emitted {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CliSpec {
        CliSpec {
            bin: "test_bin",
            about: "a test spec",
            extras: &[
                ExtraFlag {
                    flag: "--small",
                    value: None,
                    help: "small grid",
                },
                ExtraFlag {
                    flag: "--max-regression",
                    value: Some("R"),
                    help: "gate threshold",
                },
            ],
            positional: Some("EXPERIMENT"),
        }
    }

    fn parse(words: &[&str]) -> Result<Parsed, String> {
        spec().parse(words.iter().map(|s| (*s).to_owned()))
    }

    fn args(words: &[&str]) -> Args {
        match parse(words) {
            Ok(Parsed::Run(a)) => a,
            other => panic!("expected a run, got {other:?}"),
        }
    }

    #[test]
    fn standard_flags_round_trip() {
        let a = args(&[
            "--jobs",
            "4",
            "--json",
            "--check",
            "--cache-dir",
            "/tmp/x",
            "--filter",
            "timing",
            "--filter",
            "serving_",
            "fig18",
        ]);
        assert_eq!(a.jobs, Some(4));
        assert_eq!(a.format, Format::Json);
        assert!(a.check);
        assert_eq!(a.cache_dir.as_deref(), Some(std::path::Path::new("/tmp/x")));
        assert_eq!(a.filters, ["timing", "serving_"]);
        assert_eq!(a.positional, ["fig18"]);
        assert!(!a.list);
    }

    #[test]
    fn extras_are_collected_in_order() {
        let a = args(&["--small", "--max-regression", "0.3"]);
        assert!(a.has("--small"));
        assert_eq!(a.value_of("--max-regression"), Some("0.3"));
        assert_eq!(a.value_of("--small"), None);
        assert!(!a.has("--csv"));
    }

    #[test]
    fn canonical_error_strings() {
        assert_eq!(
            parse(&["--jobs", "0"]).unwrap_err(),
            "--jobs needs a positive integer"
        );
        assert_eq!(
            parse(&["--jobs"]).unwrap_err(),
            "--jobs needs a positive integer"
        );
        assert_eq!(
            parse(&["--cache-dir"]).unwrap_err(),
            "--cache-dir needs a directory"
        );
        assert_eq!(
            parse(&["--max-regression"]).map(|_| ()),
            Err("--max-regression needs a R".to_owned())
        );
        let err = parse(&["--bogus"]).unwrap_err();
        assert!(err.starts_with("unknown flag `--bogus`; flags: "), "{err}");
        assert!(err.contains("--jobs N"), "{err}");
        assert!(err.contains("--small"), "{err}");
    }

    #[test]
    fn positionals_only_where_declared() {
        let no_pos = CliSpec::standard("fig", "about");
        let err = no_pos.parse(["stray".to_owned()]).map(|_| ()).unwrap_err();
        assert!(err.contains("takes no positional arguments"), "{err}");
    }

    #[test]
    fn help_lists_every_flag() {
        let h = match parse(&["--help"]) {
            Ok(Parsed::Help(h)) => h,
            other => panic!("expected help, got {other:?}"),
        };
        for f in STANDARD_FLAGS {
            assert!(h.contains(f.flag), "help is missing {}", f.flag);
        }
        assert!(h.contains("--small"));
        assert!(h.contains("--max-regression R"));
        assert!(h.contains("a test spec"));
    }

    #[test]
    fn validators_expose_canonical_messages() {
        assert_eq!(parse_positive("--jobs", Some("3")), Ok(3));
        assert_eq!(
            parse_positive("--jobs", Some("nope")).unwrap_err(),
            "--jobs needs a positive integer"
        );
        assert_eq!(
            parse_non_negative("--max-regression", Some("0.25")),
            Ok(0.25)
        );
        assert_eq!(
            parse_non_negative("--max-regression", Some("-0.1")).unwrap_err(),
            "--max-regression needs a non-negative number"
        );
        assert_eq!(
            require_value("--baseline", "file path", None).unwrap_err(),
            "--baseline needs a file path"
        );
    }
}
