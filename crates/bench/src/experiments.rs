//! The experiment builders: one function per table/figure of the paper
//! (plus the ablations), each producing a typed
//! [`ResultTable`] instead of pre-formatted text.
//!
//! Builders share one [`ExperimentContext`]: its evaluation cache
//! deduplicates the baseline evaluations that recur across figures (the
//! TPU and SuperNPU reports divide every speedup/energy column), and its
//! `jobs` knob fans model/scheme grids and sweep points across worker
//! threads. The legacy text output of every figure is derived from the
//! table by [`ResultTable::to_text`].

// lint:allow-file(panic_freedom, experiment builders run under the snapshot/CI harness; a violated builder invariant must abort the run loudly, and every expect states the invariant)
// lint:allow-file(index, experiment tables index small fixed-size axis arrays defined beside their loops)

use crate::ExperimentContext;
use smart_core::area::ChipArea;
use smart_core::scheme::Scheme;
use smart_cryomem::array::{fig9_breakdown, RandomArray, RandomArrayKind};
use smart_cryomem::pipeline::explore;
use smart_cryomem::subbank::{chip_validation_data, SubBankConfig, SubBankModel};
use smart_cryomem::tech::MemoryTechnology;
use smart_josim::cells::CellSpec;
use smart_josim::fixtures::validate_ptl_model;
use smart_report::{ColumnSpec, ResultTable, Scenario, Unit, Value};
use smart_search::{SearchConfig, SearchSpace};
use smart_sfq::cells::{JtlChainSpec, PtlLinkSpec, SplitterFanoutSpec};
use smart_sfq::components::{Component, ComponentKind};
use smart_sfq::hop::PtlHop;
use smart_sfq::jj::JosephsonJunction;
use smart_sfq::wire::{wire_comparison, WireTechnology};
use smart_spm::shift::ShiftArray;
use smart_systolic::mapping::ArrayShape;
use smart_systolic::models::ModelId;
use smart_systolic::trace::weight_trace_sample;
use smart_units::Length;

const MB: u64 = 1024 * 1024;

/// Fig. 2: PTL vs JTL vs CMOS wire latency and energy across lengths.
#[must_use]
pub fn fig02_wires(_ctx: &ExperimentContext) -> ResultTable {
    let lengths = [10.0, 25.0, 50.0, 100.0, 150.0, 200.0];
    let mut t = ResultTable::new(
        "fig02",
        "Figure 2: interconnect comparison (latency ps / energy J)",
    );
    t.columns = vec![ColumnSpec::right("len(um)", 8)];
    for tech in WireTechnology::ALL {
        t.columns
            .push(ColumnSpec::right(format!("{}(ps)", tech.name()), 10));
        t.columns
            .push(ColumnSpec::right(format!("{}(J)", tech.name()), 10));
    }
    for &um in &lengths {
        let mut row = vec![Value::num(um, 0)];
        for &tech in WireTechnology::ALL.iter() {
            let p = smart_sfq::wire::wire_point(tech, Length::from_um(um));
            row.push(Value::time(p.latency, Unit::Ps, 3));
            row.push(Value::sci(p.energy.as_j(), 2));
        }
        t.push_row(row);
    }
    t.push_summary(
        "points",
        Value::count(wire_comparison(&lengths).len() as u64),
    );
    t
}

/// Table 1: the cryogenic memory technology comparison.
#[must_use]
pub fn table1_memories(_ctx: &ExperimentContext) -> ResultTable {
    let mut t = ResultTable::new("table1", "Table 1: cryogenic memory comparison");
    t.columns = vec![ColumnSpec::left("Feature", 22)];
    for label in ["SHIFT", "VTM", "SRAM", "MRAM", "SNM"] {
        t.columns.push(ColumnSpec::right(label, 8));
    }
    let params: Vec<_> = MemoryTechnology::ALL
        .iter()
        .map(|t| t.parameters())
        .collect();
    let row = |label: &str,
               f: &dyn Fn(&smart_cryomem::tech::TechnologyParameters) -> Value|
     -> Vec<Value> {
        let mut cells = vec![Value::text(label)];
        cells.extend(params.iter().map(f));
        cells
    };
    t.push_row(row("Read latency (ns)", &|p| {
        Value::time(p.read_latency, Unit::Ns, 2)
    }));
    t.push_row(row("Write latency (ns)", &|p| {
        Value::time(p.write_latency, Unit::Ns, 2)
    }));
    t.push_row(row("Cell size (F^2)", &|p| Value::num(p.cell_size_f2, 0)));
    t.push_row(row("Read energy (fJ)", &|p| {
        Value::energy(p.read_energy, Unit::Fj, 1)
    }));
    t.push_row(row("Write energy (fJ)", &|p| {
        Value::energy(p.write_energy, Unit::Fj, 1)
    }));
    t.push_row(row("Leakage", &|p| Value::text(p.leakage.label())));
    t.push_row(row("Random access", &|p| {
        Value::text(if p.random_access { "yes" } else { "no" })
    }));
    t
}

/// Table 2: SFQ H-Tree component latency and power.
#[must_use]
pub fn table2_components(_ctx: &ExperimentContext) -> ResultTable {
    let mut t = ResultTable::new("table2", "Table 2: SFQ H-Tree components");
    t.columns = vec![
        ColumnSpec::left("Component", 10),
        ColumnSpec::right("Latency(ps)", 12),
        ColumnSpec::right("Leakage(uW)", 16),
        ColumnSpec::right("Dynamic(nW)", 16),
    ];
    for kind in [
        ComponentKind::Splitter,
        ComponentKind::Driver,
        ComponentKind::Receiver,
        ComponentKind::NTron,
    ] {
        let c = Component::of(kind);
        t.push_row(vec![
            Value::text(kind.name()),
            Value::time(c.latency(), Unit::Ps, 2),
            Value::power(c.leakage(), Unit::Uw, 3),
            Value::power(c.dynamic_power(), Unit::Nw, 3),
        ]);
    }
    t
}

/// Fig. 5: SuperNPU with homogeneous SPMs of each technology on AlexNet
/// (latency / energy / area, normalized to SHIFT).
#[must_use]
pub fn fig05_homogeneous(ctx: &ExperimentContext) -> ResultTable {
    let shift = ctx.cache.report(&Scheme::supernpu(), ModelId::AlexNet, 1);
    let shift_area = ChipArea::of(&Scheme::supernpu().spm, ArrayShape::new(64, 256)).total();
    let mut t = ResultTable::new(
        "fig05",
        "Figure 5: SuperNPU with homogeneous cryogenic SPMs, AlexNet single image (norm. to SHIFT)",
    );
    t.columns = vec![
        ColumnSpec::left("SPM", 8),
        ColumnSpec::right("latency", 10),
        ColumnSpec::right("energy", 10),
        ColumnSpec::right("area", 10),
    ];
    t.push_row(vec![
        Value::text("SHIFT"),
        Value::num(1.0, 3),
        Value::num(1.0, 3),
        Value::num(1.0, 3),
    ]);
    let scenario = Scenario::over(
        "fig05",
        &["spm-technology"],
        vec![
            RandomArrayKind::JosephsonCmosSram,
            RandomArrayKind::SheMram,
            RandomArrayKind::Snm,
            RandomArrayKind::Vtm,
        ],
    );
    for (name, latency, energy, area) in scenario.run(ctx.jobs, |&kind| {
        let scheme = Scheme::fig5_homogeneous(kind);
        let r = ctx.cache.report(&scheme, ModelId::AlexNet, 1);
        let area = ChipArea::of(&scheme.spm, ArrayShape::new(64, 256)).total();
        (
            scheme.name,
            r.total_time.ratio(shift.total_time),
            r.energy.total.ratio(shift.energy.total),
            area.ratio(shift_area),
        )
    }) {
        t.push_row(vec![
            Value::text(name),
            Value::num(latency, 3),
            Value::num(energy, 3),
            Value::num(area, 3),
        ]);
    }
    t
}

/// Fig. 6: a weight-read trace sample with sequential and random accesses.
#[must_use]
pub fn fig06_trace(_ctx: &ExperimentContext) -> ResultTable {
    let model = ModelId::AlexNet.build();
    let fc6 = &model.layers[5];
    let trace = weight_trace_sample(fc6, ArrayShape::new(64, 256), 0x0098_9680, 68, 3);
    let mut t = ResultTable::new(
        "fig06",
        "Figure 6: memory accesses of SuperNPU (weight reads, fc6)",
    );
    t.columns = vec![
        ColumnSpec::right("cyc", 5),
        ColumnSpec::right("col0", 12),
        ColumnSpec::right("col1", 12),
        ColumnSpec::right("col2", 12),
    ];
    for cycle in [0u64, 1, 2, 3, 62, 63, 64, 65] {
        let mut row = vec![Value::count(cycle)];
        for c in 0..3 {
            let rec = trace
                .iter()
                .find(|r| r.cycle == cycle && r.column == c)
                .expect("record");
            row.push(Value::text(format!(
                "{:#012x}{}",
                rec.address,
                if rec.sequential { " " } else { "*" }
            )));
        }
        t.push_row(row);
    }
    t.push_note("(* marks a non-sequential jump: the tile boundary)");
    t
}

/// Fig. 7: heterogeneous SPM latency on AlexNet, normalized to SHIFT.
#[must_use]
pub fn fig07_hetero(ctx: &ExperimentContext) -> ResultTable {
    let shift = ctx.cache.report(&Scheme::supernpu(), ModelId::AlexNet, 1);
    let mut t = ResultTable::new(
        "fig07",
        "Figure 7: heterogeneous SPM inference latency, AlexNet (norm. to SHIFT)",
    );
    t.columns = vec![
        ColumnSpec::left("scheme", 8),
        ColumnSpec::right("norm.latency", 12),
    ];
    t.push_row(vec![Value::text("SHIFT"), Value::num(1.0, 3)]);
    let scenario = Scenario::over(
        "fig07",
        &["random-technology", "prefetch"],
        vec![
            (RandomArrayKind::JosephsonCmosSram, false),
            (RandomArrayKind::SheMram, false),
            (RandomArrayKind::Snm, false),
            (RandomArrayKind::Vtm, false),
            (RandomArrayKind::Vtm, true),
        ],
    );
    for (name, norm) in scenario.run(ctx.jobs, |&(kind, prefetch)| {
        let scheme = Scheme::fig7_hetero(kind, prefetch);
        let r = ctx.cache.report(&scheme, ModelId::AlexNet, 1);
        (scheme.name, r.total_time.ratio(shift.total_time))
    }) {
        t.push_row(vec![Value::text(name), Value::num(norm, 3)]);
    }
    t
}

/// Fig. 9: CMOS H-Tree latency/energy shares in the 28 MB Josephson-CMOS
/// array.
#[must_use]
pub fn fig09_htree_breakdown(_ctx: &ExperimentContext) -> ResultTable {
    let b = fig9_breakdown();
    let mut t = ResultTable::new(
        "fig09",
        "Figure 9: 256-bank 28 MB Josephson-CMOS array breakdown",
    );
    t.columns = vec![
        ColumnSpec::left("part", 11),
        ColumnSpec::right("latency", 9),
        ColumnSpec::right("energy", 9),
    ];
    let tl = b.total_latency();
    let te = b.total_energy();
    let lat = |x: smart_units::Time| Value::percent(x.ratio(tl), 1);
    let blank = || Value::text("");
    t.push_row(vec![
        Value::text("H-tree"),
        lat(b.htree_latency),
        Value::percent(b.htree_energy_share(), 1),
    ]);
    t.push_row(vec![
        Value::text("cdec"),
        lat(b.cmos_decoder_latency),
        blank(),
    ]);
    t.push_row(vec![Value::text("BL"), lat(b.bitline_latency), blank()]);
    t.push_row(vec![Value::text("sen"), lat(b.sense_latency), blank()]);
    t.push_row(vec![Value::text("arr"), lat(b.array_latency), blank()]);
    t.push_row(vec![
        Value::text("sub-bank"),
        blank(),
        Value::percent(b.subbank_energy.ratio(te), 1),
    ]);
    t.push_row(vec![
        Value::text("other(SFQ)"),
        lat(b.sfq_periphery_latency),
        Value::percent(b.sfq_periphery_energy.ratio(te), 1),
    ]);
    t.push_summary(
        "total access latency",
        Value::time(tl, Unit::Ns, 2).with_unit_suffix(),
    );
    t.push_summary(
        "total access energy",
        Value::energy(te, Unit::Pj, 3).with_unit_suffix(),
    );
    t
}

/// Fig. 12: sub-bank model vs the 4 K chip demonstration.
#[must_use]
pub fn fig12_subbank_validation(_ctx: &ExperimentContext) -> ResultTable {
    let mut t = ResultTable::new(
        "fig12",
        "Figure 12: CMOS sub-bank validation vs 4K chip (0.18um)",
    );
    t.columns = vec![
        ColumnSpec::left("config", 8),
        ColumnSpec::right("chip(ns)", 12),
        ColumnSpec::right("model(ns)", 12),
        ColumnSpec::right("dev", 8),
        ColumnSpec::right("chip(pJ)", 12),
        ColumnSpec::right("model(pJ)", 12),
        ColumnSpec::right("dev", 8),
    ];
    for chip in chip_validation_data() {
        let m = SubBankModel::new(SubBankConfig::chip_018um(chip.capacity_bytes, chip.mats));
        t.push_row(vec![
            Value::text(chip.label),
            Value::time(chip.latency, Unit::Ns, 3),
            Value::time(m.access_latency(), Unit::Ns, 3),
            Value::percent(m.access_latency().ratio(chip.latency) - 1.0, 1),
            Value::energy(chip.energy, Unit::Pj, 4),
            Value::energy(m.read_energy(), Unit::Pj, 4),
            Value::percent(m.read_energy().ratio(chip.energy) - 1.0, 1),
        ]);
    }
    t
}

/// Fig. 13: analytic H-Tree hop model vs the `josim-lite` transient
/// simulation.
#[must_use]
pub fn fig13_josim_validation(_ctx: &ExperimentContext) -> ResultTable {
    let lengths = [0.1, 0.2, 0.4, 0.6, 0.8];
    let pts = validate_ptl_model(&lengths).expect("simulation runs");
    let jj = JosephsonJunction::hypres_ersfq();
    let mut t = ResultTable::new("fig13", "Figure 13: SFQ H-Tree model vs josim-lite");
    t.columns = vec![
        ColumnSpec::right("len(mm)", 8),
        ColumnSpec::right("model(ps)", 12),
        ColumnSpec::right("josim(ps)", 12),
        ColumnSpec::right("dev", 8),
        ColumnSpec::right("f_max(GHz)", 14),
        ColumnSpec::right("hop E(aJ)", 12),
    ];
    for p in &pts {
        let hop = PtlHop::new(p.length);
        t.push_row(vec![
            Value::length(p.length, Unit::Mm, 2),
            Value::quantity(p.analytic_delay, Unit::Ps, 3),
            Value::quantity(p.simulated_delay, Unit::Ps, 3),
            Value::percent(p.delay_error(), 1),
            Value::frequency(hop.max_operating_frequency(), Unit::Ghz, 1),
            Value::energy(hop.energy_per_pulse(&jj), Unit::Aj, 1),
        ]);
    }
    t
}

/// Fig. 14: pipeline design-space exploration.
#[must_use]
pub fn fig14_design_space(_ctx: &ExperimentContext) -> ResultTable {
    let mut t = ResultTable::new(
        "fig14",
        "Figure 14: pipelined CMOS-SFQ array design space (28 MB, 256 banks)",
    );
    let pts = explore(28 * MB, 256, &[1.0, 2.0, 4.0, 6.0, 8.0, 9.6, 12.0]);
    t.columns = vec![
        ColumnSpec::right("f(GHz)", 8),
        ColumnSpec::right("feasible", 9),
        ColumnSpec::right("MATs/sb", 8),
        ColumnSpec::right("repeaters", 10),
        ColumnSpec::right("leak(mW)", 12),
        ColumnSpec::right("area(mm2)", 10),
    ];
    for p in &pts {
        t.push_row(vec![
            Value::frequency(p.frequency, Unit::Ghz, 1),
            Value::Bool(p.feasible),
            Value::count(u64::from(p.mats_per_subbank)),
            Value::count(u64::from(p.repeaters)),
            Value::power(p.leakage, Unit::Mw, 2),
            Value::area(p.area, Unit::Mm2, 2),
        ]);
    }
    t
}

/// Fig. 16: per-access energy of the SPM arrays.
#[must_use]
pub fn fig16_access_energy(_ctx: &ExperimentContext) -> ResultTable {
    let mut t = ResultTable::new("fig16", "Figure 16: SPM access energy");
    t.columns = vec![
        ColumnSpec::left("array", 14),
        ColumnSpec::right("energy", 13),
    ];
    t.show_header = false;
    let rows = [
        (
            "384KB-SHIFT",
            ShiftArray::new(24 * MB, 64).energy_per_access(),
        ),
        (
            "96KB-SHIFT",
            ShiftArray::new(24 * MB, 256).energy_per_access(),
        ),
        (
            "128B-SHIFT",
            ShiftArray::new(32 * 1024, 256).energy_per_access(),
        ),
        (
            "192KB-RANDOM",
            RandomArray::build(RandomArrayKind::PipelinedCmosSfq, 28 * MB, 256).read_energy,
        ),
    ];
    for (label, e) in rows {
        t.push_row(vec![
            Value::text(label),
            Value::energy(e, Unit::Pj, 4).with_unit_suffix(),
        ]);
    }
    t
}

/// Fig. 17: area breakdown of SuperNPU vs SMART.
#[must_use]
pub fn fig17_area(_ctx: &ExperimentContext) -> ResultTable {
    let shape = ArrayShape::new(64, 256);
    let sn = ChipArea::of(&Scheme::supernpu().spm, shape);
    let sm = ChipArea::of(&Scheme::smart().spm, shape);
    let mut t = ResultTable::new("fig17", "Figure 17: area breakdown (mm^2)");
    t.columns = vec![ColumnSpec::left("scheme", 10)];
    for label in [
        "matrix", "SHIFT", "array", "dec", "H-Tree", "other", "total",
    ] {
        t.columns.push(ColumnSpec::right(label, 8));
    }
    for (name, a) in [("SuperNPU", sn), ("SMART", sm)] {
        let mut row = vec![Value::text(name)];
        for part in [
            a.matrix,
            a.shift,
            a.array,
            a.decoder,
            a.htree,
            a.other,
            a.total(),
        ] {
            row.push(Value::area(part, Unit::Mm2, 2));
        }
        t.push_row(row);
    }
    t.push_summary(
        "SMART / SuperNPU total",
        Value::num(sm.total().ratio(sn.total()), 3),
    );
    t.push_note("(paper: 1.03)");
    t
}

/// The Figs. 18-21 grid: per model, the TPU baseline and every Fig. 18
/// scheme, evaluated through the shared cache on the context's worker
/// pool. Returns one row of column values per model plus the gmean row.
fn tpu_normalized_grid(
    ctx: &ExperimentContext,
    name: &str,
    batch_mode: bool,
    metric: impl Fn(&smart_core::eval::InferenceReport, &smart_core::eval::InferenceReport) -> f64
        + Sync,
) -> (Vec<(&'static str, Vec<f64>)>, Vec<f64>) {
    let schemes = Scheme::figure18_set();
    let scenario = Scenario::over(name, &["model"], ModelId::ALL.to_vec());
    let rows: Vec<(&'static str, Vec<f64>)> = scenario.run(ctx.jobs, |&id| {
        let tpu_batch = if batch_mode { id.smart_batch() } else { 1 };
        let tpu = ctx.cache.report(&Scheme::tpu(), id, tpu_batch);
        let cells: Vec<f64> = schemes
            .iter()
            .map(|s| {
                let b = if !batch_mode {
                    1
                } else if s.name == "SHIFT" {
                    id.supernpu_batch()
                } else {
                    id.smart_batch()
                };
                let r = ctx.cache.report(s, id, b);
                metric(&r, &tpu)
            })
            .collect();
        (id.name(), cells)
    });
    let mut logs = vec![0.0f64; schemes.len()];
    for (_, cells) in &rows {
        for (l, x) in logs.iter_mut().zip(cells) {
            *l += x.ln();
        }
    }
    let gmeans: Vec<f64> = logs
        .iter()
        .map(|l| (l / ModelId::ALL.len() as f64).exp())
        .collect();
    (rows, gmeans)
}

fn grid_table(
    name: &str,
    title: &str,
    width: usize,
    precision: usize,
    rows: Vec<(&'static str, Vec<f64>)>,
    gmeans: Vec<f64>,
) -> ResultTable {
    let mut t = ResultTable::new(name, title);
    t.column_sep = String::new();
    t.columns = vec![ColumnSpec::left("model", 12)];
    for s in Scheme::figure18_set() {
        t.columns.push(ColumnSpec::right(s.name, width));
    }
    for (model, cells) in rows {
        let mut row = vec![Value::text(model)];
        row.extend(cells.iter().map(|&x| Value::num(x, precision)));
        t.push_row(row);
    }
    let mut row = vec![Value::text("gmean")];
    row.extend(gmeans.iter().map(|&x| Value::num(x, precision)));
    t.push_row(row);
    t
}

/// Fig. 18: single-image speedup over TPU.
#[must_use]
pub fn fig18_single_speedup(ctx: &ExperimentContext) -> ResultTable {
    let (rows, gmeans) = tpu_normalized_grid(ctx, "fig18", false, |r, tpu| r.speedup_over(tpu));
    grid_table(
        "fig18",
        "Figure 18: single-image throughput normalized to TPU",
        9,
        2,
        rows,
        gmeans,
    )
}

/// Fig. 19: batch speedup over TPU.
#[must_use]
pub fn fig19_batch_speedup(ctx: &ExperimentContext) -> ResultTable {
    let (rows, gmeans) = tpu_normalized_grid(ctx, "fig19", true, |r, tpu| r.speedup_over(tpu));
    grid_table(
        "fig19",
        "Figure 19: batch throughput normalized to TPU",
        9,
        2,
        rows,
        gmeans,
    )
}

/// Fig. 20: single-image energy normalized to TPU.
#[must_use]
pub fn fig20_single_energy(ctx: &ExperimentContext) -> ResultTable {
    let (rows, gmeans) = tpu_normalized_grid(ctx, "fig20", false, |r, tpu| {
        r.energy_per_image().ratio(tpu.energy_per_image())
    });
    grid_table(
        "fig20",
        "Figure 20: single-image energy per inference normalized to TPU",
        10,
        3,
        rows,
        gmeans,
    )
}

/// Fig. 21: batch energy normalized to TPU.
#[must_use]
pub fn fig21_batch_energy(ctx: &ExperimentContext) -> ResultTable {
    let (rows, gmeans) = tpu_normalized_grid(ctx, "fig21", true, |r, tpu| {
        r.energy_per_image().ratio(tpu.energy_per_image())
    });
    grid_table(
        "fig21",
        "Figure 21: batch energy per inference normalized to TPU",
        10,
        3,
        rows,
        gmeans,
    )
}

fn sweep_table(
    name: &str,
    title: &str,
    pts: &[smart_core::sensitivity::SweepPoint],
) -> ResultTable {
    let mut t = ResultTable::new(name, title);
    t.columns = vec![
        ColumnSpec::left("param", 8),
        ColumnSpec::right("single", 10),
        ColumnSpec::right("batch", 10),
    ];
    for p in pts {
        t.push_row(vec![
            Value::text(p.label.clone()),
            Value::num(p.single, 2),
            Value::num(p.batch, 2),
        ]);
    }
    t
}

/// Fig. 22: SHIFT staging capacity sensitivity.
#[must_use]
pub fn fig22_shift_capacity(ctx: &ExperimentContext) -> ResultTable {
    sweep_table(
        "fig22",
        "Figure 22: SHIFT capacity sensitivity (speedup over SuperNPU)",
        &smart_core::sensitivity::shift_capacity_sweep(&ctx.cache, &[16, 32, 64, 128], ctx.jobs),
    )
}

/// Fig. 23: RANDOM array capacity sensitivity.
#[must_use]
pub fn fig23_random_capacity(ctx: &ExperimentContext) -> ResultTable {
    sweep_table(
        "fig23",
        "Figure 23: RANDOM capacity sensitivity (speedup over SuperNPU)",
        &smart_core::sensitivity::random_capacity_sweep(&ctx.cache, &[14, 28, 56, 112], ctx.jobs),
    )
}

/// Fig. 24: prefetch iteration count sensitivity.
#[must_use]
pub fn fig24_prefetch(ctx: &ExperimentContext) -> ResultTable {
    sweep_table(
        "fig24",
        "Figure 24: prefetch iteration sensitivity (speedup over SuperNPU)",
        &smart_core::sensitivity::prefetch_sweep(&ctx.cache, &[1, 2, 3, 4, 5], ctx.jobs),
    )
}

/// Fig. 25: RANDOM write latency sensitivity.
#[must_use]
pub fn fig25_write_latency(ctx: &ExperimentContext) -> ResultTable {
    sweep_table(
        "fig25",
        "Figure 25: RANDOM write latency sensitivity (speedup over SuperNPU)",
        &smart_core::sensitivity::write_latency_sweep(&ctx.cache, &[0.11, 2.0, 3.0], ctx.jobs),
    )
}

/// Table 4: the baseline configurations.
#[must_use]
pub fn table4_configs(_ctx: &ExperimentContext) -> ResultTable {
    let mut t = ResultTable::new("table4", "Table 4: baseline configurations");
    t.columns = vec![
        ColumnSpec::left("config", 10),
        ColumnSpec::right("clock(GHz)", 10),
        ColumnSpec::right("rows", 6),
        ColumnSpec::right("cols", 6),
        ColumnSpec::right("peak(TMAC/s)", 13),
        ColumnSpec::right("cryogenic", 10),
    ];
    for c in [
        smart_core::config::AcceleratorConfig::tpu(),
        smart_core::config::AcceleratorConfig::supernpu(),
        smart_core::config::AcceleratorConfig::smart(),
    ] {
        t.push_row(vec![
            Value::text(c.name),
            Value::frequency(c.frequency, Unit::Ghz, 1),
            Value::count(u64::from(c.shape.rows)),
            Value::count(u64::from(c.shape.cols)),
            Value::num(c.peak_tmacs(), 0),
            Value::Bool(c.cryogenic),
        ]);
    }
    t
}

/// Ablation: the ILP compiler vs the greedy ideal-static allocator across
/// all AlexNet layers (the software half of SMART's gain over Pipe).
#[must_use]
pub fn ablation_ilp_vs_greedy(ctx: &ExperimentContext) -> ResultTable {
    use smart_compiler::formulation::{compile_layer_ctx, FormulationParams};
    use smart_compiler::greedy::allocate;
    use smart_compiler::lifespan::analyze;
    use smart_systolic::dag::LayerDag;
    use smart_systolic::mapping::LayerMapping;

    let model = ModelId::AlexNet.build();
    let params = FormulationParams::smart_default();
    let mut t = ResultTable::new(
        "ablation_ilp_vs_greedy",
        "Ablation: ILP vs greedy allocation objective (higher = more time saved)",
    );
    t.columns = vec![
        ColumnSpec::left("layer", 8),
        ColumnSpec::right("ILP", 12),
        ColumnSpec::right("greedy", 12),
        ColumnSpec::right("gain", 8),
    ];
    // Per-layer ILP and greedy compilations are independent; fan them out.
    // The shared solver context both warm-starts root relaxations and —
    // under `--cache-dir` — replays whole solves from the persisted
    // solution memo, which is what makes this experiment near-free warm.
    let solver = ctx.timing.solver();
    let scenario = Scenario::over(
        "ablation_ilp_vs_greedy",
        &["layer"],
        model.layers.iter().collect::<Vec<_>>(),
    );
    let compiled = scenario.run(ctx.jobs, |layer| {
        let mapping = LayerMapping::map(layer, ArrayShape::new(64, 256), 1);
        let dag = LayerDag::build(&mapping, 6);
        let ilp = compile_layer_ctx(&dag, &params, solver);
        let greedy = allocate(&dag, &params, analyze(&dag, params.prefetch_window));
        (layer.name.clone(), ilp.objective, greedy.objective)
    });
    let mut ilp_total = 0.0;
    let mut greedy_total = 0.0;
    for (name, ilp, greedy) in compiled {
        ilp_total += ilp;
        greedy_total += greedy;
        t.push_row(vec![
            Value::text(name),
            Value::num(ilp, 0),
            Value::num(greedy, 0),
            Value::percent(ilp / greedy.max(1.0) - 1.0, 2),
        ]);
    }
    t.push_summary("total ILP", Value::num(ilp_total, 0));
    t.push_summary("total greedy", Value::num(greedy_total, 0));
    t.push_summary(
        "total gain",
        Value::percent(ilp_total / greedy_total.max(1.0) - 1.0, 2),
    );

    // Contested capacity: shrink the SPMs until placements conflict — here
    // the ILP's global view beats greedy largest-first.
    let mut tight = params;
    tight.shift_capacity = 4 * 1024;
    tight.random_capacity = 192 * 1024;
    tight.bytes_per_iteration = 256 * 1024;
    let contested = scenario.run(ctx.jobs, |layer| {
        let mapping = LayerMapping::map(layer, ArrayShape::new(64, 256), 1);
        let dag = LayerDag::build(&mapping, 6);
        let ilp = compile_layer_ctx(&dag, &tight, solver).objective;
        let greedy = allocate(&dag, &tight, analyze(&dag, tight.prefetch_window)).objective;
        (ilp, greedy)
    });
    let ilp_total: f64 = contested.iter().map(|(i, _)| i).sum();
    let greedy_total: f64 = contested.iter().map(|(_, g)| g).sum();
    t.push_summary("contested ILP", Value::num(ilp_total, 0));
    t.push_summary("contested greedy", Value::num(greedy_total, 0));
    t.push_summary(
        "contested gain",
        Value::percent(ilp_total / greedy_total.max(1.0) - 1.0, 2),
    );
    t.push_note("(contested capacity: 4 KB SHIFT, 192 KB RANDOM, 256 KB/iter)");
    t
}

/// Ablation: SHIFT lane length (bank count at fixed capacity) vs random
/// access cost and access energy — the design pressure that leads SMART to
/// 128-byte staging lanes.
#[must_use]
pub fn ablation_lane_length(_ctx: &ExperimentContext) -> ResultTable {
    let mut t = ResultTable::new(
        "ablation_lane_length",
        "Ablation: 24 MB SHIFT SPM, lane length vs random-access cost",
    );
    t.columns = vec![
        ColumnSpec::right("banks", 7),
        ColumnSpec::right("lane", 10),
        ColumnSpec::right("rotate(half) ns", 16),
        ColumnSpec::right("access energy pJ", 18),
    ];
    for banks in [16u32, 64, 256, 1024, 4096] {
        let a = ShiftArray::new(24 * MB, banks);
        let half = a.lane_bytes() * u64::from(banks) / 2;
        t.push_row(vec![
            Value::count(u64::from(banks)),
            Value::text(format!("{}B", a.lane_bytes())),
            Value::time(a.rotate_time(half), Unit::Ns, 1),
            Value::energy(a.energy_per_access(), Unit::Pj, 4),
        ]);
    }
    t.push_note("");
    t.push_note("Shorter lanes: cheaper random access & cheaper per-access energy,");
    t.push_note("but more banks means more peripherals — SMART settles on 128 B lanes.");
    t
}

/// Circuit characterization: JTL chains swept over stage count and bias,
/// simulated with the adaptive sparse engine and validated against the
/// closed-form `smart_sfq::jtl` model (~2 ps/stage).
#[must_use]
pub fn josim_jtl_characterization(ctx: &ExperimentContext) -> ResultTable {
    // Stage sweep at the standard bias, then a bias sweep at 8 stages.
    // The bias sweep includes the 750 center on purpose: that spec is the
    // same `CellSpec` as the 8-stage point above, so one of the two rows
    // is served from the shared `CircuitCache` (and the identical rows
    // double as a determinism check in the committed snapshot).
    let mut points: Vec<JtlChainSpec> = [4u32, 6, 8, 12]
        .iter()
        .map(|&s| JtlChainSpec::standard(s))
        .collect();
    points.extend(
        [650u32, 700, 750, 800, 850]
            .iter()
            .map(|&b| JtlChainSpec::new(8, 100_000, b)),
    );
    let scenario = Scenario::over("josim_jtl", &["stages", "bias"], points);
    let measured = scenario.run(ctx.jobs, |spec| {
        let m = ctx
            .circuits
            .measure(&CellSpec::Jtl(*spec))
            .expect("JTL chain simulates");
        (*spec, m)
    });

    let mut t = ResultTable::new(
        "josim_jtl",
        "JTL chain characterization (adaptive sparse MNA vs closed-form model)",
    );
    t.columns = vec![
        ColumnSpec::right("stages", 7),
        ColumnSpec::right("bias(Ic)", 9),
        ColumnSpec::right("sim(ps/st)", 11),
        ColumnSpec::right("model(ps/st)", 13),
        ColumnSpec::right("dev", 8),
        ColumnSpec::right("E(aJ)", 9),
        ColumnSpec::right("pulses", 7),
        ColumnSpec::right("steps", 7),
    ];
    for (spec, m) in &measured {
        let model = spec.closed_form_stage_delay().as_s();
        t.push_row(vec![
            Value::count(u64::from(spec.stages)),
            Value::num(f64::from(spec.bias_pm) * 1e-3, 2),
            Value::quantity(m.delay_per_hop, Unit::Ps, 3),
            Value::quantity(model, Unit::Ps, 3),
            Value::percent((m.delay_per_hop - model) / model, 1),
            Value::sci(m.dissipated_energy * 1e18, 2),
            Value::count(u64::from(m.max_output_pulses)),
            Value::count(m.steps as u64),
        ]);
    }
    let worst = measured
        .iter()
        .map(|(spec, m)| {
            let model = spec.closed_form_stage_delay().as_s();
            ((m.delay_per_hop - model) / model).abs()
        })
        .fold(0.0f64, f64::max);
    t.push_summary("max |dev| vs model", Value::percent(worst, 1));
    t
}

/// Circuit characterization: splitter fan-out trees. The validation is
/// digital — one input pulse must arrive exactly once at *every* leaf —
/// with root-to-leaf latency and dissipation per broadcast alongside.
#[must_use]
pub fn josim_fanout_characterization(ctx: &ExperimentContext) -> ResultTable {
    let points: Vec<SplitterFanoutSpec> = [2u32, 4, 8]
        .iter()
        .map(|&l| SplitterFanoutSpec::standard(l))
        .collect();
    let scenario = Scenario::over("josim_fanout", &["leaves"], points);
    let measured = scenario.run(ctx.jobs, |spec| {
        let m = ctx
            .circuits
            .measure(&CellSpec::Fanout(*spec))
            .expect("fan-out tree simulates");
        (*spec, m)
    });

    let mut t = ResultTable::new(
        "josim_fanout",
        "Splitter fan-out tree characterization (adaptive sparse MNA)",
    );
    t.columns = vec![
        ColumnSpec::right("leaves", 7),
        ColumnSpec::right("depth", 6),
        ColumnSpec::right("delay(ps)", 10),
        ColumnSpec::right("per-level(ps)", 14),
        ColumnSpec::right("E(aJ)", 9),
        ColumnSpec::right("min p", 6),
        ColumnSpec::right("max p", 6),
        ColumnSpec::right("steps", 7),
    ];
    let mut all_leaves_fired = true;
    for (spec, m) in &measured {
        all_leaves_fired &= m.delivered_exactly_one();
        t.push_row(vec![
            Value::count(u64::from(spec.leaves)),
            Value::count(u64::from(spec.depth())),
            Value::quantity(m.delay, Unit::Ps, 3),
            Value::quantity(m.delay_per_hop, Unit::Ps, 3),
            Value::sci(m.dissipated_energy * 1e18, 2),
            Value::count(u64::from(m.min_output_pulses)),
            Value::count(u64::from(m.max_output_pulses)),
            Value::count(m.steps as u64),
        ]);
    }
    t.push_summary(
        "every leaf fired exactly once",
        Value::text(if all_leaves_fired { "yes" } else { "NO" }),
    );
    t
}

/// Circuit characterization: PTL links re-measured with the adaptive
/// sparse engine against the Eq. 4 closed-form delay — the same ladder
/// netlists as the Fig. 13 fixed-step validation, at a fraction of the
/// steps.
#[must_use]
pub fn josim_ptl_characterization(ctx: &ExperimentContext) -> ResultTable {
    let points: Vec<PtlLinkSpec> = [0.1f64, 0.2, 0.4, 0.6, 0.8]
        .iter()
        .map(|&mm| PtlLinkSpec::from_mm(mm))
        .collect();
    let scenario = Scenario::over("josim_ptl", &["length"], points);
    let measured = scenario.run(ctx.jobs, |spec| {
        let m = ctx
            .circuits
            .measure(&CellSpec::Ptl(*spec))
            .expect("PTL link simulates");
        (*spec, m)
    });

    let mut t = ResultTable::new(
        "josim_ptl",
        "PTL link characterization (adaptive sparse MNA vs Eq. 4 model)",
    );
    t.columns = vec![
        ColumnSpec::right("len(mm)", 8),
        ColumnSpec::right("model(ps)", 10),
        ColumnSpec::right("sim(ps)", 9),
        ColumnSpec::right("dev", 8),
        ColumnSpec::right("E(aJ)", 9),
        ColumnSpec::right("steps", 7),
    ];
    for (spec, m) in &measured {
        let model = spec.closed_form_delay();
        t.push_row(vec![
            Value::length(spec.length(), Unit::Mm, 2),
            Value::quantity(model, Unit::Ps, 3),
            Value::quantity(m.delay, Unit::Ps, 3),
            Value::percent((m.delay - model) / model, 1),
            Value::sci(m.dissipated_energy * 1e18, 2),
            Value::count(m.steps as u64),
        ]);
    }
    t
}

/// Shared nominal replay setup of the `timing_*` experiments: the SMART
/// scheme replayed at the paper's prefetch window through the context's
/// memoized [`smart_timing::TimingCache`].
fn timing_replay(
    ctx: &ExperimentContext,
    model: ModelId,
    cfg: &smart_timing::TimingConfig,
) -> std::sync::Arc<smart_timing::ModelTimingReport> {
    ctx.timing
        .report(&Scheme::smart(), model, cfg)
        .expect("SMART is heterogeneous")
}

/// Timing replay: per-layer stall breakdown of the SMART scheme on VGG16
/// (every layer) and ResNet50 (aggregated per stage). The exposed-stall
/// columns carry the paper's Greek class letters; the placement summary
/// recompiles the most-stalled layer's schedule to show where its bytes
/// live.
#[must_use]
pub fn timing_stall_breakdown(ctx: &ExperimentContext) -> ResultTable {
    use smart_systolic::trace::DataClass;

    let cfg = smart_timing::TimingConfig::nominal();
    let scheme = Scheme::smart();
    let scenario = Scenario::over(
        "timing_stall_breakdown",
        &["model"],
        vec![ModelId::Vgg16, ModelId::ResNet50],
    );
    let replays = scenario.run(ctx.jobs, |&id| (id, timing_replay(ctx, id, &cfg)));
    // Under --trace-out, derive each replay's per-layer timeline (one
    // lane per model, on the virtual replay-cycle clock).
    for (id, rep) in &replays {
        smart_timing::trace_model_replay(rep, &ctx.tracer, &format!("replay/{}", id.name()));
    }

    let mut t = ResultTable::new(
        "timing_stall_breakdown",
        "Timing replay: per-layer exposed stalls of SMART (cycles; α/β/γ/δ = Table 3 classes)",
    );
    t.columns = vec![
        ColumnSpec::left("model", 9),
        ColumnSpec::left("layer", 9),
        ColumnSpec::right("compute(us)", 12),
        ColumnSpec::right("stream", 8),
    ];
    for class in DataClass::ALL {
        t.columns
            .push(ColumnSpec::right(format!("{}", class.symbol()), 9));
    }
    t.columns.push(ColumnSpec::right("occ", 7));
    t.columns.push(ColumnSpec::right("total(us)", 10));

    let clock = scheme.config.frequency;
    let row_of = |model: &str,
                  layer: &str,
                  compute: u64,
                  stream: u64,
                  exposed: [u64; 4],
                  busy: u64,
                  total: u64| {
        let mut row = vec![
            Value::text(model),
            Value::text(layer),
            Value::time(clock.period() * compute as f64, Unit::Us, 2),
            Value::count(stream),
        ];
        row.extend(exposed.iter().map(|&c| Value::count(c)));
        row.push(Value::percent(
            if total == 0 {
                0.0
            } else {
                (busy as f64 / total as f64).min(1.0)
            },
            0,
        ));
        row.push(Value::time(clock.period() * total as f64, Unit::Us, 2));
        row
    };

    for (id, rep) in &replays {
        match id {
            // VGG16: all 16 layers individually.
            ModelId::Vgg16 => {
                for l in &rep.layers {
                    t.push_row(row_of(
                        id.name(),
                        &l.name,
                        l.compute_cycles,
                        l.stream_stall_cycles,
                        l.exposed_stall_cycles,
                        l.random_busy_cycles,
                        l.total_cycles,
                    ));
                }
            }
            // ResNet50: 54 layers fold into their stages.
            _ => {
                let stage_of = |name: &str| {
                    if name.starts_with("res") {
                        name[..4].to_owned()
                    } else {
                        name.to_owned()
                    }
                };
                // Rows come out in first-appearance (`order`) sequence; the
                // map itself is key-ordered so no iteration ever observes
                // hash order.
                let mut order: Vec<String> = Vec::new();
                let mut agg: std::collections::BTreeMap<String, (u64, u64, [u64; 4], u64, u64)> =
                    std::collections::BTreeMap::new();
                for l in &rep.layers {
                    let key = stage_of(&l.name);
                    if !agg.contains_key(&key) {
                        order.push(key.clone());
                    }
                    let e = agg.entry(key).or_default();
                    e.0 += l.compute_cycles;
                    e.1 += l.stream_stall_cycles;
                    for (a, b) in e.2.iter_mut().zip(&l.exposed_stall_cycles) {
                        *a += b;
                    }
                    e.3 += l.random_busy_cycles;
                    e.4 += l.total_cycles;
                }
                for key in order {
                    let (c, s, e, b, tot) = agg.get(&key).copied().unwrap_or_default();
                    t.push_row(row_of(id.name(), &key, c, s, e, b, tot));
                }
            }
        }

        // Whole-model summary plus the placement mix of the most-stalled
        // layer (its schedule recompiled against the scheme's geometry).
        t.push_summary(
            format!("{} total", id.name()),
            Value::time(rep.total_time(), Unit::Us, 2).with_unit_suffix(),
        );
        let dominant = DataClass::ALL
            .iter()
            .copied()
            .max_by_key(|&c| rep.exposed_of(c))
            .expect("four classes");
        t.push_summary(
            format!("{} dominant stall class", id.name()),
            Value::text(format!("{dominant} ({})", dominant.symbol())),
        );
        if let Some(worst) = rep.layers.iter().max_by_key(|l| l.exposed_total()) {
            let model = id.build();
            let layer = model
                .layers
                .iter()
                .find(|l| l.name == worst.name)
                .expect("replayed layer exists");
            let compiled = smart_timing::compile_scheme_layer(
                &scheme,
                layer,
                cfg.max_iterations,
                ctx.timing.solver(),
            )
            .expect("heterogeneous");
            let (shift, random, dram) = compiled.schedule.bytes_by_location(&compiled.dag);
            t.push_summary(
                format!("{} most stalled: {}", id.name(), worst.name),
                Value::text(format!(
                    "{}KB {}, {}KB {}, {}KB {} ({:.0}% resident)",
                    shift / 1024,
                    smart_compiler::Location::Shift,
                    random / 1024,
                    smart_compiler::Location::Random,
                    dram / 1024,
                    smart_compiler::Location::Dram,
                    compiled.schedule.spm_resident_fraction(&compiled.dag) * 100.0
                )),
            );
        }
    }
    t.push_note("(stall columns in cycles at 52.6 GHz; occ = RANDOM-array occupancy)");
    t
}

/// Timing replay: double-buffer depth sweep at half RANDOM bandwidth.
/// The ILP schedule fetches at most `a - 1 = 2` iterations ahead, so the
/// replay saturates at depth 2 — the cycle-level counterpart of Fig. 24's
/// prefetch saturation.
#[must_use]
pub fn timing_buffer_depth(ctx: &ExperimentContext) -> ResultTable {
    let base = smart_timing::TimingConfig::nominal().with_bandwidth_pct(50);
    let depths = [1u32, 2, 3, 4, 5];
    let cfgs: Vec<smart_timing::TimingConfig> =
        depths.iter().map(|&d| base.with_depth(d)).collect();
    // One batched sweep per model: each pays a single ILP compile and one
    // pass of the struct-of-arrays replay kernel for all its uncached
    // depths (bit-identical to per-point replays).
    let alex = ctx
        .timing
        .sweep(&Scheme::smart(), ModelId::AlexNet, &cfgs)
        .expect("SMART is heterogeneous");
    let vgg = ctx
        .timing
        .sweep(&Scheme::smart(), ModelId::Vgg16, &cfgs)
        .expect("SMART is heterogeneous");
    let points: Vec<_> = depths
        .iter()
        .zip(alex.into_iter().zip(vgg))
        .map(|(&depth, (a, v))| (depth, a, v))
        .collect();

    let mut t = ResultTable::new(
        "timing_buffer_depth",
        "Timing replay: double-buffer depth sweep, SMART at 50% RANDOM bandwidth",
    );
    t.columns = vec![
        ColumnSpec::right("depth", 6),
        ColumnSpec::right("AlexNet(us)", 12),
        ColumnSpec::right("stall(cyc)", 11),
        ColumnSpec::right("hidden", 7),
        ColumnSpec::right("VGG16(us)", 11),
        ColumnSpec::right("stall(cyc)", 11),
    ];
    for (depth, alex, vgg) in &points {
        let hidden_fraction = {
            let work: u64 = alex.layers.iter().map(|l| l.prefetch_work_cycles).sum();
            let hidden: u64 = alex
                .layers
                .iter()
                .map(smart_timing::TimingReport::prefetch_hidden_cycles)
                .sum();
            if work == 0 {
                0.0
            } else {
                hidden as f64 / work as f64
            }
        };
        t.push_row(vec![
            Value::count(u64::from(*depth)),
            Value::time(alex.total_time(), Unit::Us, 2),
            Value::count(alex.exposed_total()),
            Value::percent(hidden_fraction, 1),
            Value::time(vgg.total_time(), Unit::Us, 2),
            Value::count(vgg.exposed_total()),
        ]);
    }
    let saturation = points.windows(2).find(|w| {
        w[1].1.total_cycles() == w[0].1.total_cycles()
            && w[1].2.total_cycles() == w[0].2.total_cycles()
    });
    t.push_summary(
        "saturation depth",
        match saturation {
            Some(w) => Value::count(u64::from(w[0].0)),
            None => Value::text("none within sweep"),
        },
    );
    t.push_note("(the a = 3 schedule fetches at most 2 iterations ahead, so depth saturates at 2)");
    t
}

/// Timing replay: RANDOM-array bandwidth sensitivity on AlexNet. The
/// analytic evaluator prices the same scheme identically in every row —
/// the exposed stalls under constrained bandwidth are precisely what the
/// cycle-level replay adds. The summary carries the stall-free
/// cross-validation residual (replay vs analytic on the idealized twin).
#[must_use]
pub fn timing_random_bandwidth(ctx: &ExperimentContext) -> ResultTable {
    let analytic = ctx.cache.report(&Scheme::smart(), ModelId::AlexNet, 1);
    let base = smart_timing::TimingConfig::nominal();
    let pcts = [10u32, 25, 50, 100, 400];
    let cfgs: Vec<smart_timing::TimingConfig> =
        pcts.iter().map(|&p| base.with_bandwidth_pct(p)).collect();
    // One ILP compile + one batched kernel pass for all uncached points.
    let reports = ctx
        .timing
        .sweep(&Scheme::smart(), ModelId::AlexNet, &cfgs)
        .expect("SMART is heterogeneous");
    let points: Vec<_> = pcts.iter().copied().zip(reports).collect();

    let mut t = ResultTable::new(
        "timing_random_bandwidth",
        "Timing replay: RANDOM bandwidth sensitivity, SMART on AlexNet (analytic model is bandwidth-blind)",
    );
    t.columns = vec![
        ColumnSpec::right("bw", 5),
        ColumnSpec::right("replay(us)", 11),
        ColumnSpec::right("stall(cyc)", 11),
        ColumnSpec::right("stream(cyc)", 12),
        ColumnSpec::right("occ", 7),
        ColumnSpec::right("vs analytic", 12),
    ];
    for (pct, rep) in &points {
        t.push_row(vec![
            Value::text(format!("{pct}%")),
            Value::time(rep.total_time(), Unit::Us, 2),
            Value::count(rep.exposed_total()),
            Value::count(rep.stream_stall_cycles()),
            Value::percent(rep.random_occupancy(), 0),
            Value::num(rep.total_time().as_s() / analytic.total_time.as_s(), 3),
        ]);
    }
    t.push_summary(
        "analytic latency (every row)",
        Value::time(analytic.total_time, Unit::Us, 2).with_unit_suffix(),
    );
    let residual =
        smart_timing::max_layer_deviation(&Scheme::smart(), &ModelId::AlexNet.build(), &base)
            .expect("SMART is heterogeneous");
    t.push_summary(
        "stall-free cross-validation residual",
        Value::percent(residual, 2),
    );
    t.push_note("(the residual is the max per-layer |replay - analytic| on the idealized twin)");
    t
}

/// Design-space search: the latency/energy/area Pareto frontier of the
/// small heterogeneous grid, each frontier point ILP-enriched and
/// confirmed by the cycle-level replay.
#[must_use]
pub fn search_frontier(ctx: &ExperimentContext) -> ResultTable {
    let space = SearchSpace::small();
    let cfg = SearchConfig::new(ctx.jobs);
    let out = smart_search::search(&space, &cfg, &ctx.cache, &ctx.timing)
        .expect("the small grid is valid and heterogeneous");
    frontier_table(
        "search_frontier",
        "Design-space search: Pareto frontier of the small heterogeneous grid (AlexNet, batch 1)",
        &out,
    )
}

/// Renders a search outcome's Pareto frontier as a [`ResultTable`] (shared
/// by the `search_frontier` experiment and the `pareto_search` binary).
#[must_use]
pub fn frontier_table(name: &str, title: &str, out: &smart_search::SearchOutcome) -> ResultTable {
    let mut t = ResultTable::new(name, title);
    t.columns = vec![
        ColumnSpec::left("family", 7),
        ColumnSpec::right("window", 7),
        ColumnSpec::left("random", 12),
        ColumnSpec::right("banks", 6),
        ColumnSpec::right("shift(KB)", 10),
        ColumnSpec::right("random(MB)", 11),
        ColumnSpec::right("latency(us)", 12),
        ColumnSpec::right("energy(J)", 10),
        ColumnSpec::right("area(mm2)", 10),
        ColumnSpec::right("resident", 9),
        ColumnSpec::right("replay/ana", 11),
    ];
    for p in out.frontier_points() {
        let (shift, random, banks, kind) = hetero_axes(&p.params);
        let ilp = p.ilp.expect("frontier points are enriched");
        let replay = p.replay.expect("frontier points are replayed");
        t.push_row(vec![
            Value::text(p.params.name),
            Value::text(
                p.params
                    .prefetch_window
                    .map_or("static".to_owned(), |a| format!("a={a}")),
            ),
            Value::text(kind.name()),
            Value::count(u64::from(banks)),
            Value::count(shift / 1024),
            Value::count(random / MB),
            Value::time(p.objectives.latency, Unit::Us, 2),
            Value::sci(p.objectives.energy.as_j(), 2),
            Value::num(p.objectives.area.as_mm2(), 1),
            Value::percent(ilp.resident_fraction(), 0),
            Value::num(replay.vs_analytic, 3),
        ]);
    }
    t.push_summary("space", Value::count(out.stats.space as u64));
    t.push_summary(
        "pruned (eps-dominated)",
        Value::count(out.stats.pruned as u64),
    );
    t.push_summary(
        "survivors (ILP-enriched)",
        Value::count(out.stats.survivors as u64),
    );
    t.push_summary("frontier", Value::count(out.stats.frontier as u64));
    t.push_note("(objectives are analytic; replay/ana cross-checks each frontier point's latency)");
    t
}

/// Design-space search: the staged engine vs the naive per-config
/// baseline on the same grid — identical frontier, a fraction of the
/// solver work.
#[must_use]
pub fn search_warm_vs_cold(ctx: &ExperimentContext) -> ResultTable {
    // Fresh caches: the counters below are this experiment's own work, not
    // whatever concurrently-running experiments put into the shared ones.
    let space = SearchSpace::small();
    let cfg = SearchConfig::new(ctx.jobs);
    let eval = smart_core::cache::EvalCache::new();
    let timing = smart_timing::TimingCache::new();
    let warm = smart_search::search(&space, &cfg, &eval, &timing).expect("valid grid");
    let cold = smart_search::search_naive(&space, &cfg).expect("valid grid");

    let mut t = ResultTable::new(
        "search_warm_vs_cold",
        "Design-space search: warm-started engine vs naive cold baseline (small grid)",
    );
    t.columns = vec![
        ColumnSpec::left("run", 12),
        ColumnSpec::right("evals", 6),
        ColumnSpec::right("ilp compiles", 13),
        ColumnSpec::right("cold", 5),
        ColumnSpec::right("warm hits", 10),
        ColumnSpec::right("memo hits", 10),
        ColumnSpec::right("replays", 8),
        ColumnSpec::right("pruned", 7),
    ];
    let row = |label: &str, s: &smart_search::SearchStats| {
        vec![
            Value::text(label),
            Value::count(s.eval_misses),
            Value::count(s.ilp_compiles),
            Value::count(s.cold_solves),
            Value::count(s.warm_hits),
            Value::count(s.solution_hits),
            Value::count(s.timing_misses),
            Value::count(s.pruned as u64),
        ]
    };
    t.push_row(row("naive cold", &cold.stats));
    t.push_row(row("engine warm", &warm.stats));
    t.push_summary(
        "frontiers identical",
        Value::text(if warm.frontier == cold.frontier {
            "yes"
        } else {
            "NO"
        }),
    );
    t.push_summary(
        "ILP compiles saved",
        Value::percent(
            1.0 - warm.stats.ilp_compiles as f64 / cold.stats.ilp_compiles.max(1) as f64,
            0,
        ),
    );
    t.push_note(
        "(cold/warm/memo count ILP solves by start mode; pruning skips stages 2-3 entirely)",
    );
    t
}

/// Design-space search: the frontier gap between the prefetching SMART
/// family and the static Pipe family over identical hardware axes.
#[must_use]
pub fn search_frontier_gap(ctx: &ExperimentContext) -> ResultTable {
    let axes = |windows: Vec<Option<u32>>| SearchSpace {
        windows,
        random_banks: vec![256],
        kinds: vec![RandomArrayKind::PipelinedCmosSfq],
        shift_kb: vec![16, 32, 64],
        random_mb: vec![14, 28, 42],
        shift_banks: 256,
    };
    let cfg = SearchConfig::new(ctx.jobs);
    let pipe =
        smart_search::search(&axes(vec![None]), &cfg, &ctx.cache, &ctx.timing).expect("valid grid");
    let smart = smart_search::search(&axes(vec![Some(3)]), &cfg, &ctx.cache, &ctx.timing)
        .expect("valid grid");

    let mut t = ResultTable::new(
        "search_frontier_gap",
        "Design-space search: SMART (a=3) vs Pipe frontier gap on shared hardware axes",
    );
    t.columns = vec![
        ColumnSpec::right("shift(KB)", 10),
        ColumnSpec::right("random(MB)", 11),
        ColumnSpec::right("Pipe(us)", 9),
        ColumnSpec::right("SMART(us)", 10),
        ColumnSpec::right("speedup", 8),
        ColumnSpec::left("on frontier", 12),
    ];
    let mut log_sum = 0.0;
    for (i, (p, s)) in pipe.points.iter().zip(&smart.points).enumerate() {
        let (shift, random) = hetero_split(&p.params);
        let speedup = p.objectives.latency.as_s() / s.objectives.latency.as_s();
        log_sum += speedup.ln();
        let membership = match (pipe.frontier.contains(&i), smart.frontier.contains(&i)) {
            (true, true) => "both",
            (true, false) => "Pipe",
            (false, true) => "SMART",
            (false, false) => "-",
        };
        t.push_row(vec![
            Value::count(shift / 1024),
            Value::count(random / MB),
            Value::time(p.objectives.latency, Unit::Us, 2),
            Value::time(s.objectives.latency, Unit::Us, 2),
            Value::num(speedup, 2),
            Value::text(membership),
        ]);
    }
    let points = pipe.points.len();
    t.push_summary(
        "gmean prefetch speedup",
        Value::num((log_sum / points as f64).exp(), 3),
    );
    t.push_summary(
        "Pipe/SMART frontier sizes",
        Value::text(format!("{}/{}", pipe.stats.frontier, smart.stats.frontier)),
    );
    t.push_note("(same SPM geometry per row; the only delta is the ILP's prefetch window)");
    t
}

/// The SHIFT/RANDOM byte split of a heterogeneous search point.
fn hetero_split(params: &smart_core::geometry::GeometryParams) -> (u64, u64) {
    let (shift, random, _, _) = hetero_axes(params);
    (shift, random)
}

/// The SHIFT/RANDOM bytes, RANDOM bank count, and technology of a
/// heterogeneous search point.
fn hetero_axes(params: &smart_core::geometry::GeometryParams) -> (u64, u64, u32, RandomArrayKind) {
    match params.spm {
        smart_core::geometry::SpmGeometry::Heterogeneous {
            capacity_bytes,
            shift_bytes,
            random_banks,
            kind,
            ..
        } => (
            shift_bytes,
            capacity_bytes - 3 * shift_bytes,
            random_banks,
            kind,
        ),
        _ => unreachable!("search grids are heterogeneous"),
    }
}
