//! The serving experiments: the multi-tenant simulator of
//! `smart-serving` driven across schemes, offered loads, batch policies,
//! and tenant mixes.
//!
//! All three experiments share one tenant-profile build per
//! `(scheme, model)` through the context's [`TimingCache`] — the
//! expensive `ModelPrepass` behind each profile is paid once and every
//! sweep point replays it — and one *scheme-independent* SLO: deadlines
//! derived from the Heter baseline's stand-alone latencies (× a fixed
//! factor), so SMART-vs-Pipe goodput is compared at equal deadlines
//! rather than each scheme being graded on its own curve.
//!
//! Everything is deterministic: traces come from seeded generators, the
//! dispatch simulator draws no randomness, and sweeps fan out through
//! order-preserving [`parallel_map`], so the tables are byte-identical
//! at any `--jobs` (the golden snapshot covers them at `--jobs 2`).
//!
//! [`TimingCache`]: smart_timing::TimingCache

// lint:allow-file(index, tenant and bucket arrays are sized by the same bounds that index them)

use crate::ExperimentContext;
use smart_core::scheme::Scheme;
use smart_report::{parallel_map, ColumnSpec, ResultTable, Unit, Value};
use smart_serving::{
    simulate_traced, ArrivalModel, ServingConfig, Tenant, TenantProfile, Workload,
};
use smart_systolic::models::ModelId;
use smart_timing::TimingConfig;

/// The schemes the serving studies compare (all heterogeneous-SPM, all
/// on the same clock).
fn schemes() -> [Scheme; 3] {
    [Scheme::heter(), Scheme::pipe(), Scheme::smart()]
}

/// The canonical two-tenant mix: a latency-lean CNN sharing the array
/// with a heavier one, 3:1 traffic split.
fn canonical_mix() -> Vec<Tenant> {
    vec![
        Tenant::of(ModelId::AlexNet, 3.0),
        Tenant::of(ModelId::MobileNet, 1.0),
    ]
}

/// Builds one profile per tenant on `scheme` through the shared caches.
fn profiles(scheme: &Scheme, tenants: &[Tenant], ctx: &ExperimentContext) -> Vec<TenantProfile> {
    let cfg = TimingConfig::nominal();
    tenants
        .iter()
        .map(|t| {
            TenantProfile::build(scheme, t.model, &cfg, &ctx.timing)
                // lint:allow(panic_freedom, serving experiments only build heterogeneous schemes, which always profile)
                .expect("serving schemes are heterogeneous")
        })
        .collect()
}

/// Aggregate single-stream capacity of a tenant mix in requests per
/// second: the harmonic combination of the tenants' stand-alone rates
/// under their traffic shares (the load at which a work-conserving
/// server with no switch cost saturates).
fn mix_capacity_rps(profiles: &[TenantProfile], tenants: &[Tenant]) -> f64 {
    let total: f64 = tenants.iter().map(|t| t.weight.max(0.0)).sum();
    let mean_service_s: f64 = profiles
        .iter()
        .zip(tenants)
        .map(|(p, t)| (t.weight.max(0.0) / total) / p.standalone_rps())
        .sum();
    1.0 / mean_service_s
}

/// Scheme-independent SLO deadlines: `factor ×` the Heter baseline's
/// stand-alone latency per tenant, in cycles (the serving schemes share
/// one clock, asserted by the callers).
fn reference_slo(tenants: &[Tenant], ctx: &ExperimentContext, factor: u64) -> Vec<u64> {
    profiles(&Scheme::heter(), tenants, ctx)
        .iter()
        .map(|p| p.standalone_cycles() * factor)
        .collect()
}

/// `serving_saturation`: p99 tail latency and goodput vs offered load
/// for Heter / Pipe / SMART under one FCFS discipline and one shared
/// SLO. The load axis is a fraction of each scheme's *own* mix capacity
/// (the schemes differ ~30x in raw speed, so a shared absolute axis
/// would leave the fast ones idle while Heter melts); every scheme's
/// tail then shows its knee at the same relative load, while SMART's
/// higher absolute capacity keeps its goodput column strictly above
/// Pipe's at the shared deadlines.
#[must_use]
pub fn serving_saturation(ctx: &ExperimentContext) -> ResultTable {
    let tenants = canonical_mix();
    let schemes = schemes();
    let profs: Vec<Vec<TenantProfile>> =
        schemes.iter().map(|s| profiles(s, &tenants, ctx)).collect();
    for p in &profs {
        assert_eq!(p[0].clock, profs[0][0].clock, "shared clock");
    }
    let slo = reference_slo(&tenants, ctx, 8);
    let capacities: Vec<f64> = profs
        .iter()
        .map(|p| mix_capacity_rps(p, &tenants))
        .collect();
    let loads = [0.2, 0.4, 0.6, 0.8, 1.0, 1.2];
    const N: usize = 400;

    let mut t = ResultTable::new(
        "serving_saturation",
        "Serving saturation: p99 latency and goodput vs offered load \
         (AlexNet+MobileNet 3:1, Poisson, FCFS, SLO = 8x Heter standalone)",
    );
    t.columns = vec![ColumnSpec::right("load", 6)];
    for s in &schemes {
        t.columns
            .push(ColumnSpec::right(format!("{}-p99(us)", s.name), 14));
        t.columns
            .push(ColumnSpec::right(format!("{}-good(krps)", s.name), 16));
    }

    let points: Vec<(usize, usize)> = (0..loads.len())
        .flat_map(|l| (0..schemes.len()).map(move |s| (l, s)))
        .collect();
    let reports = parallel_map(ctx.jobs, &points, |&(l, s)| {
        let w = Workload::poisson(tenants.clone(), loads[l] * capacities[s], 42);
        // One lane group per sweep point: the point has a single writer,
        // so its lanes are deterministic at any --jobs.
        let prefix = format!(
            "serving_saturation/{} load {:.1}/",
            schemes[s].name, loads[l]
        );
        simulate_traced(
            &profs[s],
            &w,
            N,
            &ServingConfig::fcfs().with_slo(slo.clone()),
            &ctx.tracer,
            &prefix,
        )
    });

    for (l, &load) in loads.iter().enumerate() {
        let mut row = vec![Value::num(load, 1)];
        for s in 0..schemes.len() {
            let r = &reports[l * schemes.len() + s];
            row.push(Value::time(r.p99(), Unit::Us, 3));
            row.push(Value::num(r.goodput_rps() / 1e3, 1));
        }
        t.push_row(row);
    }
    t.push_note(format!(
        "load = fraction of each scheme's own mix capacity ({}); \
         {N} requests per point, seed 42, shared SLO deadlines",
        schemes
            .iter()
            .zip(&capacities)
            .map(|(s, c)| format!("{} {:.0} rps", s.name, c))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    t
}

/// `serving_batch_tail`: the batch-formation trade on SMART — larger
/// windows/batches amortize staging (throughput up, thrash down) but
/// hold early arrivals hostage (tail up).
#[must_use]
pub fn serving_batch_tail(ctx: &ExperimentContext) -> ResultTable {
    let tenants = canonical_mix();
    let scheme = Scheme::smart();
    let profs = profiles(&scheme, &tenants, ctx);
    let slo = reference_slo(&tenants, ctx, 8);
    let rate = 0.75 * mix_capacity_rps(&profs, &tenants);
    let clock = profs[0].clock;
    let window_us = |us: f64| (us * 1e-6 * clock.as_si()) as u64;
    const N: usize = 600;

    let policies: [(u32, f64); 6] = [(1, 0.0), (2, 2.0), (4, 2.0), (8, 2.0), (4, 10.0), (8, 10.0)];

    let mut t = ResultTable::new(
        "serving_batch_tail",
        "Serving batch formation on SMART: tail latency vs staging amortization \
         (AlexNet+MobileNet 3:1, Poisson at 75% capacity)",
    );
    t.columns = vec![
        ColumnSpec::right("batch", 6),
        ColumnSpec::right("window(us)", 11),
        ColumnSpec::right("p50(us)", 10),
        ColumnSpec::right("p99(us)", 10),
        ColumnSpec::right("p999(us)", 10),
        ColumnSpec::right("good(krps)", 11),
        ColumnSpec::right("util", 7),
        ColumnSpec::right("thrash", 7),
    ];

    let reports = parallel_map(ctx.jobs, &policies, |&(batch, wus)| {
        let w = Workload::poisson(tenants.clone(), rate, 42);
        let prefix = format!("serving_batch_tail/batch {batch} window {wus}us/");
        simulate_traced(
            &profs,
            &w,
            N,
            &ServingConfig::fcfs()
                .with_batching(batch, window_us(wus))
                .with_slo(slo.clone()),
            &ctx.tracer,
            &prefix,
        )
    });

    for ((batch, wus), r) in policies.iter().zip(&reports) {
        t.push_row(vec![
            Value::count(u64::from(*batch)),
            Value::num(*wus, 1),
            Value::time(r.p50(), Unit::Us, 3),
            Value::time(r.p99(), Unit::Us, 3),
            Value::time(r.p999(), Unit::Us, 3),
            Value::num(r.goodput_rps() / 1e3, 1),
            Value::percent(r.utilization(), 1),
            Value::percent(r.thrash_overhead(), 1),
        ]);
    }
    t.push_note(format!(
        "{N} requests per policy at {:.0} rps, seed 42; window holds a \
         batch head for co-arrivals before launch",
        rate
    ));
    t
}

/// `serving_tenant_mix`: how the mix shape (balanced / skewed / bursty)
/// moves the tail and the SPM-thrash bill across schemes — SMART's
/// larger resident working sets make each cold switch dearer, but its
/// faster layers clear the backlog sooner.
#[must_use]
pub fn serving_tenant_mix(ctx: &ExperimentContext) -> ResultTable {
    let mixes: [(&str, Vec<Tenant>, ArrivalModel); 3] = [
        (
            "balanced",
            vec![
                Tenant::of(ModelId::AlexNet, 1.0),
                Tenant::of(ModelId::MobileNet, 1.0),
            ],
            ArrivalModel::Poisson,
        ),
        (
            "skewed",
            vec![
                Tenant::of(ModelId::AlexNet, 4.0),
                Tenant::of(ModelId::MobileNet, 1.0),
            ],
            ArrivalModel::Poisson,
        ),
        (
            "bursty",
            vec![
                Tenant::of(ModelId::AlexNet, 1.0),
                Tenant::of(ModelId::MobileNet, 1.0),
            ],
            ArrivalModel::Bursty {
                on_fraction: 0.25,
                period_s: 2e-4,
            },
        ),
    ];
    let schemes = schemes();
    const N: usize = 400;

    let mut t = ResultTable::new(
        "serving_tenant_mix",
        "Serving tenant mixes: tails and SPM thrash across schemes \
         (Poisson/bursty at 60% of the Heter mix capacity, FCFS)",
    );
    t.columns = vec![
        ColumnSpec::left("mix", 10),
        ColumnSpec::left("scheme", 7),
        ColumnSpec::right("p50(us)", 10),
        ColumnSpec::right("p99(us)", 10),
        ColumnSpec::right("good(krps)", 11),
        ColumnSpec::right("thrash", 7),
        ColumnSpec::right("switches", 9),
    ];

    let points: Vec<(usize, usize)> = (0..mixes.len())
        .flat_map(|m| (0..schemes.len()).map(move |s| (m, s)))
        .collect();
    let reports = parallel_map(ctx.jobs, &points, |&(m, s)| {
        let (_, tenants, arrivals) = &mixes[m];
        let profs = profiles(&schemes[s], tenants, ctx);
        let slo = reference_slo(tenants, ctx, 8);
        let heter_profs = profiles(&Scheme::heter(), tenants, ctx);
        let rate = 0.6 * mix_capacity_rps(&heter_profs, tenants);
        let w = Workload {
            tenants: tenants.clone(),
            arrivals: *arrivals,
            rate_rps: rate,
            seed: 42,
        };
        let prefix = format!("serving_tenant_mix/{} {}/", mixes[m].0, schemes[s].name);
        simulate_traced(
            &profs,
            &w,
            N,
            &ServingConfig::fcfs().with_slo(slo),
            &ctx.tracer,
            &prefix,
        )
    });

    for (m, (name, _, _)) in mixes.iter().enumerate() {
        for (s, scheme) in schemes.iter().enumerate() {
            let r = &reports[m * schemes.len() + s];
            t.push_row(vec![
                Value::text(*name),
                Value::text(scheme.name),
                Value::time(r.p50(), Unit::Us, 3),
                Value::time(r.p99(), Unit::Us, 3),
                Value::num(r.goodput_rps() / 1e3, 1),
                Value::percent(r.thrash_overhead(), 1),
                Value::count(r.switches),
            ]);
        }
    }
    t.push_note(format!(
        "{N} requests per cell, seed 42; bursty = on/off modulated \
         arrivals (25% duty, 200 us period) at the same average rate"
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_p99_is_monotone_with_a_knee_and_smart_beats_pipe() {
        let ctx = ExperimentContext::new(2);
        let t = serving_saturation(&ctx);
        assert_eq!(t.rows.len(), 6);
        // Columns: load, then (p99, goodput) per scheme in
        // [Heter, Pipe, SMART] order.
        let p99 = |row: usize, scheme: usize| {
            t.rows[row][1 + 2 * scheme]
                .as_display_f64()
                .expect("numeric p99")
        };
        let goodput = |row: usize, scheme: usize| {
            t.rows[row][2 + 2 * scheme]
                .as_display_f64()
                .expect("numeric goodput")
        };
        for scheme in 0..3 {
            for row in 1..t.rows.len() {
                assert!(
                    p99(row, scheme) >= p99(row - 1, scheme),
                    "scheme {scheme}: p99 not monotone at row {row}"
                );
            }
            // A knee: the tail at overload dwarfs the idle tail.
            assert!(
                p99(t.rows.len() - 1, scheme) > 4.0 * p99(0, scheme),
                "scheme {scheme}: no saturation knee"
            );
        }
        // SMART strictly outserves Pipe at the shared SLO once load bites.
        for row in 3..t.rows.len() {
            assert!(
                goodput(row, 2) > goodput(row, 1),
                "row {row}: SMART goodput {} <= Pipe {}",
                goodput(row, 2),
                goodput(row, 1)
            );
        }
        assert!(t.non_finite_cells().is_empty());
    }

    #[test]
    fn sweeps_pay_one_prepass_per_scheme_model_pair() {
        // Asserted through the unified metrics snapshot — the same
        // counters `--metrics` dumps — so this test and the stderr
        // reports cannot diverge. Hits are `hits + coalesced`: which
        // concurrent requester wins the miss is timing-dependent, the
        // sum is not.
        let ctx = ExperimentContext::new(2);
        let _ = serving_saturation(&ctx);
        let after_saturation = ctx.metrics_snapshot();
        // 3 schemes x 2 models; reference_slo's Heter rebuild and every
        // sweep point are hits.
        assert_eq!(after_saturation.counter("timing_cache.misses"), 6);
        let warm_after_saturation = after_saturation.counter("timing_cache.hits")
            + after_saturation.counter("timing_cache.coalesced");
        assert!(warm_after_saturation > 0);

        let _ = serving_batch_tail(&ctx);
        let after_batch = ctx.metrics_snapshot();
        assert_eq!(
            after_batch.counter("timing_cache.misses"),
            6,
            "batch_tail reuses the prepasses"
        );
        assert!(
            after_batch.counter("timing_cache.hits")
                + after_batch.counter("timing_cache.coalesced")
                > warm_after_saturation
        );
    }

    #[test]
    fn tenant_mix_is_deterministic_across_jobs() {
        let a = serving_tenant_mix(&ExperimentContext::single_threaded());
        let b = serving_tenant_mix(&ExperimentContext::new(4));
        assert_eq!(a.to_text(), b.to_text());
    }
}
