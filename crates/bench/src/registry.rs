//! The typed experiment registry: one [`ExperimentDescriptor`] per
//! table/figure/study, the single source of truth every front end
//! derives from.
//!
//! The old `&[(&str, Experiment)]` pair table knew nothing but names;
//! the descriptors add the paper artifact each experiment reproduces
//! (`figure`) and a coarse [`Group`] tag, so `--list` can print an
//! annotated catalogue and `--filter` can select whole families
//! (`--filter timing`, `--filter serving_`) instead of spelling out
//! names. [`crate::run_experiment`], [`crate::experiment_names`],
//! [`crate::all_experiments`], and every binary under `src/bin/` resolve
//! through this table, so a new entry cannot drift between them.

use crate::Experiment;

/// Coarse family tag of an experiment, the unit `--filter` selects by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Group {
    /// Main-paper figures and tables (Figs. 2-25, Tables 1-4).
    Paper,
    /// Compiler/geometry ablations beyond the paper.
    Ablation,
    /// Transient circuit characterizations (JoSIM-style).
    Circuit,
    /// Cycle-level replay studies.
    Timing,
    /// Design-space Pareto searches.
    Search,
    /// Multi-tenant serving simulations.
    Serving,
}

impl Group {
    /// The tag `--filter` matches and `--list` prints.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Self::Paper => "paper",
            Self::Ablation => "ablation",
            Self::Circuit => "circuit",
            Self::Timing => "timing",
            Self::Search => "search",
            Self::Serving => "serving",
        }
    }
}

/// One entry of the experiment catalogue.
#[derive(Clone, Copy)]
pub struct ExperimentDescriptor {
    /// Dispatch name (`fig18`, `serving_saturation`, …).
    pub name: &'static str,
    /// The paper artifact reproduced, or `"-"` for studies beyond the
    /// paper.
    pub figure: &'static str,
    /// Family tag.
    pub group: Group,
    /// The builder.
    pub run: Experiment,
}

impl std::fmt::Debug for ExperimentDescriptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentDescriptor")
            .field("name", &self.name)
            .field("figure", &self.figure)
            .field("group", &self.group)
            .finish_non_exhaustive()
    }
}

impl ExperimentDescriptor {
    /// Whether `filter` selects this experiment: exact or substring name
    /// match, or an exact group-tag match (`timing` picks every
    /// [`Group::Timing`] entry *and* anything with `timing` in its name).
    #[must_use]
    pub fn matches(&self, filter: &str) -> bool {
        self.group.tag() == filter || self.name.contains(filter)
    }
}

macro_rules! registry {
    ($(($name:literal, $figure:literal, $group:ident, $run:path),)*) => {
        /// Every experiment, in paper order followed by the
        /// beyond-the-paper studies.
        pub const REGISTRY: &[ExperimentDescriptor] = &[
            $(ExperimentDescriptor {
                name: $name,
                figure: $figure,
                group: Group::$group,
                run: $run,
            },)*
        ];
    };
}

registry![
    ("fig02", "Fig. 2", Paper, crate::fig02_wires),
    ("table1", "Table 1", Paper, crate::table1_memories),
    ("table2", "Table 2", Paper, crate::table2_components),
    ("fig05", "Fig. 5", Paper, crate::fig05_homogeneous),
    ("fig06", "Fig. 6", Paper, crate::fig06_trace),
    ("fig07", "Fig. 7", Paper, crate::fig07_hetero),
    ("fig09", "Fig. 9", Paper, crate::fig09_htree_breakdown),
    ("fig12", "Fig. 12", Paper, crate::fig12_subbank_validation),
    ("fig13", "Fig. 13", Paper, crate::fig13_josim_validation),
    ("fig14", "Fig. 14", Paper, crate::fig14_design_space),
    ("fig16", "Fig. 16", Paper, crate::fig16_access_energy),
    ("fig17", "Fig. 17", Paper, crate::fig17_area),
    ("fig18", "Fig. 18", Paper, crate::fig18_single_speedup),
    ("fig19", "Fig. 19", Paper, crate::fig19_batch_speedup),
    ("fig20", "Fig. 20", Paper, crate::fig20_single_energy),
    ("fig21", "Fig. 21", Paper, crate::fig21_batch_energy),
    ("fig22", "Fig. 22", Paper, crate::fig22_shift_capacity),
    ("fig23", "Fig. 23", Paper, crate::fig23_random_capacity),
    ("fig24", "Fig. 24", Paper, crate::fig24_prefetch),
    ("fig25", "Fig. 25", Paper, crate::fig25_write_latency),
    ("table4", "Table 4", Paper, crate::table4_configs),
    (
        "ablation_ilp_vs_greedy",
        "-",
        Ablation,
        crate::ablation_ilp_vs_greedy
    ),
    (
        "ablation_lane_length",
        "-",
        Ablation,
        crate::ablation_lane_length
    ),
    ("josim_jtl", "-", Circuit, crate::josim_jtl_characterization),
    (
        "josim_fanout",
        "-",
        Circuit,
        crate::josim_fanout_characterization
    ),
    ("josim_ptl", "-", Circuit, crate::josim_ptl_characterization),
    (
        "timing_stall_breakdown",
        "-",
        Timing,
        crate::timing_stall_breakdown
    ),
    (
        "timing_buffer_depth",
        "-",
        Timing,
        crate::timing_buffer_depth
    ),
    (
        "timing_random_bandwidth",
        "-",
        Timing,
        crate::timing_random_bandwidth
    ),
    ("search_frontier", "-", Search, crate::search_frontier),
    (
        "search_warm_vs_cold",
        "-",
        Search,
        crate::search_warm_vs_cold
    ),
    (
        "search_frontier_gap",
        "-",
        Search,
        crate::search_frontier_gap
    ),
    (
        "serving_saturation",
        "-",
        Serving,
        crate::serving_saturation
    ),
    (
        "serving_batch_tail",
        "-",
        Serving,
        crate::serving_batch_tail
    ),
    (
        "serving_tenant_mix",
        "-",
        Serving,
        crate::serving_tenant_mix
    ),
];

/// Looks an experiment up by exact name.
#[must_use]
pub fn find(name: &str) -> Option<&'static ExperimentDescriptor> {
    REGISTRY.iter().find(|d| d.name == name)
}

/// The experiments a set of `--filter` values selects (any-of semantics),
/// in registry order. No filters selects everything.
#[must_use]
pub fn filtered(filters: &[String]) -> Vec<&'static ExperimentDescriptor> {
    REGISTRY
        .iter()
        .filter(|d| filters.is_empty() || filters.iter().any(|f| d.matches(f)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_partition_the_registry() {
        assert_eq!(REGISTRY.len(), 35);
        let count = |g: Group| REGISTRY.iter().filter(|d| d.group == g).count();
        assert_eq!(count(Group::Paper), 21);
        assert_eq!(count(Group::Ablation), 2);
        assert_eq!(count(Group::Circuit), 3);
        assert_eq!(count(Group::Timing), 3);
        assert_eq!(count(Group::Search), 3);
        assert_eq!(count(Group::Serving), 3);
    }

    #[test]
    fn filters_select_families_and_names() {
        let timing = filtered(&["timing".to_owned()]);
        assert_eq!(timing.len(), 3);
        assert!(timing.iter().all(|d| d.group == Group::Timing));

        let serving = filtered(&["serving_".to_owned()]);
        assert_eq!(serving.len(), 3);

        let one = filtered(&["fig18".to_owned()]);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].figure, "Fig. 18");

        let multi = filtered(&["search".to_owned(), "fig02".to_owned()]);
        assert_eq!(multi.len(), 4);

        assert_eq!(filtered(&[]).len(), REGISTRY.len());
        assert!(filtered(&["no_such_thing".to_owned()]).is_empty());
    }

    #[test]
    fn find_resolves_exact_names_only() {
        assert!(find("fig18").is_some());
        assert!(find("serving_saturation").is_some());
        assert!(find("fig1").is_none());
    }
}
