//! Regenerates one experiment of the paper. Run with
//! `cargo run -p smart-bench --release --bin fig12_subbank_validation`.
fn main() {
    print!(
        "{}",
        smart_bench::fig12_subbank_validation(&smart_bench::ExperimentContext::default())
    );
}
