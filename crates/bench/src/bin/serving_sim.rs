//! One multi-tenant serving simulation from the command line: pick a
//! scheme, a tenant mix, an offered load, and a dispatch policy, and get
//! the full latency/goodput/thrash report as a table.
//!
//! Unlike the `serving_*` experiments (fixed sweeps for the golden
//! snapshot), this binary exposes every simulator knob, so it is the
//! interactive front end for exploring the serving design space.

use smart_bench::cli::{self, parse_non_negative, parse_positive, CliSpec, ExtraFlag};
use smart_core::scheme::Scheme;
use smart_report::{ColumnSpec, ResultTable, Unit, Value};
use smart_serving::{
    simulate_traced, ArrivalModel, ServingConfig, Tenant, TenantProfile, Workload,
};
use smart_systolic::models::ModelId;
use smart_timing::TimingConfig;
use std::process::ExitCode;

const SPEC: CliSpec = CliSpec {
    bin: "serving_sim",
    about: "Run one multi-tenant serving simulation with explicit knobs",
    extras: &[
        ExtraFlag {
            flag: "--scheme",
            value: Some("NAME"),
            help: "heter | pipe | smart (default: smart)",
        },
        ExtraFlag {
            flag: "--tenant",
            value: Some("MODEL[:W]"),
            help: "add a tenant with traffic weight W (repeatable; default: alexnet:3 mobilenet:1)",
        },
        ExtraFlag {
            flag: "--load",
            value: Some("F"),
            help: "offered load as a fraction of mix capacity (default: 0.7)",
        },
        ExtraFlag {
            flag: "--rate",
            value: Some("RPS"),
            help: "absolute offered rate in requests/s (overrides --load)",
        },
        ExtraFlag {
            flag: "--requests",
            value: Some("N"),
            help: "requests to inject (default: 400)",
        },
        ExtraFlag {
            flag: "--batch",
            value: Some("N"),
            help: "max batch size per launch (default: 1)",
        },
        ExtraFlag {
            flag: "--window-us",
            value: Some("US"),
            help: "batch formation window in microseconds (default: 0)",
        },
        ExtraFlag {
            flag: "--quantum",
            value: Some("N"),
            help: "preemption quantum in layers, 0 = run to completion (default: 0)",
        },
        ExtraFlag {
            flag: "--bursty",
            value: None,
            help: "on/off modulated arrivals (25% duty, 200 us period) instead of Poisson",
        },
        ExtraFlag {
            flag: "--seed",
            value: Some("N"),
            help: "trace seed (default: 42)",
        },
        ExtraFlag {
            flag: "--slo-factor",
            value: Some("N"),
            help: "SLO deadline as a multiple of each tenant's stand-alone latency (default: 8)",
        },
    ],
    positional: None,
};

fn fail(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!("{}", SPEC.usage());
    std::process::exit(2);
}

fn parse_scheme(name: &str) -> Scheme {
    match name.to_ascii_lowercase().as_str() {
        "heter" => Scheme::heter(),
        "pipe" => Scheme::pipe(),
        "smart" => Scheme::smart(),
        other => fail(&format!(
            "unknown scheme `{other}`; serving schemes: heter pipe smart"
        )),
    }
}

fn parse_tenant(spec: &str) -> Tenant {
    let (name, weight) = match spec.split_once(':') {
        Some((n, w)) => {
            let weight: f64 = w
                .parse()
                .ok()
                .filter(|x: &f64| x.is_finite() && *x > 0.0)
                .unwrap_or_else(|| fail(&format!("tenant weight `{w}` needs a positive number")));
            (n, weight)
        }
        None => (spec, 1.0),
    };
    let model = ModelId::ALL
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| {
            let known: Vec<&str> = ModelId::ALL.iter().map(|m| m.name()).collect();
            fail(&format!(
                "unknown model `{name}`; models: {}",
                known.join(" ")
            ))
        });
    Tenant::of(model, weight)
}

fn main() -> ExitCode {
    let args = SPEC.parse_env_or_exit();

    let selected = args.filters.is_empty()
        || args
            .filters
            .iter()
            .any(|f| "serving_sim".contains(f.as_str()) || f == "serving");
    if args.list {
        if selected {
            println!("serving_sim");
        }
        return ExitCode::SUCCESS;
    }
    if !selected {
        return ExitCode::SUCCESS;
    }

    let unwrap = |r: Result<f64, String>| r.unwrap_or_else(|e| fail(&e));
    let scheme = parse_scheme(args.value_of("--scheme").unwrap_or("smart"));
    let tenants: Vec<Tenant> = {
        let specs: Vec<&str> = args
            .extras
            .iter()
            .filter(|(f, _)| f == "--tenant")
            .filter_map(|(_, v)| v.as_deref())
            .collect();
        if specs.is_empty() {
            vec![
                Tenant::of(ModelId::AlexNet, 3.0),
                Tenant::of(ModelId::MobileNet, 1.0),
            ]
        } else {
            specs.iter().map(|s| parse_tenant(s)).collect()
        }
    };
    let load = unwrap(parse_non_negative(
        "--load",
        Some(args.value_of("--load").unwrap_or("0.7")),
    ));
    let requests = parse_positive(
        "--requests",
        Some(args.value_of("--requests").unwrap_or("400")),
    )
    .unwrap_or_else(|e| fail(&e));
    let batch = parse_positive("--batch", Some(args.value_of("--batch").unwrap_or("1")))
        .unwrap_or_else(|e| fail(&e));
    let window_us = unwrap(parse_non_negative(
        "--window-us",
        Some(args.value_of("--window-us").unwrap_or("0")),
    ));
    let quantum = unwrap(parse_non_negative(
        "--quantum",
        Some(args.value_of("--quantum").unwrap_or("0")),
    )) as u32;
    let seed = unwrap(parse_non_negative(
        "--seed",
        Some(args.value_of("--seed").unwrap_or("42")),
    )) as u64;
    let slo_factor = unwrap(parse_non_negative(
        "--slo-factor",
        Some(args.value_of("--slo-factor").unwrap_or("8")),
    )) as u64;
    if args.value_of("--rate").is_some() {
        // Validate eagerly so a bad value fails before the ILP prepass.
        let _ = unwrap(parse_non_negative("--rate", args.value_of("--rate")));
    }

    let ctx = args.context();
    if let Some(dir) = args.cache_dir.as_deref() {
        let _ = ctx.load_caches_verbose(dir);
    }

    let cfg = TimingConfig::nominal();
    let profs: Vec<TenantProfile> = tenants
        .iter()
        .map(|t| {
            TenantProfile::build(&scheme, t.model, &cfg, &ctx.timing)
                .unwrap_or_else(|e| fail(&format!("cannot profile {}: {e}", t.model.name())))
        })
        .collect();

    // Mix capacity: harmonic mean of the tenants' stand-alone rates under
    // their traffic shares (same definition as the serving experiments).
    let total_w: f64 = tenants.iter().map(|t| t.weight.max(0.0)).sum();
    let capacity_rps = 1.0
        / profs
            .iter()
            .zip(&tenants)
            .map(|(p, t)| (t.weight.max(0.0) / total_w) / p.standalone_rps())
            .sum::<f64>();
    let rate = match args.value_of("--rate") {
        Some(r) => unwrap(parse_non_negative("--rate", Some(r))),
        None => load * capacity_rps,
    };
    if rate <= 0.0 {
        fail("offered rate must be positive; raise --load or --rate");
    }

    let arrivals = if args.has("--bursty") {
        ArrivalModel::Bursty {
            on_fraction: 0.25,
            period_s: 2e-4,
        }
    } else {
        ArrivalModel::Poisson
    };
    let workload = Workload {
        tenants: tenants.clone(),
        arrivals,
        rate_rps: rate,
        seed,
    };

    let clock = profs[0].clock;
    let mut config = ServingConfig::fcfs()
        .with_batching(
            u32::try_from(batch).unwrap_or(u32::MAX),
            (window_us * 1e-6 * clock.as_si()) as u64,
        )
        .with_quantum(quantum);
    if slo_factor > 0 {
        config = config.with_slo(
            profs
                .iter()
                .map(|p| p.standalone_cycles() * slo_factor)
                .collect(),
        );
    }

    let report = simulate_traced(
        &profs,
        &workload,
        requests,
        &config,
        &ctx.tracer,
        "serving/",
    );

    let mut t = ResultTable::new(
        "serving_sim",
        format!(
            "Serving simulation: {} on {}, {:.0} rps ({:.0}% of capacity)",
            tenants
                .iter()
                .map(|t| format!("{}:{:.0}", t.model.name(), t.weight))
                .collect::<Vec<_>>()
                .join("+"),
            scheme.name,
            rate,
            100.0 * rate / capacity_rps
        ),
    );
    t.columns = vec![
        ColumnSpec::left("metric", 22),
        ColumnSpec::right("value", 14),
    ];
    let rows: Vec<(&str, Value)> = vec![
        ("injected", Value::count(report.injected)),
        ("completed", Value::count(report.completed)),
        ("slo met", Value::count(report.slo_met)),
        ("p50 latency", Value::time(report.p50(), Unit::Us, 3)),
        ("p99 latency", Value::time(report.p99(), Unit::Us, 3)),
        ("p999 latency", Value::time(report.p999(), Unit::Us, 3)),
        (
            "throughput (krps)",
            Value::num(report.throughput_rps() / 1e3, 2),
        ),
        ("goodput (krps)", Value::num(report.goodput_rps() / 1e3, 2)),
        ("utilization", Value::percent(report.utilization(), 1)),
        ("SPM thrash", Value::percent(report.thrash_overhead(), 1)),
        ("context switches", Value::count(report.switches)),
        ("SLO attainment", Value::percent(report.slo_attainment(), 1)),
    ];
    for (metric, value) in rows {
        t.push_row(vec![Value::text(metric), value]);
    }
    for (tenant, stats) in tenants.iter().zip(&report.per_tenant) {
        t.push_note(format!(
            "{}: {} injected, {} completed, {} within SLO",
            tenant.model.name(),
            stats.injected,
            stats.completed,
            stats.slo_met
        ));
    }
    t.push_note(format!(
        "policy: batch {batch}, window {window_us} us, quantum {quantum} layers, \
         seed {seed}, SLO = {slo_factor}x stand-alone"
    ));

    cli::print_table(&t, args.format);
    if let Some(dir) = args.cache_dir.as_deref() {
        ctx.save_caches_or_warn(dir);
    }
    if !cli::emit_observability(&args, &ctx) {
        return ExitCode::FAILURE;
    }
    if args.check && !cli::check_tables(std::slice::from_ref(&t)) {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
