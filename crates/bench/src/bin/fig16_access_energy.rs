//! Regenerates one experiment of the paper. Run with
//! `cargo run -p smart-bench --release --bin fig16_access_energy`.
fn main() {
    print!(
        "{}",
        smart_bench::fig16_access_energy(&smart_bench::ExperimentContext::default())
    );
}
