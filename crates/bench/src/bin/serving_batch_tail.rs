//! `serving_batch_tail`: the batch-formation trade on SMART — staging
//! amortization vs tail latency across batch sizes and windows.

fn main() -> std::process::ExitCode {
    smart_bench::cli::run_single(
        "serving_batch_tail",
        "Serving batch formation on SMART: tail latency vs staging amortization",
    )
}
