//! Regenerates one experiment of the paper. Run with
//! `cargo run -p smart-bench --release --bin fig23_random_capacity`.
fn main() {
    print!(
        "{}",
        smart_bench::fig23_random_capacity(&smart_bench::ExperimentContext::default())
    );
}
