//! Regenerates one experiment of the paper. Run with
//! `cargo run -p smart-bench --release --bin timing_buffer_depth`.
fn main() {
    print!(
        "{}",
        smart_bench::timing_buffer_depth(&smart_bench::ExperimentContext::default())
    );
}
