//! Regenerates one experiment of the paper. Run with
//! `cargo run -p smart-bench --release --bin fig21_batch_energy`.
fn main() {
    print!(
        "{}",
        smart_bench::fig21_batch_energy(&smart_bench::ExperimentContext::default())
    );
}
