//! Regenerates one experiment of the paper. Run with
//! `cargo run -p smart-bench --release --bin fig07_hetero`.
fn main() {
    print!(
        "{}",
        smart_bench::fig07_hetero(&smart_bench::ExperimentContext::default())
    );
}
