//! Regenerates one experiment of the paper. Run with
//! `cargo run -p smart-bench --release --bin fig22_shift_capacity`.
fn main() {
    print!(
        "{}",
        smart_bench::fig22_shift_capacity(&smart_bench::ExperimentContext::default())
    );
}
