//! Regenerates one experiment of the paper. Run with
//! `cargo run -p smart-bench --release --bin josim_fanout_characterization`.
fn main() {
    print!(
        "{}",
        smart_bench::josim_fanout_characterization(&smart_bench::ExperimentContext::default())
    );
}
