//! Regenerates one experiment of the paper. Run with
//! `cargo run -p smart-bench --release --bin fig24_prefetch`.
fn main() {
    print!(
        "{}",
        smart_bench::fig24_prefetch(&smart_bench::ExperimentContext::default())
    );
}
