//! Regenerates one experiment of the paper. Run with
//! `cargo run -p smart-bench --release --bin table2_components`.
fn main() {
    print!(
        "{}",
        smart_bench::table2_components(&smart_bench::ExperimentContext::default())
    );
}
