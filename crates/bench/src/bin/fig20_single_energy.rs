//! Regenerates one experiment of the paper. Run with
//! `cargo run -p smart-bench --release --bin fig20_single_energy`.
fn main() {
    print!(
        "{}",
        smart_bench::fig20_single_energy(&smart_bench::ExperimentContext::default())
    );
}
