//! `serving_saturation`: p99 tail latency and goodput vs offered load
//! for Heter / Pipe / SMART under one FCFS discipline and a shared SLO.

fn main() -> std::process::ExitCode {
    smart_bench::cli::run_single(
        "serving_saturation",
        "Serving saturation sweep: tail latency and goodput vs offered load per scheme",
    )
}
