//! Regenerates one experiment of the paper. Run with
//! `cargo run -p smart-bench --release --bin fig25_write_latency`.
fn main() {
    print!(
        "{}",
        smart_bench::fig25_write_latency(&smart_bench::ExperimentContext::default())
    );
}
