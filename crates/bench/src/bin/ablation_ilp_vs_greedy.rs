//! Ablation: the ILP compiler vs the greedy ideal-static allocator across
//! all AlexNet layers (the software half of SMART's gain over Pipe).
use smart_compiler::formulation::{compile_layer, FormulationParams};
use smart_compiler::greedy::allocate;
use smart_compiler::lifespan::analyze;
use smart_systolic::dag::LayerDag;
use smart_systolic::mapping::{ArrayShape, LayerMapping};
use smart_systolic::models::ModelId;

fn main() {
    let model = ModelId::AlexNet.build();
    let params = FormulationParams::smart_default();
    println!("Ablation: ILP vs greedy allocation objective (higher = more time saved)");
    println!("{:<8} {:>12} {:>12} {:>8}", "layer", "ILP", "greedy", "gain");
    let mut ilp_total = 0.0;
    let mut greedy_total = 0.0;
    for layer in &model.layers {
        let mapping = LayerMapping::map(layer, ArrayShape::new(64, 256), 1);
        let dag = LayerDag::build(&mapping, 6);
        let ilp = compile_layer(&dag, &params);
        let greedy = allocate(&dag, &params, analyze(&dag, params.prefetch_window));
        ilp_total += ilp.objective;
        greedy_total += greedy.objective;
        println!(
            "{:<8} {:>12.0} {:>12.0} {:>7.2}%",
            layer.name,
            ilp.objective,
            greedy.objective,
            (ilp.objective / greedy.objective.max(1.0) - 1.0) * 100.0
        );
    }
    println!(
        "total ILP {:.0} vs greedy {:.0} ({:+.2}%)",
        ilp_total,
        greedy_total,
        (ilp_total / greedy_total - 1.0) * 100.0
    );

    // Contested capacity: shrink the SPMs until placements conflict — here
    // the ILP's global view beats greedy largest-first.
    let mut tight = params;
    tight.shift_capacity = 4 * 1024;
    tight.random_capacity = 192 * 1024;
    tight.bytes_per_iteration = 256 * 1024;
    println!("\nContested capacity (4 KB SHIFT, 192 KB RANDOM, 256 KB/iter):");
    let mut ilp_total = 0.0;
    let mut greedy_total = 0.0;
    for layer in &model.layers {
        let mapping = LayerMapping::map(layer, ArrayShape::new(64, 256), 1);
        let dag = LayerDag::build(&mapping, 6);
        ilp_total += compile_layer(&dag, &tight).objective;
        greedy_total += allocate(&dag, &tight, analyze(&dag, tight.prefetch_window)).objective;
    }
    println!(
        "total ILP {:.0} vs greedy {:.0} ({:+.2}%)",
        ilp_total,
        greedy_total,
        (ilp_total / greedy_total.max(1.0) - 1.0) * 100.0
    );
}
