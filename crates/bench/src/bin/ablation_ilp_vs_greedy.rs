//! Ablation: the ILP compiler vs the greedy ideal-static allocator across
//! all AlexNet layers (the software half of SMART's gain over Pipe). Run
//! with `cargo run -p smart-bench --release --bin ablation_ilp_vs_greedy`.
fn main() {
    print!(
        "{}",
        smart_bench::ablation_ilp_vs_greedy(&smart_bench::ExperimentContext::default())
    );
}
