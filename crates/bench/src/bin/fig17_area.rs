//! Regenerates one experiment of the paper. Run with
//! `cargo run -p smart-bench --release --bin fig17_area`.
fn main() {
    print!(
        "{}",
        smart_bench::fig17_area(&smart_bench::ExperimentContext::default())
    );
}
