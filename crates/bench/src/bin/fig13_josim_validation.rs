//! Regenerates one experiment of the paper. Run with
//! `cargo run -p smart-bench --release --bin fig13_josim_validation`.
fn main() {
    print!(
        "{}",
        smart_bench::fig13_josim_validation(&smart_bench::ExperimentContext::default())
    );
}
