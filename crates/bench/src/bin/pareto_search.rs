//! Design-space Pareto search over generated accelerator geometries.
//!
//! Sweeps the default 1000-point heterogeneous grid (or the small
//! 18-point grid with `--small`) through the staged search engine:
//! parallel analytic objectives, ε-dominance pruning, warm-started ILP
//! enrichment of the survivors, and cycle-level replay confirmation of
//! the frontier.
//!
//! ```sh
//! cargo run --release -p smart-bench --bin pareto_search
//! cargo run --release -p smart-bench --bin pareto_search -- --jobs 8 --json
//! cargo run --release -p smart-bench --bin pareto_search -- --cache-dir target/warm
//! cargo run --release -p smart-bench --bin pareto_search -- --small --check
//! ```
//!
//! Flags come from the shared `smart_bench::cli` module (see `--help`);
//! `--check` verifies the search invariants (finite objectives,
//! frontier ⊆ survivors, no dominated frontier point, and a sequential
//! `--jobs 1` rerun producing the identical outcome).

use smart_bench::cli::{self, CliSpec, ExtraFlag, Format};
use smart_bench::frontier_table;
use smart_search::{dominates, search, SearchConfig, SearchOutcome, SearchSpace};
use std::process::ExitCode;
use std::time::Instant;

const SPEC: CliSpec = CliSpec {
    bin: "pareto_search",
    about: "staged Pareto search over generated accelerator geometries",
    extras: &[ExtraFlag {
        flag: "--small",
        value: None,
        help: "the 18-point grid instead of the 1000-point one",
    }],
    positional: None,
};

/// Verifies the search invariants; returns every violation found.
fn check_outcome(out: &SearchOutcome, rerun: &SearchOutcome) -> Vec<String> {
    let mut bad = Vec::new();
    for (i, p) in out.points.iter().enumerate() {
        if !p.objectives.is_finite() {
            bad.push(format!(
                "point {i}: non-finite objectives {:?}",
                p.objectives
            ));
        }
    }
    for i in &out.frontier {
        if !out.survivors.contains(i) {
            bad.push(format!("frontier point {i} missing from the survivor set"));
        }
        if let Some(j) = (0..out.points.len())
            .find(|&j| dominates(&out.points[j].objectives, &out.points[*i].objectives))
        {
            bad.push(format!("frontier point {i} is dominated by point {j}"));
        }
    }
    if rerun.frontier != out.frontier || rerun.survivors != out.survivors {
        bad.push("sequential --jobs 1 rerun produced a different outcome".to_owned());
    }
    for (i, (a, b)) in out.points.iter().zip(&rerun.points).enumerate() {
        if a.objectives != b.objectives {
            bad.push(format!(
                "point {i}: objectives differ from the --jobs 1 rerun"
            ));
        }
    }
    bad
}

fn main() -> ExitCode {
    let args = SPEC.parse_env_or_exit();
    let selected = args.filters.is_empty()
        || args
            .filters
            .iter()
            .any(|f| "pareto_search".contains(f.as_str()) || f == "search");
    if args.list {
        if selected {
            println!("pareto_search");
        }
        return ExitCode::SUCCESS;
    }
    if !selected {
        return ExitCode::SUCCESS;
    }

    let ctx = args.context();
    if let Some(dir) = &args.cache_dir {
        ctx.load_caches_verbose(dir);
    }

    let space = if args.has("--small") {
        SearchSpace::small()
    } else {
        SearchSpace::default_grid()
    };
    let cfg = SearchConfig::new(ctx.jobs);
    // lint:allow(determinism, wall-clock timing is reported on stderr only and never reaches stdout/JSON/snapshot bytes)
    let started = Instant::now();
    let out = match search(&space, &cfg, &ctx.cache, &ctx.timing) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("search failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let elapsed = started.elapsed().as_secs_f64();

    if let Some(dir) = &args.cache_dir {
        ctx.save_caches_or_warn(dir);
    }

    let table = frontier_table(
        "pareto_search",
        &format!(
            "Design-space search: Pareto frontier of the {}-point heterogeneous grid (AlexNet, batch 1)",
            out.stats.space
        ),
        &out,
    );
    let s = out.stats;
    // Wall-clock timing is observability, not a result: it goes to stderr
    // in every format, and deliberately never into the stdout JSON (which
    // must stay deterministic for diffing and snapshotting). Cache and
    // solver counts come from the unified metrics snapshot (the numbers
    // `--metrics` dumps), with single-flight waiters folded into hits so
    // the line is stable across worker interleavings.
    let snap = ctx.metrics_snapshot();
    eprintln!(
        "{} configs in {:.2}s ({:.0} configs/s); eval {}h/{}m, replay {}h/{}m, \
         solver {} warm / {} memo / {} cold",
        s.space,
        elapsed,
        s.space as f64 / elapsed.max(1e-9),
        snap.counter("eval_cache.hits") + snap.counter("eval_cache.coalesced"),
        snap.counter("eval_cache.misses"),
        snap.counter("timing_cache.hits") + snap.counter("timing_cache.coalesced"),
        snap.counter("timing_cache.misses"),
        snap.counter("ilp.warm_hits"),
        snap.counter("ilp.solution_hits"),
        snap.counter("ilp.cold_solves"),
    );
    match args.format {
        Format::Json => {
            // The table's own JSON plus the run counters (satellite stats
            // the fixed-width text has no room for). Deterministic fields
            // only — elapsed time stays on stderr.
            println!(
                "{{\"table\":{},\"stats\":{{\
                 \"space\":{},\"pruned\":{},\"survivors\":{},\"frontier\":{},\
                 \"ilp_compiles\":{},\
                 \"eval_hits\":{},\"eval_misses\":{},\
                 \"timing_hits\":{},\"timing_misses\":{},\
                 \"warm_attempts\":{},\"warm_hits\":{},\"cold_solves\":{},\"solution_hits\":{}}}}}",
                table.to_json(),
                s.space,
                s.pruned,
                s.survivors,
                s.frontier,
                s.ilp_compiles,
                s.eval_hits,
                s.eval_misses,
                s.timing_hits,
                s.timing_misses,
                s.warm_attempts,
                s.warm_hits,
                s.cold_solves,
                s.solution_hits,
            );
        }
        Format::Csv => {
            println!("# {}: {}", table.name, table.title);
            print!("{}", table.to_csv());
            println!();
        }
        Format::Text => {
            print!("{table}");
        }
    }

    if !cli::emit_observability(&args, &ctx) {
        return ExitCode::FAILURE;
    }

    if args.check {
        let rerun = match search(&space, &SearchConfig::new(1), &ctx.cache, &ctx.timing) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("check rerun failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let bad = check_outcome(&out, &rerun);
        if !bad.is_empty() {
            for b in &bad {
                eprintln!("CHECK FAILED: {b}");
            }
            return ExitCode::FAILURE;
        }
        eprintln!("check passed: {} invariants verified", out.points.len());
    }
    ExitCode::SUCCESS
}
