//! Regenerates one experiment of the paper. Run with
//! `cargo run -p smart-bench --release --bin fig09_htree_breakdown`.
fn main() {
    print!(
        "{}",
        smart_bench::fig09_htree_breakdown(&smart_bench::ExperimentContext::default())
    );
}
