//! Regenerates one experiment of the paper. Run with
//! `cargo run -p smart-bench --release --bin fig05_homogeneous`.
fn main() {
    print!(
        "{}",
        smart_bench::fig05_homogeneous(&smart_bench::ExperimentContext::default())
    );
}
