//! Regenerates one experiment of the paper. Run with
//! `cargo run -p smart-bench --release --bin fig14_design_space`.
fn main() {
    print!(
        "{}",
        smart_bench::fig14_design_space(&smart_bench::ExperimentContext::default())
    );
}
