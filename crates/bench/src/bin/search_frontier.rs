//! Regenerates one experiment of the paper. Run with
//! `cargo run -p smart-bench --release --bin search_frontier`.
//! Pass `--cache-dir DIR` to start warm from (and refresh) the persistent
//! stores of a previous run.
fn main() {
    let ctx = smart_bench::ExperimentContext::default();
    let dir = smart_bench::cache_dir_arg();
    print!(
        "{}",
        smart_bench::run_cached(smart_bench::search_frontier, &ctx, dir.as_deref())
    );
}
