//! Design-space Pareto frontier summary
//!
//! One of the per-experiment front ends: prints the bare fixed-width
//! table by default, and accepts the standard `smart-bench` flag set
//! (`--jobs --json --csv --check --cache-dir --list --filter --help`)
//! via the shared CLI module.
fn main() -> std::process::ExitCode {
    smart_bench::cli::run_single("search_frontier", "Design-space Pareto frontier summary")
}
