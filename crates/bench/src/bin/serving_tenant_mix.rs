//! `serving_tenant_mix`: tails and SPM-thrash across balanced, skewed,
//! and bursty tenant mixes on every serving scheme.

fn main() -> std::process::ExitCode {
    smart_bench::cli::run_single(
        "serving_tenant_mix",
        "Serving tenant mixes: tail latency and SPM thrash across schemes",
    )
}
