//! Regenerates one experiment of the paper. Run with
//! `cargo run -p smart-bench --release --bin fig18_single_speedup`.
fn main() {
    print!(
        "{}",
        smart_bench::fig18_single_speedup(&smart_bench::ExperimentContext::default())
    );
}
