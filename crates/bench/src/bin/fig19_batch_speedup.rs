//! Regenerates one experiment of the paper. Run with
//! `cargo run -p smart-bench --release --bin fig19_batch_speedup`.
fn main() {
    print!(
        "{}",
        smart_bench::fig19_batch_speedup(&smart_bench::ExperimentContext::default())
    );
}
