//! fig19: Fig. 19 batched speedups over TPU
//!
//! One of the per-experiment front ends: prints the bare fixed-width
//! table by default, and accepts the standard `smart-bench` flag set
//! (`--jobs --json --csv --check --cache-dir --list --filter --help`)
//! via the shared CLI module.
fn main() -> std::process::ExitCode {
    smart_bench::cli::run_single("fig19", "fig19: Fig. 19 batched speedups over TPU")
}
