//! Regenerates one experiment of the paper. Run with
//! `cargo run -p smart-bench --release --bin timing_stall_breakdown`.
fn main() {
    print!(
        "{}",
        smart_bench::timing_stall_breakdown(&smart_bench::ExperimentContext::default())
    );
}
