//! Regenerates one experiment of the paper. Run with
//! `cargo run -p smart-bench --release --bin table1_memories`.
fn main() {
    print!(
        "{}",
        smart_bench::table1_memories(&smart_bench::ExperimentContext::default())
    );
}
